//! Umbrella crate for the Where-Things-Roam reproduction: re-exports
//! every workspace crate under one name for examples and downstream use.
#![forbid(unsafe_code)]

pub use wtr_core as core;
pub use wtr_model as model;
pub use wtr_platform as platform;
pub use wtr_probes as probes;
pub use wtr_radio as radio;
pub use wtr_scenarios as scenarios;
pub use wtr_serve as serve;
pub use wtr_sim as sim;
