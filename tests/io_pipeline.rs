//! Persistence integration: a catalog exported to JSONL and re-imported
//! must classify identically — the guarantee that lets operators run the
//! pipeline offline on stored datasets.

use where_things_roam::core::classify::Classifier;
use where_things_roam::core::summary::summarize;
use where_things_roam::probes::io;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

#[test]
fn export_import_classify_is_lossless() {
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 800,
        days: 6,
        seed: 21,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();

    let mut buf = Vec::new();
    io::write_catalog(&mut buf, &output.catalog).unwrap();
    let imported = io::read_catalog(&buf[..]).unwrap();
    assert_eq!(imported.len(), output.catalog.len());
    assert_eq!(imported.device_count(), output.catalog.device_count());

    let original = Classifier::new(&output.tacdb)
        .classify(&summarize(&output.catalog), output.catalog.apn_table());
    let roundtrip =
        Classifier::new(&output.tacdb).classify(&summarize(&imported), imported.apn_table());
    assert_eq!(
        original.classes, roundtrip.classes,
        "classification must survive persistence"
    );
    assert_eq!(original.validated_apns, roundtrip.validated_apns);
    assert_eq!(original.devices_without_apn, roundtrip.devices_without_apn);
}

#[test]
fn transaction_log_jsonl_and_wire_agree() {
    use where_things_roam::probes::wire;
    use where_things_roam::scenarios::{M2mScenario, M2mScenarioConfig};
    let output = M2mScenario::new(M2mScenarioConfig {
        devices: 400,
        days: 4,
        seed: 22,
        g4_hole_fraction: 0.05,
    })
    .run();
    // JSONL roundtrip.
    let mut buf = Vec::new();
    io::write_transactions(&mut buf, &output.transactions).unwrap();
    let jsonl = io::read_transactions(&buf[..]).unwrap();
    // Wire roundtrip.
    let binary = wire::decode_log(wire::encode_log(&output.transactions)).unwrap();
    // All three representations agree.
    assert_eq!(jsonl, output.transactions);
    assert_eq!(binary, output.transactions);
    // And the wire format is much denser than JSONL.
    assert!(buf.len() > 3 * wire::encode_log(&output.transactions).len());
}
