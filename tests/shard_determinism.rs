//! Sharded == serial, byte for byte (the PR-4 contract).
//!
//! The scenario runners partition the agent population into K contiguous
//! shards, run one independent event loop per shard, and merge the
//! shard-local probes. This suite pins the whole contract:
//!
//! 1. **Shard matrix**: catalog bytes (JSONL *and* WTRCAT), ground
//!    truth, record counts and element load are identical at shards =
//!    1/2/8, on both the push (`run_sharded`) and streaming
//!    (`run_streaming_sharded`) paths, with and without record loss.
//! 2. **Golden anchors**: the dispatch-order re-anchor — from the old
//!    `(time, global insertion seq)` tie-break to the shard-stable
//!    `(time, agent, per-agent seq)` total order — changed *only* the
//!    cross-agent interleaving. Digests captured from the pre-change
//!    engine pin that: the event **multiset** of a small fixed world is
//!    unchanged, and the loss-free catalog (which depends only on
//!    per-device streams) is byte-identical.
//! 3. **Merge algebra** (proptest): `MnoProbe::absorb` over arbitrary
//!    device partitions reproduces the serial fold exactly, and the
//!    `LossySink` drop set is invariant to how devices are partitioned
//!    into shards.

use proptest::prelude::*;
use where_things_roam::model::country::Country;
use where_things_roam::model::hash::{mix64, AnonKey};
use where_things_roam::model::ids::{Imei, Imsi, Plmn, Tac};
use where_things_roam::model::operators::{well_known, OperatorRegistry};
use where_things_roam::model::rat::{Rat, RatSet};
use where_things_roam::model::time::SimTime;
use where_things_roam::probes::faults::LossySink;
use where_things_roam::probes::io;
use where_things_roam::probes::mno::MnoProbe;
use where_things_roam::radio::geo::{CountryGeometry, GeoPoint};
use where_things_roam::radio::network::{CoverageFaults, RadioNetwork};
use where_things_roam::radio::sector::GridSpacing;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig, MnoScenarioOutput};
use where_things_roam::sim::events::{
    DataSession, ProcedureResult, ProcedureType, SignalingEvent, SimEvent, VoiceCall,
};
use where_things_roam::sim::world::{EventSink, VecSink};

/// Shard counts in the matrix (serial reference + uneven splits; 3
/// exercises the unpaired tail of the tree-reduction merge).
const SHARDS: [usize; 4] = [1, 2, 3, 8];

// ---------------------------------------------------------------------
// Golden anchors, captured from the engine *before* the dispatch-order
// change (old tie-break: global insertion sequence).
// ---------------------------------------------------------------------

/// 400 devices x 5 days, seed 7, nbiot 0.05, loss 0: JSONL catalog bytes.
const OLD_CATALOG_JSONL_DIGEST: u64 = 0x11c4fa741ce1c115;
/// Same run: (radio events, CDRs, xDRs).
const OLD_RECORD_COUNTS: (u64, u64, u64) = (70_376, 4_808, 35_936);
/// Same run: catalog rows.
const OLD_CATALOG_ROWS: usize = 1_470;
/// Small fixed world: digest of the *sorted* serialized event lines —
/// the event multiset, insensitive to cross-agent interleaving.
const OLD_EVENT_MULTISET_DIGEST: u64 = 0x7bce9976374b188a;
/// Small fixed world: digest of the events in raw emission order under
/// the old global-seq tie-break (kept for documentation; the new order
/// need not match it — only the multiset must).
#[allow(dead_code)]
const OLD_EVENT_RAW_ORDER_DIGEST: u64 = 0xdb4f2e20b9537b30;

/// Order-sensitive digest: bytes folded 8 at a time through `mix64`.
fn digest(bytes: &[u8]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for chunk in bytes.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(b));
    }
    mix64(acc ^ bytes.len() as u64)
}

fn scenario_config(loss: f64) -> MnoScenarioConfig {
    MnoScenarioConfig {
        devices: 400,
        days: 5,
        seed: 7,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: loss,
    }
}

/// Everything the shard matrix compares, flattened to bytes.
fn fingerprint(out: &MnoScenarioOutput) -> Vec<u8> {
    let mut bytes = Vec::new();
    io::write_catalog(&mut bytes, &out.catalog).unwrap();
    io::write_catalog_bin(&mut bytes, &out.catalog).unwrap();
    bytes.extend(
        serde_json::to_string(&out.ground_truth)
            .unwrap()
            .into_bytes(),
    );
    bytes.extend(
        serde_json::to_string(&out.element_load)
            .unwrap()
            .into_bytes(),
    );
    bytes.extend(format!("{:?}", out.record_counts).into_bytes());
    bytes
}

#[test]
fn sharded_output_is_shard_count_invariant() {
    for loss in [0.0, 0.07] {
        let config = scenario_config(loss);
        let mut reference: Option<(Vec<u8>, u64)> = None;
        for &k in &SHARDS {
            for streaming in [false, true] {
                let scenario = MnoScenario::new(config.clone());
                let out = if streaming {
                    scenario.run_streaming_sharded(k)
                } else {
                    scenario.run_sharded(k)
                };
                // Per-shard stats cover the whole population, one entry
                // per event loop.
                assert_eq!(out.shard_stats.len(), k, "loss {loss} shards {k}");
                let total = out.engine_stats();
                assert_eq!(total.agents as usize, out.ground_truth.len());
                assert_eq!(total.scheduled, total.dispatched);
                let fp = (fingerprint(&out), total.dispatched);
                match &reference {
                    None => reference = Some(fp),
                    Some(r) => assert_eq!(
                        r, &fp,
                        "shards {k} streaming {streaming} loss {loss} diverged from serial"
                    ),
                }
            }
        }
    }
}

#[test]
fn catalog_bytes_match_pre_shard_golden_anchor() {
    // The dispatch-order re-anchor changed only cross-agent
    // interleaving; each device's own event stream — and therefore the
    // loss-free catalog, whose rows are pure per-device folds — is
    // untouched. The digest below was captured from the pre-change
    // engine. The matrix runs under both `WTR_HEAP_SCHED` settings:
    // the calendar queue (default) and the reference heap must both hit
    // the golden digest. Other tests in this binary may run while the
    // variable is set — that is fine, because calendar/heap equality is
    // exactly the property under test (same argument as the
    // `WTR_SERIAL_MERGE` knob below).
    for heap_sched in [false, true] {
        if heap_sched {
            std::env::set_var("WTR_HEAP_SCHED", "1");
        }
        let out = MnoScenario::new(scenario_config(0.0)).run_sharded(1);
        if heap_sched {
            std::env::remove_var("WTR_HEAP_SCHED");
        }
        let mut jsonl = Vec::new();
        io::write_catalog(&mut jsonl, &out.catalog).unwrap();
        assert_eq!(
            digest(&jsonl),
            OLD_CATALOG_JSONL_DIGEST,
            "heap_sched {heap_sched}"
        );
        assert_eq!(out.record_counts, OLD_RECORD_COUNTS);
        assert_eq!(out.catalog.len(), OLD_CATALOG_ROWS);
    }
}

#[test]
fn heap_and_calendar_schedulers_agree_across_shard_matrix() {
    // Stronger than the golden anchor: the *entire fingerprint* (both
    // catalog formats, ground truth, counts, element load) must be
    // byte-identical between the calendar queue and the reference heap
    // at several shard counts, with loss on — the in-process twin of the
    // CI `sim-determinism` ablation diff.
    let config = scenario_config(0.05);
    for &k in &[1usize, 3, 8] {
        let calendar = MnoScenario::new(config.clone()).run_sharded(k);
        std::env::set_var("WTR_HEAP_SCHED", "1");
        let heap = MnoScenario::new(config.clone()).run_sharded(k);
        std::env::remove_var("WTR_HEAP_SCHED");
        assert_eq!(
            fingerprint(&calendar),
            fingerprint(&heap),
            "calendar vs heap diverged at shards {k}"
        );
        assert_eq!(calendar.engine_stats(), heap.engine_stats());
    }
}

#[test]
fn tree_merge_matches_serial_left_fold() {
    // The tree-reduction merge tail must be byte-identical to the
    // serial shard-order left fold it replaced: shard probes tap
    // disjoint device populations, so `absorb` never regroups floats
    // across shards and the reduction shape cannot show through. The
    // `WTR_SERIAL_MERGE=1` knob forces the old fold; both runs below
    // use an odd shard count so the tree has an unpaired tail. Other
    // tests in this binary may run while the variable is set — that is
    // fine, because equality of the two paths is exactly the property
    // under test.
    let config = scenario_config(0.03);
    std::env::set_var("WTR_SERIAL_MERGE", "1");
    let serial = MnoScenario::new(config.clone()).run_sharded(3);
    std::env::remove_var("WTR_SERIAL_MERGE");
    let tree = MnoScenario::new(config).run_sharded(3);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&tree),
        "tree-reduction merge diverged from the serial shard fold"
    );
}

#[test]
fn dispatch_reorder_preserved_event_multiset() {
    // One-time migration check for the (time, agent, per-agent seq)
    // tie-break: replay a small fixed world and compare the *sorted*
    // serialized events against the digest captured from the old
    // engine. Equality proves the re-anchor changed interleaving only —
    // no event was created, lost, or altered. Runs under both
    // `WTR_HEAP_SCHED` settings, and additionally pins the *raw
    // emission order* of the two schedulers against each other: the
    // calendar queue must not merely preserve the multiset, it must
    // dispatch bit-identically to the heap.
    let calendar = small_world::run();
    std::env::set_var("WTR_HEAP_SCHED", "1");
    let heap = small_world::run();
    std::env::remove_var("WTR_HEAP_SCHED");
    for events in [&calendar, &heap] {
        let mut lines: Vec<String> = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect();
        lines.sort();
        assert_eq!(lines.len(), 498);
        assert_eq!(
            digest(lines.join("\n").as_bytes()),
            OLD_EVENT_MULTISET_DIGEST,
            "event multiset changed across the dispatch-order migration"
        );
    }
    let raw = |events: &[SimEvent]| {
        let lines: Vec<String> = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect();
        digest(lines.join("\n").as_bytes())
    };
    assert_eq!(
        raw(&calendar),
        raw(&heap),
        "calendar and heap schedulers emitted different event orders"
    );
}

/// The fixed 12-meter world both engine generations ran.
mod small_world {
    use where_things_roam::model::country::Country;
    use where_things_roam::model::ids::{Imei, Imsi, Plmn, Tac};
    use where_things_roam::model::rat::RatSet;
    use where_things_roam::model::time::SimTime;
    use where_things_roam::model::vertical::Vertical;
    use where_things_roam::radio::geo::CountryGeometry;
    use where_things_roam::radio::network::{CoverageFaults, RadioNetwork};
    use where_things_roam::radio::sector::GridSpacing;
    use where_things_roam::sim::device::{DeviceAgent, DeviceSpec, ItineraryLeg, PresenceModel};
    use where_things_roam::sim::engine::Engine;
    use where_things_roam::sim::events::SimEvent;
    use where_things_roam::sim::mobility::MobilityModel;
    use where_things_roam::sim::traffic::TrafficProfile;
    use where_things_roam::sim::world::{AllowAllPolicy, NetworkDirectory, RoamingWorld, VecSink};

    const MNO: Plmn = Plmn::of(234, 30);
    const OTHER: Plmn = Plmn::of(234, 10);

    fn uk_geom() -> CountryGeometry {
        CountryGeometry::of(Country::by_iso("GB").unwrap())
    }

    fn directory() -> NetworkDirectory {
        let mut dir = NetworkDirectory::new();
        for plmn in [MNO, OTHER] {
            dir.add(
                "GB",
                RadioNetwork::new(
                    plmn,
                    RatSet::CONVENTIONAL,
                    uk_geom(),
                    GridSpacing::default(),
                    CoverageFaults::NONE,
                ),
            );
        }
        dir
    }

    fn meter_spec(index: u64) -> DeviceSpec {
        DeviceSpec {
            index,
            imsi: Imsi::new(Plmn::of(204, 4), index).unwrap(),
            imei: Imei::new(Tac::new(35_000_000).unwrap(), index as u32 % 1_000_000).unwrap(),
            vertical: Vertical::SmartMeter,
            radio_caps: RatSet::G2_ONLY,
            apns: vec!["smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap()],
            data_enabled: true,
            voice_enabled: false,
            traffic: TrafficProfile::for_vertical(Vertical::SmartMeter),
            presence: PresenceModel::always(7),
            itinerary: vec![ItineraryLeg {
                from_day: 0,
                country_iso: "GB".into(),
                mobility: MobilityModel::stationary_in(&uk_geom(), index),
            }],
            switch_propensity: 0.0,
            event_failure_prob: 0.0,
            sticky_failure: None,
        }
    }

    pub fn run() -> Vec<SimEvent> {
        let world = RoamingWorld::new(
            directory(),
            Box::new(AllowAllPolicy),
            VecSink::default(),
            99,
        );
        let mut engine = Engine::new(world, SimTime::from_secs(5 * 86_400));
        for i in 0..12u64 {
            engine.add_agent(DeviceAgent::new(meter_spec(i + 1), 99));
        }
        engine.run().sink.events
    }
}

// ---------------------------------------------------------------------
// Merge algebra proptests.
// ---------------------------------------------------------------------

const MNO: Plmn = well_known::UK_STUDIED_MNO;
const NL: Plmn = well_known::NL_SMART_METER_HMNO;

fn home_network() -> RadioNetwork {
    RadioNetwork::new(
        MNO,
        RatSet::CONVENTIONAL,
        CountryGeometry::of(Country::by_iso("GB").unwrap()),
        GridSpacing::default(),
        CoverageFaults::NONE,
    )
}

fn probe_proto() -> MnoProbe {
    MnoProbe::new(
        MNO,
        OperatorRegistry::standard(3),
        home_network(),
        AnonKey::FIXED,
        5,
    )
}

/// Builds one synthetic probe event from a proptest row. `seq` is the
/// device's own event counter, so times are strictly increasing within
/// each device regardless of the global interleaving.
fn build_event(net: &RadioNetwork, device: u8, day: u8, hour: u8, kind: u8, seq: u64) -> SimEvent {
    let device = u64::from(device);
    let time =
        SimTime::from_secs(u64::from(day) * 86_400 + u64::from(hour) * 3_600 + (seq * 7) % 3_600);
    // Alternate native and inbound SIMs so both HH and IH rows appear.
    let imsi = if device % 2 == 0 {
        Imsi::new(MNO, 1_000 + device).unwrap()
    } else {
        Imsi::new(NL, 5_000_000_000 + device).unwrap()
    };
    let imei = Imei::new(Tac::new(35_000_000).unwrap(), device as u32).unwrap();
    let rat = if kind % 2 == 0 { Rat::G2 } else { Rat::G4 };
    let sector = net
        .grid()
        .sector_at(GeoPoint::new(51.0 + f64::from(kind % 5) * 0.4, -1.0), rat);
    match kind % 3 {
        0 => SimEvent::Signaling(SignalingEvent {
            time,
            device,
            imsi,
            imei,
            visited: MNO,
            sector: Some(sector),
            rat,
            procedure: if kind % 4 == 0 {
                ProcedureType::Attach
            } else {
                ProcedureType::Authentication
            },
            result: if kind % 5 == 0 {
                ProcedureResult::RoamingNotAllowed
            } else {
                ProcedureResult::Ok
            },
        }),
        1 => SimEvent::Data(DataSession {
            time,
            device,
            imsi,
            imei,
            visited: MNO,
            sector,
            rat,
            apn: if device % 2 == 0 {
                "internet.albion.gb".parse().unwrap()
            } else {
                "smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap()
            },
            duration_secs: 30,
            bytes_up: 500 + u64::from(kind) * 10,
            bytes_down: 100,
        }),
        _ => SimEvent::Voice(VoiceCall {
            time,
            device,
            imsi,
            imei,
            visited: MNO,
            sector,
            rat,
            kind: if kind % 2 == 0 {
                where_things_roam::sim::events::VoiceKind::SmsLike
            } else {
                where_things_roam::sim::events::VoiceKind::Call
            },
            duration_secs: u32::from(kind) * 3,
        }),
    }
}

/// Canonicalized probe state flattened to bytes for comparison.
fn probe_fingerprint(mut probe: MnoProbe) -> Vec<u8> {
    probe.canonicalize();
    let mut bytes = Vec::new();
    bytes.extend(
        format!(
            "{} {} {}\n",
            probe.radio_event_count(),
            probe.cdr_count(),
            probe.xdr_count()
        )
        .into_bytes(),
    );
    bytes.extend(
        serde_json::to_string(&probe.element_load().to_vec())
            .unwrap()
            .into_bytes(),
    );
    io::write_catalog(&mut bytes, &probe.into_catalog()).unwrap();
    bytes
}

proptest! {
    /// `absorb` over any device partition == the serial fold: the
    /// algebra the sharded scenario runners rest on.
    #[test]
    fn absorb_of_device_partition_equals_serial_fold(
        rows in prop::collection::vec((0u8..10, 0u8..5, 0u8..24, 0u8..30), 1..120),
        parts in 2usize..5,
    ) {
        let net = home_network();
        // Per-device sequence counters give each device a well-ordered
        // private stream, like the engine does.
        let mut seq = [0u64; 10];
        let events: Vec<SimEvent> = rows
            .iter()
            .map(|&(device, day, hour, kind)| {
                let s = seq[device as usize];
                seq[device as usize] += 1;
                build_event(&net, device, day, hour, kind, s)
            })
            .collect();

        // Serial fold: one probe sees everything in order.
        let proto = probe_proto();
        let mut serial = proto.fork_empty();
        for e in &events {
            serial.on_event(e);
        }

        // Sharded fold: partition devices into `parts` groups (shard =
        // device % parts), feed each group's events in their original
        // relative order, then absorb the shard probes left-to-right.
        let mut shards: Vec<MnoProbe> = (0..parts).map(|_| proto.fork_empty()).collect();
        for e in &events {
            shards[(e.device() % parts as u64) as usize].on_event(e);
        }
        let mut merged = shards.remove(0);
        for shard in shards {
            merged.absorb(shard);
        }

        prop_assert_eq!(probe_fingerprint(serial), probe_fingerprint(merged));
    }

    /// The LossySink drop coin is a pure function of (salt, device,
    /// per-device seq): the set of surviving records cannot depend on
    /// how devices are partitioned into shards.
    #[test]
    fn lossy_drop_set_is_shard_partition_invariant(
        lengths in prop::collection::vec(0usize..60, 1..9),
        fraction in 0.0f64..1.001,
        salt in any::<u64>(),
        parts in 1usize..9,
    ) {
        let event = |device: u64, k: u64| {
            SimEvent::Signaling(SignalingEvent {
                time: SimTime::from_secs(k * 60),
                device,
                imsi: Imsi::new(NL, 5_000_000_000 + device).unwrap(),
                imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
                visited: MNO,
                sector: None,
                rat: Rat::G4,
                procedure: ProcedureType::Authentication,
                result: ProcedureResult::Ok,
            })
        };
        let survivors = |sink: &LossySink<VecSink>| -> std::collections::BTreeSet<(u64, u64)> {
            sink.inner()
                .events
                .iter()
                .map(|e| (e.device(), e.time().as_secs()))
                .collect()
        };

        // One global sink over a round-robin interleave of all devices.
        let mut global = LossySink::new(VecSink::default(), fraction, salt);
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        for k in 0..max_len as u64 {
            for (device, &len) in lengths.iter().enumerate() {
                if (k as usize) < len {
                    global.on_event(&event(device as u64, k));
                }
            }
        }

        // Shard-local sinks over a device partition.
        let mut shard_sinks: Vec<LossySink<VecSink>> = (0..parts)
            .map(|_| LossySink::new(VecSink::default(), fraction, salt))
            .collect();
        for (device, &len) in lengths.iter().enumerate() {
            let sink = &mut shard_sinks[device % parts];
            for k in 0..len as u64 {
                sink.on_event(&event(device as u64, k));
            }
        }
        let mut sharded = std::collections::BTreeSet::new();
        let (mut seen, mut dropped) = (0u64, 0u64);
        for sink in &shard_sinks {
            sharded.extend(survivors(sink));
            seen += sink.seen();
            dropped += sink.dropped();
        }

        prop_assert_eq!(survivors(&global), sharded);
        prop_assert_eq!(global.seen(), seen);
        prop_assert_eq!(global.dropped(), dropped);
    }
}
