//! The `wtr_serve` determinism contract (PR-10): HTTP reports over
//! incrementally ingested, arbitrarily partitioned record streams are
//! byte-identical to batch `wtr analyze --stream` over the same rows.
//!
//! * N concurrent taps, in-order or shuffled-within-watermark, any
//!   arrival interleaving → every report table matches the batch
//!   renderer byte for byte.
//! * The response cache is generation-keyed: an absorb bumps the
//!   generation and invalidates exactly the stale renders.
//! * Watermark-0 sealing: old days seal into the archive, stragglers
//!   absorb past the watermark, and reports still cover every row.
//! * Hostile bodies (the decode-hardening shapes) bounce with the
//!   scanner's line-numbered error and leave tenant state untouched.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use where_things_roam::core::report::{render_analysis, render_classify, ANALYSES};
use where_things_roam::core::stream::{analyze, stream_catalog};
use where_things_roam::model::tacdb::TacDatabase;
use where_things_roam::probes::catalog::DevicesCatalog;
use where_things_roam::probes::io::write_catalog;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};
use where_things_roam::serve::{Server, ServerConfig, TABLES};

/// Deterministic fixture: a simulated multi-day catalog with APNs,
/// NB-IoT meters and enough devices to populate every report table.
fn fixture() -> DevicesCatalog {
    MnoScenario::new(MnoScenarioConfig {
        devices: 400,
        days: 8,
        seed: 7,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run()
    .catalog
}

fn catalog_bytes(catalog: &DevicesCatalog) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_catalog(&mut bytes, catalog).unwrap();
    bytes
}

/// The batch-side reference: what `wtr analyze --stream <table>` (and
/// `wtr classify`) print over the fixture file, keyed like [`TABLES`].
fn batch_reference(catalog: &DevicesCatalog) -> BTreeMap<&'static str, String> {
    let data = stream_catalog(&catalog_bytes(catalog)[..]).unwrap();
    let tacdb = TacDatabase::standard();
    let suite = analyze(&data.summaries, &data.apns, data.window_days, &tacdb);
    let mut tables = BTreeMap::new();
    for name in ANALYSES {
        // The CLI prints each table plus one blank separator line.
        let mut body = render_analysis(name, &data, &suite).unwrap();
        body.push('\n');
        tables.insert(name, body);
    }
    tables.insert(
        "classify",
        render_classify("full", data.summaries.len(), &suite.classification),
    );
    tables.insert(
        "summary",
        format!(
            "rows: {}\ndevices: {}\nwindow_days: {}\n",
            data.rows,
            data.summaries.len(),
            data.window_days
        ),
    );
    tables
}

/// splitmix64 — the keyed shuffle `wtr catalog-split` uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Row-partitions `catalog` into `parts` valid upload bodies. With
/// `shuffle`, rows are dealt in keyed-shuffled order (the
/// within-watermark arrival disorder the contract must absorb).
fn partition(catalog: &DevicesCatalog, parts: usize, shuffle: Option<u64>) -> Vec<Vec<u8>> {
    let rows: Vec<_> = catalog.iter().collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if let Some(seed) = shuffle {
        let mut state = seed;
        for i in (1..order.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
    }
    (0..parts)
        .map(|part| {
            let mut part_catalog = DevicesCatalog::new(catalog.window_days());
            for &idx in order.iter().skip(part).step_by(parts) {
                part_catalog.adopt_entry(rows[idx].clone(), catalog.apn_table());
            }
            catalog_bytes(&part_catalog)
        })
        .collect()
}

/// Day-partitions `catalog` at the given day boundaries (ranges are
/// `[lo, hi)`), for the watermark/sealing scenarios.
fn partition_by_days(catalog: &DevicesCatalog, ranges: &[(u32, u32)]) -> Vec<Vec<u8>> {
    ranges
        .iter()
        .map(|&(lo, hi)| {
            let mut part = DevicesCatalog::new(catalog.window_days());
            for row in catalog.iter().filter(|r| r.day.0 >= lo && r.day.0 < hi) {
                part.adopt_entry(row.clone(), catalog.apn_table());
            }
            catalog_bytes(&part)
        })
        .collect()
}

/// A parsed HTTP response: status, lower-cased headers, body.
struct HttpReply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
}

impl HttpReply {
    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap()
    }

    fn generation(&self) -> u64 {
        self.headers["x-wtr-generation"].parse().unwrap()
    }
}

/// One raw HTTP/1.1 exchange against the in-process server.
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> HttpReply {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream);
    let mut frame = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    frame.extend_from_slice(body);
    reader.get_mut().write_all(&frame).unwrap();
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
    }
    let length: usize = headers["content-length"].parse().unwrap();
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).unwrap();
    HttpReply {
        status,
        headers,
        body,
    }
}

/// Binds a throwaway server, runs `scenario` against it, then shuts it
/// down cleanly and propagates panics from the run thread.
fn with_server(watermark_secs: u64, scenario: impl FnOnce(SocketAddr)) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        watermark_secs,
        max_body_bytes: 16 * 1024 * 1024,
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = thread::spawn(move || server.run().unwrap());
    scenario(addr);
    handle.shutdown();
    runner.join().unwrap();
}

/// Asserts every served table matches the batch reference byte for
/// byte, and returns the generation the reports were rendered at.
fn assert_reports_match(
    addr: SocketAddr,
    tenant: &str,
    reference: &BTreeMap<&'static str, String>,
) -> u64 {
    let mut generation = None;
    for table in TABLES {
        let reply = request(addr, "GET", &format!("/report/{tenant}/{table}"), &[]);
        assert_eq!(reply.status, 200, "{table}: {}", reply.body_str());
        assert_eq!(
            reply.body_str(),
            reference[table],
            "table {table} diverged from batch output"
        );
        generation = Some(reply.generation());
    }
    generation.unwrap()
}

#[test]
fn concurrent_taps_match_batch_reports_in_any_order() {
    let catalog = fixture();
    let reference = batch_reference(&catalog);
    // Watermark far wider than the window: nothing seals, every row is
    // within-watermark disorder the contract must erase.
    with_server(100 * 86_400, |addr| {
        for (tenant, shuffle) in [("inorder", None), ("shuffled", Some(0xC0FFEE))] {
            let parts = partition(&catalog, 4, shuffle);
            let taps: Vec<_> = parts
                .into_iter()
                .map(|body| {
                    let tenant = tenant.to_owned();
                    thread::spawn(move || {
                        let reply = request(addr, "POST", &format!("/ingest/{tenant}"), &body);
                        assert_eq!(reply.status, 200, "{}", reply.body_str());
                    })
                })
                .collect();
            for tap in taps {
                tap.join().unwrap();
            }
            assert_reports_match(addr, tenant, &reference);
        }
    });
}

#[test]
fn absorb_invalidates_generation_keyed_cache() {
    let catalog = fixture();
    let reference = batch_reference(&catalog);
    let parts = partition(&catalog, 2, Some(99));
    with_server(100 * 86_400, |addr| {
        let reply = request(addr, "POST", "/ingest/t", &parts[0]);
        assert_eq!(reply.status, 200);
        let first = request(addr, "GET", "/report/t/classes", &[]);
        assert_eq!(first.status, 200);
        assert_eq!(first.generation(), 1);
        // Warm cache: identical generation, identical bytes.
        let warm = request(addr, "GET", "/report/t/classes", &[]);
        assert_eq!(warm.generation(), 1);
        assert_eq!(warm.body, first.body);
        // Absorb the second half: generation moves, reports re-render.
        let reply = request(addr, "POST", "/ingest/t", &parts[1]);
        assert_eq!(reply.status, 200);
        let fresh = request(addr, "GET", "/report/t/classes", &[]);
        assert_eq!(fresh.generation(), 2);
        assert_eq!(fresh.body_str(), reference["classes"]);
        assert_reports_match(addr, "t", &reference);
    });
}

#[test]
fn watermark_zero_seals_days_and_absorbs_stragglers() {
    let catalog = fixture();
    let reference = batch_reference(&catalog);
    // Early days, then a jump to the newest days (sealing everything
    // older under watermark 0), then mid-window stragglers that arrive
    // past the watermark and absorb straight into the archive.
    let parts = partition_by_days(&catalog, &[(0, 3), (5, 9), (3, 5)]);
    with_server(0, |addr| {
        for body in &parts {
            let reply = request(addr, "POST", "/ingest/t", body);
            assert_eq!(reply.status, 200, "{}", reply.body_str());
        }
        assert_reports_match(addr, "t", &reference);
    });
}

#[test]
fn hostile_bodies_bounce_without_state_change() {
    let catalog = fixture();
    let part = catalog_bytes(&catalog);
    with_server(100 * 86_400, |addr| {
        let reply = request(addr, "POST", "/ingest/t", &part);
        assert_eq!(reply.status, 200);
        let generation_before = request(addr, "GET", "/report/t/summary", &[]).generation();

        // The decode-hardening shapes, aimed at the ingest endpoint.
        let garbage_row = b"{\"format\":\"wtr-catalog\",\"window_days\":5,\"rows\":1}\n{nope\n";
        let reply = request(addr, "POST", "/ingest/t", garbage_row);
        assert_eq!(reply.status, 400);
        assert!(
            reply.body_str().contains("line 2"),
            "error must carry the scanner's line number: {}",
            reply.body_str()
        );

        let bad_header = b"{\"format\":\"not-a-catalog\"}\n";
        assert_eq!(request(addr, "POST", "/ingest/t", bad_header).status, 400);

        // Declared row count vs actual rows mismatch.
        let mut truncated = catalog_bytes(&catalog);
        let cut = truncated.len() - 1;
        let cut = truncated[..cut].iter().rposition(|&b| b == b'\n').unwrap();
        truncated.truncate(cut + 1);
        assert_eq!(request(addr, "POST", "/ingest/t", &truncated).status, 400);

        // WTRCAT magic with hostile bytes behind it.
        let fake_wtrcat = b"WTRCAT\x01\xff\xff\xff\xff\xff\xff\xff\xff";
        assert_eq!(request(addr, "POST", "/ingest/t", fake_wtrcat).status, 400);

        // None of it moved the books.
        let after = request(addr, "GET", "/report/t/summary", &[]);
        assert_eq!(after.generation(), generation_before);

        // Routing errors.
        assert_eq!(
            request(addr, "GET", "/report/ghost/labels", &[]).status,
            404
        );
        assert_eq!(request(addr, "GET", "/report/t/nope", &[]).status, 404);
        assert_eq!(request(addr, "PUT", "/report/t/labels", &[]).status, 405);
        assert_eq!(request(addr, "GET", "/ingest/t", &[]).status, 405);
        assert_eq!(request(addr, "POST", "/ingest/bad%name", &part).status, 400);
    });
}

#[test]
fn oversized_bodies_are_refused_with_413() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        max_body_bytes: 512,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = thread::spawn(move || server.run().unwrap());
    let big = vec![b'x'; 4096];
    let reply = request(addr, "POST", "/ingest/t", &big);
    assert_eq!(reply.status, 413);
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn config_validation_rejects_zero_workers() {
    let bad = ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    };
    assert!(bad.validate().is_err());
    assert!(Server::bind(bad).is_err());
    let bad = ServerConfig {
        max_body_bytes: 0,
        ..ServerConfig::default()
    };
    assert!(bad.validate().is_err());
}

#[test]
fn shutdown_endpoint_seals_and_stops() {
    let catalog = fixture();
    let parts = partition_by_days(&catalog, &[(0, 9)]);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let runner = thread::spawn(move || server.run().unwrap());
    assert_eq!(request(addr, "POST", "/ingest/t", &parts[0]).status, 200);
    let reply = request(addr, "POST", "/shutdown", &[]);
    assert_eq!(reply.status, 200);
    // run() returns Ok: the accept loop exited cleanly and sealed.
    runner.join().unwrap();
}

/// Readers hammering one tenant while taps flood another: reports must
/// stay correct and the server must not deadlock — the cheap stand-in
/// for the latency bench's cross-tenant pressure scenario.
#[test]
fn readers_never_block_ingest_across_tenants() {
    let catalog = fixture();
    let reference = Arc::new(batch_reference(&catalog));
    let warm = catalog_bytes(&catalog);
    let flood = partition(&catalog, 8, Some(5));
    with_server(100 * 86_400, |addr| {
        assert_eq!(request(addr, "POST", "/ingest/warm", &warm).status, 200);
        // Prime the cache once, then race readers against ingest.
        assert_eq!(request(addr, "GET", "/report/warm/labels", &[]).status, 200);
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reference = Arc::clone(&reference);
                thread::spawn(move || {
                    for _ in 0..20 {
                        let reply = request(addr, "GET", "/report/warm/labels", &[]);
                        assert_eq!(reply.status, 200);
                        assert_eq!(reply.body_str(), reference["labels"]);
                    }
                })
            })
            .collect();
        for body in &flood {
            assert_eq!(request(addr, "POST", "/ingest/flooded", body).status, 200);
        }
        for reader in readers {
            reader.join().unwrap();
        }
        assert_reports_match(addr, "flooded", &reference);
    });
}
