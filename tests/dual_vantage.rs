//! Dual-vantage integration: the paper's two datasets observe the *same*
//! ecosystem from different points. "We analyze two real-world datasets
//! from an operational world-wide M2M platform and from an European MNO
//! that hosts (i.e., as a VMNO) many devices whose connectivity is
//! provided by the global M2M platform" (§2.3).
//!
//! This test wires one simulation into *both* probes through a
//! [`TeeSink`]: a platform-issued connected car roaming in the UK must
//! surface in the HMNO-side transaction log *and* in the visited MNO's
//! devices-catalog — with consistent facts on each side.

use where_things_roam::model::country::Country;
use where_things_roam::model::hash::{anonymize_u64, AnonKey};
use where_things_roam::model::ids::{Imei, Tac};
use where_things_roam::model::operators::{well_known, OperatorRegistry};
use where_things_roam::model::rat::RatSet;
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::model::time::SimTime;
use where_things_roam::model::vertical::Vertical;
use where_things_roam::platform::M2mPlatform;
use where_things_roam::probes::{M2mProbe, MnoProbe};
use where_things_roam::radio::geo::CountryGeometry;
use where_things_roam::radio::network::{CoverageFaults, RadioNetwork};
use where_things_roam::radio::sector::GridSpacing;
use where_things_roam::scenarios::Universe;
use where_things_roam::sim::device::{DeviceAgent, DeviceSpec, ItineraryLeg, PresenceModel};
use where_things_roam::sim::engine::Engine;
use where_things_roam::sim::mobility::MobilityModel;
use where_things_roam::sim::traffic::TrafficProfile;
use where_things_roam::sim::world::{RoamingWorld, TeeSink};

#[test]
fn platform_device_visible_from_both_vantage_points() {
    let universe = Universe::standard(CoverageFaults::NONE);
    let mut platform = universe.platform.clone();
    let provision = platform.provision(well_known::DE_HMNO).expect("member");

    // A German connected car spending the window in the UK on 4G.
    let gb = CountryGeometry::of(Country::by_iso("GB").unwrap());
    let spec = DeviceSpec {
        index: 0,
        imsi: provision.imsi,
        imei: Imei::new(Tac::new(35_000_002).unwrap(), 1).unwrap(),
        vertical: Vertical::ConnectedCar,
        radio_caps: RatSet::CONVENTIONAL,
        apns: vec!["fleet.connectedcar.de.mnc002.mcc262.gprs".parse().unwrap()],
        data_enabled: true,
        voice_enabled: false,
        traffic: TrafficProfile::for_vertical(Vertical::ConnectedCar),
        presence: PresenceModel::always(5),
        itinerary: vec![ItineraryLeg {
            from_day: 0,
            country_iso: "GB".into(),
            mobility: MobilityModel::Waypoint {
                geometry: gb,
                leg_hours: 3,
                seed: 1,
            },
        }],
        switch_propensity: 0.0,
        event_failure_prob: 0.0,
        sticky_failure: None,
    };

    // Both probes tap the same event stream.
    let m2m_probe = M2mProbe::new(
        vec![M2mPlatform::m2m_range(well_known::DE_HMNO)],
        AnonKey::FIXED,
    );
    let home_network = RadioNetwork::new(
        well_known::UK_STUDIED_MNO,
        RatSet::CONVENTIONAL,
        gb,
        GridSpacing::default(),
        CoverageFaults::NONE,
    );
    let mno_probe = MnoProbe::new(
        well_known::UK_STUDIED_MNO,
        OperatorRegistry::standard(3),
        home_network,
        AnonKey::FIXED,
        5,
    );
    let tee = TeeSink {
        a: m2m_probe,
        b: mno_probe,
    };
    let world = RoamingWorld::new(universe.directory, Box::new(universe.policy), tee, 7);
    let mut engine = Engine::new(world, SimTime::from_secs(5 * 86_400));
    let anon = anonymize_u64(AnonKey::FIXED, spec.imsi.packed());
    engine.add_agent(DeviceAgent::new(spec, 7));
    let world = engine.run();
    let m2m_probe = world.sink.a;
    let mno_probe = world.sink.b;

    // HMNO-side: the platform probe captured the car's 4G signaling, all
    // of it while visiting the studied UK network.
    assert!(
        !m2m_probe.transactions.is_empty(),
        "platform probe saw nothing"
    );
    for t in &m2m_probe.transactions {
        assert_eq!(t.device, anon, "one device only");
        assert_eq!(t.sim_plmn, well_known::DE_HMNO);
        assert_eq!(t.visited_plmn, well_known::UK_STUDIED_MNO);
    }

    // VMNO-side: the same (identically anonymized) device shows up in the
    // devices-catalog as an international inbound roamer with the
    // automotive APN.
    let catalog = mno_probe.into_catalog();
    assert!(catalog.device_count() == 1, "{}", catalog.device_count());
    let rows: Vec<_> = catalog.iter().collect();
    assert!(rows.iter().all(|r| r.user == anon));
    assert!(rows.iter().all(|r| r.label == RoamingLabel::IH));
    assert!(rows.iter().any(|r| r
        .apns
        .iter()
        .any(|&a| catalog.apn_str(a).contains("connectedcar"))));

    // Cross-vantage consistency: the MNO sees *more* events than the
    // platform (local RAUs and data never reach the HMNO probe).
    let mno_events: u64 = rows.iter().map(|r| r.events).sum();
    assert!(
        mno_events >= m2m_probe.transactions.len() as u64,
        "MNO {} < platform {}",
        mno_events,
        m2m_probe.transactions.len()
    );
}
