//! Property-based tests (proptest) over the core data structures and
//! invariants: identifier codecs, the wire format, CDF/cross-tab algebra,
//! mobility accumulators and roaming-label derivation.

use proptest::prelude::*;
use where_things_roam::core::metrics::{shares, CrossTab, Ecdf};
use where_things_roam::model::apn::Apn;
use where_things_roam::model::hash::{anonymize_u64, mix64, AnonKey};
use where_things_roam::model::ids::{Imei, Imsi, Mcc, Mnc, Plmn, Tac};
use where_things_roam::model::intern::ApnTable;
use where_things_roam::model::operators::OperatorRegistry;
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::model::time::SimTime;
use where_things_roam::probes::catalog::MobilityAccum;
use where_things_roam::probes::records::{M2mMessageType, M2mTransaction};
use where_things_roam::probes::wire;
use where_things_roam::radio::geo::{radius_of_gyration_km, GeoPoint};
use where_things_roam::sim::events::ProcedureResult;

fn arb_plmn() -> impl Strategy<Value = Plmn> {
    (200u16..=799, 0u16..=999, prop::bool::ANY).prop_map(|(mcc, mnc, wide)| {
        let mcc = Mcc::new(mcc).unwrap();
        let mnc = if wide {
            Mnc::new3(mnc).unwrap()
        } else {
            Mnc::new2(mnc % 100).unwrap()
        };
        Plmn::new(mcc, mnc)
    })
}

fn arb_transaction() -> impl Strategy<Value = M2mTransaction> {
    (
        prop::num::u64::ANY,
        0u64..2_000_000,
        arb_plmn(),
        arb_plmn(),
        0u8..3,
        0u8..5,
    )
        .prop_map(|(device, secs, sim, visited, msg, res)| M2mTransaction {
            device,
            time: SimTime::from_secs(secs),
            sim_plmn: sim,
            visited_plmn: visited,
            message: match msg {
                0 => M2mMessageType::Authentication,
                1 => M2mMessageType::UpdateLocation,
                _ => M2mMessageType::CancelLocation,
            },
            result: match res {
                0 => ProcedureResult::Ok,
                1 => ProcedureResult::RoamingNotAllowed,
                2 => ProcedureResult::UnknownSubscription,
                3 => ProcedureResult::FeatureUnsupported,
                _ => ProcedureResult::NetworkFailure,
            },
        })
}

proptest! {
    #[test]
    fn plmn_display_parse_roundtrip(plmn in arb_plmn()) {
        let s = plmn.to_string();
        let back: Plmn = s.parse().unwrap();
        prop_assert_eq!(back, plmn);
    }

    #[test]
    fn plmn_packed_is_injective(a in arb_plmn(), b in arb_plmn()) {
        if a != b {
            prop_assert_ne!(a.packed(), b.packed());
        }
    }

    #[test]
    fn imsi_roundtrip(mcc in 200u16..=799, mnc in 0u16..=99, msin in 0u64..10_000_000_000) {
        let plmn = Plmn::new(Mcc::new(mcc).unwrap(), Mnc::new2(mnc).unwrap());
        let imsi = Imsi::new(plmn, msin).unwrap();
        let back: Imsi = imsi.to_string().parse().unwrap();
        prop_assert_eq!(back, imsi);
    }

    #[test]
    fn imei_check_digit_roundtrip(tac in 0u32..=99_999_999, snr in 0u32..=999_999) {
        let imei = Imei::new(Tac::new(tac).unwrap(), snr).unwrap();
        let s = imei.to_string();
        prop_assert_eq!(s.len(), 15);
        let back: Imei = s.parse().unwrap();
        prop_assert_eq!(back, imei);
        // Corrupting the check digit must fail parsing.
        let mut bytes = s.into_bytes();
        let last = bytes[14] - b'0';
        bytes[14] = b'0' + ((last + 1) % 10);
        let corrupted = String::from_utf8(bytes).unwrap();
        prop_assert!(corrupted.parse::<Imei>().is_err());
    }

    #[test]
    fn apn_roundtrip(labels in prop::collection::vec("[a-z][a-z0-9-]{0,8}", 1..4), has_oi in prop::bool::ANY, plmn in arb_plmn()) {
        let ni = labels.join(".");
        prop_assume!(!ni.ends_with("gprs"));
        // `Apn::new` canonicalizes the operator MNC itself (the OI wire
        // form always writes 3 digits, so digit count carries no
        // information there), making construction/parse a true roundtrip
        // for ANY valid PLMN. The historical failure (3-digit MNC ≤ 99,
        // e.g. 200-000) stays pinned in the checked-in regression file.
        let apn = Apn::new(&ni, has_oi.then_some(plmn)).unwrap();
        let back: Apn = apn.to_string().parse().unwrap();
        prop_assert_eq!(back, apn);
    }

    #[test]
    fn wire_roundtrip(txs in prop::collection::vec(arb_transaction(), 0..200)) {
        let encoded = wire::encode_log(&txs);
        let decoded = wire::decode_log(encoded).unwrap();
        prop_assert_eq!(decoded, txs);
    }

    #[test]
    fn anonymization_is_stable_and_keyed(value in prop::num::u64::ANY, k1 in prop::num::u64::ANY, k2 in prop::num::u64::ANY) {
        prop_assert_eq!(anonymize_u64(AnonKey(k1), value), anonymize_u64(AnonKey(k1), value));
        if k1 != k2 {
            // Not a guarantee for a 64-bit digest, but a collision here is
            // astronomically unlikely; treat as a bug if it fires.
            prop_assert_ne!(anonymize_u64(AnonKey(k1), value), anonymize_u64(AnonKey(k2), value));
        }
    }

    #[test]
    fn mix64_is_injective_on_pairs(a in prop::num::u64::ANY, b in prop::num::u64::ANY) {
        if a != b {
            prop_assert_ne!(mix64(a), mix64(b));
        }
    }

    #[test]
    fn ecdf_quantiles_monotone(mut xs in prop::collection::vec(-1e12f64..1e12, 1..300)) {
        let e = Ecdf::new(xs.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = e.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev);
            prev = q;
        }
        xs.sort_by(f64::total_cmp);
        prop_assert_eq!(e.min().unwrap(), xs[0]);
        prop_assert_eq!(e.max().unwrap(), *xs.last().unwrap());
    }

    #[test]
    fn ecdf_fraction_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..200), probe in -2e6f64..2e6) {
        let e = Ecdf::new(xs);
        let f = e.fraction_at_or_below(probe);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn crosstab_shares_normalize(cells in prop::collection::vec(("[a-c]", "[x-z]", 0.0f64..100.0), 1..30)) {
        let mut t = CrossTab::new();
        for (r, c, w) in &cells {
            t.add(r, c, *w);
        }
        for r in t.rows() {
            if t.row_total(&r) > 0.0 {
                let sum: f64 = t.cols().iter().map(|c| t.row_share(&r, c)).sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shares_always_normalized(counts in prop::collection::vec(("[a-e]{1,3}", 0.0f64..1e6), 1..20)) {
        let rows = shares(counts);
        let total: f64 = rows.iter().map(|(_, _, f)| f).sum();
        // Total share is 1 unless all counts were zero.
        prop_assert!(total < 1.0 + 1e-9);
        // Sorted descending by count.
        for w in rows.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn mobility_accum_matches_exact_gyration(
        pts in prop::collection::vec((50.0f64..54.0, -3.0f64..1.0, 0.1f64..10.0), 1..40)
    ) {
        // The O(1) accumulator must agree with the exact two-pass
        // computation within the small-angle error budget.
        let mut acc = MobilityAccum::default();
        let weighted: Vec<(GeoPoint, f64)> = pts
            .iter()
            .map(|(lat, lon, w)| (GeoPoint::new(*lat, *lon), *w))
            .collect();
        for (p, w) in &weighted {
            acc.add(*p, *w);
        }
        let exact = radius_of_gyration_km(&weighted).unwrap();
        let approx = acc.gyration_km().unwrap();
        let tolerance = (exact * 0.05).max(0.5);
        prop_assert!((exact - approx).abs() < tolerance, "exact {} vs approx {}", exact, approx);
    }

    #[test]
    fn intern_table_is_deterministic_and_order_insensitive(
        strings in prop::collection::vec("[a-z]{1,10}(\\.[a-z0-9]{1,8}){0,2}", 0..40),
        rot in 0usize..40,
    ) {
        // Interning assigns symbols by first occurrence: re-interning
        // returns the same symbol, and resolution is the identity.
        let mut table = ApnTable::new();
        for s in &strings {
            let sym = table.intern(s);
            prop_assert_eq!(table.intern(s), sym);
            prop_assert_eq!(table.resolve(sym), s.as_str());
        }
        // A table built from any rotation of the input canonicalizes to
        // the same sorted table — symbols depend on *content*, never on
        // ingest order (and never on hash order; there is no hashing).
        let mut rotated = strings.clone();
        if !rotated.is_empty() {
            let k = rot % rotated.len();
            rotated.rotate_left(k);
        }
        let mut other = ApnTable::new();
        for s in &rotated {
            other.intern(s);
        }
        let (canon_a, remap_a) = table.canonicalized();
        let (canon_b, _) = other.canonicalized();
        prop_assert_eq!(&canon_a, &canon_b);
        prop_assert!(canon_a.is_canonical());
        // The remap preserves string identity.
        for (sym, s) in table.iter() {
            prop_assert_eq!(canon_a.resolve(remap_a[sym.index()]), s);
        }
        // Serialized canonical tables are byte-identical.
        prop_assert_eq!(
            serde_json::to_string(&canon_a).unwrap(),
            serde_json::to_string(&canon_b).unwrap()
        );
    }

    #[test]
    fn intern_absorb_reproduces_serial_fold(
        left in prop::collection::vec("[a-z]{1,8}", 0..20),
        right in prop::collection::vec("[a-z]{1,8}", 0..20),
    ) {
        // Chunk-local tables absorbed left-to-right reproduce the serial
        // first-occurrence assignment exactly (the parallel-ingest rule).
        let mut serial = ApnTable::new();
        for s in left.iter().chain(right.iter()) {
            serial.intern(s);
        }
        let mut a = ApnTable::new();
        for s in &left {
            a.intern(s);
        }
        let mut b = ApnTable::new();
        for s in &right {
            b.intern(s);
        }
        let remap = a.absorb(&b);
        prop_assert_eq!(&a, &serial);
        for (sym, s) in b.iter() {
            prop_assert_eq!(a.resolve(remap[sym.index()]), s);
        }
    }

    #[test]
    fn roaming_label_total_function(sim in arb_plmn(), visited in arb_plmn()) {
        // derive() never panics, and when it returns a label the
        // invariants hold.
        let registry = OperatorRegistry::standard(2);
        let studied = where_things_roam::model::operators::well_known::UK_STUDIED_MNO;
        if let Some(label) = RoamingLabel::derive(studied, &registry, sim, visited) {
            if visited == studied {
                prop_assert!(!label.is_outbound_roamer());
            } else {
                prop_assert!(label.is_outbound_roamer());
            }
        } else {
            // Unobservable: foreign SIM not attached to us.
            prop_assert_ne!(visited, studied);
        }
    }
}
