//! Determinism matrix for the parallel pipeline (`wtr_sim::par`).
//!
//! The contract: every parallelized stage — catalog aggregation, device
//! summaries, §4.3 classification, the analysis modules and the ECDF sort —
//! produces **byte-identical serialized output at any thread count**. This
//! test runs the full MNO and M2M pipelines at 1, 2 and 8 worker threads
//! (via `wtr_sim::par::set_threads`, which outranks the `WTR_THREADS`
//! environment knob) and compares the serialized artifacts byte-for-byte.

use where_things_roam::core::analysis::population;
use where_things_roam::core::analysis::rat_usage::{self, Plane};
use where_things_roam::core::analysis::traffic::{self, TrafficMetric};
use where_things_roam::core::analysis::{activity::StatusGroup, platform};
use where_things_roam::core::classify::{Classifier, DeviceClass};
use where_things_roam::core::summary::summarize;
use where_things_roam::probes::io;
use where_things_roam::scenarios::{
    M2mScenario, M2mScenarioConfig, MnoScenario, MnoScenarioConfig,
};
use where_things_roam::sim::par;

/// Thread counts in the matrix. 1 is the serial reference; 2 and 8
/// exercise uneven chunk-to-worker assignments.
const MATRIX: [usize; 3] = [1, 2, 8];

/// `par::set_threads` is process-global; serialize the tests that mutate
/// it so a failure is attributed to the right matrix cell.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `pipeline` once per thread count and asserts all serialized
/// outputs equal the single-threaded reference.
fn assert_matrix<F: Fn() -> Vec<u8>>(what: &str, pipeline: F) {
    let _guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reference: Option<Vec<u8>> = None;
    for &t in &MATRIX {
        par::set_threads(Some(t));
        let bytes = pipeline();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(
                r, &bytes,
                "{what}: output at {t} threads differs from 1 thread"
            ),
        }
    }
    par::set_threads(None);
}

#[test]
fn mno_pipeline_is_thread_count_invariant() {
    let config = MnoScenarioConfig {
        devices: 400,
        days: 5,
        seed: 7,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    };
    assert_matrix("mno pipeline", || {
        let output = MnoScenario::new(config.clone()).run();
        let summaries = summarize(&output.catalog);
        let classification =
            Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());

        // Serialize every stage that touches the parallel layer.
        let mut bytes = Vec::new();
        io::write_catalog(&mut bytes, &output.catalog).unwrap();
        bytes.extend(serde_json::to_string(&summaries).unwrap().into_bytes());
        bytes.extend(serde_json::to_string(&classification).unwrap().into_bytes());

        let ls = population::label_shares(&output.catalog);
        bytes.extend(serde_json::to_string(&ls).unwrap().into_bytes());
        let hc = population::home_countries(&summaries, &classification);
        bytes.extend(serde_json::to_string(&hc).unwrap().into_bytes());
        let cl = population::class_label_breakdown(&summaries, &classification);
        bytes.extend(serde_json::to_string(&cl).unwrap().into_bytes());

        let classes = [
            DeviceClass::Smart,
            DeviceClass::Feat,
            DeviceClass::M2m,
            DeviceClass::M2mMaybe,
        ];
        for plane in [Plane::Any, Plane::Data, Plane::Voice] {
            let usage = rat_usage::rat_usage(&summaries, &classification, &classes, plane);
            bytes.extend(serde_json::to_string(&usage).unwrap().into_bytes());
        }
        let pairs = [
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::Native),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
        ];
        for metric in [
            TrafficMetric::SignalingPerDay,
            TrafficMetric::CallsPerDay,
            TrafficMetric::BytesPerDay,
        ] {
            let dist = traffic::traffic_dist(&summaries, &classification, &pairs, metric);
            bytes.extend(serde_json::to_string(&dist).unwrap().into_bytes());
        }
        bytes
    });
}

#[test]
fn m2m_pipeline_is_thread_count_invariant() {
    let config = M2mScenarioConfig {
        devices: 400,
        days: 4,
        seed: 11,
        g4_hole_fraction: 0.1,
    };
    assert_matrix("m2m pipeline", || {
        let output = M2mScenario::new(config.clone()).run();
        let mut bytes = Vec::new();
        io::write_transactions(&mut bytes, &output.transactions).unwrap();
        let devices = platform::per_device(&output.transactions);
        bytes.extend(serde_json::to_string(&devices).unwrap().into_bytes());
        let overview = platform::overview(&output.transactions);
        bytes.extend(serde_json::to_string(&overview).unwrap().into_bytes());
        let dynamics = platform::dynamics(&output.transactions, None);
        bytes.extend(serde_json::to_string(&dynamics).unwrap().into_bytes());
        bytes
    });
}

#[test]
fn catalog_io_roundtrip_is_thread_count_invariant() {
    // The line-parallel reader must reconstruct the catalog identically at
    // any thread count, including parse-error line attribution order
    // (errors surface on the first failing line in input order).
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 200,
        days: 3,
        seed: 3,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let mut serialized = Vec::new();
    io::write_catalog(&mut serialized, &output.catalog).unwrap();

    let _guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reference: Option<Vec<u8>> = None;
    for &t in &MATRIX {
        par::set_threads(Some(t));
        let back = io::read_catalog(&serialized[..]).unwrap();
        let mut bytes = Vec::new();
        io::write_catalog(&mut bytes, &back).unwrap();
        assert_eq!(bytes, serialized, "catalog roundtrip at {t} threads");
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes),
        }
    }
    par::set_threads(None);
}

#[test]
fn wtrcat_codec_is_thread_count_invariant() {
    // The chunked WTRCAT reader decodes row-group chunks on par workers;
    // encoded bytes, the decoded catalog (via its JSONL re-export) and a
    // re-encode must be identical at 1, 2 and 8 threads — and identical
    // to a JSONL roundtrip of the same catalog.
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 300,
        days: 4,
        seed: 13,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let mut jsonl = Vec::new();
    io::write_catalog(&mut jsonl, &output.catalog).unwrap();

    let _guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
    for &t in &MATRIX {
        par::set_threads(Some(t));
        let mut bin = Vec::new();
        io::write_catalog_bin(&mut bin, &output.catalog).unwrap();
        let back = io::read_catalog_bin(&bin[..]).unwrap();
        // Decoded catalog re-exports to the exact pre-encode JSONL…
        let mut reexport = Vec::new();
        io::write_catalog(&mut reexport, &back).unwrap();
        assert_eq!(reexport, jsonl, "WTRCAT→JSONL at {t} threads");
        // …and re-encodes to the exact same binary (canonical form).
        let mut reencode = Vec::new();
        io::write_catalog_bin(&mut reencode, &back).unwrap();
        assert_eq!(reencode, bin, "WTRCAT re-encode at {t} threads");
        match &reference {
            None => reference = Some((bin, reencode)),
            Some((rb, rr)) => {
                assert_eq!(rb, &bin, "WTRCAT bytes at {t} threads");
                assert_eq!(rr, &reencode);
            }
        }
    }
    par::set_threads(None);
}
