//! Decode hardening: corrupt catalog inputs must fail with an
//! [`IoError`], never panic and never allocate unboundedly, in both
//! storage formats (JSONL and `WTRCAT`) and on both the materialized
//! and the streaming readers.
//!
//! Plus the scanner fallback contract: the schema-specialized JSONL
//! fast path ([`io::read_catalog`] / [`io::read_transactions`]) must be
//! observationally identical to the serde-only reference readers
//! ([`io::read_catalog_serde`] / [`io::read_transactions_serde`]) — on
//! valid input the same value, on invalid input the same error message
//! and line number.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use where_things_roam::model::ids::{Mcc, Mnc, Plmn, Tac};
use where_things_roam::model::rat::{RadioFlags, RatSet};
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::model::time::{Day, SimTime};
use where_things_roam::probes::catalog::{DevicesCatalog, MobilityAccum};
use where_things_roam::probes::io::{self, IoError};
use where_things_roam::probes::records::{M2mMessageType, M2mTransaction};
use where_things_roam::probes::wire;
use where_things_roam::sim::events::ProcedureResult;
use where_things_roam::sim::stream::RecordStream;

/// A deterministic catalog parameterized by proptest rows, populating
/// every field the row codec carries (floats, sets, flags, histogram)
/// so corruption and equivalence sweeps exercise every decode branch.
fn build_catalog(rows: &[(u8, u8, u8, u16)]) -> DevicesCatalog {
    let mut cat = DevicesCatalog::new(5);
    let meter = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
    let car = cat.intern_apn("fleet.scania.com.mnc002.mcc262.gprs");
    let tac = Tac::new(35_000_000).unwrap();
    for &(user, day, kind, events) in rows {
        let (plmn, label) = match kind % 3 {
            0 => (Plmn::of(204, 4), RoamingLabel::IH),
            1 => (
                Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(410).unwrap()),
                RoamingLabel::HH,
            ),
            _ => (Plmn::of(262, 2), RoamingLabel::IH),
        };
        let r = cat.row_mut(u64::from(user), Day(u32::from(day % 5)), plmn, tac, label);
        r.events += u64::from(events);
        r.failed_events += u64::from(kind % 2);
        r.bytes_up += u64::from(events) * 100;
        r.bytes_down += u64::from(events) * 17;
        r.calls += u64::from(kind % 4);
        r.visited.insert(u32::from(user) + 200_000);
        r.sector_set.insert(u64::from(events) * 31);
        r.radio_flags.merge(RadioFlags {
            any: RatSet::from_bits(1 + kind % 15),
            data: RatSet::from_bits(kind % 4),
            voice: RatSet::EMPTY,
        });
        r.hourly[usize::from(day % 24)] += u32::from(events);
        r.in_designated_range = kind % 5 == 0;
        r.in_published_m2m_range = kind % 7 == 0;
        r.mobility = MobilityAccum::from_parts([
            f64::from(events),
            51.5 * f64::from(events),
            -0.1 * f64::from(events),
            51.5 * 51.5 * f64::from(events),
            0.01 * f64::from(events),
        ]);
        if kind % 3 == 0 {
            r.apns.insert(meter);
        } else {
            r.apns.insert(car);
        }
    }
    cat
}

fn transactions(n: u8) -> Vec<M2mTransaction> {
    (0..u64::from(n))
        .map(|i| M2mTransaction {
            device: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            time: SimTime::from_secs(i * 301),
            sim_plmn: Plmn::of(214, 7),
            visited_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(410).unwrap()),
            message: match i % 3 {
                0 => M2mMessageType::Authentication,
                1 => M2mMessageType::UpdateLocation,
                _ => M2mMessageType::CancelLocation,
            },
            result: match i % 5 {
                0 => ProcedureResult::Ok,
                1 => ProcedureResult::RoamingNotAllowed,
                2 => ProcedureResult::UnknownSubscription,
                3 => ProcedureResult::FeatureUnsupported,
                _ => ProcedureResult::NetworkFailure,
            },
        })
        .collect()
}

fn jsonl_bytes(cat: &DevicesCatalog) -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_catalog(&mut buf, cat).unwrap();
    buf
}

fn wtrcat_bytes(cat: &DevicesCatalog) -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_catalog_bin(&mut buf, cat).unwrap();
    buf
}

/// Drives every reader over `bytes`; each must return (not panic), and
/// the streaming reader must terminate.
fn decode_all_paths(bytes: &[u8]) -> Vec<Result<(), String>> {
    let mut outcomes = Vec::new();
    outcomes.push(
        io::read_catalog_auto(bytes)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    );
    match io::CatalogStream::new(bytes) {
        Err(e) => outcomes.push(Err(e.to_string())),
        Ok(mut stream) => {
            let streamed = loop {
                match stream.next_chunk() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break stream.finish().map(|_| ()),
                    Err(e) => break Err(e),
                }
            };
            outcomes.push(streamed.map_err(|e| e.to_string()));
        }
    }
    outcomes
}

/// Compares the fast-path and serde-only catalog readers on one input:
/// same success (byte-identical re-export) or same error string.
fn assert_catalog_readers_agree(bytes: &[u8]) {
    let fast = io::read_catalog(bytes);
    let slow = io::read_catalog_serde(bytes);
    match (fast, slow) {
        (Ok(a), Ok(b)) => assert_eq!(jsonl_bytes(&a), jsonl_bytes(&b)),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (fast, slow) => panic!(
            "readers disagree: fast={:?} serde={:?}",
            fast.map(|c| c.len()),
            slow.map(|c| c.len())
        ),
    }
}

proptest! {
    /// Truncating a valid WTRCAT file anywhere must produce an error
    /// from every reader — promptly and panic-free.
    #[test]
    fn wtrcat_truncations_error_cleanly(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..40),
        cut in 0usize..10_000,
    ) {
        let bytes = wtrcat_bytes(&build_catalog(&rows));
        let cut = cut % bytes.len();
        for outcome in decode_all_paths(&bytes[..cut]) {
            prop_assert!(outcome.is_err(), "truncation at {cut} must not decode");
        }
    }

    /// Flipping any byte of a valid WTRCAT file must never panic or
    /// hang; whatever still decodes decodes to *something* bounded.
    #[test]
    fn wtrcat_bit_flips_never_panic(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..40),
        at in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = wtrcat_bytes(&build_catalog(&rows));
        let at = at % bytes.len();
        bytes[at] ^= xor;
        // Outcome (Ok for benign flips, Err otherwise) is unconstrained;
        // returning at all is the property.
        let _ = decode_all_paths(&bytes);
    }

    /// JSONL: truncations and byte flips must never panic either path,
    /// and the fast-path reader must agree with serde exactly.
    #[test]
    fn jsonl_corruption_never_panics_and_readers_agree(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..40),
        cut in 0usize..10_000,
        at in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let bytes = jsonl_bytes(&build_catalog(&rows));
        let cut = cut % bytes.len();
        assert_catalog_readers_agree(&bytes[..cut]);
        let mut flipped = bytes.clone();
        let at = at % flipped.len();
        flipped[at] ^= xor;
        assert_catalog_readers_agree(&flipped);
        let _ = decode_all_paths(&flipped);
    }

    /// Valid catalogs parse identically through the scanner and serde.
    #[test]
    fn scanner_matches_serde_on_valid_catalogs(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 0..60),
    ) {
        let cat = build_catalog(&rows);
        let bytes = jsonl_bytes(&cat);
        let fast = io::read_catalog(&bytes[..]).unwrap();
        let slow = io::read_catalog_serde(&bytes[..]).unwrap();
        prop_assert_eq!(jsonl_bytes(&fast), jsonl_bytes(&slow));
        prop_assert_eq!(jsonl_bytes(&fast), bytes);
    }

    /// Valid transaction logs parse identically; corrupted ones report
    /// the same line number and message through both readers.
    #[test]
    fn scanner_matches_serde_on_transactions(
        n in 1u8..60,
        at in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let txs = transactions(n);
        let mut buf = Vec::new();
        io::write_transactions(&mut buf, &txs).unwrap();
        let fast = io::read_transactions(&buf[..]).unwrap();
        let slow = io::read_transactions_serde(&buf[..]).unwrap();
        prop_assert_eq!(&fast, &txs);
        prop_assert_eq!(&slow, &txs);
        let at = at % buf.len();
        buf[at] ^= xor;
        match (io::read_transactions(&buf[..]), io::read_transactions_serde(&buf[..])) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "readers disagree: fast ok={} serde ok={}",
                    a.is_ok(), b.is_ok()
                )));
            }
        }
    }
}

// -----------------------------------------------------------------------
// Targeted regressions for the hardened header-validation order.
// -----------------------------------------------------------------------

/// Patch helper: a minimal WTRCAT fixed header region.
fn fixed_header(window_days: u32, rows: u64, chunks: u32, table_len: u32) -> Vec<u8> {
    let mut raw = Vec::new();
    raw.extend_from_slice(wire::CAT_MAGIC);
    raw.extend_from_slice(&window_days.to_le_bytes());
    raw.extend_from_slice(&rows.to_le_bytes());
    raw.extend_from_slice(&chunks.to_le_bytes());
    raw.extend_from_slice(&table_len.to_le_bytes());
    raw
}

/// A header declaring ~4.3B table strings with no bytes behind it must
/// be rejected immediately — not after billions of 2-byte reads or an
/// unbounded allocation.
#[test]
fn huge_table_len_is_rejected_promptly() {
    let bytes = fixed_header(5, 0, 0, u32::MAX);
    assert!(matches!(
        io::read_catalog_bin(&bytes[..]),
        Err(IoError::BadHeader(_))
    ));
    // The streaming reader hits EOF on the first table read.
    assert!(io::CatalogStream::new(&bytes[..]).is_err());
}

/// A declared row count inconsistent with the chunk count (the hostile
/// `chunk_len` input of old) must surface as `BadHeader` before any
/// chunk sizing happens.
#[test]
fn inconsistent_rows_and_chunks_are_rejected() {
    for (rows, chunks) in [(u64::MAX, 1u32), (1, 0), (0, 1), (4097, 1), (1, 2)] {
        let bytes = fixed_header(5, rows, chunks, 0);
        assert!(
            matches!(io::read_catalog_bin(&bytes[..]), Err(IoError::BadHeader(_))),
            "rows={rows} chunks={chunks}"
        );
        assert!(
            io::CatalogStream::new(&bytes[..]).is_err(),
            "stream: rows={rows} chunks={chunks}"
        );
    }
}

/// A chunk frame declaring a ~4GB body on a short file must error with
/// a truncation, not pre-allocate the declared length.
#[test]
fn huge_chunk_byte_len_does_not_preallocate() {
    let cat = build_catalog(&[(1, 0, 0, 10)]);
    let mut bytes = wtrcat_bytes(&cat);
    // The first chunk frame starts right after the fixed region plus
    // the two table strings; find it by re-walking the header.
    let mut slice = &bytes[..];
    wire::decode_catalog_header(&mut slice).unwrap();
    let frame_at = bytes.len() - slice.len();
    bytes[frame_at..frame_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut stream = io::CatalogStream::new(&bytes[..]).unwrap();
    let err = loop {
        match stream.next_chunk() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("corrupt frame must not stream to completion"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, IoError::Io(_)), "got {err}");
}

/// The magic is validated before anything else: a non-WTRCAT binary
/// blob with hostile bytes in the length positions never drives a loop.
#[test]
fn bad_magic_rejected_before_lengths_are_trusted() {
    let mut bytes = fixed_header(5, 0, 0, u32::MAX);
    bytes[0] ^= 0xFF;
    let mut slice = &bytes[..];
    assert!(wire::decode_catalog_fixed(&mut slice).is_err());
}
