//! Integration tests for the M2M platform dataset (E1–E5) and the wire
//! format, at test scale.

use std::sync::OnceLock;
use where_things_roam::core::analysis::platform;
use where_things_roam::model::operators::well_known;
use where_things_roam::probes::wire;
use where_things_roam::scenarios::m2m::M2mScenarioOutput;
use where_things_roam::scenarios::{M2mScenario, M2mScenarioConfig};

fn output() -> &'static M2mScenarioOutput {
    static CELL: OnceLock<M2mScenarioOutput> = OnceLock::new();
    CELL.get_or_init(|| {
        M2mScenario::new(M2mScenarioConfig {
            devices: 3_000,
            days: 11,
            seed: 77,
            g4_hole_fraction: 0.05,
        })
        .run()
    })
}

#[test]
fn e1_hmno_shares_and_footprint() {
    let out = output();
    let ov = platform::overview(&out.transactions);
    let share = |iso: &str| {
        ov.hmno_device_shares
            .iter()
            .find(|(c, _, _)| c == iso)
            .map(|(_, _, s)| *s)
            .unwrap_or(0.0)
    };
    // Paper: ES 52.3%, MX 42.2%, AR 4.7%, DE ~0.8%.
    assert!((0.45..0.60).contains(&share("ES")), "ES {}", share("ES"));
    assert!((0.35..0.50).contains(&share("MX")), "MX {}", share("MX"));
    assert!((0.02..0.08).contains(&share("AR")), "AR {}", share("AR"));
    assert!(share("DE") < 0.03, "DE {}", share("DE"));
    // ES dominates signaling (paper 81.8%).
    let es_sig = ov
        .hmno_signaling_shares
        .iter()
        .find(|(c, _, _)| c == "ES")
        .map(|(_, _, s)| *s)
        .unwrap();
    assert!(es_sig > 0.70, "ES signaling {es_sig}");
    // ES roams widely (paper: 77 countries, 127 VMNOs); MX stays home.
    assert!(
        ov.countries_per_hmno["ES"] > 40,
        "{}",
        ov.countries_per_hmno["ES"]
    );
    assert!(ov.vmnos_per_hmno["ES"] > 60, "{}", ov.vmnos_per_hmno["ES"]);
    assert!(ov.home_fraction_per_hmno["MX"] > 0.80);
    assert!(ov.home_fraction_per_hmno["AR"] > 0.90);
}

#[test]
fn e2_visited_matrix_rows_normalize() {
    let out = output();
    let ov = platform::overview(&out.transactions);
    for hmno in ["ES", "MX", "AR", "DE"] {
        let sum: f64 = ov
            .visited_matrix
            .cols()
            .iter()
            .map(|c| ov.visited_matrix.row_share(hmno, c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9, "{hmno} row sums to {sum}");
    }
    // MX devices concentrate at home (Fig. 2's MX row).
    assert!(ov.visited_matrix.row_share("MX", "MX") > 0.6);
}

#[test]
fn e3_signaling_long_tail() {
    let out = output();
    let d = platform::dynamics(&out.transactions, None);
    let mean = d.records_all.mean().unwrap();
    let median = d.records_all.median().unwrap();
    // Long tail: mean well above median; most devices modest; a tail far
    // beyond (paper: mean 267, 97% < 2000, max 130k at 10× our scale).
    assert!(
        mean > 2.0 * median,
        "no long tail: mean {mean} median {median}"
    );
    assert!(d.records_all.fraction_at_or_below(2_000.0) > 0.93);
    assert!(d.records_all.max().unwrap() > 10.0 * mean);
    // Roaming devices are ~10× chattier than native ones (ES view).
    let es = platform::dynamics(&out.transactions, Some(well_known::ES_HMNO));
    let ratio = es.records_roaming.median().unwrap() / es.records_native.median().unwrap();
    assert!((5.0..20.0).contains(&ratio), "roaming/native {ratio}");
}

#[test]
fn e4_vmnos_per_device() {
    let out = output();
    let es = platform::dynamics(&out.transactions, Some(well_known::ES_HMNO));
    let one = es.vmnos_roaming.fraction_at_or_below(1.0);
    let two = es.vmnos_roaming.fraction_at_or_below(2.0) - one;
    let more = 1.0 - one - two;
    // Paper: 65% / >25% / ~5%.
    assert!((0.55..0.80).contains(&one), "1 VMNO {one}");
    assert!((0.12..0.35).contains(&two), "2 VMNOs {two}");
    assert!(more < 0.15, "3+ VMNOs {more}");
    // The failed population exists and hunts widely (paper: 40%, max 19).
    assert!((0.30..0.50).contains(&es.only_failed_fraction));
    assert!(es.max_vmnos_failed_device >= 5);
}

#[test]
fn e5_switch_distribution() {
    let out = output();
    let es = platform::dynamics(&out.transactions, Some(well_known::ES_HMNO));
    let e = &es.switches_multi_vmno;
    assert!(!e.is_empty());
    // Paper: ~50% ≤2 switches; ~20% at least daily; ~3% extreme.
    assert!(
        (0.25..0.65).contains(&e.fraction_at_or_below(2.0)),
        "≤2 {}",
        e.fraction_at_or_below(2.0)
    );
    let daily = 1.0 - e.fraction_at_or_below(out.days as f64 - 1.0);
    assert!((0.08..0.40).contains(&daily), "daily {daily}");
    let extreme = 1.0 - e.fraction_at_or_below(100.0);
    assert!(extreme < 0.15, "extreme {extreme}");
    assert!(e.max().unwrap() > 100.0, "no extreme switchers at all");
}

#[test]
fn transactions_match_paper_schema_constraints() {
    let out = output();
    assert!(!out.transactions.is_empty());
    for t in out.transactions.iter().take(10_000) {
        // 4G-only HMNO-side dataset: the SIM home must be one of the four
        // platform HMNOs.
        let hmno_mccs = [214, 262, 334, 722];
        assert!(
            hmno_mccs.contains(&t.sim_plmn.mcc.value()),
            "{}",
            t.sim_plmn
        );
    }
    // Time-ordered.
    assert!(out.transactions.windows(2).all(|w| w[0].time <= w[1].time));
}

#[test]
fn wire_roundtrip_at_dataset_scale() {
    let out = output();
    let encoded = wire::encode_log(&out.transactions);
    assert_eq!(
        encoded.len(),
        16 + out.transactions.len() * wire::RECORD_SIZE
    );
    let decoded = wire::decode_log(encoded).unwrap();
    assert_eq!(decoded, out.transactions);
}

#[test]
fn sticky_failure_population_only_fails() {
    let out = output();
    let per_dev = platform::per_device(&out.transactions);
    for d in &per_dev {
        if let Some(truth) = out.ground_truth.get(&d.device) {
            if truth.sticky_failure {
                assert!(!d.any_ok, "sticky device {} succeeded", d.device);
            }
        }
    }
}
