//! Integration tests for the extension experiments (E20–E23): NB-IoT
//! detection, roaming economics, diurnal shapes and the 2G sunset.
//! Each extension is motivated by the paper's §1/§8/§9 discussion; these
//! tests pin their expected qualitative outcomes.

use std::sync::OnceLock;
use where_things_roam::core::analysis::{diurnal, revenue};
use where_things_roam::core::classify::{Classification, Classifier, DeviceClass};
use where_things_roam::core::summary::{summarize, DeviceSummary};
use where_things_roam::model::rat::Rat;
use where_things_roam::model::tacdb::TacDatabase;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

struct Fix {
    summaries: Vec<DeviceSummary>,
    classification: Classification,
    m2m_truth_count: usize,
}

fn run_full(devices: usize, nbiot: f64, sunset: bool, transparency: bool, seed: u64) -> Fix {
    let out = MnoScenario::new(MnoScenarioConfig {
        devices,
        days: 12,
        seed,
        nbiot_meter_fraction: nbiot,
        sunset_2g_uk: sunset,
        gsma_transparency: transparency,
        record_loss_fraction: 0.0,
    })
    .run();
    let summaries = summarize(&out.catalog);
    let classification = Classifier::new(&out.tacdb).classify(&summaries, out.catalog.apn_table());
    let m2m_truth_count = summaries
        .iter()
        .filter(|s| out.ground_truth.get(&s.user).is_some_and(|v| v.is_m2m()))
        .count();
    Fix {
        summaries,
        classification,
        m2m_truth_count,
    }
}

fn run(devices: usize, nbiot: f64, sunset: bool, seed: u64) -> Fix {
    run_full(devices, nbiot, sunset, false, seed)
}

fn baseline() -> &'static Fix {
    static CELL: OnceLock<Fix> = OnceLock::new();
    CELL.get_or_init(|| run(1_500, 0.0, false, 31))
}

#[test]
fn e20_nbiot_devices_detected_by_rat() {
    let base = baseline();
    assert_eq!(
        base.classification.nbiot_detected, 0,
        "2019 population has no NB-IoT devices"
    );
    let nb = run(1_500, 0.6, false, 31);
    assert!(
        nb.classification.nbiot_detected > 30,
        "NB-IoT meters must be RAT-detected: {}",
        nb.classification.nbiot_detected
    );
    // Every NB-IoT user lands in m2m.
    for s in &nb.summaries {
        if s.radio_flags.any.contains(Rat::NbIot) {
            assert_eq!(
                nb.classification.class_of(s.user),
                Some(DeviceClass::M2m),
                "NB-IoT device escaped the m2m class"
            );
        }
    }
}

#[test]
fn e21_m2m_load_exceeds_its_revenue() {
    let f = baseline();
    let econ = revenue::inbound_economics(
        &f.summaries,
        &f.classification,
        revenue::RateCard::default(),
    );
    let m2m = econ.iter().find(|e| e.class == DeviceClass::M2m).unwrap();
    let smart = econ.iter().find(|e| e.class == DeviceClass::Smart).unwrap();
    // The asymmetry the paper complains about: m2m's load/revenue ratio
    // exceeds the smartphones', and per-device m2m revenue is tiny.
    assert!(
        m2m.load_to_revenue() > smart.load_to_revenue(),
        "m2m {} vs smart {}",
        m2m.load_to_revenue(),
        smart.load_to_revenue()
    );
    // Mean m2m revenue is car-skewed; the *typical* (median) M2M device —
    // a smart meter — earns the operator orders of magnitude less than a
    // median tourist smartphone.
    assert!(
        m2m.revenue_median_per_device < smart.revenue_median_per_device / 20.0,
        "m2m median €{} vs smart median €{}",
        m2m.revenue_median_per_device,
        smart.revenue_median_per_device
    );
    // Shares normalize over the inbound population.
    let load: f64 = econ.iter().map(|e| e.load_share).sum();
    assert!((load - 1.0).abs() < 1e-9);
}

#[test]
fn e22_machine_traffic_flatter_than_human() {
    let f = baseline();
    let profiles = diurnal::profiles(
        &f.summaries,
        &f.classification,
        &[DeviceClass::M2m, DeviceClass::Smart],
    );
    let m2m = &profiles[0];
    let smart = &profiles[1];
    assert!(
        m2m.night_share > 2.0 * smart.night_share,
        "m2m night {} vs smart night {}",
        m2m.night_share,
        smart.night_share
    );
    assert!(
        m2m.peak_to_trough < smart.peak_to_trough,
        "m2m {} vs smart {} peak/trough",
        m2m.peak_to_trough,
        smart.peak_to_trough
    );
}

#[test]
fn e23_sunset_strands_most_m2m() {
    let before = baseline();
    let after = run(1_500, 0.0, true, 31);
    let lost = 1.0 - after.m2m_truth_count as f64 / before.m2m_truth_count.max(1) as f64;
    // §6.1: 77.4% of M2M is 2G-only; the sunset must strand the majority.
    assert!(
        (0.55..0.95).contains(&lost),
        "stranded fraction {lost} ({} → {})",
        before.m2m_truth_count,
        after.m2m_truth_count
    );
    // Smartphones barely notice (3G/4G capable).
    let smart = |f: &Fix| {
        f.classification
            .counts()
            .get(&DeviceClass::Smart)
            .copied()
            .unwrap_or(0)
    };
    let smart_lost = 1.0 - smart(&after) as f64 / smart(before).max(1) as f64;
    assert!(
        smart_lost.abs() < 0.15,
        "smartphones affected: {smart_lost}"
    );
}

#[test]
fn e24_transparency_tags_published_ranges() {
    let opaque = baseline();
    assert_eq!(opaque.classification.range_detected, 0);
    let transparent = run_full(1_500, 0.0, false, true, 31);
    assert!(
        transparent.classification.range_detected > 50,
        "published NL range should tag the meter fleet: {}",
        transparent.classification.range_detected
    );
    let range_only = where_things_roam::core::baseline::imsi_range_baseline(
        &TacDatabase::standard(),
        &transparent.summaries,
    );
    // Everything the range-only classifier marks m2m must carry a tag.
    for (user, class) in &range_only.classes {
        if *class == DeviceClass::M2m {
            let s = transparent
                .summaries
                .iter()
                .find(|s| s.user == *user)
                .unwrap();
            assert!(s.in_published_m2m_range || s.in_designated_range);
        }
    }
}

#[test]
fn e23_sunset_with_nbiot_migration_rescues_meters() {
    // The §8 endgame: retire 2G *after* migrating meters to NB-IoT — the
    // stranded fraction collapses.
    let stranded_without = {
        let before = run(1_000, 0.0, false, 33);
        let after = run(1_000, 0.0, true, 33);
        1.0 - after.m2m_truth_count as f64 / before.m2m_truth_count.max(1) as f64
    };
    let stranded_with = {
        let before = run(1_000, 0.8, false, 33);
        let after = run(1_000, 0.8, true, 33);
        1.0 - after.m2m_truth_count as f64 / before.m2m_truth_count.max(1) as f64
    };
    assert!(
        stranded_with < stranded_without - 0.15,
        "NB-IoT migration should rescue meters: {stranded_with} vs {stranded_without}"
    );
}

#[test]
fn record_loss_degrades_gracefully() {
    // 10% probe record loss must not flip any classification share by
    // more than a few points — the statistics are shares over large
    // populations, not exact counts.
    let clean = MnoScenario::new(MnoScenarioConfig {
        devices: 1_200,
        days: 10,
        seed: 44,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let lossy = MnoScenario::new(MnoScenarioConfig {
        devices: 1_200,
        days: 10,
        seed: 44,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.10,
    })
    .run();
    let shares = |out: &where_things_roam::scenarios::mno::MnoScenarioOutput| {
        let summaries = summarize(&out.catalog);
        Classifier::new(&out.tacdb)
            .classify(&summaries, out.catalog.apn_table())
            .shares()
    };
    let a = shares(&clean);
    let b = shares(&lossy);
    for (class, share) in &a {
        let other = b.get(class).copied().unwrap_or(0.0);
        assert!(
            (share - other).abs() < 0.05,
            "{class}: {share} vs {other} under 10% record loss"
        );
    }
    // Loss does shrink the observed record volume.
    let rows = |out: &where_things_roam::scenarios::mno::MnoScenarioOutput| {
        out.catalog.iter().map(|r| r.events).sum::<u64>()
    };
    assert!(rows(&lossy) < rows(&clean));
}
