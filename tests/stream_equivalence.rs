//! Streaming == materialized, byte for byte (the PR-3 contract).
//!
//! Three equivalences, each across the 1/2/8 thread matrix:
//!
//! 1. **Simulation**: `MnoScenario::run_streaming()` (probe behind a
//!    batched event stream) produces the exact catalog `run()` does —
//!    including under record loss, whose per-event coin sequence sits
//!    outside the batcher.
//! 2. **File ingest**: `stream_catalog` (chunk-at-a-time JSONL/WTRCAT
//!    reader feeding a broadcast of folds, no `DevicesCatalog` ever
//!    built) produces the exact summaries + label shares the
//!    materialized `read → summarize → label_shares` path does.
//! 3. **Analysis**: the one-broadcast-pass [`analyze`] suite equals the
//!    per-table re-scan reference [`analyze_rescan`] on every table.
//!
//! Plus `ChunkFold::absorb` associativity checks (proptest): for any
//! 3-way split of the input, folding the parts and absorbing equals
//! folding the whole — the algebraic property the chunked drivers rely
//! on.

use proptest::prelude::*;
use where_things_roam::core::analysis::diurnal::DiurnalFold;
use where_things_roam::core::analysis::population::LabelSharesFold;
use where_things_roam::core::analysis::revenue::{RateCard, RevenueFold};
use where_things_roam::core::classify::{Classification, DeviceClass, ObservedApnsFold};
use where_things_roam::core::stream::{
    analyze, analyze_rescan, materialize_catalog, stream_catalog, AnalysisSuite, StreamedCatalog,
};
use where_things_roam::core::summary::{summarize, SummaryFold};
use where_things_roam::model::ids::{Plmn, Tac};
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::model::time::Day;
use where_things_roam::probes::catalog::DevicesCatalog;
use where_things_roam::probes::io;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};
use where_things_roam::sim::par;
use where_things_roam::sim::stream::ChunkFold;

/// Thread counts in the matrix (serial reference + uneven assignments;
/// 3 exercises unpaired tails in the tree-shaped reductions).
const MATRIX: [usize; 4] = [1, 2, 3, 8];

/// `par::set_threads` is process-global; serialize the tests that
/// mutate it.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn scenario_config() -> MnoScenarioConfig {
    MnoScenarioConfig {
        devices: 400,
        days: 5,
        seed: 7,
        nbiot_meter_fraction: 0.05,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    }
}

/// Serializes every table of a suite into one byte string.
fn suite_bytes(suite: &AnalysisSuite) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut push = |s: String| bytes.extend(s.into_bytes());
    push(serde_json::to_string(&suite.classification).unwrap());
    push(serde_json::to_string(&suite.home).unwrap());
    push(serde_json::to_string(&suite.class_label).unwrap());
    push(serde_json::to_string(&suite.rat).unwrap());
    push(serde_json::to_string(&suite.traffic).unwrap());
    push(serde_json::to_string(&suite.active).unwrap());
    push(serde_json::to_string(&suite.gyration).unwrap());
    push(serde_json::to_string(&suite.smip).unwrap());
    push(serde_json::to_string(&suite.smip_native).unwrap());
    push(serde_json::to_string(&suite.smip_roaming).unwrap());
    push(serde_json::to_string(&suite.verticals).unwrap());
    push(serde_json::to_string(&suite.diurnal).unwrap());
    push(serde_json::to_string(&suite.revenue).unwrap());
    bytes
}

/// Serializes a [`StreamedCatalog`] into one byte string.
fn data_bytes(data: &StreamedCatalog) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend(serde_json::to_string(&data.summaries).unwrap().into_bytes());
    bytes.extend(
        serde_json::to_string(&data.label_shares)
            .unwrap()
            .into_bytes(),
    );
    bytes.extend(data.apns.strings().join("\n").into_bytes());
    bytes.extend(data.window_days.to_le_bytes());
    bytes.extend(data.rows.to_le_bytes());
    bytes
}

#[test]
fn streaming_simulation_matches_materialized() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for loss in [0.0, 0.07] {
        let mut config = scenario_config();
        config.record_loss_fraction = loss;
        let mut reference: Option<Vec<u8>> = None;
        for &t in &MATRIX {
            par::set_threads(Some(t));
            let direct = MnoScenario::new(config.clone()).run();
            let streamed = MnoScenario::new(config.clone()).run_streaming();
            let mut direct_bytes = Vec::new();
            io::write_catalog(&mut direct_bytes, &direct.catalog).unwrap();
            let mut streamed_bytes = Vec::new();
            io::write_catalog(&mut streamed_bytes, &streamed.catalog).unwrap();
            assert_eq!(
                direct_bytes, streamed_bytes,
                "run vs run_streaming at {t} threads, loss {loss}"
            );
            assert_eq!(direct.ground_truth, streamed.ground_truth);
            match &reference {
                None => reference = Some(streamed_bytes),
                Some(r) => assert_eq!(r, &streamed_bytes, "{t} threads vs 1, loss {loss}"),
            }
        }
    }
    par::set_threads(None);
}

#[test]
fn streamed_ingest_matches_materialized() {
    let output = MnoScenario::new(scenario_config()).run();
    let mut jsonl = Vec::new();
    io::write_catalog(&mut jsonl, &output.catalog).unwrap();
    let mut wtrcat = Vec::new();
    io::write_catalog_bin(&mut wtrcat, &output.catalog).unwrap();

    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // Per format: the chunked stream must equal the materialized
    // read-then-reduce path byte for byte, at every thread count.
    // (Formats are compared within themselves — APN symbol numbering is
    // reader-visible and differs between JSONL appearance order and the
    // WTRCAT canonical table.)
    for (what, file) in [("JSONL", &jsonl), ("WTRCAT", &wtrcat)] {
        let mut reference: Option<Vec<u8>> = None;
        for &t in &MATRIX {
            par::set_threads(Some(t));
            let materialized = data_bytes(&materialize_catalog(
                &io::read_catalog_auto(file.as_slice()).unwrap(),
            ));
            let streamed = data_bytes(&stream_catalog(file.as_slice()).unwrap());
            assert_eq!(materialized, streamed, "{what} stream at {t} threads");
            match &reference {
                None => reference = Some(streamed),
                Some(r) => assert_eq!(r, &streamed, "{what} at {t} threads vs 1"),
            }
        }
    }
    par::set_threads(None);
}

#[test]
fn fast_scanner_read_matches_serde_read() {
    // The zero-copy JSONL scanner is an ingest fast path with a serde
    // fallback; on a real simulated catalog (every row canonical) it
    // must produce the exact catalog the serde-only reader does, down
    // to APN symbol numbering and re-exported bytes.
    let output = MnoScenario::new(scenario_config()).run();
    let mut jsonl = Vec::new();
    io::write_catalog(&mut jsonl, &output.catalog).unwrap();

    let fast = io::read_catalog(jsonl.as_slice()).unwrap();
    let serde_only = io::read_catalog_serde(jsonl.as_slice()).unwrap();
    let export = |cat: &DevicesCatalog| {
        let mut bytes = Vec::new();
        io::write_catalog(&mut bytes, cat).unwrap();
        io::write_catalog_bin(&mut bytes, cat).unwrap();
        bytes
    };
    assert_eq!(export(&fast), export(&serde_only));
    assert_eq!(export(&fast), {
        let mut bytes = jsonl.clone();
        io::write_catalog_bin(&mut bytes, &output.catalog).unwrap();
        bytes
    });
}

#[test]
fn broadcast_analysis_matches_rescans() {
    let output = MnoScenario::new(scenario_config()).run();
    let summaries = summarize(&output.catalog);
    let apns = output.catalog.apn_table();
    let days = output.catalog.window_days();

    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut reference: Option<Vec<u8>> = None;
    for &t in &MATRIX {
        par::set_threads(Some(t));
        let broadcast = suite_bytes(&analyze(&summaries, apns, days, &output.tacdb));
        let rescans = suite_bytes(&analyze_rescan(&summaries, apns, days, &output.tacdb));
        assert_eq!(broadcast, rescans, "broadcast vs rescans at {t} threads");
        match &reference {
            None => reference = Some(broadcast),
            Some(r) => assert_eq!(r, &broadcast, "{t} threads vs 1"),
        }
    }
    par::set_threads(None);
}

// ---------------------------------------------------------------------
// ChunkFold associativity: fold(a ++ b ++ c) == fold(a) ⊕ fold(b) ⊕ fold(c)
// ---------------------------------------------------------------------

/// A small deterministic catalog parameterized by proptest input rows.
fn build_catalog(rows: &[(u8, u8, u8, u16)]) -> DevicesCatalog {
    let mut cat = DevicesCatalog::new(5);
    let car = cat.intern_apn("fleet.scania.com.mnc002.mcc262.gprs");
    let meter = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
    let tac = Tac::new(35_000_000).unwrap();
    for &(user, day, kind, events) in rows {
        let (plmn, label) = match kind % 3 {
            0 => (Plmn::of(204, 4), RoamingLabel::IH),
            1 => (Plmn::of(234, 30), RoamingLabel::HH),
            _ => (Plmn::of(262, 2), RoamingLabel::IH),
        };
        let r = cat.row_mut(u64::from(user), Day(u32::from(day % 5)), plmn, tac, label);
        r.events += u64::from(events);
        r.bytes_up += u64::from(events) * 100;
        if kind % 3 == 0 {
            r.apns.insert(meter);
        } else if kind % 3 == 2 {
            r.apns.insert(car);
        }
    }
    cat
}

/// Tiny classification covering the generated users.
fn toy_classification(users: impl Iterator<Item = u64>) -> Classification {
    let mut c = Classification::default();
    for u in users {
        let class = match u % 3 {
            0 => DeviceClass::M2m,
            1 => DeviceClass::Smart,
            _ => DeviceClass::Feat,
        };
        c.classes.insert(u, class);
    }
    c
}

/// Folds `items` whole vs. as three absorbed parts and asserts the
/// serialized outputs match.
fn assert_associative<T, F, O, Fin>(sink: &F, items: &[T], cut1: usize, cut2: usize, finish: Fin)
where
    F: ChunkFold<T>,
    O: PartialEq + std::fmt::Debug,
    Fin: Fn(F) -> O,
{
    let cut1 = cut1.min(items.len());
    let cut2 = cut2.clamp(cut1, items.len());
    let mut whole = sink.zero();
    whole.fold_chunk(items);
    let (mut a, mut b, mut c) = (sink.zero(), sink.zero(), sink.zero());
    a.fold_chunk(&items[..cut1]);
    b.fold_chunk(&items[cut1..cut2]);
    c.fold_chunk(&items[cut2..]);
    a.absorb(b);
    a.absorb(c);
    assert_eq!(finish(whole), finish(a));
}

proptest! {
    #[test]
    fn summary_fold_absorb_is_associative(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..80),
        cuts in (0usize..2000, 0usize..2000),
    ) {
        let cat = build_catalog(&rows);
        let entries: Vec<_> = cat.iter().collect();
        let n = entries.len();
        let (c1, c2) = (cuts.0 % (n + 1), cuts.1 % (n + 1));
        let (c1, c2) = (c1.min(c2), c1.max(c2));
        // SummaryFold requires canonical order, which any order-preserving
        // split of the canonical iterator respects.
        assert_associative(&SummaryFold::new(), &entries, c1, c2, |f| {
            serde_json::to_string(&f.finish()).unwrap()
        });
    }

    #[test]
    fn label_shares_fold_absorb_is_associative(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..80),
        cuts in (0usize..2000, 0usize..2000),
    ) {
        let cat = build_catalog(&rows);
        let entries: Vec<_> = cat.iter().collect();
        let n = entries.len();
        let (c1, c2) = (cuts.0 % (n + 1), cuts.1 % (n + 1));
        let (c1, c2) = (c1.min(c2), c1.max(c2));
        assert_associative(&LabelSharesFold::new(5), &entries, c1, c2, |f| {
            serde_json::to_string(&f.finish()).unwrap()
        });
    }

    #[test]
    fn summary_sinks_absorb_is_associative(
        rows in prop::collection::vec((0u8..40, 0u8..5, 0u8..6, 1u16..500), 1..80),
        cuts in (0usize..2000, 0usize..2000),
    ) {
        let cat = build_catalog(&rows);
        let summaries = summarize(&cat);
        let classification = toy_classification(summaries.iter().map(|s| s.user));
        let n = summaries.len();
        let (c1, c2) = (cuts.0 % (n + 1), cuts.1 % (n + 1));
        let (c1, c2) = (c1.min(c2), c1.max(c2));
        // Three distinct per-summary sinks: boolean OR (observed APNs),
        // integer histograms (diurnal), sample collection + sorted
        // reduction (revenue).
        assert_associative(
            &ObservedApnsFold::new(cat.apn_table().len()),
            &summaries,
            c1,
            c2,
            |f| f.into_observed(),
        );
        let classes = [DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat];
        assert_associative(
            &DiurnalFold::new(&classification, &classes),
            &summaries,
            c1,
            c2,
            |f| serde_json::to_string(&f.finish()).unwrap(),
        );
        assert_associative(
            &RevenueFold::new(&classification, RateCard::default()),
            &summaries,
            c1,
            c2,
            |f| serde_json::to_string(&f.finish()).unwrap(),
        );
    }
}
