//! Determinism and scale-invariance: the properties that justify the
//! DESIGN.md substitution of scaled synthetic populations for the paper's
//! full-size datasets.
//!
//! * **Determinism** — identical (config, seed) must reproduce identical
//!   datasets bit-for-bit.
//! * **Seed robustness** — reported *shares* move only a little across
//!   seeds.
//! * **Scale invariance** — doubling the population leaves shares in
//!   place, because every reported quantity is a ratio.

use where_things_roam::core::analysis::{platform, population};
use where_things_roam::core::classify::{Classifier, DeviceClass};
use where_things_roam::core::summary::summarize;
use where_things_roam::scenarios::{
    M2mScenario, M2mScenarioConfig, MnoScenario, MnoScenarioConfig,
};

fn m2m_es_share(devices: usize, seed: u64) -> f64 {
    let out = M2mScenario::new(M2mScenarioConfig {
        devices,
        days: 6,
        seed,
        g4_hole_fraction: 0.05,
    })
    .run();
    let ov = platform::overview(&out.transactions);
    ov.hmno_device_shares
        .iter()
        .find(|(c, _, _)| c == "ES")
        .map(|(_, _, s)| *s)
        .unwrap_or(0.0)
}

fn mno_m2m_share(devices: usize, seed: u64) -> f64 {
    let out = MnoScenario::new(MnoScenarioConfig {
        devices,
        days: 10,
        seed,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let summaries = summarize(&out.catalog);
    let c = Classifier::new(&out.tacdb).classify(&summaries, out.catalog.apn_table());
    c.shares().get(&DeviceClass::M2m).copied().unwrap_or(0.0)
}

#[test]
fn m2m_scenario_bit_deterministic() {
    let run = || {
        M2mScenario::new(M2mScenarioConfig {
            devices: 800,
            days: 4,
            seed: 5,
            g4_hole_fraction: 0.05,
        })
        .run()
        .transactions
    };
    assert_eq!(run(), run());
}

#[test]
fn mno_scenario_deterministic_catalog() {
    let run = || {
        let out = MnoScenario::new(MnoScenarioConfig {
            devices: 700,
            days: 5,
            seed: 9,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        })
        .run();
        let mut rows: Vec<String> = out
            .catalog
            .iter()
            .map(|r| {
                format!(
                    "{}:{}:{}:{}:{}",
                    r.user,
                    r.day.0,
                    r.events,
                    r.bytes_total(),
                    r.label
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(run(), run());
}

#[test]
fn shares_stable_across_seeds() {
    let shares: Vec<f64> = (0..3).map(|s| m2m_es_share(1_200, 1000 + s)).collect();
    for w in shares.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 0.06,
            "ES share varies too much across seeds: {shares:?}"
        );
    }
}

#[test]
fn shares_stable_across_scales() {
    let small = m2m_es_share(800, 4);
    let large = m2m_es_share(3_200, 4);
    assert!(
        (small - large).abs() < 0.06,
        "ES share not scale-invariant: {small} vs {large}"
    );
}

#[test]
fn classification_shares_stable_across_scales() {
    let small = mno_m2m_share(1_000, 8);
    let large = mno_m2m_share(3_000, 8);
    assert!(
        (small - large).abs() < 0.05,
        "m2m share not scale-invariant: {small} vs {large}"
    );
}

#[test]
fn different_seeds_produce_different_traces_same_shapes() {
    let a = M2mScenario::new(M2mScenarioConfig {
        devices: 500,
        days: 4,
        seed: 1,
        g4_hole_fraction: 0.05,
    })
    .run();
    let b = M2mScenario::new(M2mScenarioConfig {
        devices: 500,
        days: 4,
        seed: 2,
        g4_hole_fraction: 0.05,
    })
    .run();
    assert_ne!(a.transactions, b.transactions, "seeds must matter");
}

#[test]
fn label_shares_sum_to_one_at_any_scale() {
    for devices in [400, 1_600] {
        let out = MnoScenario::new(MnoScenarioConfig {
            devices,
            days: 6,
            seed: 3,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        })
        .run();
        let ls = population::label_shares(&out.catalog);
        let total: f64 = ls.overall.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "{devices} devices: {total}");
    }
}
