//! Matrix behavior == legacy behavior (the PR-8 contract).
//!
//! The `wtr_sim::behavior` interpreter replaces the hand-coded wake
//! branches of `DeviceAgent`; `legacy_matrix` compiles each device spec
//! into matrix form with a draw-order-preserving layout. This suite pins
//! the equivalence at every level:
//!
//! 1. **Per vertical**: for every [`Vertical`], the explicit legacy agent
//!    and the matrix agent built from `legacy_matrix` emit *identical*
//!    event streams — including sticky-failure, switch-happy and
//!    flaky-presence variants of each class.
//! 2. **Scenario scale**: the full visited-MNO scenario produces
//!    fingerprint-equal output (catalog JSONL + WTRCAT, ground truth,
//!    record counts) on both paths across shards 1/2/8 × streaming
//!    on/off × record loss 0/0.07.
//! 3. **Validation** (proptest): `BehaviorMatrix::new`/`validate` rejects
//!    every corruption of a well-formed matrix, and accepts + roundtrips
//!    (serde, byte-stable) every well-formed parameterization.

use proptest::prelude::*;
use std::sync::Arc;
use where_things_roam::model::country::Country;
use where_things_roam::model::ids::{Imei, Imsi, Plmn, Tac};
use where_things_roam::model::rat::RatSet;
use where_things_roam::model::time::SimTime;
use where_things_roam::model::vertical::Vertical;
use where_things_roam::probes::io;
use where_things_roam::radio::geo::CountryGeometry;
use where_things_roam::radio::network::{CoverageFaults, RadioNetwork};
use where_things_roam::radio::sector::GridSpacing;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig, MnoScenarioOutput};
use where_things_roam::sim::behavior::{
    legacy_matrix, profile_matrix, states, BehaviorMatrix, BehaviorOptions, BehaviorRow,
    EmissionSpec, PlanTarget, StateId, MAX_PLAN_TARGETS,
};
use where_things_roam::sim::device::{DeviceAgent, DeviceSpec, ItineraryLeg, PresenceModel};
use where_things_roam::sim::engine::Engine;
use where_things_roam::sim::events::ProcedureResult;
use where_things_roam::sim::traffic::TrafficProfile;
use where_things_roam::sim::world::{AllowAllPolicy, NetworkDirectory, RoamingWorld, VecSink};
use where_things_roam::sim::MobilityModel;

fn uk_geom() -> CountryGeometry {
    CountryGeometry::of(Country::by_iso("GB").expect("GB exists"))
}

fn directory() -> NetworkDirectory {
    let mut dir = NetworkDirectory::new();
    for plmn in [Plmn::of(234, 10), Plmn::of(234, 15), Plmn::of(234, 20)] {
        dir.add(
            "GB",
            RadioNetwork::new(
                plmn,
                RatSet::CONVENTIONAL,
                uk_geom(),
                GridSpacing::default(),
                CoverageFaults::NONE,
            ),
        );
    }
    dir
}

fn vertical_spec(vertical: Vertical, index: u64, days: u32) -> DeviceSpec {
    let traffic = TrafficProfile::for_vertical(vertical);
    DeviceSpec {
        index,
        imsi: Imsi::new(Plmn::of(234, 10), index).unwrap(),
        imei: Imei::new(Tac::new(35_000_000).unwrap(), index as u32 % 1_000_000).unwrap(),
        vertical,
        radio_caps: RatSet::CONVENTIONAL,
        apns: vec!["internet.mnc010.mcc234.gprs".parse().unwrap()],
        data_enabled: traffic.data_sessions_per_day > 0.0,
        voice_enabled: traffic.voice_per_day > 0.0,
        traffic,
        presence: PresenceModel::always(days),
        itinerary: vec![ItineraryLeg {
            from_day: 0,
            country_iso: "GB".into(),
            mobility: MobilityModel::stationary_in(&uk_geom(), index),
        }],
        switch_propensity: 0.0,
        event_failure_prob: 0.0,
        sticky_failure: None,
    }
}

/// Runs the same specs through the explicit legacy agent and the explicit
/// matrix agent (both env-independent) and returns both event streams.
fn run_both_paths(
    specs: &[DeviceSpec],
    days: u32,
) -> (
    Vec<where_things_roam::sim::events::SimEvent>,
    Vec<where_things_roam::sim::events::SimEvent>,
) {
    let run_path = |legacy: bool| {
        let world = RoamingWorld::new(directory(), Box::new(AllowAllPolicy), VecSink::default(), 7);
        let mut engine = Engine::new(world, SimTime::from_secs(days as u64 * 86_400));
        for spec in specs {
            let agent = if legacy {
                DeviceAgent::legacy(spec.clone(), 7).unwrap()
            } else {
                let matrix = Arc::new(legacy_matrix(spec));
                DeviceAgent::with_behavior(spec.clone(), matrix, 7).unwrap()
            };
            engine.add_agent(agent);
        }
        engine.run().sink.events
    };
    (run_path(true), run_path(false))
}

#[test]
fn every_vertical_matrix_equals_legacy() {
    const DAYS: u32 = 6;
    for (i, &vertical) in Vertical::ALL.iter().enumerate() {
        let base = i as u64 * 10;
        // Base class + the variants that exercise every wake branch:
        // misprovisioned (sticky attach failure), switch-happy with
        // transient failures, and a flaky presence window.
        let mut sticky = vertical_spec(vertical, base + 1, DAYS);
        sticky.sticky_failure = Some(ProcedureResult::UnknownSubscription);
        let mut switcher = vertical_spec(vertical, base + 2, DAYS);
        switcher.switch_propensity = 1.0;
        switcher.event_failure_prob = 0.1;
        let mut flaky = vertical_spec(vertical, base + 3, DAYS);
        flaky.presence = PresenceModel {
            first_day: 1,
            last_day: DAYS - 1,
            daily_active_prob: 0.5,
        };
        let specs = vec![vertical_spec(vertical, base, DAYS), sticky, switcher, flaky];
        let (legacy, matrix) = run_both_paths(&specs, DAYS);
        assert_eq!(legacy, matrix, "vertical {vertical:?} diverged");
    }
}

// ---------------------------------------------------------------------
// Scenario scale.
// ---------------------------------------------------------------------

/// Everything the equivalence compares, flattened to bytes.
fn fingerprint(out: &MnoScenarioOutput) -> Vec<u8> {
    let mut bytes = Vec::new();
    io::write_catalog(&mut bytes, &out.catalog).unwrap();
    io::write_catalog_bin(&mut bytes, &out.catalog).unwrap();
    bytes.extend(
        serde_json::to_string(&out.ground_truth)
            .unwrap()
            .into_bytes(),
    );
    bytes.extend(format!("{:?}", out.record_counts).into_bytes());
    bytes
}

fn scenario_fingerprint(config: &MnoScenarioConfig, shards: usize, streaming: bool) -> Vec<u8> {
    let scenario = MnoScenario::new(config.clone());
    let out = if streaming {
        scenario.run_streaming_sharded(shards)
    } else {
        scenario.run_sharded(shards)
    };
    fingerprint(&out)
}

/// The whole-scenario equivalence across the shard × streaming × loss
/// matrix. The scenario population mixes every vertical, so a fingerprint
/// match here is a per-vertical catalog match at scenario scale.
///
/// This is the only test in this binary that touches
/// `WTR_LEGACY_BEHAVIOR` — the env var is process-global and tests run
/// concurrently, so every other test uses the env-independent explicit
/// constructors instead.
#[test]
fn scenario_matrix_path_reproduces_legacy_across_shard_matrix() {
    for loss in [0.0, 0.07] {
        let config = MnoScenarioConfig {
            devices: 400,
            days: 4,
            seed: 11,
            nbiot_meter_fraction: 0.05,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: loss,
        };
        // Agents read the env var at construction time, inside the run_*
        // calls — so the flip brackets each legacy run exactly.
        std::env::set_var("WTR_LEGACY_BEHAVIOR", "1");
        let reference = scenario_fingerprint(&config, 1, false);
        std::env::remove_var("WTR_LEGACY_BEHAVIOR");
        for shards in [1usize, 2, 8] {
            for streaming in [false, true] {
                std::env::set_var("WTR_LEGACY_BEHAVIOR", "1");
                let legacy = scenario_fingerprint(&config, shards, streaming);
                std::env::remove_var("WTR_LEGACY_BEHAVIOR");
                let matrix = scenario_fingerprint(&config, shards, streaming);
                assert_eq!(
                    legacy, reference,
                    "legacy path not shard-invariant (loss {loss}, {shards} shards, streaming {streaming})"
                );
                assert_eq!(
                    matrix, reference,
                    "matrix path diverged (loss {loss}, {shards} shards, streaming {streaming})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Validation + serde (proptest).
// ---------------------------------------------------------------------

fn base_matrix(vertical_idx: usize) -> BehaviorMatrix {
    let vertical = Vertical::ALL[vertical_idx % Vertical::ALL.len()];
    profile_matrix(
        &TrafficProfile::for_vertical(vertical),
        &BehaviorOptions::default(),
    )
}

/// One deliberate corruption of a valid matrix. Each arm breaks exactly
/// one invariant `validate` checks.
fn corrupt(m: &mut BehaviorMatrix, kind: usize, row: usize, bad: f64) {
    let row = row % m.rows.len();
    match kind {
        0 => m.rows.clear(),
        1 => m.entry = StateId(m.rows.len() as u32),
        2 => m.rows[row].event_rate = bad,
        3 => m.rows[row].transitions.clear(),
        4 => m.rows[row].transitions = vec![(StateId(m.rows.len() as u32), 1.0)],
        5 => {
            m.rows[row].transitions = vec![(StateId(0), 0.0), (StateId(1), 0.0)];
        }
        6 => {
            m.rows[row].transitions = vec![(StateId(0), 1.0), (StateId(1), -1.0)];
        }
        7 => {
            if let EmissionSpec::Plan(plan) = &mut m.rows[0].emission {
                plan.daily_active_prob = 1.0 + bad.abs().max(0.001);
            } else {
                unreachable!("row 0 of a compiled matrix is the plan row");
            }
        }
        8 => {
            if let EmissionSpec::Plan(plan) = &mut m.rows[0].emission {
                plan.targets = vec![
                    PlanTarget {
                        state: states::SIGNALING,
                        scheduled: true,
                    };
                    MAX_PLAN_TARGETS + 1
                ];
            }
        }
        9 => m.params.per_device_sigma = -bad.abs() - 0.001,
        10 => m.params.sticky_breadth_weights = vec![-1.0, 2.0],
        _ => m.params.reselect_rotate_prob = 1.0 + bad.abs().max(0.001),
    }
}

proptest! {
    /// Every corruption of a valid matrix is rejected by `validate`, and
    /// `BehaviorMatrix::new` refuses to construct it.
    #[test]
    fn malformed_matrices_are_rejected(
        vertical_idx in 0usize..Vertical::ALL.len(),
        kind in 0usize..12,
        row in 0usize..4,
        bad in prop_oneof![Just(-1.0f64), Just(f64::NAN), Just(f64::INFINITY), -1e6f64..-0.001],
    ) {
        let mut m = base_matrix(vertical_idx);
        prop_assert!(m.validate().is_ok());
        corrupt(&mut m, kind, row, bad);
        prop_assert!(m.validate().is_err(), "corruption {kind} accepted");
        prop_assert!(
            BehaviorMatrix::new(m.params.clone(), m.rows.clone(), m.entry).is_err(),
            "constructor accepted corruption {kind}"
        );
    }

    /// Well-formed parameterizations are accepted and serde-roundtrip to
    /// the identical matrix *and* identical bytes (canonical form).
    #[test]
    fn valid_matrices_roundtrip_byte_stable(
        vertical_idx in 0usize..Vertical::ALL.len(),
        daily_active_prob in 0.0f64..1.0,
        switch_propensity in 0.0f64..1.0,
        event_failure_prob in 0.0f64..1.0,
        data_enabled in any::<bool>(),
        voice_enabled in any::<bool>(),
        apn_count in 1u32..4,
        sticky in any::<bool>(),
    ) {
        let vertical = Vertical::ALL[vertical_idx];
        let opts = BehaviorOptions {
            daily_active_prob,
            switch_propensity,
            event_failure_prob,
            sticky_failure: sticky.then_some(ProcedureResult::UnknownSubscription),
            data_enabled,
            voice_enabled,
            apn_count,
        };
        let m = profile_matrix(&TrafficProfile::for_vertical(vertical), &opts);
        prop_assert!(m.validate().is_ok());
        let json = serde_json::to_string(&m).unwrap();
        let back: BehaviorMatrix = serde_json::from_str(&json).unwrap();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}

/// A silent row that branches is accepted — the interpreter supports
/// richer shapes than the compiler emits today.
#[test]
fn branching_silent_rows_validate() {
    let mut m = base_matrix(0);
    m.rows.push(BehaviorRow {
        transitions: vec![
            (states::SIGNALING, 0.7),
            (states::DATA, 0.2),
            (states::VOICE, 0.1),
        ],
        event_rate: 0.5,
        emission: EmissionSpec::Silent,
    });
    assert!(m.validate().is_ok());
}
