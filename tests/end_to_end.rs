//! End-to-end integration: scenario → probes → catalog → classification →
//! analyses, asserting the reproduction bands for the MNO-side experiments
//! (E6–E19) at test scale.
//!
//! Bands are deliberately wider than the paper's point values: the test
//! must be robust to seed and scale, while still failing if a shape flips
//! (e.g. inbound roamers stop being mostly M2M).

use std::collections::BTreeMap;
use std::sync::OnceLock;
use where_things_roam::core::analysis::activity::{self, StatusGroup};
use where_things_roam::core::analysis::population;
use where_things_roam::core::analysis::rat_usage::{self, Plane};
use where_things_roam::core::analysis::smip;
use where_things_roam::core::analysis::traffic::{self, TrafficMetric};
use where_things_roam::core::analysis::verticals;
use where_things_roam::core::baseline;
use where_things_roam::core::classify::{Classification, Classifier, DeviceClass};
use where_things_roam::core::summary::{summarize, DeviceSummary};
use where_things_roam::core::validate::validate;
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::model::vertical::Vertical;
use where_things_roam::scenarios::mno::MnoScenarioOutput;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

struct Fixture {
    output: MnoScenarioOutput,
    summaries: Vec<DeviceSummary>,
    classification: Classification,
    truth: BTreeMap<u64, Vertical>,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let output = MnoScenario::new(MnoScenarioConfig {
            devices: 2_500,
            days: 22,
            seed: 20_26,
            nbiot_meter_fraction: 0.0,
            sunset_2g_uk: false,
            gsma_transparency: false,
            record_loss_fraction: 0.0,
        })
        .run();
        let summaries = summarize(&output.catalog);
        let classification =
            Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());
        let truth = summaries
            .iter()
            .filter_map(|s| output.ground_truth.get(&s.user).map(|v| (s.user, *v)))
            .collect();
        Fixture {
            output,
            summaries,
            classification,
            truth,
        }
    })
}

#[test]
fn e6_label_shares_match_paper_ordering() {
    let f = fixture();
    let ls = population::label_shares(&f.output.catalog);
    let hh = ls.overall[&RoamingLabel::HH];
    let vh = ls.overall[&RoamingLabel::VH];
    let ih = ls.overall[&RoamingLabel::IH];
    // Paper: 48% / 33% / 18% per day, H:H > V:H > I:H and stable.
    assert!(hh > vh && vh > ih, "ordering broken: {hh} {vh} {ih}");
    assert!((0.40..0.60).contains(&hh), "H:H {hh}");
    assert!((0.25..0.42).contains(&vh), "V:H {vh}");
    assert!((0.10..0.25).contains(&ih), "I:H {ih}");
    // Stability across days (paper: "stable across the 22 days").
    let ih_daily: Vec<f64> = ls
        .per_day
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| d.get(&RoamingLabel::IH).copied().unwrap_or(0.0))
        .collect();
    let min = ih_daily.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ih_daily.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 0.06, "I:H unstable: {min}..{max}");
}

#[test]
fn e7_classification_shares() {
    let f = fixture();
    let shares = f.classification.shares();
    let get = |c| shares.get(&c).copied().unwrap_or(0.0);
    // Paper: 62% / 8% / 26% / 4%.
    assert!(
        (0.55..0.70).contains(&get(DeviceClass::Smart)),
        "smart {}",
        get(DeviceClass::Smart)
    );
    assert!(
        (0.04..0.12).contains(&get(DeviceClass::Feat)),
        "feat {}",
        get(DeviceClass::Feat)
    );
    assert!(
        (0.20..0.32).contains(&get(DeviceClass::M2m)),
        "m2m {}",
        get(DeviceClass::M2m)
    );
    assert!(
        (0.01..0.08).contains(&get(DeviceClass::M2mMaybe)),
        "maybe {}",
        get(DeviceClass::M2mMaybe)
    );
    // Paper: ~21% of devices expose no APN.
    let no_apn = f.classification.devices_without_apn as f64 / f.summaries.len() as f64;
    assert!((0.12..0.30).contains(&no_apn), "no-APN {no_apn}");
}

#[test]
fn e8_e9_home_country_skew() {
    let f = fixture();
    let hc = population::home_countries(&f.summaries, &f.classification);
    let top3: f64 = hc.overall.iter().take(3).map(|(_, _, s)| s).sum();
    assert!((0.50..0.80).contains(&top3), "top-3 {top3} (paper ~60%)");
    let m2m_top3: f64 = ["NL", "SE", "ES"]
        .iter()
        .map(|iso| hc.by_class.row_share("m2m", iso))
        .sum();
    assert!(m2m_top3 > 0.70, "m2m NL/SE/ES {m2m_top3} (paper 83%)");
    let smart_top3: f64 = ["NL", "SE", "ES"]
        .iter()
        .map(|iso| hc.by_class.row_share("smart", iso))
        .sum();
    assert!(
        smart_top3 < m2m_top3 / 2.0,
        "m2m concentration must dwarf smartphones: {smart_top3} vs {m2m_top3}"
    );
}

#[test]
fn e10_class_label_structure() {
    let f = fixture();
    let b = population::class_label_breakdown(&f.summaries, &f.classification);
    // Fig. 6-right: I:H is mostly m2m.
    let ih_m2m = b.share_of_label(DeviceClass::M2m, RoamingLabel::IH);
    let ih_smart = b.share_of_label(DeviceClass::Smart, RoamingLabel::IH);
    assert!(
        (0.60..0.80).contains(&ih_m2m),
        "I:H m2m {ih_m2m} (paper 71.1%)"
    );
    assert!(
        (0.18..0.38).contains(&ih_smart),
        "I:H smart {ih_smart} (paper 27.1%)"
    );
    // Fig. 6-left: most m2m is inbound; phones are mostly native.
    let m2m_ih = b.share_of_class(DeviceClass::M2m, RoamingLabel::IH);
    let smart_ih = b.share_of_class(DeviceClass::Smart, RoamingLabel::IH);
    let feat_ih = b.share_of_class(DeviceClass::Feat, RoamingLabel::IH);
    assert!(
        (0.65..0.85).contains(&m2m_ih),
        "m2m I:H {m2m_ih} (paper 74.7%)"
    );
    assert!(
        (0.05..0.20).contains(&smart_ih),
        "smart I:H {smart_ih} (paper 12.1%)"
    );
    assert!(feat_ih < smart_ih, "feat should roam least: {feat_ih}");
}

#[test]
fn e11_active_days_contrast() {
    let f = fixture();
    let res = activity::active_days(
        &f.summaries,
        &f.classification,
        &[
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
        ],
    );
    let m2m = res[0].days.median().unwrap();
    let smart = res[1].days.median().unwrap();
    // Paper: 9 vs 2 days (4.5×).
    assert!((6.0..14.0).contains(&m2m), "m2m median {m2m}");
    assert!((1.0..4.0).contains(&smart), "smart median {smart}");
    assert!(m2m / smart > 2.5, "contrast too weak: {m2m}/{smart}");
}

#[test]
fn e12_gyration_contrast() {
    let f = fixture();
    let res = activity::gyration(
        &f.summaries,
        &f.classification,
        &[
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
        ],
    );
    let m2m_under_1km = res[0].gyration_km.fraction_at_or_below(1.0);
    assert!(
        (0.65..0.92).contains(&m2m_under_1km),
        "m2m <1km {m2m_under_1km} (paper ~80%)"
    );
    let smart_median = res[1].gyration_km.median().unwrap();
    assert!(smart_median > 1.0, "smartphones must move: {smart_median}");
}

#[test]
fn e13_rat_usage_shapes() {
    let f = fixture();
    let classes = [DeviceClass::M2m, DeviceClass::Feat];
    let any = rat_usage::rat_usage(&f.summaries, &f.classification, &classes, Plane::Any);
    let data = rat_usage::rat_usage(&f.summaries, &f.classification, &classes, Plane::Data);
    let voice = rat_usage::rat_usage(&f.summaries, &f.classification, &classes, Plane::Voice);
    // M2M is dominated by 2G (paper 77.4%).
    assert!(
        any[0].share("2G only") > 0.60,
        "m2m 2G-only {}",
        any[0].share("2G only")
    );
    // A real slice of M2M never touches data (paper 24.5%).
    assert!(
        (0.10..0.35).contains(&data[0].share("none")),
        "m2m no-data {}",
        data[0].share("none")
    );
    // And a slice never uses voice (paper 27.5%).
    assert!(
        (0.15..0.45).contains(&voice[0].share("none")),
        "m2m no-voice {}",
        voice[0].share("none")
    );
    // Feature phones: mostly 2G, most without data, almost all with voice.
    assert!(
        any[1].share("2G only") > 0.35,
        "feat 2G-only {}",
        any[1].share("2G only")
    );
    assert!(
        data[1].share("none") > 0.40,
        "feat no-data {}",
        data[1].share("none")
    );
    assert!(
        voice[1].share("none") < 0.15,
        "feat no-voice {}",
        voice[1].share("none")
    );
}

#[test]
fn e14_traffic_volume_shapes() {
    let f = fixture();
    let pairs = [
        (DeviceClass::M2m, StatusGroup::InboundRoaming),
        (DeviceClass::Smart, StatusGroup::Native),
        (DeviceClass::Smart, StatusGroup::InboundRoaming),
    ];
    let sig = traffic::traffic_dist(
        &f.summaries,
        &f.classification,
        &pairs,
        TrafficMetric::SignalingPerDay,
    );
    let calls = traffic::traffic_dist(
        &f.summaries,
        &f.classification,
        &pairs,
        TrafficMetric::CallsPerDay,
    );
    let bytes = traffic::traffic_dist(
        &f.summaries,
        &f.classification,
        &pairs,
        TrafficMetric::BytesPerDay,
    );
    // M2M signals less than native smartphones.
    assert!(
        sig[0].dist.median().unwrap() < sig[1].dist.median().unwrap(),
        "m2m should signal less than smartphones"
    );
    // Most inbound M2M devices never call.
    assert!(traffic::zero_fraction(&calls[0]) > 0.80);
    // Bill shock: native smartphones move far more data than inbound ones.
    let native = bytes[1].dist.median().unwrap();
    let inbound = bytes[2].dist.median().unwrap();
    assert!(
        native > 3.0 * inbound,
        "bill shock missing: {native} vs {inbound}"
    );
    // Inbound M2M data is tiny next to any smartphone population.
    assert!(bytes[0].dist.median().unwrap() < inbound / 100.0);
}

#[test]
fn e15_e17_smip_fingerprints() {
    let f = fixture();
    let pop = smip::identify(&f.summaries, &f.output.tacdb, f.output.catalog.apn_table());
    assert!(pop.native.len() > 20, "native meters {}", pop.native.len());
    assert!(
        pop.roaming.len() > 50,
        "roaming meters {}",
        pop.roaming.len()
    );
    // §4.4: one Dutch home operator, module vendors only.
    assert_eq!(pop.roaming_home_plmns.len(), 1);
    assert!(pop
        .roaming_vendors
        .iter()
        .all(|v| v == "Gemalto" || v == "Telit"));
    let native = smip::group_stats(&f.summaries, &pop.native, f.output.days);
    let roaming = smip::group_stats(&f.summaries, &pop.roaming, f.output.days);
    // Fig. 11-left: native long-lived, roaming short-lived.
    assert!(
        native.full_period_fraction > 0.5,
        "native full {}",
        native.full_period_fraction
    );
    assert!(
        roaming.active_days.fraction_at_or_below(5.0) > 0.30,
        "roaming ≤5d {}",
        roaming.active_days.fraction_at_or_below(5.0)
    );
    // Fig. 11-right: roaming meters signal several times more.
    let ratio =
        roaming.signaling_per_day.mean().unwrap() / native.signaling_per_day.mean().unwrap();
    assert!(ratio > 4.0, "signaling ratio {ratio} (paper ~10x)");
    // Failures concentrate on the roaming side (paper 10% vs 35%).
    assert!(roaming.failed_device_fraction > 2.0 * native.failed_device_fraction);
    // §7.1 RAT split.
    assert!(
        (roaming
            .rat_categories
            .get("2G only")
            .copied()
            .unwrap_or(0.0)
            - 1.0)
            .abs()
            < 1e-9
    );
    let native_3g = native.rat_categories.get("3G only").copied().unwrap_or(0.0);
    assert!(
        (0.5..0.85).contains(&native_3g),
        "native 3G-only {native_3g} (paper ~2/3)"
    );
}

#[test]
fn e18_cars_vs_meters() {
    let f = fixture();
    let (cars, meters) = verticals::compare(&f.summaries, f.output.catalog.apn_table());
    assert!(cars.devices > 10 && meters.devices > 50);
    assert!(cars.gyration_km.median().unwrap() > 50.0);
    assert!(meters.gyration_km.median().unwrap() < 0.5);
    assert!(
        cars.signaling_per_day.median().unwrap() > 2.0 * meters.signaling_per_day.median().unwrap()
    );
    assert!(cars.bytes_per_day.median().unwrap() > 100.0 * meters.bytes_per_day.median().unwrap());
}

#[test]
fn e19_pipeline_beats_baselines() {
    let f = fixture();
    let full = validate(&f.classification, &f.truth);
    let vendor = validate(
        &baseline::vendor_baseline(&f.output.tacdb, &f.summaries),
        &f.truth,
    );
    let apn = validate(
        &baseline::apn_only_baseline(&f.output.tacdb, &f.summaries, f.output.catalog.apn_table()),
        &f.truth,
    );
    let full_recall = full.m2m_recall.unwrap();
    assert!(full_recall > 0.75, "full recall {full_recall}");
    assert!(full.m2m_precision.unwrap() > 0.95);
    // The multi-step pipeline must dominate both baselines on recall —
    // the paper's §4.3 argument.
    assert!(
        full_recall > vendor.m2m_recall.unwrap(),
        "vendor baseline not beaten"
    );
    assert!(
        full_recall > apn.m2m_recall.unwrap(),
        "APN-only baseline not beaten"
    );
}

#[test]
fn ground_truth_never_leaks_into_records() {
    // The catalog's serialized form must not contain any vertical label:
    // classification works from observables only.
    let f = fixture();
    let some_rows: Vec<_> = f.output.catalog.iter().take(50).collect();
    let json = serde_json::to_string(&some_rows).unwrap();
    for v in Vertical::ALL {
        assert!(
            !json.contains(v.label()),
            "catalog leaks ground-truth label {v}"
        );
    }
}
