//! The §3 view: operate a global M2M platform and watch its IoT SIMs roam.
//!
//! Provisions global IoT SIMs from four HMNOs, simulates 11 days of
//! world-wide 4G attachment dynamics through the roaming-hub agreement
//! graph, and analyzes the HMNO-side signaling dataset exactly as the
//! paper does: footprint, per-device signaling load, VMNO usage and
//! switching, failure population.
//!
//! ```sh
//! cargo run --release --example m2m_platform
//! ```

use where_things_roam::core::analysis::platform;
use where_things_roam::core::report;
use where_things_roam::model::operators::well_known;
use where_things_roam::probes::wire;
use where_things_roam::scenarios::{M2mScenario, M2mScenarioConfig};

fn main() {
    let scenario = M2mScenario::new(M2mScenarioConfig {
        devices: 6_000,
        days: 11,
        seed: 2,
        g4_hole_fraction: 0.05,
    });
    println!("simulating 6,000 global IoT SIMs over 11 days…");
    let out = scenario.run();
    println!(
        "platform probe captured {} transactions from {} visible devices",
        out.transactions.len(),
        platform::per_device(&out.transactions).len()
    );

    // Footprint (Fig. 2 / §3.2).
    let ov = platform::overview(&out.transactions);
    println!("\nHMNO footprint:");
    println!(
        "  {:<6} {:>8} {:>8} {:>10} {:>8} {:>10}",
        "HMNO", "devices", "share", "countries", "VMNOs", "home-frac"
    );
    for (iso, count, share) in &ov.hmno_device_shares {
        println!(
            "  {:<6} {:>8.0} {:>7.1}% {:>10} {:>8} {:>9.1}%",
            iso,
            count,
            share * 100.0,
            ov.countries_per_hmno.get(iso).copied().unwrap_or(0),
            ov.vmnos_per_hmno.get(iso).copied().unwrap_or(0),
            ov.home_fraction_per_hmno.get(iso).copied().unwrap_or(0.0) * 100.0
        );
    }

    // Device dynamics (Fig. 3), Spanish HMNO as in §3.3.
    let dynamics = platform::dynamics(&out.transactions, Some(well_known::ES_HMNO));
    print!(
        "\n{}",
        report::cdf(
            "signaling records per ES device (Fig. 3-left)",
            &dynamics.records_all,
            8
        )
    );
    print!(
        "{}",
        report::cdf(
            "VMNOs per roaming ES device (Fig. 3-center)",
            &dynamics.vmnos_roaming,
            6
        )
    );
    print!(
        "{}",
        report::cdf(
            "inter-VMNO switches, multi-VMNO ES devices (Fig. 3-right)",
            &dynamics.switches_multi_vmno,
            8
        )
    );
    println!(
        "\n{:.1}% of ES devices never complete a 4G procedure (paper: 40%); \
         the worst misprovisioned device attempted {} VMNOs (paper: 19)",
        dynamics.only_failed_fraction * 100.0,
        dynamics.max_vmnos_failed_device
    );

    // Roaming architecture selection (Fig. 1, §3.2): why far destinations
    // abandon the European home-routed default.
    use where_things_roam::platform::ArchitectureComparison;
    use where_things_roam::radio::geo::GeoPoint;
    let madrid = GeoPoint::new(40.4, -3.7);
    let hub = GeoPoint::new(50.1, 8.7); // the carrier's European PoP
    println!("\nuser-plane latency penalty for ES-homed SIMs (Fig. 1 architectures):");
    println!(
        "  {:<12} {:>12} {:>8} {:>8}  chosen (HR budget 50 ms)",
        "visited", "home-routed", "LBO", "IHBO"
    );
    for (name, point) in [
        ("France", GeoPoint::new(46.5, 2.5)),
        ("UK", GeoPoint::new(53.0, -1.5)),
        ("Brazil", GeoPoint::new(-10.0, -52.0)),
        ("Australia", GeoPoint::new(-25.0, 134.0)),
    ] {
        let cmp = ArchitectureComparison::evaluate(madrid, point, hub);
        println!(
            "  {:<12} {:>9.1} ms {:>5.1} ms {:>5.1} ms  {:?}",
            name,
            cmp.home_routed_ms,
            cmp.local_breakout_ms,
            cmp.ipx_breakout_ms,
            cmp.best_if_hr_costs_more_than(50.0)
        );
    }

    // Persist the dataset in the compact wire format.
    let encoded = wire::encode_log(&out.transactions);
    println!(
        "\nwire format: {} transactions → {:.1} MiB ({} bytes/record)",
        out.transactions.len(),
        encoded.len() as f64 / (1024.0 * 1024.0),
        wire::RECORD_SIZE
    );
    let decoded = wire::decode_log(encoded).expect("roundtrip");
    assert_eq!(decoded.len(), out.transactions.len());
    println!("roundtrip OK");
}
