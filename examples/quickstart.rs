//! Quickstart: simulate a small device fleet on a visited operator, build
//! the devices-catalog through the probe pipeline, run the paper's
//! classification, and print what the operator would learn.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use where_things_roam::core::analysis::population;
use where_things_roam::core::classify::Classifier;
use where_things_roam::core::report;
use where_things_roam::core::summary::summarize;
use where_things_roam::core::validate::validate;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

fn main() {
    // 1. Simulate three weeks of a visited MNO's device population —
    //    native users, MVNO users, inbound-roaming smart meters, cars,
    //    trackers and tourists — collected by the MNO's passive probes.
    let scenario = MnoScenario::new(MnoScenarioConfig {
        devices: 4_000,
        days: 22,
        seed: 1,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    });
    println!("simulating 4,000 devices over 22 days…");
    let output = scenario.run();
    println!(
        "probe saw {} radio events, {} CDRs, {} xDRs → {} catalog rows for {} devices",
        output.record_counts.0,
        output.record_counts.1,
        output.record_counts.2,
        output.catalog.len(),
        output.catalog.device_count()
    );

    // 2. Fold the daily catalog into per-device summaries.
    let summaries = summarize(&output.catalog);

    // 3. Run the paper's multi-step classifier (APN keywords → validated
    //    APNs → device-property propagation). It sees only probe records.
    let classification =
        Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());
    println!("\nclassification (§4.3 pipeline):");
    for (class, share) in classification.shares() {
        println!("  {:<10} {:>5.1}%", class.label(), share * 100.0);
    }
    println!(
        "  ({} distinct APNs, {} validated as M2M, {} devices had no APN)",
        classification.total_apns,
        classification.validated_apns.len(),
        classification.devices_without_apn
    );

    // 4. Where do the inbound roamers come from?
    let hc = population::home_countries(&summaries, &classification);
    print!(
        "\n{}",
        report::shares_table("inbound roamers by home country (top 8)", &hc.overall, 8)
    );

    // 5. Score against the simulator's hidden ground truth — the check the
    //    paper's authors could not run.
    let truth: std::collections::BTreeMap<u64, _> = summaries
        .iter()
        .filter_map(|s| output.ground_truth.get(&s.user).map(|v| (s.user, *v)))
        .collect();
    let v = validate(&classification, &truth);
    println!(
        "\nvalidation vs ground truth: m2m precision {:.1}%, recall {:.1}%, accuracy {:.1}%",
        v.m2m_precision.unwrap_or(0.0) * 100.0,
        v.m2m_recall.unwrap_or(0.0) * 100.0,
        v.matrix.accuracy() * 100.0
    );
}
