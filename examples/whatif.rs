//! What-if studies from the paper's discussion (§8): where does the
//! ecosystem go after 2019?
//!
//! Three levers, composed:
//!
//! 1. **GSMA transparency** (§1): roaming partners publish their dedicated
//!    M2M IMSI ranges, removing the need for inference on compliant SIMs.
//! 2. **NB-IoT migration** (§8): meter fleets move from 2G modules to
//!    LPWA radios, becoming RAT-identifiable.
//! 3. **2G sunset** (§6.1/§8): the visited country retires 2G — fatal for
//!    a fleet the paper measures as 77.4% 2G-only, survivable after the
//!    migration.
//!
//! ```sh
//! cargo run --release --example whatif
//! ```

use where_things_roam::core::classify::Classifier;
use where_things_roam::core::summary::summarize;
use where_things_roam::core::validate::validate;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

struct Outcome {
    label: &'static str,
    visible_m2m: usize,
    recall: f64,
    rat_detected: usize,
    range_detected: usize,
}

fn simulate(label: &'static str, nbiot: f64, sunset: bool, transparency: bool) -> Outcome {
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 3_000,
        days: 14,
        seed: 12,
        nbiot_meter_fraction: nbiot,
        sunset_2g_uk: sunset,
        gsma_transparency: transparency,
        record_loss_fraction: 0.0,
    })
    .run();
    let summaries = summarize(&output.catalog);
    let classification =
        Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());
    let truth: std::collections::BTreeMap<_, _> = summaries
        .iter()
        .filter_map(|s| output.ground_truth.get(&s.user).map(|v| (s.user, *v)))
        .collect();
    let visible_m2m = truth.values().filter(|v| v.is_m2m()).count();
    let v = validate(&classification, &truth);
    Outcome {
        label,
        visible_m2m,
        recall: v.m2m_recall.unwrap_or(0.0),
        rat_detected: classification.nbiot_detected,
        range_detected: classification.range_detected,
    }
}

fn main() {
    println!("simulating four worlds (3,000 devices × 14 days each)…\n");
    let worlds = [
        simulate("2019 baseline (the paper's world)", 0.0, false, false),
        simulate("+ GSMA range transparency", 0.0, false, true),
        simulate("+ NB-IoT meter migration (70%)", 0.7, false, false),
        simulate("2G sunset without migration", 0.0, true, false),
    ];
    println!(
        "{:<36} {:>12} {:>9} {:>12} {:>13}",
        "world", "visible m2m", "recall", "RAT-tagged", "range-tagged"
    );
    for w in &worlds {
        println!(
            "{:<36} {:>12} {:>8.1}% {:>12} {:>13}",
            w.label,
            w.visible_m2m,
            w.recall * 100.0,
            w.rat_detected,
            w.range_detected
        );
    }
    let baseline = &worlds[0];
    let sunset = &worlds[3];
    println!(
        "\nthe 2G sunset silences {:.0}% of the visible M2M fleet ({} → {}) — \
         the paper's 77.4%-2G-only finding turned into an operational risk number.",
        (1.0 - sunset.visible_m2m as f64 / baseline.visible_m2m as f64) * 100.0,
        baseline.visible_m2m,
        sunset.visible_m2m
    );
}
