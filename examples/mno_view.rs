//! The §4–§6 view: a visited MNO characterizes its device population.
//!
//! Runs the MNO scenario, then walks the paper's full analysis chain:
//! roaming labels (§4.2), classification (§4.3), class × label structure
//! (Fig. 6), activity and mobility (Fig. 7/8), RAT usage (Fig. 9) and
//! traffic volumes (Fig. 10) — including the baseline comparison of §4.3.
//!
//! ```sh
//! cargo run --release --example mno_view
//! ```

use where_things_roam::core::analysis::activity::{self, StatusGroup};
use where_things_roam::core::analysis::population;
use where_things_roam::core::analysis::rat_usage::{self, Plane};
use where_things_roam::core::analysis::traffic::{self, TrafficMetric};
use where_things_roam::core::baseline;
use where_things_roam::core::classify::{Classifier, DeviceClass};
use where_things_roam::core::report;
use where_things_roam::core::summary::summarize;
use where_things_roam::core::validate::validate;
use where_things_roam::model::roaming::RoamingLabel;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

fn main() {
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 6_000,
        days: 22,
        seed: 3,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let summaries = summarize(&output.catalog);
    let classification =
        Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());

    // §4.2 — roaming labels.
    let labels = population::label_shares(&output.catalog);
    println!("daily roaming-label shares (§4.2):");
    for label in RoamingLabel::ALL {
        if let Some(share) = labels.overall.get(&label) {
            println!(
                "  {label}  {:>5.1}%  {}",
                share * 100.0,
                report::bar(*share, 30)
            );
        }
    }

    // Fig. 6 — class × label.
    let breakdown = population::class_label_breakdown(&summaries, &classification);
    print!(
        "\n{}",
        report::heatmap_row_normalized("device class × roaming label (Fig. 6)", &breakdown.table)
    );
    println!(
        "of international inbound roamers, {:.1}% are M2M (paper: 71.1%)",
        breakdown.share_of_label(DeviceClass::M2m, RoamingLabel::IH) * 100.0
    );

    // Fig. 7 — active days, inbound roamers.
    let pairs = [
        (DeviceClass::M2m, StatusGroup::InboundRoaming),
        (DeviceClass::Smart, StatusGroup::InboundRoaming),
    ];
    let days = activity::active_days(&summaries, &classification, &pairs);
    println!(
        "\nactive days (Fig. 7): inbound m2m median {:.0}, inbound smart median {:.0}",
        days[0].days.median().unwrap_or(0.0),
        days[1].days.median().unwrap_or(0.0)
    );

    // Fig. 8 — gyration.
    let gyr = activity::gyration(&summaries, &classification, &pairs);
    println!(
        "gyration (Fig. 8): {:.1}% of inbound m2m under 1 km; inbound smart median {:.1} km",
        gyr[0].gyration_km.fraction_at_or_below(1.0) * 100.0,
        gyr[1].gyration_km.median().unwrap_or(0.0)
    );

    // Fig. 9 — RAT usage.
    println!("\nRAT usage (Fig. 9), m2m class:");
    for plane in [Plane::Any, Plane::Data, Plane::Voice] {
        let usage = rat_usage::rat_usage(&summaries, &classification, &[DeviceClass::M2m], plane);
        let mut cats: Vec<(&String, &f64)> = usage[0].shares.iter().collect();
        cats.sort_by(|a, b| b.1.total_cmp(a.1));
        let top: Vec<String> = cats
            .iter()
            .take(3)
            .map(|(k, v)| format!("{k} {:.0}%", **v * 100.0))
            .collect();
        println!("  {:<12} {}", plane.label(), top.join(", "));
    }

    // Fig. 10 — traffic volumes.
    let all_pairs = [
        (DeviceClass::M2m, StatusGroup::InboundRoaming),
        (DeviceClass::Smart, StatusGroup::Native),
        (DeviceClass::Smart, StatusGroup::InboundRoaming),
    ];
    let bytes = traffic::traffic_dist(
        &summaries,
        &classification,
        &all_pairs,
        TrafficMetric::BytesPerDay,
    );
    println!("\ndata per device-day (Fig. 10-right, medians):");
    for d in &bytes {
        println!(
            "  {:<6} {:<16} {:>12.0} B",
            d.class.label(),
            d.status.label(),
            d.dist.median().unwrap_or(0.0)
        );
    }

    // Extension E21 — who pays for the network they use?
    let econ = where_things_roam::core::analysis::revenue::inbound_economics(
        &summaries,
        &classification,
        where_things_roam::core::analysis::revenue::RateCard::default(),
    );
    println!("\ninbound roaming economics (extension E21):");
    for e in &econ {
        println!(
            "  {:<10} load {:>5.1}%  revenue {:>5.1}%  median €{:.4}/device",
            e.class.label(),
            e.load_share * 100.0,
            e.revenue_share * 100.0,
            e.revenue_median_per_device
        );
    }

    // Extension E22 — machine vs human diurnal shapes.
    let profiles = where_things_roam::core::analysis::diurnal::profiles(
        &summaries,
        &classification,
        &[DeviceClass::M2m, DeviceClass::Smart],
    );
    println!("\ndiurnal shapes (extension E22):");
    for p in &profiles {
        println!(
            "  {:<6} night share {:>5.1}%  peak/trough {:>5.1}x",
            p.class.label(),
            p.night_share * 100.0,
            p.peak_to_trough
        );
    }

    // §4.3 — pipeline vs baselines, scored against hidden ground truth.
    let truth: std::collections::BTreeMap<u64, _> = summaries
        .iter()
        .filter_map(|s| output.ground_truth.get(&s.user).map(|v| (s.user, *v)))
        .collect();
    println!("\nclassifier comparison (m2m precision / recall):");
    for (name, c) in [
        ("full pipeline", classification.clone()),
        (
            "vendor-only baseline",
            baseline::vendor_baseline(&output.tacdb, &summaries),
        ),
        (
            "APN-only baseline",
            baseline::apn_only_baseline(&output.tacdb, &summaries, output.catalog.apn_table()),
        ),
    ] {
        let v = validate(&c, &truth);
        println!(
            "  {:<22} {:>5.1}% / {:>5.1}%",
            name,
            v.m2m_precision.unwrap_or(0.0) * 100.0,
            v.m2m_recall.unwrap_or(0.0) * 100.0
        );
    }
}
