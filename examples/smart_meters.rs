//! The §7 view: smart energy meters, native vs roaming, and the
//! meters-vs-connected-cars contrast.
//!
//! Identifies SMIP-native meters through the operator's dedicated IMSI
//! range and SMIP-roaming meters through energy-company APN patterns,
//! verifies the paper's §4.4 fingerprints (single Dutch home operator,
//! Gemalto/Telit module hardware), and reproduces the Fig. 11 / Fig. 12
//! comparisons.
//!
//! ```sh
//! cargo run --release --example smart_meters
//! ```

use where_things_roam::core::analysis::{smip, verticals};
use where_things_roam::core::classify::Classifier;
use where_things_roam::core::report;
use where_things_roam::core::summary::summarize;
use where_things_roam::scenarios::{MnoScenario, MnoScenarioConfig};

fn main() {
    let output = MnoScenario::new(MnoScenarioConfig {
        devices: 6_000,
        days: 22,
        seed: 4,
        nbiot_meter_fraction: 0.0,
        sunset_2g_uk: false,
        gsma_transparency: false,
        record_loss_fraction: 0.0,
    })
    .run();
    let summaries = summarize(&output.catalog);
    // The classifier runs first in a real deployment; here we only need
    // its side effects on the summaries, so run it for the printout.
    let classification =
        Classifier::new(&output.tacdb).classify(&summaries, output.catalog.apn_table());
    println!(
        "population: {} devices, {} classified m2m",
        summaries.len(),
        classification
            .counts()
            .get(&where_things_roam::core::classify::DeviceClass::M2m)
            .copied()
            .unwrap_or(0)
    );

    // §4.4 — identify the two SMIP populations.
    let pop = smip::identify(&summaries, &output.tacdb, output.catalog.apn_table());
    println!(
        "\nSMIP identification: {} native (dedicated IMSI range), {} roaming (energy APNs)",
        pop.native.len(),
        pop.roaming.len()
    );
    println!("  energy APN patterns matched: {:?}", pop.matched_patterns);
    println!(
        "  roaming meters' home operators: {} (paper: exactly one, Dutch)",
        pop.roaming_home_plmns.len()
    );
    println!(
        "  roaming meters' hardware vendors: {:?} (paper: Gemalto and Telit)",
        pop.roaming_vendors
    );

    // Fig. 11 — activity and signaling.
    let native = smip::group_stats(&summaries, &pop.native, output.days);
    let roaming = smip::group_stats(&summaries, &pop.roaming, output.days);
    print!(
        "\n{}",
        report::cdf(
            "native meters: active days (Fig. 11-left)",
            &native.active_days,
            6
        )
    );
    print!(
        "{}",
        report::cdf(
            "roaming meters: active days (Fig. 11-left)",
            &roaming.active_days,
            6
        )
    );
    println!(
        "native meters active the whole window: {:.1}% (day-1 cohort shown in paper: 83%)",
        native.full_period_fraction * 100.0
    );
    println!(
        "signaling per device-day: roaming {:.1} vs native {:.1} (paper: ~10x)",
        roaming.signaling_per_day.mean().unwrap_or(0.0),
        native.signaling_per_day.mean().unwrap_or(0.0)
    );
    println!(
        "devices with failed signaling: native {:.1}%, roaming {:.1}% (paper: 10% vs 35%)",
        native.failed_device_fraction * 100.0,
        roaming.failed_device_fraction * 100.0
    );
    println!("RAT usage: native {:?}", native.rat_categories);
    println!("           roaming {:?}", roaming.rat_categories);

    // Fig. 12 — meters vs connected cars.
    let (cars, meters) = verticals::compare(&summaries, output.catalog.apn_table());
    println!(
        "\nverticals (Fig. 12): {} connected cars vs {} smart meters (inbound roaming)",
        cars.devices, meters.devices
    );
    println!(
        "  {:<18} {:>12} {:>16} {:>14}",
        "", "gyration", "signaling/day", "bytes/day"
    );
    for p in [&cars, &meters] {
        println!(
            "  {:<18} {:>9.1} km {:>16.1} {:>14.0}",
            p.name,
            p.gyration_km.median().unwrap_or(0.0),
            p.signaling_per_day.median().unwrap_or(0.0),
            p.bytes_per_day.median().unwrap_or(0.0)
        );
    }
    println!("\ncars behave like roaming smartphones; meters are stationary and silent — Fig. 12's contrast.");
}
