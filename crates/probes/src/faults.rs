//! Probe-side fault injection: deterministic record loss.
//!
//! Real passive-monitoring deployments drop records — probe restarts,
//! buffer overruns, sampling. [`LossySink`] wraps any [`EventSink`] and
//! deterministically discards a configured fraction of events before they
//! reach it (the record-layer analogue of smoltcp's `--drop-chance` fault
//! injection). Robustness of the downstream pipeline to this loss is part
//! of the test suite: the paper's statistics are shares and distributions,
//! which degrade gracefully rather than break.

use std::collections::HashMap;
use wtr_model::hash::mix64;
use wtr_sim::events::SimEvent;
use wtr_sim::world::EventSink;

/// An [`EventSink`] adapter that drops a deterministic pseudo-random
/// fraction of events.
///
/// The drop coin for an event is a pure function of
/// `(salt, device, per-device event sequence)` — **not** of the global
/// arrival order. Events from one device always arrive in that device's
/// own order (the engine dispatches each agent's wake-ups in per-agent
/// sequence), so the per-device counter assigns the same coin to the
/// same event no matter how events from *different* devices interleave:
/// the dropped-record *set* is identical across shard counts, thread
/// counts, and the `run` / `run_streaming` scenario paths. An earlier
/// revision keyed the coin on a global `seen` counter, which baked the
/// cross-device interleaving into every coin and could never be
/// shard-stable.
#[derive(Debug, Clone)]
pub struct LossySink<S> {
    inner: S,
    drop_fraction: f64,
    salt: u64,
    /// Per-device event counters: `device -> events seen so far`.
    device_seq: HashMap<u64, u64>,
    seen: u64,
    dropped: u64,
}

impl<S: EventSink> LossySink<S> {
    /// Wraps `inner`, dropping `drop_fraction` of events (`0.0..=1.0`).
    pub fn new(inner: S, drop_fraction: f64, salt: u64) -> Self {
        LossySink {
            inner,
            drop_fraction: drop_fraction.clamp(0.0, 1.0),
            salt,
            device_seq: HashMap::new(),
            seen: 0,
            dropped: 0,
        }
    }

    /// Merges the loss counters of another sink into this one (the
    /// shard-merge path; shard sinks observe disjoint device
    /// populations, so the counters are simply additive).
    pub fn absorb_counters<T>(&mut self, other: &LossySink<T>) {
        self.seen += other.seen;
        self.dropped += other.dropped;
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Reference to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Events observed (dropped + forwarded).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<S: EventSink> EventSink for LossySink<S> {
    fn on_event(&mut self, event: &SimEvent) {
        self.seen += 1;
        let seq = self.device_seq.entry(event.device()).or_insert(0);
        *seq += 1;
        // Deterministic per-event coin keyed on (salt, device, per-device
        // sequence): repeated timestamps from one device don't share fate,
        // and the coin never depends on how other devices interleave —
        // the loss set is shard-count-invariant.
        let h = mix64(mix64(self.salt ^ event.device()) ^ *seq);
        let coin = h as f64 / u64::MAX as f64;
        if coin < self.drop_fraction {
            self.dropped += 1;
            return;
        }
        self.inner.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::ids::{Imei, Imsi, Plmn, Tac};
    use wtr_model::rat::Rat;
    use wtr_model::time::SimTime;
    use wtr_sim::events::{ProcedureResult, ProcedureType, SignalingEvent};
    use wtr_sim::world::VecSink;

    fn event(i: u64) -> SimEvent {
        SimEvent::Signaling(SignalingEvent {
            time: SimTime::from_secs(i),
            device: i % 17,
            imsi: Imsi::new(Plmn::of(214, 7), i).unwrap(),
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited: Plmn::of(234, 30),
            sector: None,
            rat: Rat::G4,
            procedure: ProcedureType::Authentication,
            result: ProcedureResult::Ok,
        })
    }

    #[test]
    fn zero_loss_forwards_everything() {
        let mut sink = LossySink::new(VecSink::default(), 0.0, 1);
        for i in 0..500 {
            sink.on_event(&event(i));
        }
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.inner().events.len(), 500);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sink = LossySink::new(VecSink::default(), 1.0, 1);
        for i in 0..100 {
            sink.on_event(&event(i));
        }
        assert_eq!(sink.dropped(), 100);
        assert!(sink.into_inner().events.is_empty());
    }

    #[test]
    fn loss_rate_approximately_respected() {
        let mut sink = LossySink::new(VecSink::default(), 0.3, 7);
        for i in 0..20_000 {
            sink.on_event(&event(i));
        }
        let rate = sink.dropped() as f64 / sink.seen() as f64;
        assert!((0.27..0.33).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn deterministic_in_salt() {
        let run = |salt: u64| {
            let mut sink = LossySink::new(VecSink::default(), 0.5, salt);
            for i in 0..200 {
                sink.on_event(&event(i));
            }
            sink.into_inner().events.len()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn drop_set_is_interleaving_invariant() {
        // The same per-device event streams, fed in two very different
        // global interleavings, must drop exactly the same events. This
        // is the property that makes record loss shard-count-invariant:
        // sharding only changes the cross-device interleaving.
        let devices = 11u64;
        let per_device = 400u64;
        let survivors = |order: &[(u64, u64)]| {
            let mut sink = LossySink::new(VecSink::default(), 0.3, 99);
            for &(dev, k) in order {
                // Event content depends on (dev, k) only.
                let mut e = event(dev);
                if let SimEvent::Signaling(s) = &mut e {
                    s.time = SimTime::from_secs(k * 60);
                    s.device = dev;
                }
                sink.on_event(&e);
            }
            let set: std::collections::BTreeSet<(u64, u64)> = sink
                .inner()
                .events
                .iter()
                .map(|e| (e.device(), e.time().as_secs()))
                .collect();
            (set, sink.dropped())
        };
        // Interleaving A: device-major (a 1-shard run).
        let a: Vec<(u64, u64)> = (0..devices)
            .flat_map(|d| (0..per_device).map(move |k| (d, k)))
            .collect();
        // Interleaving B: time-major round-robin (a serial run).
        let b: Vec<(u64, u64)> = (0..per_device)
            .flat_map(|k| (0..devices).map(move |d| (d, k)))
            .collect();
        assert_eq!(survivors(&a), survivors(&b));
    }

    #[test]
    fn fraction_clamped() {
        let sink = LossySink::new(VecSink::default(), 7.5, 0);
        assert_eq!(sink.drop_fraction, 1.0);
        let sink = LossySink::new(VecSink::default(), -1.0, 0);
        assert_eq!(sink.drop_fraction, 0.0);
    }
}
