//! Probe-side fault injection: deterministic record loss.
//!
//! Real passive-monitoring deployments drop records — probe restarts,
//! buffer overruns, sampling. [`LossySink`] wraps any [`EventSink`] and
//! deterministically discards a configured fraction of events before they
//! reach it (the record-layer analogue of smoltcp's `--drop-chance` fault
//! injection). Robustness of the downstream pipeline to this loss is part
//! of the test suite: the paper's statistics are shares and distributions,
//! which degrade gracefully rather than break.

use wtr_model::hash::mix64;
use wtr_sim::events::SimEvent;
use wtr_sim::world::EventSink;

/// An [`EventSink`] adapter that drops a deterministic pseudo-random
/// fraction of events.
#[derive(Debug, Clone)]
pub struct LossySink<S> {
    inner: S,
    drop_fraction: f64,
    salt: u64,
    seen: u64,
    dropped: u64,
}

impl<S: EventSink> LossySink<S> {
    /// Wraps `inner`, dropping `drop_fraction` of events (`0.0..=1.0`).
    pub fn new(inner: S, drop_fraction: f64, salt: u64) -> Self {
        LossySink {
            inner,
            drop_fraction: drop_fraction.clamp(0.0, 1.0),
            salt,
            seen: 0,
            dropped: 0,
        }
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Reference to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Events observed (dropped + forwarded).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<S: EventSink> EventSink for LossySink<S> {
    fn on_event(&mut self, event: &SimEvent) {
        self.seen += 1;
        // Deterministic per-event coin: device, time and arrival order all
        // feed the hash so repeated timestamps from one device don't share
        // fate.
        let h =
            mix64(event.device() ^ mix64(event.time().as_secs()) ^ mix64(self.salt ^ self.seen));
        let coin = h as f64 / u64::MAX as f64;
        if coin < self.drop_fraction {
            self.dropped += 1;
            return;
        }
        self.inner.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::ids::{Imei, Imsi, Plmn, Tac};
    use wtr_model::rat::Rat;
    use wtr_model::time::SimTime;
    use wtr_sim::events::{ProcedureResult, ProcedureType, SignalingEvent};
    use wtr_sim::world::VecSink;

    fn event(i: u64) -> SimEvent {
        SimEvent::Signaling(SignalingEvent {
            time: SimTime::from_secs(i),
            device: i % 17,
            imsi: Imsi::new(Plmn::of(214, 7), i).unwrap(),
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited: Plmn::of(234, 30),
            sector: None,
            rat: Rat::G4,
            procedure: ProcedureType::Authentication,
            result: ProcedureResult::Ok,
        })
    }

    #[test]
    fn zero_loss_forwards_everything() {
        let mut sink = LossySink::new(VecSink::default(), 0.0, 1);
        for i in 0..500 {
            sink.on_event(&event(i));
        }
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.inner().events.len(), 500);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sink = LossySink::new(VecSink::default(), 1.0, 1);
        for i in 0..100 {
            sink.on_event(&event(i));
        }
        assert_eq!(sink.dropped(), 100);
        assert!(sink.into_inner().events.is_empty());
    }

    #[test]
    fn loss_rate_approximately_respected() {
        let mut sink = LossySink::new(VecSink::default(), 0.3, 7);
        for i in 0..20_000 {
            sink.on_event(&event(i));
        }
        let rate = sink.dropped() as f64 / sink.seen() as f64;
        assert!((0.27..0.33).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn deterministic_in_salt() {
        let run = |salt: u64| {
            let mut sink = LossySink::new(VecSink::default(), 0.5, salt);
            for i in 0..200 {
                sink.on_event(&event(i));
            }
            sink.into_inner().events.len()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fraction_clamped() {
        let sink = LossySink::new(VecSink::default(), 7.5, 0);
        assert_eq!(sink.drop_fraction, 1.0);
        let sink = LossySink::new(VecSink::default(), -1.0, 0);
        assert_eq!(sink.drop_fraction, 0.0);
    }
}
