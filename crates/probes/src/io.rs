//! JSONL persistence for datasets: export and re-import transaction logs
//! and devices-catalogs.
//!
//! This is the bridge to *real* operator data: anything that can be mapped
//! into these line formats runs through the whole `wtr-core` pipeline
//! unchanged. One JSON object per line, so streams of arbitrary size can
//! be processed without loading everything (readers work line-by-line over
//! any [`BufRead`]).
//!
//! Two formats:
//! * **transactions** — one [`M2mTransaction`] per line (the §3.1 schema);
//! * **catalog** — one [`CatalogEntry`] per line, preceded by a single
//!   header line carrying the window length.

use crate::catalog::{CatalogEntry, DevicesCatalog, MobilityAccum};
use crate::records::M2mTransaction;
use crate::scan::{self, Scanner};
use crate::wire;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, Read, Write};
use wtr_model::ids::{Plmn, Tac};
use wtr_model::intern::{ApnSym, ApnTable};
use wtr_model::rat::RadioFlags;
use wtr_model::roaming::RoamingLabel;
use wtr_model::time::Day;
use wtr_sim::par;
use wtr_sim::stream::RecordStream;

/// Header line of a catalog JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogHeader {
    /// Format marker, always `"wtr-catalog"`.
    pub format: String,
    /// Observation-window length in days.
    pub window_days: u32,
    /// Number of rows that follow.
    pub rows: usize,
}

/// Marker value for [`CatalogHeader::format`].
pub const CATALOG_FORMAT: &str = "wtr-catalog";

/// Errors raised by the JSONL readers/writers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line failed to parse as the expected JSON object.
    Parse {
        /// 1-based line number.
        line: usize,
        /// serde error description.
        message: String,
    },
    /// The catalog header was missing or malformed.
    BadHeader(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::BadHeader(m) => write!(f, "bad catalog header: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a transaction log as JSONL (one transaction per line).
pub fn write_transactions<W: Write>(
    mut out: W,
    transactions: &[M2mTransaction],
) -> Result<(), IoError> {
    for (idx, t) in transactions.iter().enumerate() {
        serde_json::to_writer(&mut out, t).map_err(|e| IoError::Parse {
            // 1-based line the failed record would have landed on.
            line: idx + 1,
            message: e.to_string(),
        })?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Slices `text` into non-blank lines with their 1-based line numbers.
/// `first_line` is the number of `text`'s first physical line (2 when a
/// header line was consumed separately).
///
/// Borrowing slices out of one backing `String` — instead of collecting
/// an owned `String` per row via `BufRead::lines` — is the JSONL ingest
/// hot path's big win: one allocation per file, not one per record.
fn numbered_line_slices(text: &str, first_line: usize) -> Vec<(usize, &str)> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(idx, line)| (first_line + idx, line))
        .collect()
}

/// Parses numbered JSONL lines in parallel (`wtr_sim::par`), preserving
/// line order; on failure, the error reports the *earliest* bad line,
/// exactly as a serial reader would.
///
/// Each line first goes through the schema-specialized scanner
/// ([`crate::scan`]); lines that deviate from the canonical shape fall
/// back to the serde parser, which owns all error reporting — so the
/// result (value or error, message and line number) is identical to
/// [`parse_lines_serde`] on every input.
fn parse_lines<T: serde::Deserialize + scan::FastParse + Send>(
    lines: &[(usize, &str)],
) -> Result<Vec<T>, IoError> {
    par::par_map(lines, |(num, line)| {
        if let Some(v) = T::fast_parse(line) {
            return Ok(v);
        }
        serde_json::from_str::<T>(line).map_err(|e| IoError::Parse {
            line: *num,
            message: e.to_string(),
        })
    })
    .into_iter()
    .collect()
}

/// Serde-only twin of [`parse_lines`]: the reference implementation the
/// scanner's fallback contract is checked against (equivalence tests and
/// the `io_throughput` ablation benches).
fn parse_lines_serde<T: serde::Deserialize + Send>(
    lines: &[(usize, &str)],
) -> Result<Vec<T>, IoError> {
    par::par_map(lines, |(num, line)| {
        serde_json::from_str::<T>(line).map_err(|e| IoError::Parse {
            line: *num,
            message: e.to_string(),
        })
    })
    .into_iter()
    .collect()
}

/// Reads a transaction log written by [`write_transactions`] (or produced
/// by any tool emitting the same schema). Lines are parsed in parallel
/// as borrowed slices of one backing buffer; the output order (and any
/// reported parse error) matches a serial read.
pub fn read_transactions<R: BufRead>(mut input: R) -> Result<Vec<M2mTransaction>, IoError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    parse_lines(&numbered_line_slices(&text, 1))
}

/// [`read_transactions`] without the scanner fast path: the serde-only
/// reference reader (equivalence tests and ablation benches).
pub fn read_transactions_serde<R: BufRead>(mut input: R) -> Result<Vec<M2mTransaction>, IoError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    parse_lines_serde(&numbered_line_slices(&text, 1))
}

/// The JSONL wire form of one catalog row: identical field names and
/// order to [`CatalogEntry`], with `apns` spelled out as the sorted list
/// of strings (resolved through the catalog's intern table). This keeps
/// the line format — byte for byte — what it was before symbols existed,
/// while the in-memory entry stores compact `ApnSym` keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CatalogRowWire {
    user: u64,
    day: Day,
    sim_plmn: Plmn,
    tac: Tac,
    label: RoamingLabel,
    events: u64,
    failed_events: u64,
    calls: u64,
    sms: u64,
    call_secs: u64,
    data_sessions: u64,
    bytes_up: u64,
    bytes_down: u64,
    visited: BTreeSet<u32>,
    apns: BTreeSet<String>,
    radio_flags: RadioFlags,
    sector_set: BTreeSet<u64>,
    hourly: [u32; 24],
    in_designated_range: bool,
    in_published_m2m_range: bool,
    mobility: MobilityAccum,
}

impl scan::FastParse for CatalogRowWire {
    /// Matches the canonical [`write_catalog`] row shape: the struct's
    /// keys in declaration order, compact separators, validated-range
    /// scalars. Anything else bails to serde (see [`crate::scan`]).
    fn fast_parse(line: &str) -> Option<Self> {
        let mut sc = Scanner::new(line);
        sc.lit("{\"user\":")?;
        let user = sc.u64_val()?;
        sc.lit(",\"day\":")?;
        let day = Day(sc.u32_val()?);
        sc.lit(",\"sim_plmn\":")?;
        let sim_plmn = sc.plmn()?;
        sc.lit(",\"tac\":")?;
        let tac = sc.tac()?;
        sc.lit(",\"label\":")?;
        let label = sc.roaming_label()?;
        sc.lit(",\"events\":")?;
        let events = sc.u64_val()?;
        sc.lit(",\"failed_events\":")?;
        let failed_events = sc.u64_val()?;
        sc.lit(",\"calls\":")?;
        let calls = sc.u64_val()?;
        sc.lit(",\"sms\":")?;
        let sms = sc.u64_val()?;
        sc.lit(",\"call_secs\":")?;
        let call_secs = sc.u64_val()?;
        sc.lit(",\"data_sessions\":")?;
        let data_sessions = sc.u64_val()?;
        sc.lit(",\"bytes_up\":")?;
        let bytes_up = sc.u64_val()?;
        sc.lit(",\"bytes_down\":")?;
        let bytes_down = sc.u64_val()?;
        sc.lit(",\"visited\":")?;
        let visited = sc.set(Scanner::u32_val)?;
        sc.lit(",\"apns\":")?;
        let apns = sc.set(|sc| sc.string_val().map(str::to_owned))?;
        sc.lit(",\"radio_flags\":")?;
        let radio_flags = sc.radio_flags()?;
        sc.lit(",\"sector_set\":")?;
        let sector_set = sc.set(Scanner::u64_val)?;
        sc.lit(",\"hourly\":")?;
        let hourly = sc.hourly()?;
        sc.lit(",\"in_designated_range\":")?;
        let in_designated_range = sc.bool_val()?;
        sc.lit(",\"in_published_m2m_range\":")?;
        let in_published_m2m_range = sc.bool_val()?;
        sc.lit(",\"mobility\":")?;
        let mobility = sc.mobility()?;
        sc.lit("}")?;
        sc.finish()?;
        Some(CatalogRowWire {
            user,
            day,
            sim_plmn,
            tac,
            label,
            events,
            failed_events,
            calls,
            sms,
            call_secs,
            data_sessions,
            bytes_up,
            bytes_down,
            visited,
            apns,
            radio_flags,
            sector_set,
            hourly,
            in_designated_range,
            in_published_m2m_range,
            mobility,
        })
    }
}

impl CatalogRowWire {
    /// Resolves a row's symbols against `catalog`'s table.
    fn from_entry(entry: &CatalogEntry, catalog: &DevicesCatalog) -> Self {
        CatalogRowWire {
            user: entry.user,
            day: entry.day,
            sim_plmn: entry.sim_plmn,
            tac: entry.tac,
            label: entry.label,
            events: entry.events,
            failed_events: entry.failed_events,
            calls: entry.calls,
            sms: entry.sms,
            call_secs: entry.call_secs,
            data_sessions: entry.data_sessions,
            bytes_up: entry.bytes_up,
            bytes_down: entry.bytes_down,
            visited: entry.visited.clone(),
            apns: entry
                .apns
                .iter()
                .map(|&sym| catalog.apn_str(sym).to_owned())
                .collect(),
            radio_flags: entry.radio_flags,
            sector_set: entry.sector_set.clone(),
            hourly: entry.hourly,
            in_designated_range: entry.in_designated_range,
            in_published_m2m_range: entry.in_published_m2m_range,
            mobility: entry.mobility,
        }
    }

    /// Builds the in-memory entry, interning this wire row's APN strings
    /// through `intern` (in sorted-string order — the order the wire
    /// `BTreeSet` iterates). Shared by the materialized install path and
    /// the streaming reader, so both intern in exactly the same order.
    fn into_entry(self, mut intern: impl FnMut(&str) -> ApnSym) -> CatalogEntry {
        let apns: BTreeSet<ApnSym> = self.apns.iter().map(|a| intern(a)).collect();
        CatalogEntry {
            user: self.user,
            day: self.day,
            sim_plmn: self.sim_plmn,
            tac: self.tac,
            label: self.label,
            events: self.events,
            failed_events: self.failed_events,
            calls: self.calls,
            sms: self.sms,
            call_secs: self.call_secs,
            data_sessions: self.data_sessions,
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            visited: self.visited,
            apns,
            radio_flags: self.radio_flags,
            sector_set: self.sector_set,
            hourly: self.hourly,
            in_designated_range: self.in_designated_range,
            in_published_m2m_range: self.in_published_m2m_range,
            mobility: self.mobility,
        }
    }

    /// Interns this wire row's APN strings into `catalog` and installs
    /// the row.
    fn install(self, catalog: &mut DevicesCatalog) {
        let (user, day, sim_plmn, tac, label) =
            (self.user, self.day, self.sim_plmn, self.tac, self.label);
        let entry = self.into_entry(|a| catalog.intern_apn(a));
        *catalog.row_mut(user, day, sim_plmn, tac, label) = entry;
    }
}

/// Writes a devices-catalog as JSONL: a header line, then one row per line
/// in a stable (user, day) order so exports are diffable.
pub fn write_catalog<W: Write>(mut out: W, catalog: &DevicesCatalog) -> Result<(), IoError> {
    let header = CatalogHeader {
        format: CATALOG_FORMAT.to_owned(),
        window_days: catalog.window_days(),
        rows: catalog.len(),
    };
    serde_json::to_writer(&mut out, &header).map_err(|e| IoError::Parse {
        line: 1,
        message: e.to_string(),
    })?;
    out.write_all(b"\n")?;
    let mut rows: Vec<&CatalogEntry> = catalog.iter().collect();
    rows.sort_by_key(|r| (r.user, r.day));
    for (idx, row) in rows.into_iter().enumerate() {
        let wire = CatalogRowWire::from_entry(row, catalog);
        serde_json::to_writer(&mut out, &wire).map_err(|e| IoError::Parse {
            // 1-based: the header is line 1, row `idx` lands on idx + 2.
            line: idx + 2,
            message: e.to_string(),
        })?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a devices-catalog written by [`write_catalog`]. APN strings are
/// interned in row order (rows are parsed in parallel but installed in
/// input order), so the rebuilt catalog — table included — is identical
/// at any thread count.
pub fn read_catalog<R: BufRead>(input: R) -> Result<DevicesCatalog, IoError> {
    read_catalog_impl(input, parse_lines::<CatalogRowWire>)
}

/// [`read_catalog`] without the scanner fast path: the serde-only
/// reference reader (equivalence tests and ablation benches).
pub fn read_catalog_serde<R: BufRead>(input: R) -> Result<DevicesCatalog, IoError> {
    read_catalog_impl(input, parse_lines_serde::<CatalogRowWire>)
}

/// Line-batch parser signature shared by the scanner-backed and
/// serde-only catalog readers.
type RowParser = fn(&[(usize, &str)]) -> Result<Vec<CatalogRowWire>, IoError>;

fn read_catalog_impl<R: BufRead>(
    mut input: R,
    parse: RowParser,
) -> Result<DevicesCatalog, IoError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::BadHeader("empty input".into()))?;
    let header: CatalogHeader =
        serde_json::from_str(header_line).map_err(|e| IoError::BadHeader(e.to_string()))?;
    if header.format != CATALOG_FORMAT {
        return Err(IoError::BadHeader(format!(
            "unknown format {:?}",
            header.format
        )));
    }
    // Row lines start on physical line 2; slices borrow from `text`.
    let body = match text.find('\n') {
        Some(i) => &text[i + 1..],
        None => "",
    };
    let numbered = numbered_line_slices(body, 2);
    let wires: Vec<CatalogRowWire> = parse(&numbered)?;
    let count = wires.len();
    let mut catalog = DevicesCatalog::new(header.window_days);
    for wire in wires {
        wire.install(&mut catalog);
    }
    if count != header.rows {
        return Err(IoError::BadHeader(format!(
            "header promised {} rows, found {count}",
            header.rows
        )));
    }
    Ok(catalog)
}

/// Writes a devices-catalog in the columnar binary `WTRCAT` format
/// ([`crate::wire::encode_catalog`]) — typically 5–10× smaller than the
/// JSONL export and decoded in parallel row-group chunks.
pub fn write_catalog_bin<W: Write>(mut out: W, catalog: &DevicesCatalog) -> Result<(), IoError> {
    let bytes = crate::wire::encode_catalog(catalog);
    out.write_all(&bytes)?;
    Ok(())
}

/// Reads a `WTRCAT` catalog written by [`write_catalog_bin`].
pub fn read_catalog_bin<R: io::Read>(mut input: R) -> Result<DevicesCatalog, IoError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    crate::wire::decode_catalog(&bytes).map_err(|e| IoError::BadHeader(e.to_string()))
}

/// Reads a devices-catalog in either format, sniffing the `WTRCAT` magic:
/// binary files start with it, JSONL files start with `{`.
pub fn read_catalog_auto<R: BufRead>(mut input: R) -> Result<DevicesCatalog, IoError> {
    let head = input.fill_buf()?;
    let magic = crate::wire::CAT_MAGIC;
    if head.len() >= magic.len() && &head[..magic.len()] == magic {
        read_catalog_bin(input)
    } else {
        read_catalog(input)
    }
}

/// Reads exactly `n` bytes from `r`.
///
/// `n` is untrusted (it comes from length prefixes in the file), so the
/// buffer is **not** pre-allocated to `n`: reading through a bounded
/// `take` grows it incrementally, capping the allocation at the bytes
/// the input actually contains plus a small seed capacity.
fn read_exact_vec<R: Read>(r: &mut R, n: usize, what: &str) -> Result<Vec<u8>, IoError> {
    let mut buf = Vec::with_capacity(n.min(64 * 1024));
    r.by_ref()
        .take(n as u64)
        .read_to_end(&mut buf)
        .map_err(IoError::Io)?;
    if buf.len() != n {
        return Err(IoError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated {what}: needed {n} bytes, found {}", buf.len()),
        )));
    }
    Ok(buf)
}

/// Which on-disk format a [`CatalogStream`] is decoding.
enum StreamBackend<R> {
    /// JSONL: rows parse in parallel per line block; APN strings intern
    /// into the stream's growing table in row order (identical to
    /// [`read_catalog`]'s serial install order). Lines accumulate into
    /// one persistent block buffer (cleared but never shrunk between
    /// refills) and parse as borrowed slices — no per-row `String`.
    Jsonl {
        input: R,
        /// 1-based number of the last physical line consumed.
        line_no: usize,
        /// Reusable block buffer holding the current refill's raw lines.
        buf: String,
        /// `(line number, byte range into `buf`)` per non-blank line.
        spans: Vec<(usize, std::ops::Range<usize>)>,
    },
    /// `WTRCAT`: the canonical table came from the file header; row
    /// chunks decode lazily, one length-prefixed frame at a time.
    Wtrcat {
        input: R,
        remaining_chunks: u32,
        table_len: usize,
    },
}

/// A chunk-at-a-time devices-catalog reader: the [`RecordStream`]
/// behind the bounded-memory pipeline.
///
/// Sniffs the format like [`read_catalog_auto`] (a `WTRCAT` magic means
/// binary, anything else JSONL), reads the header eagerly — window
/// length, declared row count and, for `WTRCAT`, the canonical APN
/// table — then yields rows in file order **without ever materializing
/// a [`DevicesCatalog`]**. Peak memory is O(chunk), not O(rows).
///
/// # Determinism and equivalence
///
/// * Emitted chunk boundaries are [`par::chunk_size`] of the *declared*
///   row count — the same pure-in-`n` boundaries
///   [`wtr_sim::stream::drive_slice`] uses over a materialized slice of
///   the same rows. Folds driven from this stream therefore execute the
///   exact same arithmetic, in the same order, as the materialized
///   path: byte-identical results, including floating-point bits.
/// * APN symbols match the materialized readers exactly: JSONL interns
///   in row order (like [`read_catalog`]), `WTRCAT` uses the file's
///   canonical table (like [`wire::decode_catalog`]). Resolve the
///   emitted rows' symbols through [`CatalogStream::apn_table`] /
///   [`CatalogStream::finish`].
pub struct CatalogStream<R> {
    backend: StreamBackend<R>,
    table: ApnTable,
    window_days: u32,
    declared_rows: u64,
    rows_seen: u64,
    /// Rows per emitted chunk: `par::chunk_size(declared_rows)`.
    chunk_len: usize,
    pending: Vec<CatalogEntry>,
    exhausted: bool,
}

impl<R: BufRead> CatalogStream<R> {
    /// Opens a catalog stream over `input`, sniffing the format from
    /// the leading bytes and reading the header eagerly.
    pub fn new(mut input: R) -> Result<Self, IoError> {
        let head = input.fill_buf()?;
        let magic = wire::CAT_MAGIC;
        if head.len() >= magic.len() && &head[..magic.len()] == magic {
            Self::new_wtrcat(input)
        } else {
            Self::new_jsonl(input)
        }
    }

    fn new_jsonl(mut input: R) -> Result<Self, IoError> {
        let mut header_line = String::new();
        if input.read_line(&mut header_line)? == 0 {
            return Err(IoError::BadHeader("empty input".into()));
        }
        let header: CatalogHeader = serde_json::from_str(header_line.trim_end())
            .map_err(|e| IoError::BadHeader(e.to_string()))?;
        if header.format != CATALOG_FORMAT {
            return Err(IoError::BadHeader(format!(
                "unknown format {:?}",
                header.format
            )));
        }
        let declared_rows = header.rows as u64;
        Ok(CatalogStream {
            backend: StreamBackend::Jsonl {
                input,
                line_no: 1,
                buf: String::new(),
                spans: Vec::new(),
            },
            table: ApnTable::new(),
            window_days: header.window_days,
            declared_rows,
            rows_seen: 0,
            chunk_len: par::chunk_size(header.rows),
            pending: Vec::new(),
            exhausted: false,
        })
    }

    fn new_wtrcat(mut input: R) -> Result<Self, IoError> {
        // Validation order is load-bearing: the fixed region — magic
        // first, then the rows/chunks consistency check — is parsed and
        // rejected *before* any length field out of it drives a read
        // loop. Only then are the table strings pulled in (each read
        // bounded by the input's actual remaining bytes, see
        // `read_exact_vec`) and the accumulated region re-parsed by the
        // wire decoder — one source of truth for table validation.
        let mut raw = read_exact_vec(&mut input, wire::CAT_FIXED_LEN, "header")?;
        let fixed = wire::decode_catalog_fixed(&mut &raw[..])
            .map_err(|e| IoError::BadHeader(e.to_string()))?;
        let rows = usize::try_from(fixed.rows)
            .map_err(|_| IoError::BadHeader("declared row count overflows usize".into()))?;
        for _ in 0..fixed.table_len {
            let len_bytes = read_exact_vec(&mut input, 2, "APN string length")?;
            let len = u16::from_le_bytes(len_bytes[..].try_into().expect("2 bytes")) as usize;
            raw.extend_from_slice(&len_bytes);
            raw.extend_from_slice(&read_exact_vec(&mut input, len, "APN string bytes")?);
        }
        let mut slice = &raw[..];
        let header = wire::decode_catalog_header(&mut slice)
            .map_err(|e| IoError::BadHeader(e.to_string()))?;
        debug_assert!(slice.is_empty(), "header region fully consumed");
        let declared_rows = header.rows;
        Ok(CatalogStream {
            backend: StreamBackend::Wtrcat {
                input,
                remaining_chunks: header.chunks,
                table_len: header.table.len(),
            },
            table: header.table,
            window_days: header.window_days,
            declared_rows,
            rows_seen: 0,
            chunk_len: par::chunk_size(rows),
            pending: Vec::new(),
            exhausted: false,
        })
    }

    /// Length of the observation window in days.
    pub fn window_days(&self) -> u32 {
        self.window_days
    }

    /// Row count declared by the header (validated by
    /// [`CatalogStream::finish`]).
    pub fn declared_rows(&self) -> u64 {
        self.declared_rows
    }

    /// Rows decoded so far.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// The APN table emitted rows' symbols resolve through. For JSONL
    /// inputs the table **grows while streaming** (first-occurrence
    /// interning in row order) — resolve symbols only after the stream
    /// is exhausted. `WTRCAT` tables are complete (and canonical) from
    /// the start.
    pub fn apn_table(&self) -> &ApnTable {
        &self.table
    }

    /// Validates the end-of-stream invariants (stream exhausted, row
    /// count matches the header) and returns the final APN table.
    pub fn finish(self) -> Result<ApnTable, IoError> {
        if !self.exhausted || !self.pending.is_empty() {
            return Err(IoError::BadHeader(
                "catalog stream not fully consumed".into(),
            ));
        }
        if self.rows_seen != self.declared_rows {
            return Err(IoError::BadHeader(format!(
                "header promised {} rows, found {}",
                self.declared_rows, self.rows_seen
            )));
        }
        Ok(self.table)
    }

    /// Pulls one backend unit (a line block or a `WTRCAT` chunk window)
    /// into `pending`. Sets `exhausted` at end of input.
    fn refill(&mut self) -> Result<(), IoError> {
        match &mut self.backend {
            StreamBackend::Jsonl {
                input,
                line_no,
                buf,
                spans,
            } => {
                // Accumulate up to a chunk of raw lines into the
                // persistent block buffer: `clear` keeps capacity, so
                // after the first refill the hot loop allocates nothing.
                buf.clear();
                spans.clear();
                while spans.len() < wire::CAT_CHUNK_ROWS {
                    let start = buf.len();
                    if input.read_line(buf)? == 0 {
                        self.exhausted = true;
                        break;
                    }
                    *line_no += 1;
                    let line = buf[start..].trim_end_matches(['\n', '\r']);
                    if line.trim().is_empty() {
                        buf.truncate(start);
                        continue;
                    }
                    spans.push((*line_no, start..start + line.len()));
                }
                let numbered: Vec<(usize, &str)> = spans
                    .iter()
                    .map(|(num, range)| (*num, &buf[range.clone()]))
                    .collect();
                let wires: Vec<CatalogRowWire> = parse_lines(&numbered)?;
                self.rows_seen += wires.len() as u64;
                let table = &mut self.table;
                self.pending
                    .extend(wires.into_iter().map(|w| w.into_entry(|a| table.intern(a))));
            }
            StreamBackend::Wtrcat {
                input,
                remaining_chunks,
                table_len,
            } => {
                // Read up to a worker-window of frames, then decode them
                // in parallel (decode is pure per chunk, so the window
                // size cannot affect the output).
                let window = par::threads().max(1).min(*remaining_chunks as usize);
                let mut frames: Vec<(Vec<u8>, usize)> = Vec::with_capacity(window);
                for _ in 0..window {
                    let frame = read_exact_vec(input, 8, "chunk frame")?;
                    let byte_len =
                        u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
                    let rows = u32::from_le_bytes(frame[4..].try_into().expect("4 bytes")) as usize;
                    frames.push((read_exact_vec(input, byte_len, "chunk body")?, rows));
                    *remaining_chunks -= 1;
                }
                if *remaining_chunks == 0 {
                    // Past the final chunk the file must end.
                    let mut probe = [0u8; 1];
                    if input.read(&mut probe)? != 0 {
                        return Err(IoError::BadHeader(
                            "bytes after the final WTRCAT chunk".into(),
                        ));
                    }
                    self.exhausted = true;
                }
                let table_len = *table_len;
                let decoded = par::par_each(&frames, |(body, rows)| {
                    wire::decode_chunk_rows(body, *rows, table_len)
                });
                for chunk in decoded {
                    let chunk = chunk.map_err(|e| IoError::BadHeader(e.to_string()))?;
                    self.rows_seen += chunk.len() as u64;
                    self.pending.extend(chunk);
                }
            }
        }
        Ok(())
    }
}

impl<R: BufRead> RecordStream for CatalogStream<R> {
    type Item = CatalogEntry;
    type Error = IoError;

    fn next_chunk(&mut self) -> Result<Option<Vec<CatalogEntry>>, IoError> {
        while !self.exhausted && self.pending.len() < self.chunk_len {
            self.refill()?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        if self.pending.len() <= self.chunk_len {
            return Ok(Some(std::mem::take(&mut self.pending)));
        }
        let rest = self.pending.split_off(self.chunk_len);
        Ok(Some(std::mem::replace(&mut self.pending, rest)))
    }
}

/// One line of a ground-truth JSONL stream: the anonymized device ID and
/// its true vertical. Produced by scenario runs (`wtr simulate-mno
/// --truth`), consumed by `wtr validate` — never by the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthLine {
    /// Anonymized device ID (same hashing as the catalog).
    pub user: u64,
    /// Ground-truth vertical.
    pub vertical: wtr_model::vertical::Vertical,
}

/// Writes a ground-truth map as JSONL in (user) order — `BTreeMap` keeps
/// the export byte-stable without an explicit sort.
pub fn write_truth<W: Write>(
    mut out: W,
    truth: &BTreeMap<u64, wtr_model::vertical::Vertical>,
) -> Result<(), IoError> {
    let lines = truth.iter().map(|(user, vertical)| TruthLine {
        user: *user,
        vertical: *vertical,
    });
    for (idx, line) in lines.enumerate() {
        serde_json::to_writer(&mut out, &line).map_err(|e| IoError::Parse {
            line: idx + 1,
            message: e.to_string(),
        })?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a ground-truth map written by [`write_truth`].
pub fn read_truth<R: BufRead>(
    mut input: R,
) -> Result<BTreeMap<u64, wtr_model::vertical::Vertical>, IoError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    let lines: Vec<TruthLine> = parse_lines(&numbered_line_slices(&text, 1))?;
    Ok(lines.into_iter().map(|t| (t.user, t.vertical)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FastParse;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::{Day, SimTime};

    fn sample_catalog() -> DevicesCatalog {
        let mut cat = DevicesCatalog::new(22);
        let apn = cat.intern_apn("smhp.centricaplc.com");
        for (user, day) in [(1u64, 0u32), (1, 3), (2, 1)] {
            let row = cat.row_mut(
                user,
                Day(day),
                Plmn::of(204, 4),
                Tac::new(35_000_000).unwrap(),
                RoamingLabel::IH,
            );
            row.events = 10 + user;
            row.bytes_up = 100 * user;
            row.apns.insert(apn);
            row.hourly[13] = 4;
        }
        cat
    }

    fn sample_transactions() -> Vec<M2mTransaction> {
        use crate::records::M2mMessageType;
        use wtr_sim::events::ProcedureResult;
        (0..50u64)
            .map(|i| M2mTransaction {
                device: i,
                time: SimTime::from_secs(i * 11),
                sim_plmn: Plmn::of(214, 7),
                visited_plmn: Plmn::of(234, 30),
                message: M2mMessageType::UpdateLocation,
                result: if i % 4 == 0 {
                    ProcedureResult::RoamingNotAllowed
                } else {
                    ProcedureResult::Ok
                },
            })
            .collect()
    }

    #[test]
    #[ignore = "profiling harness, run by hand with --release"]
    fn profile_read_catalog_stages() {
        // Synthetic analysis-scale catalog: ~40k rows shaped like the
        // 2500x22 fixture (2 APNs, ~6 sectors, full hourly, mobility).
        let mut cat = DevicesCatalog::new(22);
        let apns: Vec<_> = (0..200)
            .map(|i| cat.intern_apn(&format!("apn{i}.example.com.mnc004.mcc204.gprs")))
            .collect();
        for user in 0..2_000u64 {
            for day in 0..20u32 {
                let row = cat.row_mut(
                    user,
                    Day(day),
                    Plmn::of(204, 4),
                    Tac::new(35_000_000).unwrap(),
                    RoamingLabel::IH,
                );
                row.events = 100 + user;
                row.bytes_up = 100 * user;
                row.apns.insert(apns[(user % 200) as usize]);
                row.apns.insert(apns[((user + 7) % 200) as usize]);
                for s in 0..6u64 {
                    row.sector_set.insert(user * 31 + s);
                }
                row.visited.insert(23430);
                for h in 0..24 {
                    row.hourly[h] = (user as u32 + h as u32) % 50;
                }
                row.mobility = MobilityAccum::from_parts([
                    10.0,
                    51.5 * 10.0,
                    -0.1 * 10.0,
                    51.5 * 51.5 * 10.0,
                    0.01 * 10.0,
                ]);
            }
        }
        let mut jsonl = Vec::new();
        write_catalog(&mut jsonl, &cat).unwrap();
        eprintln!("rows {} bytes {}", cat.len(), jsonl.len());
        let text = std::str::from_utf8(&jsonl[..]).unwrap();
        let body = &text[text.find('\n').unwrap() + 1..];
        let numbered = numbered_line_slices(body, 2);
        let t = std::time::Instant::now();
        let mut n = 0usize;
        for (_, line) in &numbered {
            n += usize::from(CatalogRowWire::fast_parse(line).is_some());
        }
        eprintln!(
            "fast_parse only: {:?} ({n}/{} hit)",
            t.elapsed(),
            numbered.len()
        );
        let t = std::time::Instant::now();
        let wires: Vec<CatalogRowWire> = parse_lines(&numbered).unwrap();
        eprintln!("parse_lines(fast): {:?}", t.elapsed());
        let t = std::time::Instant::now();
        let _w2: Vec<CatalogRowWire> = parse_lines_serde(&numbered).unwrap();
        eprintln!("parse_lines(serde): {:?}", t.elapsed());
        let t = std::time::Instant::now();
        let mut rebuilt = DevicesCatalog::new(22);
        for wire in wires {
            wire.install(&mut rebuilt);
        }
        eprintln!("install: {:?}", t.elapsed());
        let t = std::time::Instant::now();
        let back = read_catalog(&jsonl[..]).unwrap();
        eprintln!("read_catalog total: {:?}", t.elapsed());
        assert_eq!(back.len(), cat.len());
    }

    #[test]
    fn transactions_roundtrip() {
        let txs = sample_transactions();
        let mut buf = Vec::new();
        write_transactions(&mut buf, &txs).unwrap();
        assert_eq!(buf.iter().filter(|b| **b == b'\n').count(), txs.len());
        let back = read_transactions(&buf[..]).unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn transactions_skip_blank_lines() {
        let txs = sample_transactions();
        let mut buf = Vec::new();
        write_transactions(&mut buf, &txs[..2]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_transactions(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn transactions_report_bad_line_number() {
        let txs = sample_transactions();
        let mut buf = Vec::new();
        write_transactions(&mut buf, &txs[..3]).unwrap();
        buf.extend_from_slice(b"{not json}\n");
        let err = read_transactions(&buf[..]).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn catalog_roundtrip_preserves_rows() {
        let cat = sample_catalog();
        let mut buf = Vec::new();
        write_catalog(&mut buf, &cat).unwrap();
        let back = read_catalog(&buf[..]).unwrap();
        assert_eq!(back.len(), cat.len());
        assert_eq!(back.window_days(), 22);
        let row = back.get(1, Day(3)).unwrap();
        assert_eq!(row.events, 11);
        assert_eq!(row.hourly[13], 4);
        assert!(row
            .apns
            .iter()
            .any(|&sym| back.apn_str(sym) == "smhp.centricaplc.com"));
    }

    #[test]
    fn catalog_export_is_stable() {
        let cat = sample_catalog();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_catalog(&mut a, &cat).unwrap();
        write_catalog(&mut b, &cat).unwrap();
        assert_eq!(a, b, "exports must be byte-identical (diffable)");
    }

    #[test]
    fn truth_roundtrip() {
        use wtr_model::vertical::Vertical;
        let truth: BTreeMap<u64, Vertical> = [
            (7u64, Vertical::SmartMeter),
            (3, Vertical::Smartphone),
            (9, Vertical::ConnectedCar),
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        write_truth(&mut buf, &truth).unwrap();
        let back = read_truth(&buf[..]).unwrap();
        assert_eq!(back, truth);
        // Stable export: byte-identical across runs.
        let mut buf2 = Vec::new();
        write_truth(&mut buf2, &truth).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn catalog_auto_sniffs_both_formats() {
        let cat = sample_catalog();
        let mut jsonl = Vec::new();
        write_catalog(&mut jsonl, &cat).unwrap();
        let mut bin = Vec::new();
        write_catalog_bin(&mut bin, &cat).unwrap();
        assert!(bin.len() < jsonl.len());
        for bytes in [&jsonl, &bin] {
            let back = read_catalog_auto(&bytes[..]).unwrap();
            assert_eq!(back.len(), cat.len());
            let row = back.get(1, Day(3)).unwrap();
            assert!(row
                .apns
                .iter()
                .any(|&sym| back.apn_str(sym) == "smhp.centricaplc.com"));
        }
    }

    #[test]
    fn jsonl_and_wtrcat_reimports_are_equivalent() {
        // Satellite: JSONL ↔ columnar roundtrip equivalence. Importing
        // either serialization and re-exporting as JSONL must be
        // byte-identical — same rows, same resolved APN strings.
        let cat = sample_catalog();
        let mut jsonl = Vec::new();
        write_catalog(&mut jsonl, &cat).unwrap();
        let mut bin = Vec::new();
        write_catalog_bin(&mut bin, &cat).unwrap();
        let from_jsonl = read_catalog(&jsonl[..]).unwrap();
        let from_bin = read_catalog_bin(&bin[..]).unwrap();
        let mut a = Vec::new();
        write_catalog(&mut a, &from_jsonl).unwrap();
        let mut b = Vec::new();
        write_catalog(&mut b, &from_bin).unwrap();
        assert_eq!(a, jsonl, "JSONL reimport re-exports identically");
        assert_eq!(b, jsonl, "WTRCAT reimport re-exports identically");
    }

    #[test]
    fn catalog_stream_yields_same_rows_and_table_as_materialized() {
        use wtr_sim::stream::RecordStream;
        let cat = sample_catalog();
        let mut jsonl = Vec::new();
        write_catalog(&mut jsonl, &cat).unwrap();
        let mut bin = Vec::new();
        write_catalog_bin(&mut bin, &cat).unwrap();
        for bytes in [&jsonl, &bin] {
            let materialized = read_catalog_auto(&bytes[..]).unwrap();
            let mut stream = CatalogStream::new(&bytes[..]).unwrap();
            assert_eq!(stream.window_days(), 22);
            assert_eq!(stream.declared_rows(), cat.len() as u64);
            let mut rows = Vec::new();
            while let Some(chunk) = stream.next_chunk().unwrap() {
                rows.extend(chunk);
            }
            let table = stream.finish().unwrap();
            assert_eq!(&table, materialized.apn_table());
            let want: Vec<&CatalogEntry> = materialized.iter().collect();
            assert_eq!(rows.len(), want.len());
            for (got, want) in rows.iter().zip(want) {
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn catalog_stream_rejects_row_count_mismatch_and_trailer() {
        use wtr_sim::stream::RecordStream;
        let cat = sample_catalog();
        let mut jsonl = Vec::new();
        write_catalog(&mut jsonl, &cat).unwrap();
        // Drop the final row: declared count no longer matches.
        let text = String::from_utf8(jsonl).unwrap();
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let mut stream = CatalogStream::new(truncated.as_bytes()).unwrap();
        while stream.next_chunk().unwrap().is_some() {}
        assert!(matches!(stream.finish(), Err(IoError::BadHeader(_))));
        // WTRCAT trailing garbage is rejected.
        let mut bin = Vec::new();
        write_catalog_bin(&mut bin, &cat).unwrap();
        bin.push(0);
        let mut stream = CatalogStream::new(&bin[..]).unwrap();
        let result = loop {
            let step = stream.next_chunk();
            match &step {
                Ok(Some(_)) => continue,
                _ => break step,
            }
        };
        assert!(result.is_err(), "trailing byte after final chunk detected");
    }

    #[test]
    fn catalog_rejects_bad_header_and_row_count() {
        let cat = sample_catalog();
        let mut buf = Vec::new();
        write_catalog(&mut buf, &cat).unwrap();
        // Truncate the last row: count mismatch.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            read_catalog(truncated.as_bytes()),
            Err(IoError::BadHeader(_))
        ));
        // Garbage header.
        assert!(matches!(
            read_catalog(&b"{\"format\":\"nope\"}\n"[..]),
            Err(IoError::BadHeader(_))
        ));
        assert!(matches!(read_catalog(&b""[..]), Err(IoError::BadHeader(_))));
    }
}
