//! Schema-specialized zero-copy JSONL scanner: the fast path behind
//! [`crate::io`]'s line parsers.
//!
//! The JSONL exports in this crate are written by one serializer with one
//! canonical shape per record type — fixed key order, no whitespace, no
//! string escapes in practice. A general JSON parser pays for generality
//! on every line (a `Value` tree, one heap `String` per key and scalar);
//! this module instead matches the canonical byte sequence directly over
//! the borrowed line slice and parses scalars inline.
//!
//! ## The fallback contract
//!
//! The scanner is **strictly stricter** than the serde path: every
//! `None` it returns means "not the canonical shape", never "invalid
//! record". Callers fall back to `serde_json::from_str` on `None`, so
//!
//! * every line the scanner accepts parses to the **exact value** serde
//!   would produce (validated-range scalars bail to serde rather than
//!   widen or saturate differently), and
//! * every line the scanner rejects gets its error — message and line
//!   number — from serde, unchanged from a pure-serde reader.
//!
//! Number tokens mirror the vendored `serde_json` lexer exactly: a
//! greedy run of `[0-9.eE+-]` after an optional sign, handed to
//! `str::parse` — so any token the scanner converts itself converts to
//! the same bits serde would have produced.

use crate::records::{M2mMessageType, M2mTransaction};
use std::collections::BTreeSet;
use wtr_model::ids::{Mcc, Mnc, Plmn, Tac};
use wtr_model::rat::{RadioFlags, RatSet};
use wtr_model::roaming::{Presence, RoamingLabel, SimOrigin};
use wtr_model::time::SimTime;
use wtr_model::vertical::Vertical;
use wtr_sim::events::ProcedureResult;

/// Record types with a canonical-shape fast parse.
///
/// `fast_parse` returns `None` whenever the line deviates from the
/// canonical serialized shape — the caller must then fall back to the
/// serde parser, which owns all error reporting.
pub(crate) trait FastParse: Sized {
    /// Parses one canonical JSONL line, or bails with `None`.
    fn fast_parse(line: &str) -> Option<Self>;
}

/// Cursor over one line's bytes. All methods advance on success and
/// return `None` to signal "bail to serde" (the cursor is then dead).
///
/// Scanning operates on bytes but slices the backing `&str` only at
/// ASCII delimiter positions (`"`, digits, punctuation), which are never
/// inside a multi-byte UTF-8 sequence — so every slice is char-aligned.
pub(crate) struct Scanner<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(line: &'a str) -> Self {
        Scanner { s: line, pos: 0 }
    }

    fn bytes(&self) -> &'a [u8] {
        self.s.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    /// Consumes the exact literal `lit` (keys, punctuation, separators).
    pub(crate) fn lit(&mut self, lit: &str) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.bytes().get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    /// Parses a plain decimal `u64`: at least one digit, no sign, no
    /// float continuation. A digit run followed by `.eE+-` is a float
    /// token to the JSON lexer, and an overflowing run is accepted by
    /// serde via its float path — both bail here so serde keeps the
    /// final word.
    pub(crate) fn u64_val(&mut self) -> Option<u64> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        match self.peek() {
            Some(b'.' | b'e' | b'E' | b'+' | b'-') => None,
            _ => Some(value),
        }
    }

    pub(crate) fn u32_val(&mut self) -> Option<u32> {
        u32::try_from(self.u64_val()?).ok()
    }

    pub(crate) fn u16_val(&mut self) -> Option<u16> {
        u16::try_from(self.u64_val()?).ok()
    }

    pub(crate) fn u8_val(&mut self) -> Option<u8> {
        u8::try_from(self.u64_val()?).ok()
    }

    /// Parses an `f64` value token. `null` maps to NaN (the writer
    /// serializes non-finite floats as `null`, and the serde reader maps
    /// it back). Otherwise the token is the same greedy `[0-9.eE+-]`
    /// run the vendored JSON lexer takes, parsed by the same
    /// `str::parse::<f64>` — identical bits, identical rejects.
    pub(crate) fn f64_val(&mut self) -> Option<f64> {
        if self.lit("null").is_some() {
            return Some(f64::NAN);
        }
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let token = &self.s[start..self.pos];
        if token.is_empty() || token == "-" {
            return None;
        }
        token.parse::<f64>().ok()
    }

    /// Parses an escape-free JSON string, returning the borrowed slice.
    /// Any backslash bails: escape decoding is serde's job.
    pub(crate) fn string_val(&mut self) -> Option<&'a str> {
        self.lit("\"")?;
        let start = self.pos;
        loop {
            match self.peek()? {
                b'"' => {
                    let s = &self.s[start..self.pos];
                    self.pos += 1;
                    return Some(s);
                }
                b'\\' => return None,
                _ => self.pos += 1,
            }
        }
    }

    pub(crate) fn bool_val(&mut self) -> Option<bool> {
        if self.lit("true").is_some() {
            Some(true)
        } else if self.lit("false").is_some() {
            Some(false)
        } else {
            None
        }
    }

    /// Consumes optional trailing JSON whitespace and requires end of
    /// line — the same trailing-characters rule the vendored parser
    /// applies after the top-level value.
    pub(crate) fn finish(&mut self) -> Option<()> {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.peek() {
            self.pos += 1;
        }
        if self.pos == self.s.len() {
            Some(())
        } else {
            None
        }
    }

    // --- model compounds -------------------------------------------------

    /// An MCC in the validated E.212 range. Serde constructs out-of-range
    /// values unchecked; those bail to serde so the result is identical.
    pub(crate) fn mcc(&mut self) -> Option<Mcc> {
        Mcc::new(self.u16_val()?).ok()
    }

    /// An MNC object `{"value":N,"digits":D}` through the validating
    /// constructors (digit counts other than 2/3 bail).
    pub(crate) fn mnc(&mut self) -> Option<Mnc> {
        self.lit("{\"value\":")?;
        let value = self.u16_val()?;
        self.lit(",\"digits\":")?;
        let digits = self.u8_val()?;
        self.lit("}")?;
        match digits {
            2 => Mnc::new2(value).ok(),
            3 => Mnc::new3(value).ok(),
            _ => None,
        }
    }

    /// A PLMN object `{"mcc":N,"mnc":{...}}`.
    pub(crate) fn plmn(&mut self) -> Option<Plmn> {
        self.lit("{\"mcc\":")?;
        let mcc = self.mcc()?;
        self.lit(",\"mnc\":")?;
        let mnc = self.mnc()?;
        self.lit("}")?;
        Some(Plmn::new(mcc, mnc))
    }

    /// A TAC within the 8-digit allocation space.
    pub(crate) fn tac(&mut self) -> Option<Tac> {
        Tac::new(self.u32_val()?).ok()
    }

    pub(crate) fn sim_time(&mut self) -> Option<SimTime> {
        Some(SimTime::from_secs(self.u64_val()?))
    }

    /// A `RoamingLabel` object `{"sim":"…","presence":"…"}`.
    pub(crate) fn roaming_label(&mut self) -> Option<RoamingLabel> {
        self.lit("{\"sim\":")?;
        let sim = match self.string_val()? {
            "Home" => SimOrigin::Home,
            "Virtual" => SimOrigin::Virtual,
            "National" => SimOrigin::National,
            "International" => SimOrigin::International,
            _ => return None,
        };
        self.lit(",\"presence\":")?;
        let presence = match self.string_val()? {
            "Home" => Presence::Home,
            "Abroad" => Presence::Abroad,
            _ => return None,
        };
        self.lit("}")?;
        Some(RoamingLabel { sim, presence })
    }

    /// One `RatSet` as its transparent bits. `RatSet::from_bits` masks
    /// to the low 4 bits while serde deserializes the raw byte, so any
    /// value the mask would alter bails to serde.
    fn rat_set(&mut self) -> Option<RatSet> {
        let bits = self.u8_val()?;
        if bits > 0b1111 {
            return None;
        }
        Some(RatSet::from_bits(bits))
    }

    /// A `RadioFlags` object `{"any":N,"data":N,"voice":N}`.
    pub(crate) fn radio_flags(&mut self) -> Option<RadioFlags> {
        self.lit("{\"any\":")?;
        let any = self.rat_set()?;
        self.lit(",\"data\":")?;
        let data = self.rat_set()?;
        self.lit(",\"voice\":")?;
        let voice = self.rat_set()?;
        self.lit("}")?;
        Some(RadioFlags { any, data, voice })
    }

    /// A `MobilityAccum` object `{"w":F,"lat_w":F,"lon_w":F,…}` rebuilt
    /// through `from_parts` (a plain field-for-field constructor).
    pub(crate) fn mobility(&mut self) -> Option<crate::catalog::MobilityAccum> {
        self.lit("{\"w\":")?;
        let w = self.f64_val()?;
        self.lit(",\"lat_w\":")?;
        let lat_w = self.f64_val()?;
        self.lit(",\"lon_w\":")?;
        let lon_w = self.f64_val()?;
        self.lit(",\"lat2_w\":")?;
        let lat2_w = self.f64_val()?;
        self.lit(",\"lon2_w\":")?;
        let lon2_w = self.f64_val()?;
        self.lit("}")?;
        Some(crate::catalog::MobilityAccum::from_parts([
            w, lat_w, lon_w, lat2_w, lon2_w,
        ]))
    }

    /// A `Vertical` unit variant.
    pub(crate) fn vertical(&mut self) -> Option<Vertical> {
        Some(match self.string_val()? {
            "Smartphone" => Vertical::Smartphone,
            "FeaturePhone" => Vertical::FeaturePhone,
            "SmartMeter" => Vertical::SmartMeter,
            "ConnectedCar" => Vertical::ConnectedCar,
            "AssetTracker" => Vertical::AssetTracker,
            "Wearable" => Vertical::Wearable,
            "PaymentTerminal" => Vertical::PaymentTerminal,
            "SecurityAlarm" => Vertical::SecurityAlarm,
            "IndustrialSensor" => Vertical::IndustrialSensor,
            _ => return None,
        })
    }

    /// A JSON array of values parsed by `elem`, collected into a
    /// `BTreeSet` exactly like the serde impl (any order, silent dedup).
    pub(crate) fn set<T: Ord>(
        &mut self,
        elem: impl Fn(&mut Self) -> Option<T>,
    ) -> Option<BTreeSet<T>> {
        self.lit("[")?;
        let mut out = BTreeSet::new();
        if self.lit("]").is_some() {
            return Some(out);
        }
        loop {
            out.insert(elem(self)?);
            if self.lit(",").is_some() {
                continue;
            }
            self.lit("]")?;
            return Some(out);
        }
    }

    /// The 24-slot hourly histogram: exactly 24 `u32` values.
    pub(crate) fn hourly(&mut self) -> Option<[u32; 24]> {
        self.lit("[")?;
        let mut out = [0u32; 24];
        for (i, slot) in out.iter_mut().enumerate() {
            if i > 0 {
                self.lit(",")?;
            }
            *slot = self.u32_val()?;
        }
        self.lit("]")?;
        Some(out)
    }
}

impl FastParse for M2mTransaction {
    fn fast_parse(line: &str) -> Option<Self> {
        let mut sc = Scanner::new(line);
        sc.lit("{\"device\":")?;
        let device = sc.u64_val()?;
        sc.lit(",\"time\":")?;
        let time = sc.sim_time()?;
        sc.lit(",\"sim_plmn\":")?;
        let sim_plmn = sc.plmn()?;
        sc.lit(",\"visited_plmn\":")?;
        let visited_plmn = sc.plmn()?;
        sc.lit(",\"message\":")?;
        let message = match sc.string_val()? {
            "Authentication" => M2mMessageType::Authentication,
            "UpdateLocation" => M2mMessageType::UpdateLocation,
            "CancelLocation" => M2mMessageType::CancelLocation,
            _ => return None,
        };
        sc.lit(",\"result\":")?;
        let result = match sc.string_val()? {
            "Ok" => ProcedureResult::Ok,
            "RoamingNotAllowed" => ProcedureResult::RoamingNotAllowed,
            "UnknownSubscription" => ProcedureResult::UnknownSubscription,
            "FeatureUnsupported" => ProcedureResult::FeatureUnsupported,
            "NetworkFailure" => ProcedureResult::NetworkFailure,
            _ => return None,
        };
        sc.lit("}")?;
        sc.finish()?;
        Some(M2mTransaction {
            device,
            time,
            sim_plmn,
            visited_plmn,
            message,
            result,
        })
    }
}

impl FastParse for crate::io::TruthLine {
    fn fast_parse(line: &str) -> Option<Self> {
        let mut sc = Scanner::new(line);
        sc.lit("{\"user\":")?;
        let user = sc.u64_val()?;
        sc.lit(",\"vertical\":")?;
        let vertical = sc.vertical()?;
        sc.lit("}")?;
        sc.finish()?;
        Some(crate::io::TruthLine { user, vertical })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parses_same<T>(json: &str)
    where
        T: FastParse + serde::Deserialize + PartialEq + std::fmt::Debug,
    {
        let fast = T::fast_parse(json).expect("fast path must take canonical shape");
        let slow: T = serde_json::from_str(json).expect("serde must accept canonical shape");
        assert_eq!(fast, slow);
    }

    #[test]
    fn transaction_fast_path_matches_serde() {
        let tx = M2mTransaction {
            device: 0xDEAD_BEEF,
            time: SimTime::from_secs(86_400 * 3 + 17),
            sim_plmn: Plmn::of(214, 7),
            visited_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(410).unwrap()),
            message: M2mMessageType::UpdateLocation,
            result: ProcedureResult::RoamingNotAllowed,
        };
        let json = serde_json::to_string(&tx).unwrap();
        parses_same::<M2mTransaction>(&json);
        assert_eq!(M2mTransaction::fast_parse(&json), Some(tx));
    }

    #[test]
    fn truth_line_fast_path_matches_serde() {
        for v in Vertical::ALL {
            let line = crate::io::TruthLine {
                user: 42,
                vertical: v,
            };
            let json = serde_json::to_string(&line).unwrap();
            parses_same::<crate::io::TruthLine>(&json);
        }
    }

    #[test]
    fn non_canonical_shapes_bail_not_error() {
        // Reordered keys, whitespace, escapes, unknown variants: all must
        // bail (serde decides), never panic.
        for line in [
            "",
            "{}",
            "{ \"device\":1}",
            "{\"time\":0,\"device\":1}",
            "{\"user\":1,\"vertical\":\"Sm\\u0061rtMeter\"}",
            "{\"user\":1,\"vertical\":\"Toaster\"}",
            "{\"user\":-1,\"vertical\":\"SmartMeter\"}",
            "{\"user\":1e3,\"vertical\":\"SmartMeter\"}",
            "{\"user\":99999999999999999999,\"vertical\":\"SmartMeter\"}",
        ] {
            assert_eq!(crate::io::TruthLine::fast_parse(line), None, "{line:?}");
        }
    }

    #[test]
    fn trailing_whitespace_is_tolerated_like_serde() {
        let json = "{\"user\":7,\"vertical\":\"Wearable\"} \t";
        parses_same::<crate::io::TruthLine>(json);
        assert!(
            crate::io::TruthLine::fast_parse("{\"user\":7,\"vertical\":\"Wearable\"}x").is_none()
        );
    }

    #[test]
    fn scalar_tokens_mirror_the_json_lexer() {
        let mut sc = Scanner::new("18446744073709551615");
        assert_eq!(sc.u64_val(), Some(u64::MAX));
        // Overflow and float continuations bail.
        assert!(Scanner::new("18446744073709551616").u64_val().is_none());
        assert!(Scanner::new("1.5").u64_val().is_none());
        assert!(Scanner::new("1e3").u64_val().is_none());
        assert!(Scanner::new("-1").u64_val().is_none());
        // f64: same parse as the vendored lexer, null → NaN.
        assert_eq!(Scanner::new("-2.5e3").f64_val(), Some(-2500.0));
        assert!(Scanner::new("null").f64_val().unwrap().is_nan());
        assert!(Scanner::new("-").f64_val().is_none());
        assert!(Scanner::new("abc").f64_val().is_none());
        // Strings: escape-free borrow; any escape bails.
        assert_eq!(
            Scanner::new("\"apn.example\"").string_val(),
            Some("apn.example")
        );
        assert!(Scanner::new("\"a\\nb\"").string_val().is_none());
        assert!(Scanner::new("\"unterminated").string_val().is_none());
        // RatSet bits beyond the 4-bit mask bail (serde keeps them raw).
        assert!(Scanner::new("16").rat_set().is_none());
        assert_eq!(Scanner::new("15").rat_set(), Some(RatSet::from_bits(15)));
    }

    #[test]
    fn sets_collect_like_serde() {
        let mut sc = Scanner::new("[3,1,2,1]");
        let set = sc.set(Scanner::u32_val).unwrap();
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(Scanner::new("[]").set(Scanner::u32_val).unwrap().is_empty());
        assert!(Scanner::new("[1,]").set(Scanner::u32_val).is_none());
        assert!(Scanner::new("[1 ,2]").set(Scanner::u32_val).is_none());
    }
}
