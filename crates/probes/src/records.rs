//! Record schemas — the exact fields the paper's datasets carry.
//!
//! Nothing in a record identifies a subscriber (IDs are one-way hashes) and
//! nothing reveals simulation ground truth. Records are what operators
//! exchange, store and analyze; the whole `wtr-core` pipeline consumes only
//! these types.

use serde::{Deserialize, Serialize};
use std::fmt;
use wtr_model::ids::{Plmn, Tac};
use wtr_model::intern::ApnSym;
use wtr_model::rat::Rat;
use wtr_model::time::SimTime;
use wtr_radio::sector::SectorId;
use wtr_sim::events::{ProcedureResult, ProcedureType};

/// Message types of the M2M platform dataset: "message type (either
/// authentication, update location or cancel location)" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum M2mMessageType {
    /// Authentication request toward the home HSS/AuC.
    Authentication,
    /// Update Location at the home HSS.
    UpdateLocation,
    /// Cancel Location pushed by the home HSS to the old VMNO.
    CancelLocation,
}

impl M2mMessageType {
    /// Maps a simulator procedure to the HMNO-visible message type, if the
    /// procedure is visible at the home network at all (local RAUs and
    /// plain detaches are not).
    pub fn from_procedure(p: ProcedureType) -> Option<M2mMessageType> {
        match p {
            ProcedureType::Authentication => Some(M2mMessageType::Authentication),
            // An initial attach reaches the HSS as an Update Location.
            ProcedureType::Attach | ProcedureType::UpdateLocation => {
                Some(M2mMessageType::UpdateLocation)
            }
            ProcedureType::CancelLocation => Some(M2mMessageType::CancelLocation),
            ProcedureType::RoutingAreaUpdate | ProcedureType::Detach => None,
        }
    }

    /// Label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            M2mMessageType::Authentication => "authentication",
            M2mMessageType::UpdateLocation => "update-location",
            M2mMessageType::CancelLocation => "cancel-location",
        }
    }
}

impl fmt::Display for M2mMessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One transaction of the M2M platform dataset (§3.1): "a unique device ID
/// (a one-way hash), a timestamp, SIM country code and network code,
/// visited country code and mobile network code, message type, and a
/// message result".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct M2mTransaction {
    /// Anonymized device ID.
    pub device: u64,
    /// Timestamp.
    pub time: SimTime,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Visited network PLMN.
    pub visited_plmn: Plmn,
    /// Message type.
    pub message: M2mMessageType,
    /// Message result.
    pub result: ProcedureResult,
}

/// One radio-interface event of the MNO dataset (§4.1): "the anonymized
/// user ID, SIM MCC and MNC, Type Allocation Code, the sector ID handling
/// the communication, timestamp, event type, event result code".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RadioEventRecord {
    /// Anonymized user ID.
    pub user: u64,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Device TAC (first 8 IMEI digits).
    pub tac: Tac,
    /// Serving sector.
    pub sector: SectorId,
    /// RAT of the serving sector.
    pub rat: Rat,
    /// Timestamp.
    pub time: SimTime,
    /// Event type.
    pub event: ProcedureType,
    /// Event result code.
    pub result: ProcedureResult,
}

/// Kind of service in a CDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CdrKind {
    /// Voice call.
    Call,
    /// SMS-like short transaction.
    Sms,
}

/// One Call Detail Record — aggregate voice usage (§4.1). Unlike radio
/// events, CDRs exist for outbound roamers too (they drive roaming revenue
/// clearing, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cdr {
    /// Anonymized user ID.
    pub user: u64,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Visited network PLMN.
    pub visited_plmn: Plmn,
    /// Device TAC.
    pub tac: Tac,
    /// RAT used.
    pub rat: Rat,
    /// Timestamp.
    pub time: SimTime,
    /// Service kind.
    pub kind: CdrKind,
    /// Call duration in seconds (0 for SMS-like).
    pub duration_secs: u32,
}

/// One eXtended Detail Record — aggregate data usage (§4.1). "Data records
/// also report APN strings."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xdr {
    /// Anonymized user ID.
    pub user: u64,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Visited network PLMN.
    pub visited_plmn: Plmn,
    /// Device TAC.
    pub tac: Tac,
    /// RAT used.
    pub rat: Rat,
    /// Timestamp.
    pub time: SimTime,
    /// Session duration in seconds.
    pub duration_secs: u32,
    /// Uplink bytes.
    pub bytes_up: u64,
    /// Downlink bytes.
    pub bytes_down: u64,
    /// Interned APN of the session, resolved through the producing
    /// probe's catalog [`wtr_model::intern::ApnTable`]. The record is
    /// fully `Copy`: APN strings live once in the table, not per xDR.
    pub apn: ApnSym,
}

impl Xdr {
    /// Total bytes both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmno_visibility_mapping() {
        use ProcedureType as P;
        assert_eq!(
            M2mMessageType::from_procedure(P::Authentication),
            Some(M2mMessageType::Authentication)
        );
        assert_eq!(
            M2mMessageType::from_procedure(P::Attach),
            Some(M2mMessageType::UpdateLocation)
        );
        assert_eq!(
            M2mMessageType::from_procedure(P::UpdateLocation),
            Some(M2mMessageType::UpdateLocation)
        );
        assert_eq!(
            M2mMessageType::from_procedure(P::CancelLocation),
            Some(M2mMessageType::CancelLocation)
        );
        // Local procedures never reach the home network.
        assert_eq!(M2mMessageType::from_procedure(P::RoutingAreaUpdate), None);
        assert_eq!(M2mMessageType::from_procedure(P::Detach), None);
    }

    #[test]
    fn xdr_total() {
        let x = Xdr {
            user: 1,
            sim_plmn: Plmn::of(204, 4),
            visited_plmn: Plmn::of(234, 30),
            tac: Tac::new(35_000_000).unwrap(),
            rat: Rat::G2,
            time: SimTime::ZERO,
            duration_secs: 30,
            bytes_up: 1_700,
            bytes_down: 300,
            apn: ApnSym::from_raw(0),
        };
        assert_eq!(x.bytes_total(), 2_000);
    }

    #[test]
    fn records_serialize() {
        let t = M2mTransaction {
            device: 0xdead_beef,
            time: SimTime::from_secs(7),
            sim_plmn: Plmn::of(214, 7),
            visited_plmn: Plmn::of(505, 1),
            message: M2mMessageType::UpdateLocation,
            result: ProcedureResult::RoamingNotAllowed,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: M2mTransaction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
