//! Compact binary encoding for transaction logs.
//!
//! The M2M dataset at paper scale is 14M transactions; persisting or
//! shipping it as JSON would be ~50× larger than necessary. This module
//! defines a fixed-width little-endian record format (26 bytes per
//! transaction plus a 16-byte log header) built on the `bytes` crate.
//!
//! Layout per record: `device:u64 | time:u64 | sim_plmn:u32 |
//! visited_plmn:u32 | message:u8 | result:u8`.
//! PLMNs use [`Plmn::packed`]; the decoder reverses the packing.

use crate::catalog::{CatalogEntry, DevicesCatalog, MobilityAccum};
use crate::records::{M2mMessageType, M2mTransaction};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeSet;
use wtr_model::error::ParseError;
use wtr_model::ids::{Mcc, Mnc, Plmn, Tac};
use wtr_model::intern::{ApnSym, ApnTable};
use wtr_model::rat::{RadioFlags, RatSet};
use wtr_model::roaming::RoamingLabel;
use wtr_model::time::{Day, SimTime};
use wtr_sim::events::ProcedureResult;

/// Magic bytes opening a transaction log.
pub const MAGIC: &[u8; 8] = b"WTRM2M\x01\x00";

/// Magic bytes opening a columnar devices-catalog (`WTRCAT`) file.
pub const CAT_MAGIC: &[u8; 8] = b"WTRCAT\x01\x00";

/// Rows per `WTRCAT` row-group chunk — the unit of parallel decoding.
pub const CAT_CHUNK_ROWS: usize = 4096;

fn encode_plmn(p: Plmn) -> u32 {
    p.packed()
}

fn decode_plmn(key: u32) -> Result<Plmn, ParseError> {
    let mcc = Mcc::new((key / 2000) as u16)?;
    let mnc_key = key % 2000;
    let mnc = if mnc_key < 100 {
        Mnc::new2(mnc_key as u16)?
    } else {
        Mnc::new3((mnc_key - 100) as u16)?
    };
    Ok(Plmn::new(mcc, mnc))
}

fn encode_message(m: M2mMessageType) -> u8 {
    match m {
        M2mMessageType::Authentication => 0,
        M2mMessageType::UpdateLocation => 1,
        M2mMessageType::CancelLocation => 2,
    }
}

fn decode_message(b: u8) -> Result<M2mMessageType, ParseError> {
    Ok(match b {
        0 => M2mMessageType::Authentication,
        1 => M2mMessageType::UpdateLocation,
        2 => M2mMessageType::CancelLocation,
        _ => {
            return Err(ParseError::OutOfRange {
                what: "message type byte",
                allowed: "0..=2",
            })
        }
    })
}

fn encode_result(r: ProcedureResult) -> u8 {
    match r {
        ProcedureResult::Ok => 0,
        ProcedureResult::RoamingNotAllowed => 1,
        ProcedureResult::UnknownSubscription => 2,
        ProcedureResult::FeatureUnsupported => 3,
        ProcedureResult::NetworkFailure => 4,
    }
}

fn decode_result(b: u8) -> Result<ProcedureResult, ParseError> {
    Ok(match b {
        0 => ProcedureResult::Ok,
        1 => ProcedureResult::RoamingNotAllowed,
        2 => ProcedureResult::UnknownSubscription,
        3 => ProcedureResult::FeatureUnsupported,
        4 => ProcedureResult::NetworkFailure,
        _ => {
            return Err(ParseError::OutOfRange {
                what: "result byte",
                allowed: "0..=4",
            })
        }
    })
}

/// Serialized size of one record.
pub const RECORD_SIZE: usize = 8 + 8 + 4 + 4 + 1 + 1;

/// Encodes a transaction log into a contiguous byte buffer.
///
/// ```
/// use wtr_probes::wire::{decode_log, encode_log, RECORD_SIZE};
///
/// let encoded = encode_log(&[]);
/// assert_eq!(encoded.len(), 16); // header only
/// assert_eq!(RECORD_SIZE, 26);
/// assert!(decode_log(encoded).unwrap().is_empty());
/// ```
pub fn encode_log(transactions: &[M2mTransaction]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + transactions.len() * RECORD_SIZE);
    buf.put_slice(MAGIC);
    buf.put_u64_le(transactions.len() as u64);
    for t in transactions {
        buf.put_u64_le(t.device);
        buf.put_u64_le(t.time.as_secs());
        buf.put_u32_le(encode_plmn(t.sim_plmn));
        buf.put_u32_le(encode_plmn(t.visited_plmn));
        buf.put_u8(encode_message(t.message));
        buf.put_u8(encode_result(t.result));
    }
    buf.freeze()
}

/// Decodes a transaction log produced by [`encode_log`].
pub fn decode_log(mut buf: impl Buf) -> Result<Vec<M2mTransaction>, ParseError> {
    if buf.remaining() < MAGIC.len() + 8 {
        return Err(ParseError::BadLength {
            what: "transaction log",
            expected: "at least 16 header bytes",
            found: buf.remaining(),
        });
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ParseError::BadApn {
            reason: "bad transaction-log magic",
        });
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() != count * RECORD_SIZE {
        return Err(ParseError::BadLength {
            what: "transaction log body",
            expected: "count * 26 bytes",
            found: buf.remaining(),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let device = buf.get_u64_le();
        let time = SimTime::from_secs(buf.get_u64_le());
        let sim_plmn = decode_plmn(buf.get_u32_le())?;
        let visited_plmn = decode_plmn(buf.get_u32_le())?;
        let message = decode_message(buf.get_u8())?;
        let result = decode_result(buf.get_u8())?;
        out.push(M2mTransaction {
            device,
            time,
            sim_plmn,
            visited_plmn,
            message,
            result,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// WTRCAT: columnar binary devices-catalog codec.
//
// Layout:
//
// ```text
// magic "WTRCAT\x01\x00"
// window_days: u32 LE
// rows:        u64 LE
// chunks:      u32 LE
// apn table:   u32 LE count, then per string u16 LE length + UTF-8 bytes,
//              strictly ascending (canonical order; symbols = sorted rank)
// per chunk:   byte_len u32 LE | row_count u32 LE | row bytes
// ```
//
// Rows use LEB128 varints for counters and id columns, one byte per
// enum/bitset, and raw little-endian f64 for the mobility accumulator
// (present only when non-default). Sorted sets (visited PLMN keys, APN
// symbols, sector ids) are delta-encoded. Because the table is stored in
// canonical (sorted) order and rows are remapped to it at encode time, the
// file bytes depend only on catalog *content* — never on ingest order or
// thread count.

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, ParseError> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        if buf.is_empty() {
            return Err(ParseError::BadLength {
                what: "varint",
                expected: "continuation byte",
                found: 0,
            });
        }
        let byte = buf[0];
        *buf = &buf[1..];
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(ParseError::OutOfRange {
        what: "varint",
        allowed: "at most 10 bytes",
    })
}

fn encode_label(label: RoamingLabel) -> u8 {
    RoamingLabel::ALL
        .iter()
        .position(|l| *l == label)
        .expect("RoamingLabel::ALL is exhaustive") as u8
}

fn decode_label(b: u8) -> Result<RoamingLabel, ParseError> {
    RoamingLabel::ALL
        .get(b as usize)
        .copied()
        .ok_or(ParseError::OutOfRange {
            what: "roaming-label byte",
            allowed: "0..=5",
        })
}

/// Writes a sorted ascending `u64` sequence as count + delta varints.
fn put_sorted_set(buf: &mut BytesMut, values: impl ExactSizeIterator<Item = u64>) {
    put_varint(buf, values.len() as u64);
    let mut prev = 0u64;
    for v in values {
        debug_assert!(v >= prev);
        put_varint(buf, v - prev);
        prev = v;
    }
}

fn get_sorted_set(buf: &mut &[u8], what: &'static str) -> Result<Vec<u64>, ParseError> {
    let n = get_varint(buf)? as usize;
    if n > buf.len() {
        // Each element takes ≥ 1 byte; reject wild counts before allocating.
        return Err(ParseError::BadLength {
            what,
            expected: "count consistent with remaining bytes",
            found: buf.len(),
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev
            .checked_add(get_varint(buf)?)
            .ok_or(ParseError::OutOfRange {
                what,
                allowed: "deltas summing below 2^64",
            })?;
        out.push(prev);
    }
    Ok(out)
}

/// Encodes one row; `remap[sym.index()]` translates the catalog's symbols
/// to canonical (sorted-table) symbols.
fn encode_row(buf: &mut BytesMut, row: &CatalogEntry, remap: &[ApnSym]) {
    put_varint(buf, row.user);
    put_varint(buf, u64::from(row.day.0));
    put_varint(buf, u64::from(row.sim_plmn.packed()));
    put_varint(buf, u64::from(row.tac.value()));
    buf.put_u8(encode_label(row.label));
    let mobility_present = row.mobility != MobilityAccum::default();
    let flags = u8::from(row.in_designated_range)
        | u8::from(row.in_published_m2m_range) << 1
        | u8::from(mobility_present) << 2;
    buf.put_u8(flags);
    for counter in [
        row.events,
        row.failed_events,
        row.calls,
        row.sms,
        row.call_secs,
        row.data_sessions,
        row.bytes_up,
        row.bytes_down,
    ] {
        put_varint(buf, counter);
    }
    buf.put_u8(row.radio_flags.any.bits() << 4 | row.radio_flags.data.bits());
    buf.put_u8(row.radio_flags.voice.bits());
    put_sorted_set(buf, row.visited.iter().map(|&k| u64::from(k)));
    let mut apns: Vec<u64> = row
        .apns
        .iter()
        .map(|s| u64::from(remap[s.index()].raw()))
        .collect();
    apns.sort_unstable();
    put_sorted_set(buf, apns.into_iter());
    put_sorted_set(buf, row.sector_set.iter().copied());
    for h in row.hourly {
        put_varint(buf, u64::from(h));
    }
    if mobility_present {
        for part in row.mobility.to_parts() {
            buf.put_f64_le(part);
        }
    }
}

fn narrow_u32(v: u64, what: &'static str) -> Result<u32, ParseError> {
    u32::try_from(v).map_err(|_| ParseError::OutOfRange {
        what,
        allowed: "0..=u32::MAX",
    })
}

/// Decodes one row. `table_len` bounds the valid APN symbol range.
fn decode_row(buf: &mut &[u8], table_len: usize) -> Result<CatalogEntry, ParseError> {
    let user = get_varint(buf)?;
    let day = Day(narrow_u32(get_varint(buf)?, "day")?);
    let sim_plmn = decode_plmn(narrow_u32(get_varint(buf)?, "PLMN key")?)?;
    let tac = Tac::new(narrow_u32(get_varint(buf)?, "TAC")?)?;
    if buf.len() < 2 {
        return Err(ParseError::BadLength {
            what: "catalog row",
            expected: "label and flags bytes",
            found: buf.len(),
        });
    }
    let label = decode_label(buf[0])?;
    let flags = buf[1];
    *buf = &buf[2..];
    if flags & !0b111 != 0 {
        return Err(ParseError::OutOfRange {
            what: "row flags byte",
            allowed: "bits 0..=2",
        });
    }
    let mut counters = [0u64; 8];
    for c in &mut counters {
        *c = get_varint(buf)?;
    }
    if buf.len() < 2 {
        return Err(ParseError::BadLength {
            what: "catalog row",
            expected: "radio-flags bytes",
            found: buf.len(),
        });
    }
    let radio_flags = RadioFlags {
        any: RatSet::from_bits(buf[0] >> 4),
        data: RatSet::from_bits(buf[0] & 0b1111),
        voice: RatSet::from_bits(buf[1]),
    };
    *buf = &buf[2..];
    let visited: BTreeSet<u32> = get_sorted_set(buf, "visited-PLMN set")?
        .into_iter()
        .map(|v| narrow_u32(v, "visited-PLMN key"))
        .collect::<Result<_, _>>()?;
    let mut apns = BTreeSet::new();
    for raw in get_sorted_set(buf, "APN symbol set")? {
        let raw = narrow_u32(raw, "APN symbol")?;
        if raw as usize >= table_len {
            return Err(ParseError::OutOfRange {
                what: "APN symbol",
                allowed: "below the file's table length",
            });
        }
        apns.insert(ApnSym::from_raw(raw));
    }
    let sector_set: BTreeSet<u64> = get_sorted_set(buf, "sector set")?.into_iter().collect();
    let mut hourly = [0u32; 24];
    for h in &mut hourly {
        *h = narrow_u32(get_varint(buf)?, "hourly counter")?;
    }
    let mobility = if flags & 0b100 != 0 {
        if buf.len() < 40 {
            return Err(ParseError::BadLength {
                what: "catalog row",
                expected: "40 mobility bytes",
                found: buf.len(),
            });
        }
        let mut parts = [0f64; 5];
        for p in &mut parts {
            *p = f64::from_le_bytes(buf[..8].try_into().expect("length checked"));
            *buf = &buf[8..];
        }
        MobilityAccum::from_parts(parts)
    } else {
        MobilityAccum::default()
    };
    Ok(CatalogEntry {
        user,
        day,
        sim_plmn,
        tac,
        label,
        events: counters[0],
        failed_events: counters[1],
        calls: counters[2],
        sms: counters[3],
        call_secs: counters[4],
        data_sessions: counters[5],
        bytes_up: counters[6],
        bytes_down: counters[7],
        visited,
        apns,
        radio_flags,
        sector_set,
        hourly,
        in_designated_range: flags & 0b001 != 0,
        in_published_m2m_range: flags & 0b010 != 0,
        mobility,
    })
}

/// Encodes a devices-catalog into the columnar `WTRCAT` format.
///
/// The APN table is written in canonical (sorted) order and row symbols
/// are remapped to it, so two catalogs with equal content produce equal
/// bytes regardless of the order their APNs were first interned — the
/// serialized form is independent of ingest chunking and thread count.
pub fn encode_catalog(catalog: &DevicesCatalog) -> Bytes {
    let (table, remap) = catalog.apn_table().canonicalized();
    let rows: Vec<&CatalogEntry> = catalog.iter().collect();
    let chunk_count = rows.len().div_ceil(CAT_CHUNK_ROWS);
    let mut buf = BytesMut::with_capacity(64 + rows.len() * 64);
    buf.put_slice(CAT_MAGIC);
    buf.put_u32_le(catalog.window_days());
    buf.put_u64_le(rows.len() as u64);
    buf.put_u32_le(chunk_count as u32);
    buf.put_u32_le(table.len() as u32);
    for s in table.strings() {
        debug_assert!(s.len() <= usize::from(u16::MAX));
        buf.put_u16_le(s.len() as u16);
        buf.put_slice(s.as_bytes());
    }
    let mut chunk = BytesMut::new();
    for group in rows.chunks(CAT_CHUNK_ROWS.max(1)) {
        chunk.clear();
        for row in group {
            encode_row(&mut chunk, row, &remap);
        }
        buf.put_u32_le(chunk.len() as u32);
        buf.put_u32_le(group.len() as u32);
        buf.put_slice(&chunk);
    }
    buf.freeze()
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], ParseError> {
    if buf.len() < n {
        return Err(ParseError::BadLength {
            what,
            expected: "more bytes than remain",
            found: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u32_le(buf: &mut &[u8], what: &'static str) -> Result<u32, ParseError> {
    Ok(u32::from_le_bytes(
        take(buf, 4, what)?.try_into().expect("length checked"),
    ))
}

/// The fixed part of a `WTRCAT` file: everything before the row-group
/// chunks. Produced by [`decode_catalog_header`]; the chunk bodies that
/// follow decode independently via [`decode_chunk_rows`], which is what
/// lets the streaming reader hold one chunk at a time instead of the
/// whole catalog.
#[derive(Debug, Clone)]
pub struct CatalogHeaderBin {
    /// Length of the observation window in days.
    pub window_days: u32,
    /// Total row count declared by the header (validated against the
    /// sum of chunk row counts by whoever consumes the chunks).
    pub rows: u64,
    /// Number of row-group chunks that follow the header.
    pub chunks: u32,
    /// The canonical (strictly ascending) APN table; row symbols in the
    /// chunk bodies resolve against it.
    pub table: ApnTable,
}

/// Byte length of the fixed `WTRCAT` header region: magic, window
/// length, row count, chunk count, APN-table length. Everything after
/// it is length-prefixed (table strings, then chunk frames).
pub const CAT_FIXED_LEN: usize = CAT_MAGIC.len() + 4 + 8 + 4 + 4;

/// The fixed-size leading fields of a `WTRCAT` header, validated
/// **before** any of its length fields are trusted — see
/// [`decode_catalog_fixed`].
#[derive(Debug, Clone, Copy)]
pub struct CatalogFixed {
    /// Length of the observation window in days.
    pub window_days: u32,
    /// Total row count declared by the header.
    pub rows: u64,
    /// Number of row-group chunks that follow the header.
    pub chunks: u32,
    /// Number of APN-table strings between the fixed region and the
    /// first chunk frame.
    pub table_len: u32,
}

/// Parses and validates the fixed header region from the front of
/// `buf`, advancing past it. The magic is checked **first**, and the
/// declared row count must be consistent with the chunk count
/// (`rows.div_ceil(CAT_CHUNK_ROWS) == chunks`, the encoder's invariant)
/// — so a corrupt or mis-sniffed file is rejected here, before any
/// reader loops on a hostile length field.
pub fn decode_catalog_fixed(buf: &mut &[u8]) -> Result<CatalogFixed, ParseError> {
    let magic = take(buf, CAT_MAGIC.len(), "catalog header")?;
    if magic != CAT_MAGIC {
        return Err(ParseError::BadApn {
            reason: "bad WTRCAT magic",
        });
    }
    let window_days = get_u32_le(buf, "window_days")?;
    let rows = u64::from_le_bytes(
        take(buf, 8, "row count")?
            .try_into()
            .expect("length checked"),
    );
    let chunks = get_u32_le(buf, "chunk count")?;
    let table_len = get_u32_le(buf, "APN table length")?;
    if rows.div_ceil(CAT_CHUNK_ROWS as u64) != u64::from(chunks) {
        return Err(ParseError::BadLength {
            what: "chunk count",
            expected: "row count / chunk size",
            found: chunks as usize,
        });
    }
    Ok(CatalogFixed {
        window_days,
        rows,
        chunks,
        table_len,
    })
}

/// Parses the `WTRCAT` magic, fixed header fields and canonical APN
/// table from the front of `buf`, advancing `buf` past them (to the
/// first chunk frame). Validation order is hardened: the fixed region
/// ([`decode_catalog_fixed`]) is checked before the table length is
/// used to drive any loop.
pub fn decode_catalog_header(buf: &mut &[u8]) -> Result<CatalogHeaderBin, ParseError> {
    let fixed = decode_catalog_fixed(buf)?;
    let CatalogFixed {
        window_days,
        rows,
        chunks,
        table_len,
    } = fixed;
    let table_len = table_len as usize;
    // Every table entry costs at least its 2-byte length prefix, so the
    // declared count is capped by the bytes that actually remain —
    // rejecting a hostile length before the loop, not during it.
    if table_len > buf.len() / 2 {
        return Err(ParseError::BadLength {
            what: "APN table length",
            expected: "at most remaining bytes / 2",
            found: table_len,
        });
    }
    let mut table = ApnTable::new();
    let mut prev: Option<&str> = None;
    for _ in 0..table_len {
        let len = u16::from_le_bytes(
            take(buf, 2, "APN string length")?
                .try_into()
                .expect("length checked"),
        ) as usize;
        let raw = take(buf, len, "APN string bytes")?;
        let s = std::str::from_utf8(raw).map_err(|_| ParseError::BadApn {
            reason: "APN table entry is not UTF-8",
        })?;
        if prev.is_some_and(|p| p >= s) {
            return Err(ParseError::BadApn {
                reason: "APN table not strictly ascending",
            });
        }
        table.intern(s);
        prev = Some(s);
    }
    Ok(CatalogHeaderBin {
        window_days,
        rows,
        chunks,
        table,
    })
}

/// Parses one chunk frame (`byte_len u32 LE | row_count u32 LE`) from
/// the front of `buf`, returning the chunk body slice and its declared
/// row count and advancing `buf` past the frame.
pub fn decode_chunk_frame<'a>(buf: &mut &'a [u8]) -> Result<(&'a [u8], usize), ParseError> {
    let byte_len = get_u32_le(buf, "chunk byte length")? as usize;
    let rows = get_u32_le(buf, "chunk row count")? as usize;
    Ok((take(buf, byte_len, "chunk body")?, rows))
}

/// Decodes one row-group chunk body into its rows (in file order).
/// `table_len` bounds the valid APN symbol range; symbols resolve
/// against the header's canonical table.
pub fn decode_chunk_rows(
    mut body: &[u8],
    rows: usize,
    table_len: usize,
) -> Result<Vec<CatalogEntry>, ParseError> {
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(decode_row(&mut body, table_len)?);
    }
    if !body.is_empty() {
        return Err(ParseError::BadLength {
            what: "chunk body",
            expected: "no bytes after the final row",
            found: body.len(),
        });
    }
    Ok(out)
}

/// Decodes a `WTRCAT` catalog produced by [`encode_catalog`].
///
/// Row-group chunks are independent byte ranges, so they are decoded on
/// [`wtr_sim::par`] workers and reassembled in file order: the resulting
/// catalog — including its APN symbol assignment, which comes from the
/// file's canonical table — is identical at any worker count.
pub fn decode_catalog(bytes: &[u8]) -> Result<DevicesCatalog, ParseError> {
    let mut buf = bytes;
    let header = decode_catalog_header(&mut buf)?;
    let table_len = header.table.len();
    let mut catalog = DevicesCatalog::new(header.window_days);
    for s in header.table.strings() {
        catalog.intern_apn(s);
    }
    // Slice out the chunks serially (cheap length-prefix walk), then decode
    // the row bytes in parallel.
    let mut chunks: Vec<(&[u8], usize)> = Vec::with_capacity(header.chunks as usize);
    for _ in 0..header.chunks {
        chunks.push(decode_chunk_frame(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(ParseError::BadLength {
            what: "catalog trailer",
            expected: "no bytes after the final chunk",
            found: buf.len(),
        });
    }
    let decoded: Vec<Result<Vec<CatalogEntry>, ParseError>> =
        wtr_sim::par::par_map(&chunks, |&(body, rows)| {
            decode_chunk_rows(body, rows, table_len)
        });
    let mut total = 0u64;
    for chunk in decoded {
        for row in chunk? {
            total += 1;
            catalog.insert_entry(row);
        }
    }
    if total != header.rows {
        return Err(ParseError::BadLength {
            what: "catalog body",
            expected: "header row count",
            found: total as usize,
        });
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<M2mTransaction> {
        (0..n)
            .map(|i| M2mTransaction {
                device: i * 31,
                time: SimTime::from_secs(i * 7),
                sim_plmn: if i % 2 == 0 {
                    Plmn::of(214, 7)
                } else {
                    Plmn::of(334, 20)
                },
                visited_plmn: Plmn::of(234, 30),
                message: match i % 3 {
                    0 => M2mMessageType::Authentication,
                    1 => M2mMessageType::UpdateLocation,
                    _ => M2mMessageType::CancelLocation,
                },
                result: match i % 5 {
                    0 => ProcedureResult::Ok,
                    1 => ProcedureResult::RoamingNotAllowed,
                    2 => ProcedureResult::UnknownSubscription,
                    3 => ProcedureResult::FeatureUnsupported,
                    _ => ProcedureResult::NetworkFailure,
                },
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let txs = sample(1_000);
        let bytes = encode_log(&txs);
        assert_eq!(bytes.len(), 16 + 1_000 * RECORD_SIZE);
        let back = decode_log(bytes).unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn empty_log_roundtrip() {
        let bytes = encode_log(&[]);
        assert_eq!(decode_log(bytes).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let txs = sample(3);
        let bytes = encode_log(&txs);
        let mut raw = bytes.to_vec();
        raw[0] ^= 0xff;
        assert!(decode_log(&raw[..]).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let txs = sample(3);
        let bytes = encode_log(&txs);
        let raw = bytes.to_vec();
        assert!(decode_log(&raw[..raw.len() - 1]).is_err());
        assert!(decode_log(&raw[..10]).is_err());
    }

    #[test]
    fn rejects_bad_enum_bytes() {
        let txs = sample(1);
        let mut raw = encode_log(&txs).to_vec();
        let msg_off = 16 + 8 + 8 + 4 + 4;
        raw[msg_off] = 9;
        assert!(decode_log(&raw[..]).is_err());
    }

    #[test]
    fn three_digit_mnc_survives_roundtrip() {
        let tx = M2mTransaction {
            device: 1,
            time: SimTime::ZERO,
            sim_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(5).unwrap()),
            visited_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new2(5).unwrap()),
            message: M2mMessageType::Authentication,
            result: ProcedureResult::Ok,
        };
        let back = decode_log(encode_log(&[tx])).unwrap();
        assert_eq!(back[0].sim_plmn.mnc.digits(), 3);
        assert_eq!(back[0].visited_plmn.mnc.digits(), 2);
        assert_ne!(back[0].sim_plmn, back[0].visited_plmn);
    }

    #[test]
    fn record_size_is_26() {
        assert_eq!(RECORD_SIZE, 26);
    }

    // --- WTRCAT ---

    fn sample_catalog(devices: u64, days: u32) -> DevicesCatalog {
        use wtr_radio::geo::GeoPoint;
        let mut cat = DevicesCatalog::new(days);
        let tac = Tac::new(35_000_000).unwrap();
        let apns = [
            "smhp.centricaplc.com.mnc004.mcc204.gprs",
            "fleet.scania.com.mnc002.mcc262.gprs",
            "internet.albion.gb",
        ];
        for user in 0..devices {
            let sym = cat.intern_apn(apns[(user % 3) as usize]);
            let label = RoamingLabel::ALL[(user % 6) as usize];
            let sim = Plmn::of(204, 4);
            for day in 0..days {
                if (user + u64::from(day)) % 3 == 0 {
                    continue; // inactive day
                }
                let row = cat.row_mut(user, Day(day), sim, tac, label);
                row.events = user * 10 + u64::from(day);
                row.failed_events = user % 3;
                row.calls = user % 2;
                row.sms = user % 5;
                row.call_secs = user * 7;
                row.data_sessions = 1 + user % 4;
                row.bytes_up = user * 1_000;
                row.bytes_down = user * 10_000;
                row.visited.insert(Plmn::of(234, 30).packed());
                row.visited.insert(Plmn::of(234, 10).packed());
                row.apns.insert(sym);
                row.radio_flags.any = RatSet::from_bits((1 + user % 15) as u8);
                row.radio_flags.data = RatSet::from_bits((user % 4) as u8);
                row.sector_set.insert(user * 31 + u64::from(day));
                row.sector_set.insert(user * 31 + 1);
                row.hourly[(user % 24) as usize] = day + 1;
                row.in_designated_range = user % 7 == 0;
                row.in_published_m2m_range = user % 11 == 0;
                if user % 2 == 0 {
                    row.mobility.add(
                        GeoPoint::new(51.0 + user as f64 * 0.01, -(day as f64) * 0.02),
                        2.0,
                    );
                }
            }
        }
        cat
    }

    /// Resolves a catalog's rows into (identity, strings) form for
    /// content comparison independent of symbol numbering.
    fn resolved(cat: &DevicesCatalog) -> Vec<(u64, u32, Vec<String>, u64)> {
        cat.iter()
            .map(|r| {
                (
                    r.user,
                    r.day.0,
                    r.apns.iter().map(|&s| cat.apn_str(s).to_owned()).collect(),
                    r.events,
                )
            })
            .collect()
    }

    #[test]
    fn catalog_roundtrip_preserves_content() {
        let cat = sample_catalog(40, 5);
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(&bytes).unwrap();
        assert_eq!(back.len(), cat.len());
        assert_eq!(back.window_days(), cat.window_days());
        assert_eq!(resolved(&back), resolved(&cat));
        // Everything but the APN symbol numbering is field-for-field equal.
        for (a, b) in cat.iter().zip(back.iter()) {
            assert_eq!(
                (a.user, a.day, a.sim_plmn, a.tac, a.label),
                (b.user, b.day, b.sim_plmn, b.tac, b.label)
            );
            assert_eq!(a.mobility, b.mobility);
            assert_eq!(a.radio_flags, b.radio_flags);
            assert_eq!(a.hourly, b.hourly);
            assert_eq!(a.visited, b.visited);
            assert_eq!(a.sector_set, b.sector_set);
        }
    }

    #[test]
    fn catalog_encoding_is_canonical() {
        // Decoded catalogs have the canonical (sorted) table, so a second
        // encode is byte-identical — and so is encoding a catalog whose
        // APNs were interned in a different order.
        let cat = sample_catalog(25, 4);
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(&bytes).unwrap();
        assert!(back.apn_table().is_canonical());
        assert_eq!(encode_catalog(&back), bytes);
    }

    #[test]
    fn empty_catalog_roundtrip() {
        let cat = DevicesCatalog::new(22);
        let back = decode_catalog(&encode_catalog(&cat)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.window_days(), 22);
    }

    #[test]
    fn catalog_rejects_bad_magic_and_truncation() {
        let bytes = encode_catalog(&sample_catalog(5, 2)).to_vec();
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode_catalog(&bad).is_err());
        assert!(decode_catalog(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_catalog(&bytes[..10]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_catalog(&trailing).is_err());
    }

    #[test]
    fn catalog_rejects_unsorted_table() {
        // Header for a 0-row catalog with an out-of-order 2-entry table.
        let mut raw = Vec::new();
        raw.extend_from_slice(CAT_MAGIC);
        raw.extend_from_slice(&1u32.to_le_bytes()); // window_days
        raw.extend_from_slice(&0u64.to_le_bytes()); // rows
        raw.extend_from_slice(&0u32.to_le_bytes()); // chunks
        raw.extend_from_slice(&2u32.to_le_bytes()); // table len
        for s in ["b.example", "a.example"] {
            raw.extend_from_slice(&(s.len() as u16).to_le_bytes());
            raw.extend_from_slice(s.as_bytes());
        }
        assert!(decode_catalog(&raw).is_err());
    }

    #[test]
    fn catalog_spans_multiple_chunks() {
        // More rows than one chunk holds: every chunk boundary exercised.
        let mut cat = DevicesCatalog::new(3);
        let sym = cat.intern_apn("telemetry.rwe.de");
        let tac = Tac::new(35_000_000).unwrap();
        for user in 0..(CAT_CHUNK_ROWS as u64 + 100) {
            let row = cat.row_mut(
                user,
                Day((user % 3) as u32),
                Plmn::of(262, 1),
                tac,
                RoamingLabel::IH,
            );
            row.events = user;
            row.apns.insert(sym);
        }
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(&bytes).unwrap();
        assert_eq!(back.len(), cat.len());
        assert_eq!(resolved(&back), resolved(&cat));
    }

    #[test]
    fn varint_roundtrip_edges() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in values {
            put_varint(&mut buf, v);
        }
        let mut slice: &[u8] = &buf;
        for v in values {
            assert_eq!(get_varint(&mut slice).unwrap(), v);
        }
        assert!(slice.is_empty());
        // Truncated and overlong inputs are rejected.
        assert!(get_varint(&mut &[0x80u8][..]).is_err());
        assert!(get_varint(&mut &[0xffu8; 11][..]).is_err());
    }
}
