//! Compact binary encoding for transaction logs.
//!
//! The M2M dataset at paper scale is 14M transactions; persisting or
//! shipping it as JSON would be ~50× larger than necessary. This module
//! defines a fixed-width little-endian record format (26 bytes per
//! transaction plus a 16-byte log header) built on the `bytes` crate.
//!
//! Layout per record: `device:u64 | time:u64 | sim_plmn:u32 |
//! visited_plmn:u32 | message:u8 | result:u8`.
//! PLMNs use [`Plmn::packed`]; the decoder reverses the packing.

use crate::records::{M2mMessageType, M2mTransaction};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use wtr_model::error::ParseError;
use wtr_model::ids::{Mcc, Mnc, Plmn};
use wtr_model::time::SimTime;
use wtr_sim::events::ProcedureResult;

/// Magic bytes opening a transaction log.
pub const MAGIC: &[u8; 8] = b"WTRM2M\x01\x00";

fn encode_plmn(p: Plmn) -> u32 {
    p.packed()
}

fn decode_plmn(key: u32) -> Result<Plmn, ParseError> {
    let mcc = Mcc::new((key / 2000) as u16)?;
    let mnc_key = key % 2000;
    let mnc = if mnc_key < 100 {
        Mnc::new2(mnc_key as u16)?
    } else {
        Mnc::new3((mnc_key - 100) as u16)?
    };
    Ok(Plmn::new(mcc, mnc))
}

fn encode_message(m: M2mMessageType) -> u8 {
    match m {
        M2mMessageType::Authentication => 0,
        M2mMessageType::UpdateLocation => 1,
        M2mMessageType::CancelLocation => 2,
    }
}

fn decode_message(b: u8) -> Result<M2mMessageType, ParseError> {
    Ok(match b {
        0 => M2mMessageType::Authentication,
        1 => M2mMessageType::UpdateLocation,
        2 => M2mMessageType::CancelLocation,
        _ => {
            return Err(ParseError::OutOfRange {
                what: "message type byte",
                allowed: "0..=2",
            })
        }
    })
}

fn encode_result(r: ProcedureResult) -> u8 {
    match r {
        ProcedureResult::Ok => 0,
        ProcedureResult::RoamingNotAllowed => 1,
        ProcedureResult::UnknownSubscription => 2,
        ProcedureResult::FeatureUnsupported => 3,
        ProcedureResult::NetworkFailure => 4,
    }
}

fn decode_result(b: u8) -> Result<ProcedureResult, ParseError> {
    Ok(match b {
        0 => ProcedureResult::Ok,
        1 => ProcedureResult::RoamingNotAllowed,
        2 => ProcedureResult::UnknownSubscription,
        3 => ProcedureResult::FeatureUnsupported,
        4 => ProcedureResult::NetworkFailure,
        _ => {
            return Err(ParseError::OutOfRange {
                what: "result byte",
                allowed: "0..=4",
            })
        }
    })
}

/// Serialized size of one record.
pub const RECORD_SIZE: usize = 8 + 8 + 4 + 4 + 1 + 1;

/// Encodes a transaction log into a contiguous byte buffer.
///
/// ```
/// use wtr_probes::wire::{decode_log, encode_log, RECORD_SIZE};
///
/// let encoded = encode_log(&[]);
/// assert_eq!(encoded.len(), 16); // header only
/// assert_eq!(RECORD_SIZE, 26);
/// assert!(decode_log(encoded).unwrap().is_empty());
/// ```
pub fn encode_log(transactions: &[M2mTransaction]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + transactions.len() * RECORD_SIZE);
    buf.put_slice(MAGIC);
    buf.put_u64_le(transactions.len() as u64);
    for t in transactions {
        buf.put_u64_le(t.device);
        buf.put_u64_le(t.time.as_secs());
        buf.put_u32_le(encode_plmn(t.sim_plmn));
        buf.put_u32_le(encode_plmn(t.visited_plmn));
        buf.put_u8(encode_message(t.message));
        buf.put_u8(encode_result(t.result));
    }
    buf.freeze()
}

/// Decodes a transaction log produced by [`encode_log`].
pub fn decode_log(mut buf: impl Buf) -> Result<Vec<M2mTransaction>, ParseError> {
    if buf.remaining() < MAGIC.len() + 8 {
        return Err(ParseError::BadLength {
            what: "transaction log",
            expected: "at least 16 header bytes",
            found: buf.remaining(),
        });
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ParseError::BadApn {
            reason: "bad transaction-log magic",
        });
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() != count * RECORD_SIZE {
        return Err(ParseError::BadLength {
            what: "transaction log body",
            expected: "count * 26 bytes",
            found: buf.remaining(),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let device = buf.get_u64_le();
        let time = SimTime::from_secs(buf.get_u64_le());
        let sim_plmn = decode_plmn(buf.get_u32_le())?;
        let visited_plmn = decode_plmn(buf.get_u32_le())?;
        let message = decode_message(buf.get_u8())?;
        let result = decode_result(buf.get_u8())?;
        out.push(M2mTransaction {
            device,
            time,
            sim_plmn,
            visited_plmn,
            message,
            result,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<M2mTransaction> {
        (0..n)
            .map(|i| M2mTransaction {
                device: i * 31,
                time: SimTime::from_secs(i * 7),
                sim_plmn: if i % 2 == 0 {
                    Plmn::of(214, 7)
                } else {
                    Plmn::of(334, 20)
                },
                visited_plmn: Plmn::of(234, 30),
                message: match i % 3 {
                    0 => M2mMessageType::Authentication,
                    1 => M2mMessageType::UpdateLocation,
                    _ => M2mMessageType::CancelLocation,
                },
                result: match i % 5 {
                    0 => ProcedureResult::Ok,
                    1 => ProcedureResult::RoamingNotAllowed,
                    2 => ProcedureResult::UnknownSubscription,
                    3 => ProcedureResult::FeatureUnsupported,
                    _ => ProcedureResult::NetworkFailure,
                },
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let txs = sample(1_000);
        let bytes = encode_log(&txs);
        assert_eq!(bytes.len(), 16 + 1_000 * RECORD_SIZE);
        let back = decode_log(bytes).unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn empty_log_roundtrip() {
        let bytes = encode_log(&[]);
        assert_eq!(decode_log(bytes).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let txs = sample(3);
        let bytes = encode_log(&txs);
        let mut raw = bytes.to_vec();
        raw[0] ^= 0xff;
        assert!(decode_log(&raw[..]).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let txs = sample(3);
        let bytes = encode_log(&txs);
        let raw = bytes.to_vec();
        assert!(decode_log(&raw[..raw.len() - 1]).is_err());
        assert!(decode_log(&raw[..10]).is_err());
    }

    #[test]
    fn rejects_bad_enum_bytes() {
        let txs = sample(1);
        let mut raw = encode_log(&txs).to_vec();
        let msg_off = 16 + 8 + 8 + 4 + 4;
        raw[msg_off] = 9;
        assert!(decode_log(&raw[..]).is_err());
    }

    #[test]
    fn three_digit_mnc_survives_roundtrip() {
        let tx = M2mTransaction {
            device: 1,
            time: SimTime::ZERO,
            sim_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new3(5).unwrap()),
            visited_plmn: Plmn::new(Mcc::new(310).unwrap(), Mnc::new2(5).unwrap()),
            message: M2mMessageType::Authentication,
            result: ProcedureResult::Ok,
        };
        let back = decode_log(encode_log(&[tx])).unwrap();
        assert_eq!(back[0].sim_plmn.mnc.digits(), 3);
        assert_eq!(back[0].visited_plmn.mnc.digits(), 2);
        assert_ne!(back[0].sim_plmn, back[0].visited_plmn);
    }

    #[test]
    fn record_size_is_26() {
        assert_eq!(RECORD_SIZE, 26);
    }
}
