//! The M2M platform probe (§3.1).
//!
//! "The monitoring probes capture control plane information, focusing
//! specifically on the attach/detach procedures … Given that few HMNOs
//! issue the global IoT SIMs, the monitoring probes reside close to the
//! infrastructure of the HMNOs. The dataset does not provide visibility
//! into the data plane traffic."
//!
//! Implementation of that vantage point:
//!
//! * only **signaling** events are observed (no data, no voice);
//! * only devices whose IMSI falls in a watched HMNO's **dedicated M2M
//!   range** are observed (the probe serves the platform, not the MNOs);
//! * only **4G** procedures are captured ("we do not capture traffic for
//!   2G or 3G in the dataset");
//! * only procedures **visible at the home network** are captured (local
//!   RAUs are not — see [`M2mMessageType::from_procedure`]);
//! * subscriber IDs are hashed before storage.

use crate::records::{M2mMessageType, M2mTransaction};
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_model::ids::{ImsiRange, Plmn};
use wtr_sim::events::SimEvent;
use wtr_sim::world::EventSink;

/// The HMNO-side signaling probe of the M2M platform.
#[derive(Debug, Clone)]
pub struct M2mProbe {
    watched: Vec<ImsiRange>,
    key: AnonKey,
    /// The captured transaction log, in time order.
    pub transactions: Vec<M2mTransaction>,
    dropped_rat: u64,
    dropped_unwatched: u64,
}

impl M2mProbe {
    /// Creates a probe watching the dedicated M2M IMSI ranges of `hmnos`.
    pub fn new(watched: Vec<ImsiRange>, key: AnonKey) -> Self {
        M2mProbe {
            watched,
            key,
            transactions: Vec::new(),
            dropped_rat: 0,
            dropped_unwatched: 0,
        }
    }

    /// The HMNO PLMNs under watch.
    pub fn watched_hmnos(&self) -> impl Iterator<Item = Plmn> + '_ {
        self.watched.iter().map(|r| r.plmn)
    }

    /// Events skipped because they were not on 4G.
    pub fn dropped_non_4g(&self) -> u64 {
        self.dropped_rat
    }

    /// Events skipped because the SIM is not a watched platform SIM.
    pub fn dropped_unwatched(&self) -> u64 {
        self.dropped_unwatched
    }
}

impl EventSink for M2mProbe {
    fn on_event(&mut self, event: &SimEvent) {
        // Control plane only: the probe has no data/voice visibility.
        let SimEvent::Signaling(sig) = event else {
            return;
        };
        if !self.watched.iter().any(|r| r.contains(sig.imsi)) {
            self.dropped_unwatched += 1;
            return;
        }
        if !sig.rat.is_lte_family() {
            // The platform probes watch the 4G/EPC core; NB-IoT signaling
            // traverses the same MME/HSS path (§8) and is captured too.
            self.dropped_rat += 1;
            return;
        }
        let Some(message) = M2mMessageType::from_procedure(sig.procedure) else {
            return;
        };
        self.transactions.push(M2mTransaction {
            device: anonymize_u64(self.key, sig.imsi.packed()),
            time: sig.time,
            sim_plmn: sig.imsi.plmn(),
            visited_plmn: sig.visited,
            message,
            result: sig.result,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::ids::{Imei, Imsi, Tac};
    use wtr_model::rat::Rat;
    use wtr_model::time::SimTime;
    use wtr_sim::events::{ProcedureResult, ProcedureType, SignalingEvent};

    const ES: Plmn = Plmn::of(214, 7);
    const UK: Plmn = Plmn::of(234, 30);

    fn watched_range() -> ImsiRange {
        ImsiRange::new(ES, 5_000_000_000, 6_000_000_000).unwrap()
    }

    fn probe() -> M2mProbe {
        M2mProbe::new(vec![watched_range()], AnonKey::FIXED)
    }

    fn sig(imsi: Imsi, rat: Rat, proc_: ProcedureType) -> SimEvent {
        SimEvent::Signaling(SignalingEvent {
            time: SimTime::from_secs(10),
            device: 1,
            imsi,
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited: UK,
            sector: None,
            rat,
            procedure: proc_,
            result: ProcedureResult::Ok,
        })
    }

    #[test]
    fn captures_watched_4g_auth() {
        let mut p = probe();
        let imsi = Imsi::new(ES, 5_000_000_123).unwrap();
        p.on_event(&sig(imsi, Rat::G4, ProcedureType::Authentication));
        assert_eq!(p.transactions.len(), 1);
        let t = p.transactions[0];
        assert_eq!(t.sim_plmn, ES);
        assert_eq!(t.visited_plmn, UK);
        assert_eq!(t.message, M2mMessageType::Authentication);
        // ID is anonymized, not the raw IMSI pack.
        assert_ne!(t.device, imsi.packed());
    }

    #[test]
    fn drops_non_4g() {
        let mut p = probe();
        let imsi = Imsi::new(ES, 5_000_000_001).unwrap();
        p.on_event(&sig(imsi, Rat::G2, ProcedureType::Authentication));
        p.on_event(&sig(imsi, Rat::G3, ProcedureType::UpdateLocation));
        assert!(p.transactions.is_empty());
        assert_eq!(p.dropped_non_4g(), 2);
    }

    #[test]
    fn drops_consumer_sims_of_same_hmno() {
        // A consumer IMSI of the same operator is outside the dedicated
        // M2M range — invisible to the platform probe.
        let mut p = probe();
        let consumer = Imsi::new(ES, 42).unwrap();
        p.on_event(&sig(consumer, Rat::G4, ProcedureType::Authentication));
        assert!(p.transactions.is_empty());
        assert_eq!(p.dropped_unwatched(), 1);
    }

    #[test]
    fn drops_local_procedures() {
        let mut p = probe();
        let imsi = Imsi::new(ES, 5_000_000_002).unwrap();
        p.on_event(&sig(imsi, Rat::G4, ProcedureType::RoutingAreaUpdate));
        p.on_event(&sig(imsi, Rat::G4, ProcedureType::Detach));
        assert!(p.transactions.is_empty());
    }

    #[test]
    fn ignores_data_and_voice_planes() {
        use wtr_model::apn::Apn;
        use wtr_sim::events::{DataSession, VoiceCall, VoiceKind};
        let mut p = probe();
        let imsi = Imsi::new(ES, 5_000_000_003).unwrap();
        let imei = Imei::new(Tac::new(35_000_000).unwrap(), 3).unwrap();
        let sector = {
            use wtr_model::country::Country;
            use wtr_radio::geo::{CountryGeometry, GeoPoint};
            use wtr_radio::sector::{GridSpacing, SectorGrid};
            SectorGrid::new(
                UK,
                CountryGeometry::of(Country::by_iso("GB").unwrap()),
                GridSpacing::default(),
            )
            .sector_at(GeoPoint::new(52.0, -1.0), Rat::G4)
        };
        p.on_event(&SimEvent::Data(DataSession {
            time: SimTime::ZERO,
            device: 1,
            imsi,
            imei,
            visited: UK,
            sector,
            rat: Rat::G4,
            apn: "intelligent.m2m".parse::<Apn>().unwrap(),
            duration_secs: 10,
            bytes_up: 1,
            bytes_down: 1,
        }));
        p.on_event(&SimEvent::Voice(VoiceCall {
            time: SimTime::ZERO,
            device: 1,
            imsi,
            imei,
            visited: UK,
            sector,
            rat: Rat::G4,
            kind: VoiceKind::SmsLike,
            duration_secs: 0,
        }));
        assert!(p.transactions.is_empty());
    }

    #[test]
    fn device_hash_is_stable() {
        let mut p = probe();
        let imsi = Imsi::new(ES, 5_000_000_004).unwrap();
        p.on_event(&sig(imsi, Rat::G4, ProcedureType::Authentication));
        p.on_event(&sig(imsi, Rat::G4, ProcedureType::UpdateLocation));
        assert_eq!(p.transactions[0].device, p.transactions[1].device);
    }
}
