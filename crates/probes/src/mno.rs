//! The visited-MNO probe (§4.1, Fig. 4).
//!
//! Sits on the studied MNO's MME/MSC/SGSN (radio events for everything
//! attached to the studied network) and on its billing feeds (CDR/xDR —
//! which, unlike radio logs, also cover the MNO's own outbound roamers via
//! roaming clearing). Visibility rules implemented exactly as the paper
//! describes:
//!
//! * device attached to the studied MNO → radio events + CDR/xDR;
//! * studied MNO's (or hosted-MVNO's) SIM attached abroad → CDR/xDR only
//!   ("radio signaling for outbound roamers is carried over the visited
//!   country network only");
//! * foreign SIM attached to a foreign network → invisible.
//!
//! Every visible event is folded into the daily devices-catalog on the
//! fly; raw records can optionally be retained for tests and small runs.

use crate::catalog::DevicesCatalog;
use crate::records::{Cdr, CdrKind, RadioEventRecord, Xdr};
use serde::{Deserialize, Serialize};
use wtr_model::hash::{anonymize_u64, AnonKey};
use wtr_model::ids::{ImsiRange, Plmn};
use wtr_model::operators::OperatorRegistry;
use wtr_model::roaming::{Presence, RoamingLabel};
use wtr_model::time::Day;
use wtr_radio::network::RadioNetwork;
use wtr_sim::events::{SimEvent, VoiceKind};
use wtr_sim::stream::{drive_slice, ChunkFold};
use wtr_sim::world::EventSink;

/// Per-day load on the monitored core-network elements (Fig. 4): the
/// MME serves LTE-family signaling, the SGSN 2G/3G packet signaling, and
/// the MSC the circuit-switched (voice/SMS) domain. This is the "network
/// elements that we monitor" view, letting operators see which box the
/// §7.1 background traffic actually lands on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementLoad {
    /// Signaling events handled by the MME (4G / NB-IoT).
    pub mme: u64,
    /// Signaling events handled by the SGSN (2G / 3G).
    pub sgsn: u64,
    /// Circuit-switched records handled by the MSC.
    pub msc: u64,
    /// Data sessions through SGW/PGW (4G / NB-IoT).
    pub sgw: u64,
    /// Data sessions through SGSN/GGSN (2G / 3G).
    pub ggsn: u64,
}

impl ElementLoad {
    /// Accumulates another day's (or probe's) load.
    pub fn merge(&mut self, other: ElementLoad) {
        self.mme += other.mme;
        self.sgsn += other.sgsn;
        self.msc += other.msc;
        self.sgw += other.sgw;
        self.ggsn += other.ggsn;
    }
}

/// The studied MNO's passive measurement pipeline.
///
/// # Memory contract
///
/// The probe is a bounded-memory [`ChunkFold`] sink over the event
/// stream: its steady state is **O(devices × active days)** — the
/// devices-catalog rows plus one [`ElementLoad`] per window day — and
/// never O(events). Events fold into catalog rows on arrival and are
/// dropped. The only opt-out is [`MnoProbe::retain_raw`], which keeps
/// the per-event `raw_radio` / `raw_cdrs` / `raw_xdrs` vectors growing
/// without bound; it exists for tests and small exploratory runs only
/// and **must stay off on every production / scenario path** (the
/// default constructor leaves it off, and nothing in `wtr-scenarios`
/// or the CLI enables it).
#[derive(Debug, Clone)]
pub struct MnoProbe {
    studied: Plmn,
    registry: OperatorRegistry,
    /// The studied network (to resolve sector positions for mobility).
    home_network: RadioNetwork,
    key: AnonKey,
    /// The daily devices-catalog built so far.
    pub catalog: DevicesCatalog,
    /// Raw radio records. **Empty unless [`MnoProbe::retain_raw`] was
    /// called** — the default path drops raw records after folding them
    /// into the catalog, keeping the probe's memory independent of the
    /// event count (see the struct-level memory contract).
    pub raw_radio: Vec<RadioEventRecord>,
    /// Raw CDRs (see `raw_radio`; empty unless raw retention is on).
    pub raw_cdrs: Vec<Cdr>,
    /// Raw xDRs (see `raw_radio`; empty unless raw retention is on).
    pub raw_xdrs: Vec<Xdr>,
    retain_raw: bool,
    designated_ranges: Vec<ImsiRange>,
    published_m2m_ranges: Vec<ImsiRange>,
    element_load: Vec<ElementLoad>,
    radio_events: u64,
    cdr_count: u64,
    xdr_count: u64,
}

impl MnoProbe {
    /// Creates a probe for `studied` over a `window_days` observation
    /// window.
    pub fn new(
        studied: Plmn,
        registry: OperatorRegistry,
        home_network: RadioNetwork,
        key: AnonKey,
        window_days: u32,
    ) -> Self {
        MnoProbe {
            studied,
            registry,
            home_network,
            key,
            catalog: DevicesCatalog::new(window_days),
            raw_radio: Vec::new(),
            raw_cdrs: Vec::new(),
            raw_xdrs: Vec::new(),
            retain_raw: false,
            designated_ranges: Vec::new(),
            published_m2m_ranges: Vec::new(),
            element_load: vec![ElementLoad::default(); window_days as usize],
            radio_events: 0,
            cdr_count: 0,
            xdr_count: 0,
        }
    }

    /// Keeps raw record vectors in memory (tests / small runs only).
    ///
    /// This opts out of the probe's bounded-memory contract: with raw
    /// retention on, memory grows **O(events)** instead of
    /// O(devices × days). Never enable it on a scenario- or
    /// production-scale path.
    pub fn retain_raw(mut self) -> Self {
        self.retain_raw = true;
        self
    }

    /// Whether raw record retention is enabled (see
    /// [`MnoProbe::retain_raw`]).
    pub fn retains_raw(&self) -> bool {
        self.retain_raw
    }

    /// Registers an operator-designated IMSI range (e.g. the SMIP smart-
    /// meter block): rows of SIMs in any registered range get
    /// `in_designated_range = true`.
    pub fn with_designated_range(mut self, range: ImsiRange) -> Self {
        self.designated_ranges.push(range);
        self
    }

    /// Registers a foreign M2M IMSI range published by a roaming partner
    /// under the GSMA transparency recommendation (§1): rows of SIMs in
    /// any registered range get `in_published_m2m_range = true`.
    pub fn with_published_m2m_range(mut self, range: ImsiRange) -> Self {
        self.published_m2m_ranges.push(range);
        self
    }

    /// The studied MNO.
    pub fn studied(&self) -> Plmn {
        self.studied
    }

    /// Count of radio-interface events processed.
    pub fn radio_event_count(&self) -> u64 {
        self.radio_events
    }

    /// Count of CDRs processed.
    pub fn cdr_count(&self) -> u64 {
        self.cdr_count
    }

    /// Count of xDRs processed.
    pub fn xdr_count(&self) -> u64 {
        self.xdr_count
    }

    /// Consumes the probe, returning the catalog.
    pub fn into_catalog(self) -> DevicesCatalog {
        self.catalog
    }

    /// Per-day load on the monitored elements (index = day).
    pub fn element_load(&self) -> &[ElementLoad] {
        &self.element_load
    }

    fn element_day(&mut self, day: Day) -> &mut ElementLoad {
        let idx = (day.0 as usize).min(self.element_load.len().saturating_sub(1));
        &mut self.element_load[idx]
    }

    fn label_for(&self, sim: Plmn, visited: Plmn) -> Option<RoamingLabel> {
        RoamingLabel::derive(self.studied, &self.registry, sim, visited)
    }

    /// A probe with the same configuration but no accumulated state —
    /// the chunk-local accumulator of the parallel ingest path, and the
    /// shard-local probe of the sharded scenario runners (each shard
    /// taps its own event loop with a fork of the configured probe).
    pub fn fork_empty(&self) -> MnoProbe {
        let window_days = self.catalog.window_days();
        MnoProbe {
            studied: self.studied,
            registry: self.registry.clone(),
            home_network: self.home_network.clone(),
            key: self.key,
            catalog: DevicesCatalog::new(window_days),
            raw_radio: Vec::new(),
            raw_cdrs: Vec::new(),
            raw_xdrs: Vec::new(),
            retain_raw: self.retain_raw,
            designated_ranges: self.designated_ranges.clone(),
            published_m2m_ranges: self.published_m2m_ranges.clone(),
            element_load: vec![ElementLoad::default(); self.element_load.len()],
            radio_events: 0,
            cdr_count: 0,
            xdr_count: 0,
        }
    }

    /// Folds a chunk-local probe (built from a *later* slice of the event
    /// stream) into this one. Catalog rows merge with first-touch identity
    /// preserved, raw records append in stream order, element loads and
    /// counters add.
    ///
    /// This is also the shard-merge of the sharded scenario runners:
    /// shard probes tap disjoint device populations, so every keyed merge
    /// (catalog rows) is conflict-free and every additive merge (element
    /// load, radio/CDR/xDR counters) is order-insensitive. The one
    /// ordering artifact — APN intern order, which depends on how shards
    /// are concatenated — is erased by [`MnoProbe::canonicalize`]
    /// afterwards. Property-tested in `tests/shard_determinism.rs`:
    /// absorbing arbitrarily partitioned shard probes reproduces the
    /// single-probe serial fold exactly.
    pub fn absorb(&mut self, other: MnoProbe) {
        let apn_remap = self.catalog.merge(other.catalog);
        self.raw_radio.extend(other.raw_radio);
        self.raw_cdrs.extend(other.raw_cdrs);
        self.raw_xdrs
            .extend(other.raw_xdrs.into_iter().map(|mut x| {
                x.apn = apn_remap[x.apn.index()];
                x
            }));
        for (mine, theirs) in self.element_load.iter_mut().zip(other.element_load) {
            mine.merge(theirs);
        }
        self.radio_events += other.radio_events;
        self.cdr_count += other.cdr_count;
        self.xdr_count += other.xdr_count;
    }

    /// Rewrites the catalog into canonical APN-symbol form (sorted
    /// table, see [`DevicesCatalog::canonicalize`]) and remaps any
    /// retained raw xDRs through the same symbol remap. Sharded and
    /// serial runs intern APNs in different first-occurrence orders
    /// (the interleaving of devices differs); canonical form is the
    /// common fixpoint both converge to, making probe state comparable
    /// — and byte-identical once serialized — across shard counts.
    pub fn canonicalize(&mut self) {
        let remap = self.catalog.canonicalize();
        for x in &mut self.raw_xdrs {
            x.apn = remap[x.apn.index()];
        }
    }

    /// Ingests a batch of events, sharding the work over worker threads
    /// (`wtr_sim::par`). Output is byte-identical at any thread count
    /// (chunk boundaries depend only on `events.len()`).
    ///
    /// Events must be in stream order (the order a serial run would see
    /// them); consecutive chunks are folded into chunk-local probes and
    /// merged left-to-right, so first-touch row identity — the label a
    /// (device, day) row keeps — is decided by the earliest event exactly
    /// as in the serial path, and every integer counter, set and APN
    /// symbol matches a serial [`EventSink::on_event`] replay. The one
    /// caveat: per-row *mobility* accumulators are f64 sums, and chunked
    /// merging regroups those additions, so their low bits may differ
    /// from the serial replay (still deterministic for a given batch).
    /// Paths that must be bit-identical to the serial push model — the
    /// scenario runners via [`wtr_sim::stream::EventBatcher`] — fold
    /// batches serially instead.
    pub fn ingest_batch(&mut self, events: &[SimEvent]) {
        drive_slice(self, events);
    }
}

/// The probe as a streaming sink: chunk-local probes fold event chunks
/// independently and merge left-to-right — `zero` is an empty probe
/// with the same configuration, `absorb` is the catalog/counter merge
/// (first-touch row identity preserved, APN symbols remapped). This is
/// what [`wtr_sim::stream::EventBatcher`] wraps to turn the engine's
/// push-model event loop into a bounded-memory batched ingest (the
/// batcher folds each batch serially, keeping mobility f64 sums
/// bit-identical to the push model; see [`MnoProbe::ingest_batch`] for
/// the chunk-parallel variant and its f64 caveat).
impl ChunkFold<SimEvent> for MnoProbe {
    fn zero(&self) -> Self {
        self.fork_empty()
    }

    fn fold_chunk(&mut self, chunk: &[SimEvent]) {
        for e in chunk {
            self.on_event(e);
        }
    }

    fn absorb(&mut self, later: Self) {
        MnoProbe::absorb(self, later);
    }
}

impl EventSink for MnoProbe {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::Signaling(sig) => {
                // Radio events exist only on the studied network.
                if sig.visited != self.studied {
                    return;
                }
                let Some(label) = self.label_for(sig.imsi.plmn(), sig.visited) else {
                    return;
                };
                debug_assert_eq!(label.presence, Presence::Home);
                let user = anonymize_u64(self.key, sig.imsi.packed());
                let day = Day(sig.time.day().0);
                let tac = sig.imei.tac();
                self.radio_events += 1;
                if sig.rat.is_lte_family() {
                    self.element_day(day).mme += 1;
                } else {
                    self.element_day(day).sgsn += 1;
                }
                let designated = self.designated_ranges.iter().any(|r| r.contains(sig.imsi));
                let published = self
                    .published_m2m_ranges
                    .iter()
                    .any(|r| r.contains(sig.imsi));
                let row = self.catalog.row_mut(user, day, sig.imsi.plmn(), tac, label);
                row.in_designated_range |= designated;
                row.in_published_m2m_range |= published;
                row.hourly[sig.time.hour_of_day() as usize] += 1;
                row.events += 1;
                if !sig.result.is_ok() {
                    row.failed_events += 1;
                } else {
                    row.radio_flags.record(sig.rat, false, false);
                }
                row.visited.insert(sig.visited.packed());
                if let Some(sector) = sig.sector {
                    row.sector_set.insert(sector.raw());
                    let pos = self.home_network.sector_position(sector);
                    row.mobility.add(pos, 1.0);
                }
                if self.retain_raw {
                    if let Some(sector) = sig.sector {
                        self.raw_radio.push(RadioEventRecord {
                            user,
                            sim_plmn: sig.imsi.plmn(),
                            tac,
                            sector,
                            rat: sig.rat,
                            time: sig.time,
                            event: sig.procedure,
                            result: sig.result,
                        });
                    }
                }
            }
            SimEvent::Voice(v) => {
                let Some(label) = self.label_for(v.imsi.plmn(), v.visited) else {
                    return;
                };
                let user = anonymize_u64(self.key, v.imsi.packed());
                let day = Day(v.time.day().0);
                let tac = v.imei.tac();
                self.cdr_count += 1;
                if v.visited == self.studied {
                    self.element_day(day).msc += 1;
                }
                let designated = self.designated_ranges.iter().any(|r| r.contains(v.imsi));
                let published = self.published_m2m_ranges.iter().any(|r| r.contains(v.imsi));
                let row = self.catalog.row_mut(user, day, v.imsi.plmn(), tac, label);
                row.in_designated_range |= designated;
                row.in_published_m2m_range |= published;
                row.hourly[v.time.hour_of_day() as usize] += 1;
                match v.kind {
                    VoiceKind::Call => {
                        row.calls += 1;
                        row.call_secs += v.duration_secs as u64;
                    }
                    VoiceKind::SmsLike => row.sms += 1,
                }
                row.radio_flags.record(v.rat, false, true);
                row.visited.insert(v.visited.packed());
                if v.visited == self.studied {
                    row.sector_set.insert(v.sector.raw());
                    row.mobility
                        .add(self.home_network.sector_position(v.sector), 1.0);
                }
                if self.retain_raw {
                    self.raw_cdrs.push(Cdr {
                        user,
                        sim_plmn: v.imsi.plmn(),
                        visited_plmn: v.visited,
                        tac,
                        rat: v.rat,
                        time: v.time,
                        kind: match v.kind {
                            VoiceKind::Call => CdrKind::Call,
                            VoiceKind::SmsLike => CdrKind::Sms,
                        },
                        duration_secs: v.duration_secs,
                    });
                }
            }
            SimEvent::Data(d) => {
                let Some(label) = self.label_for(d.imsi.plmn(), d.visited) else {
                    return;
                };
                let user = anonymize_u64(self.key, d.imsi.packed());
                let day = Day(d.time.day().0);
                let tac = d.imei.tac();
                self.xdr_count += 1;
                if d.visited == self.studied {
                    if d.rat.is_lte_family() {
                        self.element_day(day).sgw += 1;
                    } else {
                        self.element_day(day).ggsn += 1;
                    }
                }
                let designated = self.designated_ranges.iter().any(|r| r.contains(d.imsi));
                let published = self.published_m2m_ranges.iter().any(|r| r.contains(d.imsi));
                let apn_sym = self.catalog.intern_apn(&d.apn.full());
                let row = self.catalog.row_mut(user, day, d.imsi.plmn(), tac, label);
                row.in_designated_range |= designated;
                row.in_published_m2m_range |= published;
                row.hourly[d.time.hour_of_day() as usize] += 1;
                row.data_sessions += 1;
                row.bytes_up += d.bytes_up;
                row.bytes_down += d.bytes_down;
                row.apns.insert(apn_sym);
                row.radio_flags.record(d.rat, true, false);
                row.visited.insert(d.visited.packed());
                if d.visited == self.studied {
                    row.sector_set.insert(d.sector.raw());
                    row.mobility
                        .add(self.home_network.sector_position(d.sector), 1.0);
                }
                if self.retain_raw {
                    self.raw_xdrs.push(Xdr {
                        user,
                        sim_plmn: d.imsi.plmn(),
                        visited_plmn: d.visited,
                        tac,
                        rat: d.rat,
                        time: d.time,
                        duration_secs: d.duration_secs,
                        bytes_up: d.bytes_up,
                        bytes_down: d.bytes_down,
                        apn: apn_sym,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::apn::Apn;
    use wtr_model::country::Country;
    use wtr_model::ids::{Imei, Imsi, Tac};
    use wtr_model::operators::well_known;
    use wtr_model::rat::{Rat, RatSet};
    use wtr_model::time::SimTime;
    use wtr_radio::geo::{CountryGeometry, GeoPoint};
    use wtr_radio::network::CoverageFaults;
    use wtr_radio::sector::GridSpacing;
    use wtr_sim::events::{DataSession, ProcedureResult, ProcedureType, SignalingEvent, VoiceCall};

    const MNO: Plmn = well_known::UK_STUDIED_MNO;
    const NL: Plmn = well_known::NL_SMART_METER_HMNO;
    const ES: Plmn = well_known::ES_HMNO;

    fn home_network() -> RadioNetwork {
        RadioNetwork::new(
            MNO,
            RatSet::CONVENTIONAL,
            CountryGeometry::of(Country::by_iso("GB").unwrap()),
            GridSpacing::default(),
            CoverageFaults::NONE,
        )
    }

    fn probe() -> MnoProbe {
        MnoProbe::new(
            MNO,
            OperatorRegistry::standard(3),
            home_network(),
            AnonKey::FIXED,
            22,
        )
        .retain_raw()
    }

    fn sector() -> wtr_radio::sector::SectorId {
        home_network()
            .grid()
            .sector_at(GeoPoint::new(52.5, -1.0), Rat::G2)
    }

    fn sig_event(imsi: Imsi, visited: Plmn, ok: bool) -> SimEvent {
        SimEvent::Signaling(SignalingEvent {
            time: SimTime::from_secs(100),
            device: 1,
            imsi,
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited,
            sector: Some(sector()),
            rat: Rat::G2,
            procedure: ProcedureType::Authentication,
            result: if ok {
                ProcedureResult::Ok
            } else {
                ProcedureResult::RoamingNotAllowed
            },
        })
    }

    fn data_event(imsi: Imsi, visited: Plmn) -> SimEvent {
        SimEvent::Data(DataSession {
            time: SimTime::from_secs(200),
            device: 1,
            imsi,
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited,
            sector: sector(),
            rat: Rat::G2,
            apn: "smhp.centricaplc.com.mnc004.mcc204.gprs"
                .parse::<Apn>()
                .unwrap(),
            duration_secs: 30,
            bytes_up: 1_000,
            bytes_down: 200,
        })
    }

    #[test]
    fn inbound_roamer_fully_visible() {
        let mut p = probe();
        let imsi = Imsi::new(NL, 5_000_000_000).unwrap();
        p.on_event(&sig_event(imsi, MNO, true));
        p.on_event(&data_event(imsi, MNO));
        assert_eq!(p.radio_event_count(), 1);
        assert_eq!(p.xdr_count(), 1);
        assert_eq!(p.catalog.len(), 1);
        let row = p.catalog.iter().next().unwrap();
        assert_eq!(row.label, RoamingLabel::IH);
        assert_eq!(row.events, 1);
        assert_eq!(row.data_sessions, 1);
        assert!(row
            .apns
            .iter()
            .any(|&a| p.catalog.apn_str(a).contains("centricaplc")));
        assert!(row.radio_flags.data.contains(Rat::G2));
        assert_eq!(row.sectors(), 1);
        assert!(row.mobility.gyration_km().unwrap() < 1e-6);
    }

    #[test]
    fn foreign_sim_abroad_invisible() {
        let mut p = probe();
        let imsi = Imsi::new(NL, 1).unwrap();
        p.on_event(&sig_event(imsi, ES, true));
        p.on_event(&data_event(imsi, ES));
        assert!(p.catalog.is_empty());
        assert_eq!(p.radio_event_count(), 0);
        assert_eq!(p.xdr_count(), 0);
    }

    #[test]
    fn outbound_roamer_cdr_xdr_only() {
        let mut p = probe();
        let imsi = Imsi::new(MNO, 7).unwrap();
        // Signaling abroad: invisible.
        p.on_event(&sig_event(imsi, ES, true));
        assert_eq!(p.radio_event_count(), 0);
        // Data abroad: visible via clearing.
        p.on_event(&data_event(imsi, ES));
        assert_eq!(p.xdr_count(), 1);
        let row = p.catalog.iter().next().unwrap();
        assert_eq!(row.label, RoamingLabel::HA);
        assert_eq!(row.events, 0, "no radio events for outbound roamers");
        assert_eq!(row.sectors(), 0, "no sector visibility abroad");
    }

    #[test]
    fn failures_counted_and_no_radio_flag() {
        let mut p = probe();
        let imsi = Imsi::new(NL, 9).unwrap();
        p.on_event(&sig_event(imsi, MNO, false));
        let row = p.catalog.iter().next().unwrap();
        assert_eq!(row.failed_events, 1);
        assert!(row.radio_flags.any.is_empty(), "failed events set no flags");
    }

    #[test]
    fn voice_updates_cdr_fields() {
        let mut p = probe();
        let imsi = Imsi::new(NL, 11).unwrap();
        p.on_event(&SimEvent::Voice(VoiceCall {
            time: SimTime::from_secs(50),
            device: 2,
            imsi,
            imei: Imei::new(Tac::new(35_000_001).unwrap(), 2).unwrap(),
            visited: MNO,
            sector: sector(),
            rat: Rat::G2,
            kind: VoiceKind::Call,
            duration_secs: 90,
        }));
        let row = p.catalog.iter().next().unwrap();
        assert_eq!(row.calls, 1);
        assert_eq!(row.call_secs, 90);
        assert!(row.radio_flags.voice.contains(Rat::G2));
        assert!(row.used_voice() && !row.used_data());
        assert_eq!(p.raw_cdrs.len(), 1);
    }

    #[test]
    fn mvno_sim_gets_virtual_label() {
        let mut p = probe();
        let imsi = Imsi::new(Plmn::of(234, 31), 3).unwrap();
        p.on_event(&sig_event(imsi, MNO, true));
        let row = p.catalog.iter().next().unwrap();
        assert_eq!(row.label, RoamingLabel::VH);
    }

    #[test]
    fn raw_retention_off_by_default() {
        let mut p = MnoProbe::new(
            MNO,
            OperatorRegistry::standard(2),
            home_network(),
            AnonKey::FIXED,
            22,
        );
        let imsi = Imsi::new(NL, 12).unwrap();
        p.on_event(&sig_event(imsi, MNO, true));
        p.on_event(&data_event(imsi, MNO));
        assert!(p.raw_radio.is_empty() && p.raw_xdrs.is_empty());
        assert_eq!(p.catalog.len(), 1, "catalog still built");
    }

    #[test]
    fn days_partition_rows() {
        let mut p = probe();
        let imsi = Imsi::new(NL, 13).unwrap();
        let mut e = sig_event(imsi, MNO, true);
        p.on_event(&e);
        if let SimEvent::Signaling(s) = &mut e {
            s.time = SimTime::from_day_and_secs(1, 10);
        }
        p.on_event(&e);
        assert_eq!(p.catalog.len(), 2);
        assert_eq!(p.catalog.device_count(), 1);
    }
}
