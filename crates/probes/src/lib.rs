//! # wtr-probes — passive measurement infrastructure
//!
//! The reproduction of the paper's two data-collection pipelines, attached
//! to the simulator exactly where the real probes attach to the network
//! (Fig. 4: MME, MSC, SGSN; plus CDR/xDR billing feeds):
//!
//! * [`m2m`] — the **M2M platform probe**: sits HMNO-side and records the
//!   signaling transactions of platform-issued IoT SIMs on 4G networks
//!   world-wide, producing the §3 dataset (device hash, timestamp, SIM
//!   MCC-MNC, visited MCC-MNC, message type, message result).
//! * [`mno`] — the **visited-MNO probe**: sees every device attached to
//!   one studied MNO's radio network (and the CDR/xDR clearing records of
//!   its outbound roamers), feeding the daily devices-catalog of §4.1.
//! * [`catalog`] — the **devices-catalog builder**: the daily aggregate
//!   join of radio events + service records + the GSMA TAC catalog.
//! * [`records`] — the record schemas, with the same fields the paper
//!   lists.
//! * [`wire`] — a compact binary encoding for persisting transaction logs.
//! * [`io`] — JSONL import/export so the pipeline runs on external data.
//! * [`faults`] — deterministic record-loss injection for robustness
//!   testing (the smoltcp `--drop-chance` idiom at the record layer).
//!
//! ## The information boundary
//!
//! Probes enforce the paper's privacy model: subscriber identifiers are
//! **anonymized with a stable one-way hash before anything downstream sees
//! them**, and ground-truth fields of the simulation (the device's actual
//! vertical) never cross into records. Whatever the classifier in
//! `wtr-core` achieves, it achieves from the same information a real
//! operator has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod faults;
pub mod io;
pub mod m2m;
pub mod mno;
pub mod records;
mod scan;
pub mod wire;

pub use catalog::{CatalogEntry, DevicesCatalog};
pub use faults::LossySink;
pub use m2m::M2mProbe;
pub use mno::MnoProbe;
pub use records::{Cdr, M2mMessageType, M2mTransaction, RadioEventRecord, Xdr};
