//! The daily devices-catalog (§4.1).
//!
//! "We combine the three data sources to create a daily list of active
//! devices and associated properties and traffic characteristics … Each
//! record in the generated catalog reports a device ID, total number of
//! events, calls, bytes seen, SIM MCC/MNC, list of visited MCC-MNC, list
//! of APN strings … We further summarize the radio activity into
//! radio-flags … Finally, we compute mobility metrics for each device."
//!
//! A [`CatalogEntry`] is one (device, day) row. Mobility is accumulated
//! incrementally (weighted sums of sector coordinates and their squares),
//! so the catalog never stores per-sector dwell lists: centroid and radius
//! of gyration come out of O(1) state per row, using the local-tangent-
//! plane approximation that is standard for intra-country gyration.
//! Weights are event counts — a documented approximation of the paper's
//! time-spent-per-sector weighting (DESIGN.md).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use wtr_model::ids::{Plmn, Tac};
use wtr_model::intern::{ApnSym, ApnTable};
use wtr_model::rat::RadioFlags;
use wtr_model::roaming::RoamingLabel;
use wtr_model::time::Day;
use wtr_radio::geo::GeoPoint;
use wtr_sim::par;

/// Kilometres per degree of latitude (and of longitude at the equator).
const KM_PER_DEG: f64 = 111.195;

/// Incremental mobility accumulator: weighted first and second moments of
/// the sector coordinates a device used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityAccum {
    w: f64,
    lat_w: f64,
    lon_w: f64,
    lat2_w: f64,
    lon2_w: f64,
}

impl MobilityAccum {
    /// Adds one observation at `p` with weight `weight`.
    pub fn add(&mut self, p: GeoPoint, weight: f64) {
        self.w += weight;
        self.lat_w += p.lat * weight;
        self.lon_w += p.lon * weight;
        self.lat2_w += p.lat * p.lat * weight;
        self.lon2_w += p.lon * p.lon * weight;
    }

    /// Merges another accumulator (multi-day aggregation).
    pub fn merge(&mut self, other: &MobilityAccum) {
        self.w += other.w;
        self.lat_w += other.lat_w;
        self.lon_w += other.lon_w;
        self.lat2_w += other.lat2_w;
        self.lon2_w += other.lon2_w;
    }

    /// Total weight.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Weighted centroid, if any weight has been accumulated.
    pub fn centroid(&self) -> Option<GeoPoint> {
        if self.w <= 0.0 {
            return None;
        }
        Some(GeoPoint::new(self.lat_w / self.w, self.lon_w / self.w))
    }

    /// Radius of gyration in kilometres (local-tangent-plane).
    pub fn gyration_km(&self) -> Option<f64> {
        let c = self.centroid()?;
        let var_lat = (self.lat2_w / self.w - c.lat * c.lat).max(0.0);
        let var_lon = (self.lon2_w / self.w - c.lon * c.lon).max(0.0);
        let klat = KM_PER_DEG;
        let klon = KM_PER_DEG * c.lat.to_radians().cos();
        Some((var_lat * klat * klat + var_lon * klon * klon).sqrt())
    }

    /// The raw accumulator state `[w, lat_w, lon_w, lat2_w, lon2_w]` —
    /// what the columnar `WTRCAT` codec stores.
    pub fn to_parts(&self) -> [f64; 5] {
        [self.w, self.lat_w, self.lon_w, self.lat2_w, self.lon2_w]
    }

    /// Rebuilds an accumulator from its raw state (inverse of
    /// [`MobilityAccum::to_parts`]).
    pub fn from_parts(parts: [f64; 5]) -> Self {
        MobilityAccum {
            w: parts[0],
            lat_w: parts[1],
            lon_w: parts[2],
            lat2_w: parts[3],
            lon2_w: parts[4],
        }
    }
}

/// One (device, day) row of the devices-catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Anonymized device ID.
    pub user: u64,
    /// Day of the row.
    pub day: Day,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Device TAC (joinable against the GSMA-like catalog).
    pub tac: Tac,
    /// Roaming label of the day (§4.2).
    pub label: RoamingLabel,
    /// Total radio events.
    pub events: u64,
    /// Radio events with a failure result.
    pub failed_events: u64,
    /// Voice calls.
    pub calls: u64,
    /// SMS-like transactions.
    pub sms: u64,
    /// Total call seconds.
    pub call_secs: u64,
    /// Data sessions.
    pub data_sessions: u64,
    /// Uplink bytes.
    pub bytes_up: u64,
    /// Downlink bytes.
    pub bytes_down: u64,
    /// Visited PLMNs seen this day (packed keys, sorted).
    pub visited: BTreeSet<u32>,
    /// APNs seen this day (the classifier's raw material), as interned
    /// symbols resolved through the owning catalog's [`ApnTable`]. `Copy`
    /// keys: merging rows copies 4-byte symbols, never clones strings.
    pub apns: BTreeSet<ApnSym>,
    /// Radio-flags: RATs successfully used, per plane.
    pub radio_flags: RadioFlags,
    /// Raw sector ids used this day (distinct set).
    pub sector_set: BTreeSet<u64>,
    /// Events per hour of day (signaling + data + voice) — the diurnal
    /// fingerprint that separates machine traffic (flat/periodic) from
    /// human traffic (waking-hours curve), cf. the M2M-vs-phone diurnal
    /// contrast of Shafiq et al. \[18\] that §1 cites.
    pub hourly: [u32; 24],
    /// Whether the SIM falls in an operator-designated IMSI range (e.g.
    /// the studied MNO's dedicated SMIP smart-meter block, §4.4). Tagged
    /// by the probe *before* anonymization — operators can always label
    /// their own ranges.
    pub in_designated_range: bool,
    /// Whether the SIM falls in a *foreign* M2M IMSI range that the home
    /// operator published under the GSMA transparency recommendation (§1:
    /// "home networks and carriers [should] provide transparency of their
    /// outbound roaming M2M traffic by sharing … dedicated IMSI ranges").
    /// Tagged pre-anonymization, like `in_designated_range`.
    pub in_published_m2m_range: bool,
    /// Mobility accumulator (centroid + gyration).
    pub mobility: MobilityAccum,
}

impl CatalogEntry {
    fn new(user: u64, day: Day, sim_plmn: Plmn, tac: Tac, label: RoamingLabel) -> Self {
        CatalogEntry {
            user,
            day,
            sim_plmn,
            tac,
            label,
            events: 0,
            failed_events: 0,
            calls: 0,
            sms: 0,
            call_secs: 0,
            data_sessions: 0,
            bytes_up: 0,
            bytes_down: 0,
            visited: BTreeSet::new(),
            apns: BTreeSet::new(),
            radio_flags: RadioFlags::default(),
            sector_set: BTreeSet::new(),
            hourly: [0; 24],
            in_designated_range: false,
            in_published_m2m_range: false,
            mobility: MobilityAccum::default(),
        }
    }

    /// Number of distinct sectors used this day.
    pub fn sectors(&self) -> usize {
        self.sector_set.len()
    }

    /// Total bytes both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Whether the device used any data service this day.
    pub fn used_data(&self) -> bool {
        self.data_sessions > 0
    }

    /// Whether the device used any voice service this day.
    pub fn used_voice(&self) -> bool {
        self.calls + self.sms > 0
    }

    /// Folds another row for the *same* (device, day) into this one.
    ///
    /// Counters add, sets union, hour-of-day and mobility accumulators
    /// merge; identity fields (`sim_plmn`, `tac`, `label`) keep `self`'s
    /// values — the same first-touch-wins rule [`DevicesCatalog::row_mut`]
    /// applies when a probe builds a row incrementally. This is the merge
    /// step of the parallel ingest path: when `self` holds the earlier
    /// chunk of the event stream, the combined row is identical to what a
    /// serial fold would have produced.
    pub fn absorb(&mut self, other: &CatalogEntry) {
        debug_assert_eq!((self.user, self.day), (other.user, other.day));
        self.events += other.events;
        self.failed_events += other.failed_events;
        self.calls += other.calls;
        self.sms += other.sms;
        self.call_secs += other.call_secs;
        self.data_sessions += other.data_sessions;
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.visited.extend(other.visited.iter().copied());
        self.apns.extend(other.apns.iter().copied());
        self.radio_flags.merge(other.radio_flags);
        self.sector_set.extend(other.sector_set.iter().copied());
        for (h, n) in other.hourly.iter().enumerate() {
            self.hourly[h] += n;
        }
        self.in_designated_range |= other.in_designated_range;
        self.in_published_m2m_range |= other.in_published_m2m_range;
        self.mobility.merge(&other.mobility);
    }
}

/// The devices-catalog: all (device, day) rows of the observation window.
///
/// Rows live in a `BTreeMap` keyed by (user, day), so iteration order —
/// and everything downstream of it: summaries, reports, serialized
/// exports — is deterministic by construction.
///
/// The catalog also owns the [`ApnTable`] its rows' [`ApnSym`] sets are
/// resolved through: every distinct APN string is stored exactly once
/// here, no matter how many (device, day) rows carry it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DevicesCatalog {
    rows: BTreeMap<(u64, u32), CatalogEntry>,
    window_days: u32,
    apns: ApnTable,
}

impl DevicesCatalog {
    /// Creates an empty catalog for a window of `window_days` days.
    pub fn new(window_days: u32) -> Self {
        DevicesCatalog {
            rows: BTreeMap::new(),
            window_days,
            apns: ApnTable::new(),
        }
    }

    /// Length of the observation window in days.
    pub fn window_days(&self) -> u32 {
        self.window_days
    }

    /// Interns an APN string into this catalog's table, returning the
    /// symbol to store in a row's `apns` set.
    pub fn intern_apn(&mut self, apn: &str) -> ApnSym {
        self.apns.intern(apn)
    }

    /// The catalog's APN intern table (what row symbols resolve through).
    pub fn apn_table(&self) -> &ApnTable {
        &self.apns
    }

    /// Resolves one of this catalog's APN symbols back to its string.
    ///
    /// # Panics
    /// If `sym` was not issued by this catalog's table.
    pub fn apn_str(&self, sym: ApnSym) -> &str {
        self.apns.resolve(sym)
    }

    /// Gets or creates the row for (user, day); identity fields are set on
    /// first touch. A device whose label changes *within* one day keeps
    /// the first label (the paper tags rows daily).
    pub fn row_mut(
        &mut self,
        user: u64,
        day: Day,
        sim_plmn: Plmn,
        tac: Tac,
        label: RoamingLabel,
    ) -> &mut CatalogEntry {
        self.rows
            .entry((user, day.0))
            .or_insert_with(|| CatalogEntry::new(user, day, sim_plmn, tac, label))
    }

    /// Inserts a fully-built row (the wire-decode path). A row for an
    /// existing (user, day) key is folded in with [`CatalogEntry::absorb`].
    pub fn insert_entry(&mut self, entry: CatalogEntry) {
        match self.rows.entry((entry.user, entry.day.0)) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(entry);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().absorb(&entry),
        }
    }

    /// Inserts a row whose APN symbols were issued by a *different*
    /// table: each symbol is resolved through `table` and re-interned
    /// here before the row lands via [`DevicesCatalog::insert_entry`].
    /// This is the cross-catalog routing step of incremental ingest
    /// (`wtr_serve` taps, `wtr catalog-split`): entries decoded from a
    /// stream carry that stream's symbols, not the destination's.
    pub fn adopt_entry(&mut self, mut entry: CatalogEntry, table: &ApnTable) {
        if !entry.apns.is_empty() {
            entry.apns = entry
                .apns
                .iter()
                .map(|&sym| self.apns.intern(table.resolve(sym)))
                .collect();
        }
        self.insert_entry(entry);
    }

    /// Row lookup.
    pub fn get(&self, user: u64, day: Day) -> Option<&CatalogEntry> {
        self.rows.get(&(user, day.0))
    }

    /// Number of rows (device-days).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over all rows in (user, day) order.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.rows.values()
    }

    /// Folds another catalog into this one: rows for the same
    /// (device, day) are combined with [`CatalogEntry::absorb`] (so
    /// `self`'s identity fields win), new rows are inserted. `other`'s APN
    /// symbols are remapped through [`ApnTable::absorb`] first, so the
    /// merged table keeps first-occurrence symbol assignment — partial
    /// catalogs built from consecutive chunks of an event stream, merged
    /// in chunk order, reproduce the serial fold (and its symbol ids)
    /// exactly. This is the reduce step of parallel ingestion.
    ///
    /// Returns the symbol remap (`remap[other_sym.index()]` = symbol in
    /// `self`), so callers holding records keyed by `other`'s symbols —
    /// e.g. retained raw xDRs — can translate them too.
    pub fn merge(&mut self, other: DevicesCatalog) -> Vec<ApnSym> {
        self.window_days = self.window_days.max(other.window_days);
        let remap = self.apns.absorb(&other.apns);
        for (key, mut entry) in other.rows {
            if !entry.apns.is_empty() {
                entry.apns = entry.apns.iter().map(|s| remap[s.index()]).collect();
            }
            match self.rows.entry(key) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(entry);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().absorb(&entry);
                }
            }
        }
        remap
    }

    /// Rewrites the catalog into canonical APN-symbol form: the intern
    /// table is sorted (symbol = sorted rank, see
    /// [`ApnTable::canonicalized`]) and every row's symbol set is
    /// remapped accordingly. After this, two catalogs with equal *content*
    /// are equal as Rust values even if their tables were built in
    /// different first-occurrence orders — which is exactly what sharded
    /// simulation produces: each shard interns the APNs its own devices
    /// use, in its own order, and the shard-merge concatenation order
    /// differs from the serial interleaving. Serialized forms (JSONL,
    /// WTRCAT) already canonicalize on write; this makes the in-memory
    /// value canonical too.
    ///
    /// Returns the symbol remap (`remap[old.index()]` = new symbol) so
    /// callers holding symbols outside the rows — e.g. retained raw
    /// xDRs — can translate them.
    pub fn canonicalize(&mut self) -> Vec<ApnSym> {
        let (table, remap) = self.apns.canonicalized();
        self.apns = table;
        // The remap is pure per row, so the row rewrite fans out over
        // `par` workers. Rows are mutated in place behind their stable
        // (user, day) keys — the map order, and therefore every
        // downstream iteration, is untouched at any worker count.
        let mut entries: Vec<&mut CatalogEntry> = self
            .rows
            .values_mut()
            .filter(|e| !e.apns.is_empty())
            .collect();
        par::par_each_mut(&mut entries, |entry| {
            entry.apns = entry.apns.iter().map(|s| remap[s.index()]).collect();
        });
        remap
    }

    /// Number of distinct devices seen across the window.
    pub fn device_count(&self) -> usize {
        let mut users: Vec<u64> = self.rows.keys().map(|(u, _)| *u).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }

    /// Groups rows per device, days sorted ascending. The returned map
    /// iterates in device-ID order (deterministic report paths).
    pub fn by_device(&self) -> BTreeMap<u64, Vec<&CatalogEntry>> {
        let mut out: BTreeMap<u64, Vec<&CatalogEntry>> = BTreeMap::new();
        for entry in self.rows.values() {
            out.entry(entry.user).or_default().push(entry);
        }
        for rows in out.values_mut() {
            rows.sort_by_key(|e| e.day);
        }
        out
    }

    /// Rows of one day.
    pub fn day_rows(&self, day: Day) -> impl Iterator<Item = &CatalogEntry> {
        self.rows.values().filter(move |e| e.day == day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plmn() -> Plmn {
        Plmn::of(234, 30)
    }

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    #[test]
    fn row_identity_set_once() {
        let mut cat = DevicesCatalog::new(22);
        let r = cat.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
        r.events += 1;
        // Second touch with a different label keeps the first.
        let r = cat.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::IH);
        r.events += 1;
        assert_eq!(cat.len(), 1);
        let row = cat.get(1, Day(0)).unwrap();
        assert_eq!(row.events, 2);
        assert_eq!(row.label, RoamingLabel::HH);
    }

    #[test]
    fn device_and_day_grouping() {
        let mut cat = DevicesCatalog::new(22);
        cat.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
        cat.row_mut(1, Day(3), plmn(), tac(), RoamingLabel::HH);
        cat.row_mut(2, Day(0), plmn(), tac(), RoamingLabel::IH);
        assert_eq!(cat.device_count(), 2);
        let per_dev = cat.by_device();
        assert_eq!(per_dev[&1].len(), 2);
        assert_eq!(per_dev[&1][0].day, Day(0));
        assert_eq!(per_dev[&1][1].day, Day(3));
        assert_eq!(cat.day_rows(Day(0)).count(), 2);
        assert_eq!(cat.day_rows(Day(1)).count(), 0);
    }

    #[test]
    fn mobility_stationary_has_zero_gyration() {
        let mut acc = MobilityAccum::default();
        let p = GeoPoint::new(52.0, -1.0);
        for _ in 0..10 {
            acc.add(p, 1.0);
        }
        assert!(acc.gyration_km().unwrap() < 1e-6);
        let c = acc.centroid().unwrap();
        assert!((c.lat - 52.0).abs() < 1e-9);
    }

    #[test]
    fn mobility_gyration_matches_exact_for_two_points() {
        // Two points 0.2° of latitude apart with equal weight: the exact
        // gyration is half the distance ≈ 11.12 km.
        let mut acc = MobilityAccum::default();
        acc.add(GeoPoint::new(52.0, -1.0), 1.0);
        acc.add(GeoPoint::new(52.2, -1.0), 1.0);
        let g = acc.gyration_km().unwrap();
        assert!((g - 11.12).abs() < 0.15, "got {g}");
    }

    #[test]
    fn mobility_respects_weights() {
        let mut heavy_home = MobilityAccum::default();
        heavy_home.add(GeoPoint::new(52.0, -1.0), 100.0);
        heavy_home.add(GeoPoint::new(52.5, -1.0), 1.0);
        let mut balanced = MobilityAccum::default();
        balanced.add(GeoPoint::new(52.0, -1.0), 1.0);
        balanced.add(GeoPoint::new(52.5, -1.0), 1.0);
        assert!(heavy_home.gyration_km().unwrap() < balanced.gyration_km().unwrap());
    }

    #[test]
    fn mobility_merge_equals_combined() {
        let pts = [
            (GeoPoint::new(51.0, 0.0), 2.0),
            (GeoPoint::new(51.5, 0.4), 1.0),
            (GeoPoint::new(52.0, -0.3), 3.0),
        ];
        let mut all = MobilityAccum::default();
        for (p, w) in pts {
            all.add(p, w);
        }
        let mut a = MobilityAccum::default();
        a.add(pts[0].0, pts[0].1);
        let mut b = MobilityAccum::default();
        b.add(pts[1].0, pts[1].1);
        b.add(pts[2].0, pts[2].1);
        a.merge(&b);
        assert!((a.gyration_km().unwrap() - all.gyration_km().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn empty_mobility_yields_none() {
        let acc = MobilityAccum::default();
        assert!(acc.centroid().is_none());
        assert!(acc.gyration_km().is_none());
    }

    #[test]
    fn iteration_is_ordered_by_user_then_day() {
        let mut cat = DevicesCatalog::new(22);
        cat.row_mut(9, Day(1), plmn(), tac(), RoamingLabel::HH);
        cat.row_mut(1, Day(5), plmn(), tac(), RoamingLabel::HH);
        cat.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
        let keys: Vec<(u64, u32)> = cat.iter().map(|r| (r.user, r.day.0)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 5), (9, 1)]);
    }

    #[test]
    fn merge_reproduces_serial_fold() {
        // Serial: one catalog absorbs everything in order.
        let mut serial = DevicesCatalog::new(22);
        let r = serial.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
        r.events = 2;
        r.mobility.add(GeoPoint::new(52.0, -1.0), 1.0);
        let r = serial.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::IH);
        r.events += 3;
        r.mobility.add(GeoPoint::new(52.5, -1.2), 1.0);
        serial.row_mut(2, Day(1), plmn(), tac(), RoamingLabel::VH);

        // Parallel: two partial catalogs, merged in chunk order.
        let mut a = DevicesCatalog::new(22);
        let r = a.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
        r.events = 2;
        r.mobility.add(GeoPoint::new(52.0, -1.0), 1.0);
        let mut b = DevicesCatalog::new(22);
        let r = b.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::IH);
        r.events = 3;
        r.mobility.add(GeoPoint::new(52.5, -1.2), 1.0);
        b.row_mut(2, Day(1), plmn(), tac(), RoamingLabel::VH);
        a.merge(b);

        assert_eq!(a.len(), serial.len());
        for (left, right) in a.iter().zip(serial.iter()) {
            assert_eq!(left, right);
        }
        // First-touch label survives the merge.
        assert_eq!(a.get(1, Day(0)).unwrap().label, RoamingLabel::HH);
    }

    #[test]
    fn canonicalize_makes_intern_order_irrelevant() {
        // Same content, opposite intern orders.
        let build = |apns: &[&str]| {
            let mut cat = DevicesCatalog::new(5);
            let syms: Vec<ApnSym> = apns.iter().map(|a| cat.intern_apn(a)).collect();
            let r = cat.row_mut(1, Day(0), plmn(), tac(), RoamingLabel::HH);
            r.apns.extend(syms.iter().copied());
            cat
        };
        let mut a = build(&["zeta.gprs", "alpha.gprs"]);
        let mut b = build(&["alpha.gprs", "zeta.gprs"]);
        assert_ne!(a.apn_table(), b.apn_table());
        let remap_a = a.canonicalize();
        b.canonicalize();
        assert!(a.apn_table().is_canonical());
        assert_eq!(a.apn_table(), b.apn_table());
        let (ra, rb) = (a.get(1, Day(0)).unwrap(), b.get(1, Day(0)).unwrap());
        assert_eq!(ra, rb);
        // The remap translates old symbols to canonical ones.
        assert_eq!(a.apn_str(remap_a[0]), "zeta.gprs");
        assert_eq!(a.apn_str(remap_a[1]), "alpha.gprs");
    }

    #[test]
    fn usage_predicates() {
        let mut cat = DevicesCatalog::new(22);
        let r = cat.row_mut(5, Day(1), plmn(), tac(), RoamingLabel::IH);
        assert!(!r.used_data() && !r.used_voice());
        r.data_sessions = 1;
        r.bytes_up = 10;
        r.bytes_down = 5;
        r.sms = 2;
        assert!(r.used_data() && r.used_voice());
        assert_eq!(r.bytes_total(), 15);
    }
}
