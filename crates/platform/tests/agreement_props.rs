//! Property tests over the roaming agreement graph and steering policy.

use proptest::prelude::*;
use wtr_model::ids::{Mcc, Mnc, Plmn};
use wtr_platform::agreements::AgreementGraph;
use wtr_platform::policy::PlatformPolicy;
use wtr_sim::world::AccessPolicy;

fn arb_plmn() -> impl Strategy<Value = Plmn> {
    (200u16..=799, 0u16..=99)
        .prop_map(|(mcc, mnc)| Plmn::new(Mcc::new(mcc).unwrap(), Mnc::new2(mnc).unwrap()))
}

proptest! {
    #[test]
    fn bilateral_agreements_are_symmetric(pairs in prop::collection::vec((arb_plmn(), arb_plmn()), 0..20)) {
        let mut g = AgreementGraph::new();
        for (a, b) in &pairs {
            g.add_bilateral(*a, *b);
        }
        for (a, b) in &pairs {
            prop_assert!(g.has_bilateral(*a, *b));
            prop_assert!(g.has_bilateral(*b, *a));
            prop_assert!(g.connected(*a, *b));
        }
    }

    #[test]
    fn hub_membership_connects_all_members(members in prop::collection::vec(arb_plmn(), 2..12)) {
        let mut g = AgreementGraph::new();
        let hub = g.add_hub("H");
        for m in &members {
            g.join_hub(hub, *m);
        }
        for a in &members {
            for b in &members {
                prop_assert!(g.connected(*a, *b));
            }
        }
    }

    #[test]
    fn decide_is_deterministic_and_self_allowing(a in arb_plmn(), b in arb_plmn()) {
        let policy = PlatformPolicy::new(AgreementGraph::new());
        prop_assert!(policy.decide(a, a).is_allowed());
        prop_assert_eq!(policy.decide(a, b), policy.decide(a, b));
    }

    #[test]
    fn steering_is_a_permutation(
        candidates in prop::collection::vec(arb_plmn(), 1..10),
        ranks in prop::collection::vec(0u32..5, 1..10),
        home in arb_plmn()
    ) {
        let mut policy = PlatformPolicy::new(AgreementGraph::new());
        for (c, r) in candidates.iter().zip(&ranks) {
            policy.set_rank(home, *c, *r);
        }
        let mut ordered = candidates.clone();
        policy.preference_order(home, &mut ordered);
        // Same multiset, no loss or duplication.
        let mut a = candidates.clone();
        let mut b = ordered.clone();
        a.sort_by_key(|p| p.packed());
        b.sort_by_key(|p| p.packed());
        prop_assert_eq!(a, b);
    }
}
