//! The M2M platform: global IoT SIM provisioning, steering of roaming, and
//! roaming architecture selection.
//!
//! The platform "is built on top of an underlying international carrier and
//! offers the service of global IoT SIM … a SIM from a single (home) MNO
//! that operates inside IoT devices world-wide through roaming" (§3). This
//! module owns:
//!
//! * the set of **HMNOs** issuing IoT SIMs (the paper observes four: ES,
//!   DE, MX, AR);
//! * **IMSI allocation** from a dedicated M2M range per HMNO — the GSMA
//!   transparency mechanism (§1) that also enables SMIP identification in
//!   §4.4;
//! * **steering of roaming**: per (HMNO, country) preferred-VMNO lists;
//! * the **roaming architecture** per destination (Fig. 1), defaulting to
//!   home-routed — "the default roaming configuration currently used in
//!   majority of MNOs in Europe is the HR roaming" — with a latency model
//!   exposing the HR penalty for far destinations (§3.2's Spain→Australia
//!   example).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wtr_model::error::ParseError;
use wtr_model::ids::{Imsi, ImsiRange, Plmn};
use wtr_radio::geo::GeoPoint;

/// Network configuration used for a roaming device's user plane (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoamingArchitecture {
    /// Traffic hairpins through the home network's PGW.
    HomeRouted,
    /// Traffic exits through the visited network's PGW.
    LocalBreakout,
    /// Traffic exits at the IPX hub.
    IpxHubBreakout,
}

impl RoamingArchitecture {
    /// One-way user-plane detour in kilometres for a device whose home
    /// PGW is at `home`, visited network at `visited`, and serving hub at
    /// `hub` (for IHBO).
    pub fn detour_km(self, home: GeoPoint, visited: GeoPoint, hub: GeoPoint) -> f64 {
        match self {
            RoamingArchitecture::HomeRouted => visited.distance_km(home),
            RoamingArchitecture::LocalBreakout => 0.0,
            RoamingArchitecture::IpxHubBreakout => visited.distance_km(hub),
        }
    }

    /// Rough extra round-trip latency in milliseconds for the detour
    /// (fiber propagation ≈ 200 km/ms, times 2 for the round trip).
    pub fn latency_penalty_ms(self, home: GeoPoint, visited: GeoPoint, hub: GeoPoint) -> f64 {
        2.0 * self.detour_km(home, visited, hub) / 200.0
    }
}

/// A SIM the platform issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimProvisioning {
    /// Issuing home operator.
    pub hmno: Plmn,
    /// Allocated IMSI (from the HMNO's dedicated M2M range).
    pub imsi: Imsi,
}

/// Start of the dedicated M2M MSIN block inside each HMNO's numbering
/// space. Using a fixed, documented block is the GSMA IR recommendation
/// the paper cites; the classifier's IMSI-range heuristics rely on it.
pub const M2M_MSIN_BASE: u64 = 5_000_000_000;
/// Capacity of the dedicated block per HMNO.
pub const M2M_MSIN_CAPACITY: u64 = 1_000_000_000;

/// The M2M platform.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct M2mPlatform {
    hmnos: Vec<Plmn>,
    cursors: HashMap<u32, u64>,
    steering: HashMap<(u32, String), Vec<Plmn>>,
    architecture: HashMap<(u32, String), RoamingArchitecture>,
}

impl M2mPlatform {
    /// Creates a platform with the given issuing HMNOs.
    pub fn new(hmnos: Vec<Plmn>) -> Self {
        M2mPlatform {
            hmnos,
            cursors: HashMap::new(),
            steering: HashMap::new(),
            architecture: HashMap::new(),
        }
    }

    /// The issuing HMNOs.
    pub fn hmnos(&self) -> &[Plmn] {
        &self.hmnos
    }

    /// The dedicated M2M IMSI range of an HMNO.
    pub fn m2m_range(hmno: Plmn) -> ImsiRange {
        ImsiRange::new(hmno, M2M_MSIN_BASE, M2M_MSIN_BASE + M2M_MSIN_CAPACITY)
            .expect("constant range is valid")
    }

    /// Whether `imsi` belongs to any HMNO's dedicated M2M range.
    pub fn is_platform_imsi(&self, imsi: Imsi) -> bool {
        self.hmnos
            .iter()
            .any(|h| Self::m2m_range(*h).contains(imsi))
    }

    /// Provisions the next IoT SIM from `hmno`'s dedicated range.
    pub fn provision(&mut self, hmno: Plmn) -> Result<SimProvisioning, ParseError> {
        if !self.hmnos.contains(&hmno) {
            return Err(ParseError::UnknownPlmn {
                mcc: hmno.mcc.value(),
                mnc: hmno.mnc.value(),
            });
        }
        let cursor = self.cursors.entry(hmno.packed()).or_insert(0);
        let msin = M2M_MSIN_BASE + *cursor;
        *cursor += 1;
        debug_assert!(*cursor <= M2M_MSIN_CAPACITY, "M2M range exhausted");
        Ok(SimProvisioning {
            hmno,
            imsi: Imsi::new(hmno, msin)?,
        })
    }

    /// Number of SIMs provisioned from `hmno` so far.
    pub fn provisioned_count(&self, hmno: Plmn) -> u64 {
        self.cursors.get(&hmno.packed()).copied().unwrap_or(0)
    }

    /// Sets the steering-of-roaming preference list for SIMs of `hmno`
    /// visiting `country_iso` (most preferred first).
    pub fn set_steering(&mut self, hmno: Plmn, country_iso: &str, preferred: Vec<Plmn>) {
        self.steering
            .insert((hmno.packed(), country_iso.to_owned()), preferred);
    }

    /// The steering list for (hmno, country), if configured.
    pub fn steering_for(&self, hmno: Plmn, country_iso: &str) -> Option<&[Plmn]> {
        self.steering
            .get(&(hmno.packed(), country_iso.to_owned()))
            .map(Vec::as_slice)
    }

    /// Sets the roaming architecture used for `hmno` SIMs in a country.
    pub fn set_architecture(&mut self, hmno: Plmn, country_iso: &str, arch: RoamingArchitecture) {
        self.architecture
            .insert((hmno.packed(), country_iso.to_owned()), arch);
    }

    /// Architecture for (hmno, country); home-routed by default (§2.1).
    pub fn architecture_for(&self, hmno: Plmn, country_iso: &str) -> RoamingArchitecture {
        self.architecture
            .get(&(hmno.packed(), country_iso.to_owned()))
            .copied()
            .unwrap_or(RoamingArchitecture::HomeRouted)
    }
}

/// Latency-penalty comparison of the three Fig. 1 architectures for one
/// (home, visited) country pair — the §3.2 observation that "the M2M
/// platform uses different roaming configurations in order to optimize
/// the performance of IoT devices roaming in very far destinations".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureComparison {
    /// Extra RTT of home-routed roaming, ms.
    pub home_routed_ms: f64,
    /// Extra RTT of local breakout, ms (always 0).
    pub local_breakout_ms: f64,
    /// Extra RTT of IPX-hub breakout, ms.
    pub ipx_breakout_ms: f64,
}

impl ArchitectureComparison {
    /// Compares the three architectures for a device visiting `visited`
    /// with its home PGW at `home` and the serving IPX hub at `hub`.
    pub fn evaluate(home: GeoPoint, visited: GeoPoint, hub: GeoPoint) -> Self {
        ArchitectureComparison {
            home_routed_ms: RoamingArchitecture::HomeRouted.latency_penalty_ms(home, visited, hub),
            local_breakout_ms: RoamingArchitecture::LocalBreakout
                .latency_penalty_ms(home, visited, hub),
            ipx_breakout_ms: RoamingArchitecture::IpxHubBreakout
                .latency_penalty_ms(home, visited, hub),
        }
    }

    /// The architecture with the lowest user-plane penalty. Local breakout
    /// always wins on latency; real deployments trade it against the
    /// centralized management HR provides (§1), so the decision threshold
    /// is exposed instead of hard-coded.
    pub fn best_if_hr_costs_more_than(&self, threshold_ms: f64) -> RoamingArchitecture {
        if self.home_routed_ms <= threshold_ms {
            RoamingArchitecture::HomeRouted
        } else if self.ipx_breakout_ms <= threshold_ms {
            RoamingArchitecture::IpxHubBreakout
        } else {
            RoamingArchitecture::LocalBreakout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::operators::well_known;

    fn platform() -> M2mPlatform {
        M2mPlatform::new(vec![
            well_known::ES_HMNO,
            well_known::DE_HMNO,
            well_known::MX_HMNO,
            well_known::AR_HMNO,
        ])
    }

    #[test]
    fn provisioning_allocates_sequential_dedicated_imsis() {
        let mut p = platform();
        let a = p.provision(well_known::ES_HMNO).unwrap();
        let b = p.provision(well_known::ES_HMNO).unwrap();
        assert_eq!(a.imsi.msin(), M2M_MSIN_BASE);
        assert_eq!(b.imsi.msin(), M2M_MSIN_BASE + 1);
        assert_eq!(p.provisioned_count(well_known::ES_HMNO), 2);
        assert!(M2mPlatform::m2m_range(well_known::ES_HMNO).contains(a.imsi));
        assert!(p.is_platform_imsi(a.imsi));
    }

    #[test]
    fn provisioning_rejects_non_member_hmno() {
        let mut p = platform();
        assert!(p.provision(Plmn::of(234, 30)).is_err());
    }

    #[test]
    fn ordinary_imsi_not_platform() {
        let p = platform();
        let consumer = Imsi::new(well_known::ES_HMNO, 123).unwrap();
        assert!(!p.is_platform_imsi(consumer));
    }

    #[test]
    fn per_hmno_cursors_independent() {
        let mut p = platform();
        p.provision(well_known::ES_HMNO).unwrap();
        p.provision(well_known::MX_HMNO).unwrap();
        let es2 = p.provision(well_known::ES_HMNO).unwrap();
        let mx2 = p.provision(well_known::MX_HMNO).unwrap();
        assert_eq!(es2.imsi.msin(), M2M_MSIN_BASE + 1);
        assert_eq!(mx2.imsi.msin(), M2M_MSIN_BASE + 1);
    }

    #[test]
    fn steering_roundtrip() {
        let mut p = platform();
        let pref = vec![Plmn::of(234, 30), Plmn::of(234, 10)];
        p.set_steering(well_known::ES_HMNO, "GB", pref.clone());
        assert_eq!(
            p.steering_for(well_known::ES_HMNO, "GB"),
            Some(pref.as_slice())
        );
        assert_eq!(p.steering_for(well_known::ES_HMNO, "FR"), None);
    }

    #[test]
    fn architecture_defaults_to_home_routed() {
        let mut p = platform();
        assert_eq!(
            p.architecture_for(well_known::ES_HMNO, "AU"),
            RoamingArchitecture::HomeRouted
        );
        p.set_architecture(
            well_known::ES_HMNO,
            "AU",
            RoamingArchitecture::LocalBreakout,
        );
        assert_eq!(
            p.architecture_for(well_known::ES_HMNO, "AU"),
            RoamingArchitecture::LocalBreakout
        );
    }

    #[test]
    fn architecture_comparison_picks_by_threshold() {
        let madrid = GeoPoint::new(40.4, -3.7);
        let sydney = GeoPoint::new(-33.9, 151.2);
        let london = GeoPoint::new(51.5, -0.1);
        let hub = GeoPoint::new(50.1, 8.7);
        let far = ArchitectureComparison::evaluate(madrid, sydney, hub);
        let near = ArchitectureComparison::evaluate(madrid, london, hub);
        // Near destinations stay home-routed (the European default, §2.1);
        // far ones escalate to hub or local breakout.
        assert_eq!(
            near.best_if_hr_costs_more_than(50.0),
            RoamingArchitecture::HomeRouted
        );
        assert_ne!(
            far.best_if_hr_costs_more_than(50.0),
            RoamingArchitecture::HomeRouted
        );
        assert_eq!(far.local_breakout_ms, 0.0);
        assert!(far.home_routed_ms > near.home_routed_ms);
    }

    #[test]
    fn hr_penalty_grows_with_distance_and_lbo_is_free() {
        // §3.2: Spain → Australia HR roaming carries a serious penalty;
        // the platform "uses different roaming configurations in order to
        // optimize the performance of IoT devices roaming in very far
        // destinations".
        let madrid = GeoPoint::new(40.4, -3.7);
        let sydney = GeoPoint::new(-33.9, 151.2);
        let london = GeoPoint::new(51.5, -0.1);
        let hub = GeoPoint::new(50.1, 8.7); // Frankfurt-ish
        let hr_far = RoamingArchitecture::HomeRouted.latency_penalty_ms(madrid, sydney, hub);
        let hr_near = RoamingArchitecture::HomeRouted.latency_penalty_ms(madrid, london, hub);
        let lbo = RoamingArchitecture::LocalBreakout.latency_penalty_ms(madrid, sydney, hub);
        let ihbo = RoamingArchitecture::IpxHubBreakout.latency_penalty_ms(madrid, sydney, hub);
        assert!(hr_far > 100.0, "ES→AU HR penalty only {hr_far} ms");
        assert!(hr_near < hr_far / 5.0);
        assert_eq!(lbo, 0.0);
        assert!(ihbo > 0.0 && ihbo < hr_far);
    }
}
