//! IPX / roaming hubs.
//!
//! "Operators connect to a hubbing solution provider to gain access to many
//! roaming partners, externalizing the roaming interworking establishment
//! to the roaming hub provider. Hubs are then interconnected to further
//! expand potential operator relationships." (§2.1)
//!
//! A hub is a membership set; two operators are hub-connected when they are
//! members of the same hub or of two *peered* hubs (one peering level, as
//! in practice — hub peering is not transitive here).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use wtr_model::ids::Plmn;

/// Identifier of a hub within an agreement graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct HubId(pub u32);

/// One roaming hub / IPX provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpxHub {
    /// Hub id.
    pub id: HubId,
    /// Display name (synthetic; the paper mentions Syniverse/BICS as
    /// real-world examples).
    pub name: String,
    /// Operator members.
    members: HashSet<u32>,
    /// Peered hubs (symmetric peering is the caller's responsibility;
    /// [`crate::agreements::AgreementGraph`] enforces it).
    peers: HashSet<HubId>,
}

impl IpxHub {
    /// Creates an empty hub.
    pub fn new(id: HubId, name: impl Into<String>) -> Self {
        IpxHub {
            id,
            name: name.into(),
            members: HashSet::new(),
            peers: HashSet::new(),
        }
    }

    /// Adds an operator to the hub.
    pub fn add_member(&mut self, plmn: Plmn) {
        self.members.insert(plmn.packed());
    }

    /// Whether `plmn` is a member.
    pub fn is_member(&self, plmn: Plmn) -> bool {
        self.members.contains(&plmn.packed())
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Records a peering with another hub.
    pub fn add_peer(&mut self, other: HubId) {
        if other != self.id {
            self.peers.insert(other);
        }
    }

    /// Whether this hub peers with `other`.
    pub fn peers_with(&self, other: HubId) -> bool {
        self.peers.contains(&other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut hub = IpxHub::new(HubId(0), "GlobalConnect IPX");
        let a = Plmn::of(214, 7);
        let b = Plmn::of(234, 30);
        hub.add_member(a);
        assert!(hub.is_member(a));
        assert!(!hub.is_member(b));
        assert_eq!(hub.member_count(), 1);
        hub.add_member(a);
        assert_eq!(hub.member_count(), 1, "idempotent");
    }

    #[test]
    fn peering_is_not_reflexive() {
        let mut hub = IpxHub::new(HubId(3), "A");
        hub.add_peer(HubId(3));
        assert!(!hub.peers_with(HubId(3)), "self-peering must be ignored");
        hub.add_peer(HubId(4));
        assert!(hub.peers_with(HubId(4)));
        assert!(!hub.peers_with(HubId(5)));
    }
}
