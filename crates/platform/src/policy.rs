//! The platform-backed [`AccessPolicy`]: admission from the agreement
//! graph, steering from per-home preference ranks, plus explicit barring.
//!
//! This is where the business layer meets the radio layer: the simulator's
//! device agents call [`PlatformPolicy::decide`] on every attach attempt,
//! turning commercial relationships (§2) into the `RoamingNotAllowed` /
//! `UnknownSubscription` results the M2M dataset records (§3.1).
//!
//! [`AccessPolicy`]: wtr_sim::world::AccessPolicy

use crate::agreements::AgreementGraph;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use wtr_model::country::Country;
use wtr_model::ids::Plmn;
use wtr_sim::world::{AccessDecision, AccessPolicy};

/// Access policy driven by an [`AgreementGraph`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PlatformPolicy {
    agreements: AgreementGraph,
    /// (home, visited) pairs explicitly barred despite connectivity
    /// (regulatory barring, commercial disputes).
    barred: HashSet<(u32, u32)>,
    /// (home, visited) pairs whose subscriptions the visited HSS flow
    /// cannot resolve — yields `UnknownSubscription` (misconfigured IR.21
    /// data in the wild).
    unknown: HashSet<(u32, u32)>,
    /// Steering ranks: per home PLMN, a map visited-PLMN → rank
    /// (lower = preferred). Unranked candidates keep their input order
    /// after all ranked ones.
    steering: HashMap<u32, HashMap<u32, u32>>,
    /// Whether SIMs may attach to *any* network of their own country
    /// without an agreement (national roaming is normally disabled; the
    /// home network itself is always allowed).
    pub allow_national_roaming: bool,
}

impl PlatformPolicy {
    /// Creates a policy over an agreement graph.
    pub fn new(agreements: AgreementGraph) -> Self {
        PlatformPolicy {
            agreements,
            ..Default::default()
        }
    }

    /// Read access to the agreement graph.
    pub fn agreements(&self) -> &AgreementGraph {
        &self.agreements
    }

    /// Mutable access to the agreement graph (scenario construction).
    pub fn agreements_mut(&mut self) -> &mut AgreementGraph {
        &mut self.agreements
    }

    /// Bars a (home, visited) pair.
    pub fn bar(&mut self, home: Plmn, visited: Plmn) {
        self.barred.insert((home.packed(), visited.packed()));
    }

    /// Marks a (home, visited) pair as unresolvable (UnknownSubscription).
    pub fn mark_unknown(&mut self, home: Plmn, visited: Plmn) {
        self.unknown.insert((home.packed(), visited.packed()));
    }

    /// Sets the steering rank of `visited` for SIMs of `home`.
    pub fn set_rank(&mut self, home: Plmn, visited: Plmn, rank: u32) {
        self.steering
            .entry(home.packed())
            .or_default()
            .insert(visited.packed(), rank);
    }

    fn same_country(a: Plmn, b: Plmn) -> bool {
        match (Country::by_mcc(a.mcc), Country::by_mcc(b.mcc)) {
            (Some(ca), Some(cb)) => std::ptr::eq(ca, cb),
            _ => a.mcc == b.mcc,
        }
    }
}

impl AccessPolicy for PlatformPolicy {
    fn decide(&self, home: Plmn, visited: Plmn) -> AccessDecision {
        if home == visited {
            return AccessDecision::Allowed;
        }
        let key = (home.packed(), visited.packed());
        if self.unknown.contains(&key) {
            return AccessDecision::UnknownSubscription;
        }
        if self.barred.contains(&key) {
            return AccessDecision::RoamingNotAllowed;
        }
        if Self::same_country(home, visited) {
            return if self.allow_national_roaming || self.agreements.connected(home, visited) {
                AccessDecision::Allowed
            } else {
                AccessDecision::RoamingNotAllowed
            };
        }
        if self.agreements.connected(home, visited) {
            AccessDecision::Allowed
        } else {
            AccessDecision::RoamingNotAllowed
        }
    }

    fn preference_order(&self, home: Plmn, candidates: &mut Vec<Plmn>) {
        let Some(ranks) = self.steering.get(&home.packed()) else {
            return;
        };
        // Stable sort: ranked candidates first (ascending rank), unranked
        // keep their relative order.
        candidates.sort_by_key(|p| ranks.get(&p.packed()).copied().unwrap_or(u32::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ES: Plmn = Plmn::of(214, 7);
    const UK1: Plmn = Plmn::of(234, 30);
    const UK2: Plmn = Plmn::of(234, 10);
    const UK3: Plmn = Plmn::of(234, 20);

    fn policy() -> PlatformPolicy {
        let mut g = AgreementGraph::new();
        g.add_bilateral(ES, UK1);
        g.add_bilateral(ES, UK2);
        PlatformPolicy::new(g)
    }

    #[test]
    fn home_network_always_allowed() {
        let p = policy();
        assert_eq!(p.decide(ES, ES), AccessDecision::Allowed);
    }

    #[test]
    fn agreement_grants_access_and_absence_denies() {
        let p = policy();
        assert_eq!(p.decide(ES, UK1), AccessDecision::Allowed);
        assert_eq!(p.decide(ES, UK3), AccessDecision::RoamingNotAllowed);
    }

    #[test]
    fn barring_overrides_agreement() {
        let mut p = policy();
        p.bar(ES, UK1);
        assert_eq!(p.decide(ES, UK1), AccessDecision::RoamingNotAllowed);
        // Only the barred direction/pair is affected.
        assert_eq!(p.decide(ES, UK2), AccessDecision::Allowed);
    }

    #[test]
    fn unknown_subscription_takes_precedence() {
        let mut p = policy();
        p.mark_unknown(ES, UK1);
        p.bar(ES, UK1);
        assert_eq!(p.decide(ES, UK1), AccessDecision::UnknownSubscription);
    }

    #[test]
    fn national_roaming_disabled_by_default() {
        let mut p = policy();
        assert_eq!(p.decide(UK1, UK2), AccessDecision::RoamingNotAllowed);
        p.allow_national_roaming = true;
        assert_eq!(p.decide(UK1, UK2), AccessDecision::Allowed);
    }

    #[test]
    fn steering_orders_candidates() {
        let mut p = policy();
        p.set_rank(ES, UK2, 0);
        p.set_rank(ES, UK1, 1);
        let mut cands = vec![UK1, UK3, UK2];
        p.preference_order(ES, &mut cands);
        assert_eq!(
            cands,
            vec![UK2, UK1, UK3],
            "ranked first, unranked keep order"
        );
    }

    #[test]
    fn no_steering_keeps_input_order() {
        let p = policy();
        let mut cands = vec![UK3, UK1, UK2];
        p.preference_order(ES, &mut cands);
        assert_eq!(cands, vec![UK3, UK1, UK2]);
    }
}
