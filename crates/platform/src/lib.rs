//! # wtr-platform — the M2M platform and the roaming business layer
//!
//! Implements the ecosystem §2 of the paper describes:
//!
//! * **Roaming agreements** ([`agreements`]): bilateral relationships plus
//!   roaming-hub memberships — "operators connect to a hubbing solution
//!   provider to gain access to many roaming partners … hubs are then
//!   interconnected to further expand potential operator relationships".
//! * **IPX hubs** ([`hub`]): the international-carrier interconnect that
//!   the M2M platform is built on.
//! * **The M2M platform** ([`platform`]): global IoT SIM provisioning from
//!   a handful of HMNOs (ES/DE/MX/AR in the paper), steering-of-roaming
//!   preference lists, and per-destination roaming architecture
//!   (home-routed / local breakout / IPX breakout, Fig. 1).
//! * **The access policy** ([`policy`]): the `wtr-sim` [`AccessPolicy`]
//!   implementation that decides admissions from the agreement graph and
//!   applies steering.
//!
//! [`AccessPolicy`]: wtr_sim::world::AccessPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreements;
pub mod hub;
pub mod platform;
pub mod policy;

pub use agreements::{AgreementGraph, AgreementPath};
pub use hub::{HubId, IpxHub};
pub use platform::{ArchitectureComparison, M2mPlatform, RoamingArchitecture, SimProvisioning};
pub use policy::PlatformPolicy;
