//! The roaming-agreement graph: who may roam where, and through what.
//!
//! Two mechanisms grant access (§2.1): **bilateral agreements** between two
//! operators, and **hub connectivity** (both operators reach a common hub,
//! directly or through one hub-to-hub peering). The graph answers, for a
//! (home, visited) pair, whether roaming is possible and through which
//! path — the paper notes bilateral and hub models coexist and complement
//! each other.

use crate::hub::{HubId, IpxHub};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use wtr_model::ids::Plmn;

/// How a (home, visited) pair is connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgreementPath {
    /// Direct bilateral agreement.
    Bilateral,
    /// Both operators are members of the same hub.
    SameHub(HubId),
    /// Operators reach each other across one hub peering.
    PeeredHubs(HubId, HubId),
}

/// The full agreement graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AgreementGraph {
    bilateral: HashSet<(u32, u32)>,
    hubs: Vec<IpxHub>,
    memberships: HashMap<u32, Vec<HubId>>,
}

impl AgreementGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a (symmetric) bilateral agreement.
    pub fn add_bilateral(&mut self, a: Plmn, b: Plmn) {
        let (ka, kb) = (a.packed(), b.packed());
        self.bilateral.insert((ka.min(kb), ka.max(kb)));
    }

    /// Whether a direct bilateral agreement exists.
    pub fn has_bilateral(&self, a: Plmn, b: Plmn) -> bool {
        let (ka, kb) = (a.packed(), b.packed());
        self.bilateral.contains(&(ka.min(kb), ka.max(kb)))
    }

    /// Creates a hub and returns its id.
    pub fn add_hub(&mut self, name: impl Into<String>) -> HubId {
        let id = HubId(self.hubs.len() as u32);
        self.hubs.push(IpxHub::new(id, name));
        id
    }

    /// Adds an operator to a hub.
    pub fn join_hub(&mut self, hub: HubId, plmn: Plmn) {
        self.hubs[hub.0 as usize].add_member(plmn);
        self.memberships.entry(plmn.packed()).or_default().push(hub);
    }

    /// Peers two hubs (symmetric).
    pub fn peer_hubs(&mut self, a: HubId, b: HubId) {
        if a == b {
            return;
        }
        self.hubs[a.0 as usize].add_peer(b);
        self.hubs[b.0 as usize].add_peer(a);
    }

    /// Hub object by id.
    pub fn hub(&self, id: HubId) -> &IpxHub {
        &self.hubs[id.0 as usize]
    }

    /// Number of hubs.
    pub fn hub_count(&self) -> usize {
        self.hubs.len()
    }

    /// Hubs `plmn` belongs to.
    pub fn hubs_of(&self, plmn: Plmn) -> &[HubId] {
        self.memberships
            .get(&plmn.packed())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Finds a connectivity path between `home` and `visited`, preferring
    /// bilateral > same-hub > peered-hubs (cheapest commercial path first).
    pub fn path(&self, home: Plmn, visited: Plmn) -> Option<AgreementPath> {
        if home == visited {
            // Native attachment needs no roaming agreement; callers treat
            // this case before consulting the graph, but answer anyway.
            return Some(AgreementPath::Bilateral);
        }
        if self.has_bilateral(home, visited) {
            return Some(AgreementPath::Bilateral);
        }
        let home_hubs = self.hubs_of(home);
        let visited_hubs = self.hubs_of(visited);
        for h in home_hubs {
            if visited_hubs.contains(h) {
                return Some(AgreementPath::SameHub(*h));
            }
        }
        for h in home_hubs {
            for v in visited_hubs {
                if self.hub(*h).peers_with(*v) {
                    return Some(AgreementPath::PeeredHubs(*h, *v));
                }
            }
        }
        None
    }

    /// Whether any path exists.
    pub fn connected(&self, home: Plmn, visited: Plmn) -> bool {
        self.path(home, visited).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ES: Plmn = Plmn::of(214, 7);
    const UK: Plmn = Plmn::of(234, 30);
    const DE: Plmn = Plmn::of(262, 2);
    const AU: Plmn = Plmn::of(505, 1);

    #[test]
    fn bilateral_is_symmetric() {
        let mut g = AgreementGraph::new();
        g.add_bilateral(ES, UK);
        assert!(g.has_bilateral(ES, UK));
        assert!(g.has_bilateral(UK, ES));
        assert_eq!(g.path(UK, ES), Some(AgreementPath::Bilateral));
        assert!(!g.has_bilateral(ES, DE));
    }

    #[test]
    fn same_hub_connects() {
        let mut g = AgreementGraph::new();
        let hub = g.add_hub("GlobalConnect");
        g.join_hub(hub, ES);
        g.join_hub(hub, DE);
        assert_eq!(g.path(ES, DE), Some(AgreementPath::SameHub(hub)));
        assert!(!g.connected(ES, AU));
    }

    #[test]
    fn peered_hubs_connect_one_level() {
        let mut g = AgreementGraph::new();
        let h1 = g.add_hub("EuroHub");
        let h2 = g.add_hub("PacificHub");
        let h3 = g.add_hub("IsolatedHub");
        g.join_hub(h1, ES);
        g.join_hub(h2, AU);
        g.join_hub(h3, DE);
        g.peer_hubs(h1, h2);
        assert_eq!(g.path(ES, AU), Some(AgreementPath::PeeredHubs(h1, h2)));
        // h3 peers with nobody: DE unreachable from either.
        assert!(!g.connected(ES, DE));
        assert!(!g.connected(AU, DE));
    }

    #[test]
    fn bilateral_preferred_over_hub() {
        let mut g = AgreementGraph::new();
        let hub = g.add_hub("Hub");
        g.join_hub(hub, ES);
        g.join_hub(hub, UK);
        g.add_bilateral(ES, UK);
        assert_eq!(g.path(ES, UK), Some(AgreementPath::Bilateral));
    }

    #[test]
    fn self_path_always_exists() {
        let g = AgreementGraph::new();
        assert!(g.connected(ES, ES));
    }

    #[test]
    fn hub_membership_listing() {
        let mut g = AgreementGraph::new();
        let h1 = g.add_hub("A");
        let h2 = g.add_hub("B");
        g.join_hub(h1, ES);
        g.join_hub(h2, ES);
        assert_eq!(g.hubs_of(ES), &[h1, h2]);
        assert!(g.hubs_of(AU).is_empty());
        assert_eq!(g.hub_count(), 2);
    }
}
