//! End-to-end CLI tests: drive the `wtr` binary exactly as a user would —
//! simulate to files, classify and analyze from those files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wtr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wtr"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wtr-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_and_unknown_command() {
    let out = wtr(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("simulate-mno"));

    let out = wtr(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = wtr(&[]);
    assert!(!out.status.success());
}

#[test]
fn mno_roundtrip_simulate_classify_analyze() {
    let catalog = tmp("catalog.jsonl");
    let out = wtr(&[
        "simulate-mno",
        "--out",
        catalog.to_str().unwrap(),
        "--devices",
        "600",
        "--days",
        "6",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(catalog.exists());

    let out = wtr(&["classify", "--catalog", catalog.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("smart"), "{text}");
    assert!(text.contains("m2m"), "{text}");

    let out = wtr(&[
        "analyze",
        "--catalog",
        catalog.to_str().unwrap(),
        "labels",
        "revenue",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("roaming-label shares"), "{text}");
    assert!(text.contains("inbound economics"), "{text}");

    std::fs::remove_file(&catalog).ok();
}

#[test]
fn classify_baseline_pipelines() {
    let catalog = tmp("catalog-baselines.jsonl");
    let out = wtr(&[
        "simulate-mno",
        "--out",
        catalog.to_str().unwrap(),
        "--devices",
        "400",
        "--days",
        "5",
        "--seed",
        "6",
    ]);
    assert!(out.status.success());
    for pipeline in ["full", "apn", "vendor", "range"] {
        let out = wtr(&[
            "classify",
            "--catalog",
            catalog.to_str().unwrap(),
            "--pipeline",
            pipeline,
        ]);
        assert!(
            out.status.success(),
            "{pipeline}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = wtr(&[
        "classify",
        "--catalog",
        catalog.to_str().unwrap(),
        "--pipeline",
        "nonsense",
    ]);
    assert!(!out.status.success());
    std::fs::remove_file(&catalog).ok();
}

#[test]
fn platform_roundtrip() {
    let txs = tmp("txs.jsonl");
    let wire = tmp("txs.bin");
    let out = wtr(&[
        "simulate-platform",
        "--out",
        txs.to_str().unwrap(),
        "--wire",
        wire.to_str().unwrap(),
        "--devices",
        "400",
        "--days",
        "4",
        "--seed",
        "9",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(txs.exists() && wire.exists());

    let out = wtr(&["platform-stats", "--transactions", txs.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("devices per HMNO country"), "{text}");
    assert!(text.contains("only-failed devices"), "{text}");

    std::fs::remove_file(&txs).ok();
    std::fs::remove_file(&wire).ok();
}

#[test]
fn missing_required_options_fail_cleanly() {
    for args in [
        vec!["simulate-mno"],
        vec!["classify"],
        vec!["analyze"],
        vec!["platform-stats"],
    ] {
        let out = wtr(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("required"),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Nonexistent input file.
    let out = wtr(&["classify", "--catalog", "/nonexistent/x.jsonl"]);
    assert!(!out.status.success());
}

#[test]
fn truth_export_and_validate_loop() {
    let catalog = tmp("catalog-validate.jsonl");
    let truth = tmp("truth-validate.jsonl");
    let out = wtr(&[
        "simulate-mno",
        "--out",
        catalog.to_str().unwrap(),
        "--truth",
        truth.to_str().unwrap(),
        "--devices",
        "500",
        "--days",
        "6",
        "--seed",
        "13",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(truth.exists());

    // Full pipeline: high recall, perfect precision.
    let out = wtr(&[
        "validate",
        "--catalog",
        catalog.to_str().unwrap(),
        "--truth",
        truth.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("m2m precision: 100.0%"), "{text}");
    assert!(text.contains("confusion matrix"), "{text}");

    // The vendor baseline scores strictly worse on recall (E19 at the CLI).
    let out = wtr(&[
        "validate",
        "--catalog",
        catalog.to_str().unwrap(),
        "--truth",
        truth.to_str().unwrap(),
        "--pipeline",
        "vendor",
    ]);
    assert!(out.status.success());
    let vendor_text = String::from_utf8_lossy(&out.stdout).to_string();
    let recall = |t: &str| -> f64 {
        t.lines()
            .find(|l| l.contains("m2m recall"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches('%').parse().ok())
            .unwrap_or(0.0)
    };
    assert!(
        recall(&text) > recall(&vendor_text),
        "full {} vs vendor {}",
        recall(&text),
        recall(&vendor_text)
    );

    std::fs::remove_file(&catalog).ok();
    std::fs::remove_file(&truth).ok();
}
