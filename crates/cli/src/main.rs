//! `wtr` — the Where-Things-Roam command line.
//!
//! ```text
//! wtr simulate-mno       --out catalog.jsonl [--devices N] [--days D] [--seed S]
//!                        [--nbiot-meters F] [--sunset-2g] [--transparency]
//! wtr simulate-platform  --out txs.jsonl [--wire txs.bin] [--devices N] [--days D] [--seed S]
//! wtr classify           --catalog catalog.jsonl [--pipeline full|apn|vendor|range]
//! wtr analyze            --catalog catalog.jsonl [labels|home|classes|rat|traffic|smip|verticals|diurnal|revenue ...]
//! wtr platform-stats     --transactions txs.jsonl
//! wtr behavior-template  [--out behaviors.json]
//! ```
//!
//! Datasets flow through the JSONL formats of `wtr_probes::io`, so any
//! external data mapped into those schemas can be classified and analyzed
//! with the same commands.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
wtr — Where Things Roam (IMC 2020) reproduction toolkit

USAGE:
    wtr <COMMAND> [OPTIONS]

COMMANDS:
    simulate-mno        simulate the visited-MNO scenario; write a devices-catalog
    simulate-platform   simulate the M2M platform scenario; write a transaction log
    classify            run the §4.3 classification over a catalog
    validate            score a pipeline against exported ground truth
    analyze             print analyses over a catalog (labels, home, rat, …)
    platform-stats      print §3 statistics over a transaction log
    behavior-template   dump the standard per-vertical behavior matrices as JSON
    serve               run the resident ingest/report server (wtr_serve)
    catalog-split       shuffle + partition a catalog into per-tap upload parts
    help                show this message

Run `wtr <COMMAND> --help` for per-command options.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate-mno" => commands::simulate_mno(rest),
        "simulate-platform" => commands::simulate_platform(rest),
        "classify" => commands::classify(rest),
        "validate" => commands::validate_cmd(rest),
        "analyze" => commands::analyze(rest),
        "platform-stats" => commands::platform_stats(rest),
        "behavior-template" => commands::behavior_template(rest),
        "serve" => commands::serve(rest),
        "catalog-split" => commands::catalog_split(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `wtr help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
