//! Tiny flag parser: `--name value` options, `--flag` booleans and bare
//! positionals, with typed accessors and unknown-flag rejection.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses `argv`; `value_options` lists flags that consume a value,
    /// `bool_flags` those that do not. Anything else starting with `--`
    /// is an error.
    pub fn parse(
        argv: &[String],
        value_options: &[&str],
        bool_flags: &[&str],
    ) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if value_options.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    out.options.insert(name.to_owned(), value.clone());
                } else if bool_flags.contains(&name) {
                    out.flags.push(name.to_owned());
                } else if name == "help" {
                    out.flags.push("help".to_owned());
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Bare positionals.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let a = Args::parse(
            &argv(&["--devices", "100", "--sunset-2g", "labels", "rat"]),
            &["devices"],
            &["sunset-2g"],
        )
        .unwrap();
        assert_eq!(a.get("devices"), Some("100"));
        assert_eq!(a.get_parsed("devices", 0usize).unwrap(), 100);
        assert!(a.flag("sunset-2g"));
        assert!(!a.flag("transparency"));
        assert_eq!(a.positionals(), ["labels", "rat"]);
    }

    #[test]
    fn rejects_unknown_and_missing_values() {
        assert!(Args::parse(&argv(&["--nope"]), &[], &[]).is_err());
        assert!(Args::parse(&argv(&["--devices"]), &["devices"], &[]).is_err());
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = Args::parse(&argv(&["--seed", "abc"]), &["seed"], &[]).unwrap();
        assert!(a.get_parsed::<u64>("seed", 1).is_err());
        let b = Args::parse(&argv(&[]), &["seed"], &[]).unwrap();
        assert_eq!(b.get_parsed("seed", 7u64).unwrap(), 7);
        assert!(b.require("seed").is_err());
    }
}
