//! The `wtr` subcommand implementations.

use crate::args::Args;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use wtr_core::analysis::platform;
use wtr_core::baseline;
use wtr_core::classify::{Classification, Classifier, DeviceClass};
use wtr_core::report;
use wtr_core::stream::{materialize_catalog, stream_catalog, StreamedCatalog};
use wtr_core::summary::DeviceSummary;
use wtr_model::intern::ApnTable;
use wtr_model::tacdb::TacDatabase;
use wtr_probes::catalog::DevicesCatalog;
use wtr_probes::io as probe_io;
use wtr_scenarios::{M2mScenario, M2mScenarioConfig, MnoScenario, MnoScenarioConfig, Universe};
use wtr_sim::behavior::BehaviorMatrix;

fn open_out(path: &str) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

fn open_in(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open {path}: {e}"))
}

/// Loads and validates a `--behavior` file: a JSON object mapping vertical
/// labels to [`BehaviorMatrix`] definitions. Every matrix is re-validated
/// after deserialization so a hand-edited file fails here, with the
/// offending class named, rather than deep inside the simulation.
fn load_behaviors(
    path: &str,
) -> Result<std::collections::BTreeMap<String, std::sync::Arc<BehaviorMatrix>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let map: std::collections::BTreeMap<String, BehaviorMatrix> =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut overrides = std::collections::BTreeMap::new();
    for (label, matrix) in map {
        matrix
            .validate()
            .map_err(|e| format!("{path}: behavior for {label:?}: {e}"))?;
        overrides.insert(label, std::sync::Arc::new(matrix));
    }
    Ok(overrides)
}

/// `wtr behavior-template`: dump the standard per-vertical behavior
/// library as JSON — the exact format `simulate-mno --behavior` loads, so
/// defining a new device class starts from a working file.
pub fn behavior_template(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["out"], &[])?;
    if args.flag("help") {
        println!("wtr behavior-template [--out behaviors.json]");
        return Ok(());
    }
    let library = Universe::standard_behaviors();
    let json = serde_json::to_string_pretty(&library).map_err(|e| e.to_string())?;
    match args.get("out") {
        Some(path) => {
            let mut out = open_out(path)?;
            writeln!(out, "{json}").map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            eprintln!("wrote {} behaviors to {path}", library.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn load_catalog(args: &Args) -> Result<DevicesCatalog, String> {
    let path = args.require("catalog")?;
    // Sniffs the WTRCAT magic, so both the JSONL and the columnar binary
    // exports load through every analysis command.
    probe_io::read_catalog_auto(open_in(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Loads everything the analysis commands need from `--catalog`.
///
/// With `--stream`, the file is folded chunk by chunk into summaries and
/// label shares without ever materializing a [`DevicesCatalog`] — peak
/// memory is O(devices + chunk window) instead of O(rows). Without it,
/// the whole catalog loads and reduces to the identical
/// [`StreamedCatalog`] (byte-for-byte: both paths share chunk
/// boundaries), so every downstream number matches regardless of path.
fn load_data(args: &Args) -> Result<StreamedCatalog, String> {
    if args.flag("stream") {
        let path = args.require("catalog")?;
        stream_catalog(open_in(path)?).map_err(|e| format!("{path}: {e}"))
    } else {
        Ok(materialize_catalog(&load_catalog(args)?))
    }
}

/// `wtr simulate-mno`: run the §4–§7 scenario and export the catalog.
pub fn simulate_mno(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "out",
            "out-bin",
            "truth",
            "devices",
            "days",
            "seed",
            "nbiot-meters",
            "record-loss",
            "shards",
            "behavior",
        ],
        &["sunset-2g", "transparency", "stream"],
    )?;
    if args.flag("help") {
        println!(
            "wtr simulate-mno --out catalog.jsonl [--out-bin catalog.wtrcat] [--truth truth.jsonl] \
             [--devices N] [--days D] [--seed S] [--nbiot-meters F] [--sunset-2g] [--transparency] \
             [--record-loss F] [--stream] [--shards K] [--behavior behaviors.json]"
        );
        return Ok(());
    }
    let out_path = args.require("out")?;
    let config = MnoScenarioConfig {
        devices: args.get_parsed("devices", 5_000usize)?,
        days: args.get_parsed("days", 22u32)?,
        seed: args.get_parsed("seed", 42u64)?,
        nbiot_meter_fraction: args.get_parsed("nbiot-meters", 0.0f64)?,
        sunset_2g_uk: args.flag("sunset-2g"),
        gsma_transparency: args.flag("transparency"),
        record_loss_fraction: args.get_parsed("record-loss", 0.0f64)?,
    };
    eprintln!(
        "simulating {} devices over {} days (seed {})…",
        config.devices, config.days, config.seed
    );
    // `--stream` drives the probe through the batched event stream —
    // byte-identical catalog (test-enforced), bounded ingest buffers.
    // `--shards K` forces the shard count; without it the count comes
    // from WTR_THREADS, or failing that available parallelism (the
    // explicit flag always wins over the environment). Output is
    // byte-identical at any K, so this is purely a performance/
    // verification knob. Zero is a misconfiguration, not a request for
    // serial — reject it loudly rather than quietly running one shard.
    let shards = match args.get("shards") {
        Some(s) => {
            let k = s
                .parse::<usize>()
                .map_err(|e| format!("--shards {s}: {e}"))?;
            if k == 0 {
                return Err("--shards must be at least 1 (omit the flag to use \
                            WTR_THREADS / available parallelism)"
                    .into());
            }
            Some(k)
        }
        None => None,
    };
    // `--behavior` swaps in externally defined behavior matrices for the
    // verticals named in the file (keys are `Vertical::label()` strings;
    // `wtr behavior-template` dumps the standard library as a starting
    // point). Unlisted verticals keep their compiled-in behavior.
    let scenario = match args.get("behavior") {
        Some(path) => MnoScenario::new(config).with_behavior_overrides(load_behaviors(path)?),
        None => MnoScenario::new(config),
    };
    let output = match (args.flag("stream"), shards) {
        (false, None) => scenario.run(),
        (true, None) => scenario.run_streaming(),
        (false, Some(k)) => scenario.run_sharded(k),
        (true, Some(k)) => scenario.run_streaming_sharded(k),
    };
    let stats = output.engine_stats();
    // "peak queue depth" is the deepest single event loop actually got
    // (`peak_queue_max`); shard peaks need not coincide in time, so the
    // parenthesized cross-shard sum is only an upper bound on the
    // concurrent total.
    eprintln!(
        "simulated on {} shard(s): {} agents, {} wake-ups dispatched, \
         peak queue depth {} (sum across shards {})",
        output.shard_stats.len(),
        stats.agents,
        stats.dispatched,
        stats.peak_queue_max,
        stats.peak_queue
    );
    let mut out = open_out(out_path)?;
    probe_io::write_catalog(&mut out, &output.catalog).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} catalog rows ({} devices) to {out_path}",
        output.catalog.len(),
        output.catalog.device_count()
    );
    if let Some(bin_path) = args.get("out-bin") {
        let mut out = open_out(bin_path)?;
        probe_io::write_catalog_bin(&mut out, &output.catalog).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote columnar WTRCAT catalog to {bin_path}");
    }
    if let Some(truth_path) = args.get("truth") {
        let mut out = open_out(truth_path)?;
        probe_io::write_truth(&mut out, &output.ground_truth).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        eprintln!(
            "wrote {} ground-truth lines to {truth_path} (validation only — never feed this to a classifier)",
            output.ground_truth.len()
        );
    }
    Ok(())
}

/// `wtr validate`: score any pipeline against exported ground truth —
/// the measurement the paper's authors could not make (§4.3 relied on
/// manual verification).
pub fn validate_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["catalog", "truth", "pipeline"], &["stream"])?;
    if args.flag("help") {
        println!(
            "wtr validate --catalog catalog.jsonl --truth truth.jsonl [--pipeline full|apn|vendor|range] [--stream]"
        );
        return Ok(());
    }
    let data = load_data(&args)?;
    let truth_path = args.require("truth")?;
    let truth =
        probe_io::read_truth(open_in(truth_path)?).map_err(|e| format!("{truth_path}: {e}"))?;
    let tacdb = TacDatabase::standard();
    let pipeline = args.get("pipeline").unwrap_or("full");
    let classification = classify_with(pipeline, &tacdb, &data.summaries, &data.apns)?;
    let v = wtr_core::validate::validate(&classification, &truth);
    println!("pipeline: {pipeline}");
    println!("devices scored: {}", v.matrix.total());
    if v.unmatched > 0 {
        println!("devices without ground truth: {}", v.unmatched);
    }
    println!(
        "m2m precision: {}",
        v.m2m_precision
            .map(|p| format!("{:.1}%", p * 100.0))
            .unwrap_or_else(|| "n/a".into())
    );
    println!(
        "m2m recall:    {}",
        v.m2m_recall
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into())
    );
    println!("accuracy:      {:.1}%", v.matrix.accuracy() * 100.0);
    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    let classes = DeviceClass::ALL;
    print!("  {:<12}", "");
    for c in classes {
        print!("{:>11}", c.label());
    }
    println!();
    for expected in classes {
        print!("  {:<12}", expected.label());
        for predicted in classes {
            print!("{:>11}", v.matrix.get(expected, predicted));
        }
        println!();
    }
    Ok(())
}

/// `wtr simulate-platform`: run the §3 scenario and export transactions.
pub fn simulate_platform(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["out", "wire", "devices", "days", "seed"], &[])?;
    if args.flag("help") {
        println!(
            "wtr simulate-platform --out txs.jsonl [--wire txs.bin] [--devices N] [--days D] [--seed S]"
        );
        return Ok(());
    }
    let out_path = args.require("out")?;
    let config = M2mScenarioConfig {
        devices: args.get_parsed("devices", 6_000usize)?,
        days: args.get_parsed("days", 11u32)?,
        seed: args.get_parsed("seed", 42u64)?,
        g4_hole_fraction: 0.05,
    };
    eprintln!(
        "simulating {} IoT SIMs over {} days (seed {})…",
        config.devices, config.days, config.seed
    );
    let output = M2mScenario::new(config).run();
    let stats = output.engine_stats();
    eprintln!(
        "simulated on {} shard(s): {} agents, {} wake-ups dispatched, \
         peak queue depth {} (sum across shards {})",
        output.shard_stats.len(),
        stats.agents,
        stats.dispatched,
        stats.peak_queue_max,
        stats.peak_queue
    );
    let mut out = open_out(out_path)?;
    probe_io::write_transactions(&mut out, &output.transactions).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} transactions to {out_path}",
        output.transactions.len()
    );
    if let Some(wire_path) = args.get("wire") {
        let encoded = wtr_probes::wire::encode_log(&output.transactions);
        std::fs::write(wire_path, &encoded).map_err(|e| format!("{wire_path}: {e}"))?;
        eprintln!(
            "wrote {} bytes of wire format to {wire_path}",
            encoded.len()
        );
    }
    Ok(())
}

fn classify_with(
    pipeline: &str,
    tacdb: &TacDatabase,
    summaries: &[DeviceSummary],
    apns: &ApnTable,
) -> Result<Classification, String> {
    match pipeline {
        "full" => Ok(Classifier::new(tacdb).classify(summaries, apns)),
        "apn" => Ok(baseline::apn_only_baseline(tacdb, summaries, apns)),
        "vendor" => Ok(baseline::vendor_baseline(tacdb, summaries)),
        "range" => Ok(baseline::imsi_range_baseline(tacdb, summaries)),
        other => Err(format!(
            "unknown pipeline {other:?} (expected full|apn|vendor|range)"
        )),
    }
}

/// `wtr classify`: classification summary over a catalog.
pub fn classify(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["catalog", "pipeline"], &["stream"])?;
    if args.flag("help") {
        println!(
            "wtr classify --catalog catalog.jsonl [--pipeline full|apn|vendor|range] [--stream]"
        );
        return Ok(());
    }
    let data = load_data(&args)?;
    let tacdb = TacDatabase::standard();
    let pipeline = args.get("pipeline").unwrap_or("full");
    let classification = classify_with(pipeline, &tacdb, &data.summaries, &data.apns)?;
    // Shared renderer: `wtr_serve`'s `/report/{tenant}/classify` serves
    // the same bytes.
    print!(
        "{}",
        report::render_classify(pipeline, data.summaries.len(), &classification)
    );
    Ok(())
}

/// `wtr analyze`: named analyses over a catalog.
///
/// All tables come from one broadcast fold over the summaries
/// ([`wtr_core::stream::analyze`]); with `--stream` the catalog file
/// itself is folded chunk by chunk too, so the whole command runs in
/// bounded memory and exactly two passes (file → summaries → tables).
pub fn analyze(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["catalog"], &["stream"])?;
    if args.flag("help") {
        println!(
            "wtr analyze --catalog catalog.jsonl [--stream] [labels home classes rat traffic smip verticals diurnal revenue]"
        );
        return Ok(());
    }
    let data = load_data(&args)?;
    let tacdb = TacDatabase::standard();
    let suite = wtr_core::stream::analyze(&data.summaries, &data.apns, data.window_days, &tacdb);
    let mut wanted: Vec<&str> = args.positionals().iter().map(String::as_str).collect();
    if wanted.is_empty() {
        wanted = report::ANALYSES.to_vec();
    }
    for analysis in wanted {
        // One shared renderer per table (`wtr_core::report`): the server's
        // `/report/{tenant}/{table}` endpoint serves the same bytes, which
        // is what lets CI diff HTTP reports against this command.
        print!("{}", report::render_analysis(analysis, &data, &suite)?);
        println!();
    }
    Ok(())
}

/// `wtr platform-stats`: §3 statistics over a transaction log.
pub fn platform_stats(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["transactions"], &[])?;
    if args.flag("help") {
        println!("wtr platform-stats --transactions txs.jsonl");
        return Ok(());
    }
    let path = args.require("transactions")?;
    let transactions =
        probe_io::read_transactions(open_in(path)?).map_err(|e| format!("{path}: {e}"))?;
    let ov = platform::overview(&transactions);
    println!(
        "{} transactions, {} devices",
        ov.total_transactions, ov.total_devices
    );
    print!(
        "{}",
        report::shares_table("devices per HMNO country", &ov.hmno_device_shares, 8)
    );
    let dyn_all = platform::dynamics(&transactions, None);
    print!(
        "{}",
        report::cdf("signaling records per device", &dyn_all.records_all, 8)
    );
    println!(
        "only-failed devices: {:.1}%; max VMNOs attempted by one: {}",
        dyn_all.only_failed_fraction * 100.0,
        dyn_all.max_vmnos_failed_device
    );
    Ok(())
}

/// `wtr serve`: run the resident catalog/analysis server (`wtr_serve`).
pub fn serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &["addr", "workers", "watermark-secs", "max-body-bytes"],
        &[],
    )?;
    if args.flag("help") {
        println!(
            "wtr serve [--addr 127.0.0.1:8080] [--workers 4] [--watermark-secs 86400] \
             [--max-body-bytes 67108864]\n\n\
             POST /ingest/{{tenant}} catalog bodies in; GET /report/{{tenant}}/{{table}} \
             reports out; POST /shutdown seals open days and stops cleanly."
        );
        return Ok(());
    }
    let defaults = wtr_serve::ServerConfig::default();
    let config = wtr_serve::ServerConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_owned(),
        workers: args.get_parsed("workers", defaults.workers)?,
        watermark_secs: args.get_parsed("watermark-secs", defaults.watermark_secs)?,
        max_body_bytes: args.get_parsed("max-body-bytes", defaults.max_body_bytes)?,
    };
    let server = wtr_serve::Server::bind(config)?;
    // Stderr, so stdout stays clean for scripting; CI polls /healthz.
    eprintln!("wtr-serve listening on {}", server.local_addr());
    server.run().map_err(|e| format!("server: {e}"))
}

/// Tiny deterministic PRNG for `catalog-split`'s shuffle (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `wtr catalog-split`: deterministically shuffle a catalog's rows and
/// partition them into N valid catalog files — the tap-upload fixtures
/// for `wtr serve` (each (user, day) row lands in exactly one part, the
/// row-partitioned contract the server's determinism guarantee assumes).
pub fn catalog_split(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["catalog", "parts", "seed", "out-prefix"], &[])?;
    if args.flag("help") {
        println!(
            "wtr catalog-split --catalog catalog.jsonl --out-prefix part- [--parts 3] [--seed 1]"
        );
        return Ok(());
    }
    let catalog = load_catalog(&args)?;
    let prefix = args.require("out-prefix")?;
    let parts: usize = args.get_parsed("parts", 3)?;
    if parts == 0 {
        return Err("--parts must be at least 1".into());
    }
    let seed: u64 = args.get_parsed("seed", 1)?;
    let rows: Vec<&wtr_probes::catalog::CatalogEntry> = catalog.iter().collect();
    // Keyed Fisher–Yates: the same (catalog, seed) always yields the
    // same parts, so test fixtures and CI chunks are reproducible.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    let mut state = seed ^ 0x57_54_52_43; // "WTRC"
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut out_paths = Vec::new();
    for part in 0..parts {
        let mut part_catalog = DevicesCatalog::new(catalog.window_days());
        for &idx in order.iter().skip(part).step_by(parts) {
            part_catalog.adopt_entry(rows[idx].clone(), catalog.apn_table());
        }
        let path = format!("{prefix}{part}.jsonl");
        let mut out = open_out(&path)?;
        probe_io::write_catalog(&mut out, &part_catalog).map_err(|e| format!("{path}: {e}"))?;
        out.flush().map_err(|e| format!("{path}: {e}"))?;
        out_paths.push((path, part_catalog.len()));
    }
    for (path, len) in out_paths {
        eprintln!("wrote {len} rows to {path}");
    }
    Ok(())
}
