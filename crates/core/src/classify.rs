//! The multi-step M2M device classification pipeline (§4.3).
//!
//! The paper's method, verbatim in structure:
//!
//! 1. **Keyword validation** — rank the APN inventory, match the 26-keyword
//!    vocabulary; matching APNs become *validated M2M APNs*.
//! 2. **Seed** — every device using a validated APN is `m2m`.
//! 3. **Property propagation** — "we extend the m2m class to all devices
//!    having the same properties of the devices using the validated APNs":
//!    devices sharing a TAC with a seed device become `m2m` too (this is
//!    what catches the ~21% of devices that expose no APN at all).
//! 4. **Smart** — "declared to be using a major smartphone OS (android,
//!    iOS, blackberry, windows mobile) and use a consumer APN".
//! 5. **Feat** — "the GSMA database declares it to be a feature phone or
//!    \[it\] uses a consumer APN".
//! 6. **m2m-maybe** — device properties suggest neither a smartphone nor a
//!    feature phone, but there is no APN to confirm (voice-only devices).
//!
//! One guard the paper implies but does not spell out: propagation skips
//! TACs whose catalog entry is a major-smartphone-OS device, so a consumer
//! handset that once touched an M2M APN (tethering, SIM swap) cannot drag
//! every handset of that model into `m2m`.

use crate::keywords::{is_consumer_apn, match_m2m_keyword};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wtr_model::intern::ApnTable;
use wtr_model::tacdb::{GsmaClass, TacDatabase};
use wtr_sim::par;
use wtr_sim::stream::{drive_slice, ChunkFold};

/// The classifier's output classes (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Smartphone.
    Smart,
    /// Feature phone.
    Feat,
    /// IoT / M2M device.
    M2m,
    /// Probably M2M, but no APN evidence to confirm ("we do not consider
    /// those devices for the remainder of the analysis").
    M2mMaybe,
}

impl DeviceClass {
    /// All classes in the paper's reporting order.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Smart,
        DeviceClass::Feat,
        DeviceClass::M2m,
        DeviceClass::M2mMaybe,
    ];

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            DeviceClass::Smart => "smart",
            DeviceClass::Feat => "feat",
            DeviceClass::M2m => "m2m",
            DeviceClass::M2mMaybe => "m2m-maybe",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full classification result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Classification {
    /// Class per anonymized device ID (ordered, so reports and
    /// serialized output iterate deterministically).
    pub classes: BTreeMap<u64, DeviceClass>,
    /// Distinct APN strings seen across the population.
    pub total_apns: usize,
    /// APNs validated as M2M by the keyword step, with the keyword that
    /// validated each.
    pub validated_apns: BTreeMap<String, String>,
    /// TACs the propagation step marked as M2M hardware.
    pub propagated_tacs: BTreeSet<u32>,
    /// Devices classified `m2m` purely from NB-IoT radio usage — the §8
    /// mechanism ("NB-IoT will enable visited MNOs to easily detect the
    /// inbound roaming IoT devices"). Zero on 2019-era populations.
    pub nbiot_detected: usize,
    /// Devices classified `m2m` from a GSMA-published M2M IMSI range —
    /// the §1 transparency mechanism. Zero unless roaming partners
    /// actually publish their ranges (the paper notes most do not, which
    /// is why the APN pipeline exists at all).
    pub range_detected: usize,
    /// Devices exposing no APN at all (≈21% in the paper).
    pub devices_without_apn: usize,
}

impl Classification {
    /// Class of a device, if classified.
    pub fn class_of(&self, user: u64) -> Option<DeviceClass> {
        self.classes.get(&user).copied()
    }

    /// Count per class.
    pub fn counts(&self) -> BTreeMap<DeviceClass, usize> {
        let mut out = BTreeMap::new();
        for class in self.classes.values() {
            *out.entry(*class).or_insert(0) += 1;
        }
        out
    }

    /// Share per class of the total population.
    pub fn shares(&self) -> BTreeMap<DeviceClass, f64> {
        let total = self.classes.len().max(1) as f64;
        self.counts()
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total))
            .collect()
    }
}

/// Keyword verdict for one distinct APN symbol — computed once per
/// inventory entry (one allocation-free scan), then reused for every
/// device carrying the symbol.
#[derive(Debug, Clone, Copy, Default)]
struct Verdict {
    /// Matched an M2M keyword (step 1 validation).
    m2m: bool,
    /// Matched a consumer keyword (steps 4–5).
    consumer: bool,
}

/// Streaming accumulator for the classifier's step-1 APN inventory:
/// which distinct interned symbols were actually *observed* in the
/// summaries. Boolean ORs are exact under any chunking, so the fold is
/// byte-identical to the serial scan at every thread count.
#[derive(Debug, Clone)]
pub struct ObservedApnsFold {
    observed: Vec<bool>,
}

impl ObservedApnsFold {
    /// An empty accumulator sized for an `apn_count`-symbol intern table.
    pub fn new(apn_count: usize) -> Self {
        ObservedApnsFold {
            observed: vec![false; apn_count],
        }
    }

    /// The observed-symbol bitmap, indexed by symbol index.
    pub fn into_observed(self) -> Vec<bool> {
        self.observed
    }
}

impl ChunkFold<DeviceSummary> for ObservedApnsFold {
    fn zero(&self) -> Self {
        ObservedApnsFold::new(self.observed.len())
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            for sym in &s.apns {
                self.observed[sym.index()] = true;
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        debug_assert_eq!(self.observed.len(), later.observed.len());
        for (mine, theirs) in self.observed.iter_mut().zip(later.observed) {
            *mine |= theirs;
        }
    }
}

/// The §4.3 classifier. Borrows the GSMA-like TAC catalog for device
/// properties.
#[derive(Debug, Clone, Copy)]
pub struct Classifier<'a> {
    tacdb: &'a TacDatabase,
}

impl<'a> Classifier<'a> {
    /// Creates a classifier over a TAC catalog.
    pub fn new(tacdb: &'a TacDatabase) -> Self {
        Classifier { tacdb }
    }

    /// Runs the full pipeline over per-device summaries. `apns` is the
    /// intern table the summaries' symbols resolve through — the one of
    /// the catalog they were summarized from.
    ///
    /// Keyword matching is O(distinct APNs), not O(device × APN): the
    /// classifier computes one keyword verdict per distinct observed symbol
    /// (a single allocation-free case-insensitive scan each) and then
    /// classifies every device against the verdict vector with pure
    /// index lookups.
    ///
    /// # Panics
    /// If a summary carries a symbol not issued by `apns`.
    pub fn classify(&self, summaries: &[DeviceSummary], apns: &ApnTable) -> Classification {
        let mut result = Classification::default();

        // Step 1: APN inventory + keyword validation, once per *distinct*
        // symbol. Only symbols actually observed in the summaries form
        // the inventory (the table may intern more than this population
        // used, e.g. after catalog merges).
        let mut observed_fold = ObservedApnsFold::new(apns.len());
        drive_slice(&mut observed_fold, summaries);
        let observed = observed_fold.into_observed();
        let mut verdicts = vec![Verdict::default(); apns.len()];
        for (sym, apn) in apns.iter() {
            if !observed[sym.index()] {
                continue;
            }
            result.total_apns += 1;
            let v = &mut verdicts[sym.index()];
            if let Some((kw, _)) = match_m2m_keyword(apn) {
                v.m2m = true;
                result.validated_apns.insert(apn.to_owned(), kw.to_owned());
            }
            v.consumer = is_consumer_apn(apn);
        }

        // Step 2: seed devices using validated APNs — plus the RAT rule
        // of §2.2/§8: anything attaching over the dedicated NB-IoT
        // carrier is an IoT device by construction, no APN needed.
        let mut seeds: BTreeSet<u64> = BTreeSet::new();
        for s in summaries {
            if s.in_published_m2m_range {
                // GSMA transparency (§1): the home operator told us this
                // IMSI range is M2M — no inference needed.
                seeds.insert(s.user);
                result.range_detected += 1;
                continue;
            }
            if s.radio_flags.any.contains(wtr_model::rat::Rat::NbIot) {
                seeds.insert(s.user);
                result.nbiot_detected += 1;
                continue;
            }
            if s.apns.iter().any(|sym| verdicts[sym.index()].m2m) {
                seeds.insert(s.user);
            }
        }

        // Step 3: propagate by TAC (guarded against smartphone hardware).
        for s in summaries {
            if seeds.contains(&s.user) {
                let is_phone_hw = self
                    .tacdb
                    .get(s.tac)
                    .is_some_and(|i| i.os.is_major_smartphone_os());
                if !is_phone_hw {
                    result.propagated_tacs.insert(s.tac.value());
                }
            }
        }

        // Steps 4–6: classify every device. Each device's class depends
        // only on its own summary plus the (already fixed) seed and
        // propagation sets, so this step shards cleanly over worker
        // threads; the per-device verdicts land in an ordered map, making
        // the output independent of thread count.
        let seeds = &seeds;
        let propagated = &result.propagated_tacs;
        let apn_verdicts = &verdicts;
        let device_verdicts = par::par_map(summaries, |s| {
            let info = self.tacdb.get(s.tac);
            let class = if seeds.contains(&s.user) || propagated.contains(&s.tac.value()) {
                DeviceClass::M2m
            } else {
                let os_major = info.is_some_and(|i| i.os.is_major_smartphone_os());
                let gsma_feat = info.is_some_and(|i| i.gsma_class == GsmaClass::FeaturePhone);
                // Memoized per distinct APN: an index lookup, no string
                // scan and no lowercase allocation per device.
                let uses_consumer = s.apns.iter().any(|sym| apn_verdicts[sym.index()].consumer);
                if os_major && (uses_consumer || s.apns.is_empty()) {
                    DeviceClass::Smart
                } else if gsma_feat || (uses_consumer && !os_major) {
                    DeviceClass::Feat
                } else {
                    DeviceClass::M2mMaybe
                }
            };
            (s.user, class, s.apns.is_empty())
        });
        for (user, class, no_apn) in device_verdicts {
            if no_apn {
                result.devices_without_apn += 1;
            }
            result.classes.insert(user, class);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::RadioFlags;
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn tacdb() -> TacDatabase {
        TacDatabase::standard()
    }

    fn tac_of(db: &TacDatabase, vendor: &str) -> Tac {
        let mut tacs: Vec<Tac> = db.tacs_of_vendor(vendor).collect();
        tacs.sort();
        tacs[0]
    }

    fn phone_tac(db: &TacDatabase) -> Tac {
        let mut tacs: Vec<Tac> = db
            .iter()
            .filter(|e| e.gsma_class == GsmaClass::Smartphone)
            .map(|e| e.tac)
            .collect();
        tacs.sort();
        tacs[0]
    }

    fn feature_tac(db: &TacDatabase) -> Tac {
        let mut tacs: Vec<Tac> = db
            .iter()
            .filter(|e| e.gsma_class == GsmaClass::FeaturePhone)
            .map(|e| e.tac)
            .collect();
        tacs.sort();
        tacs[0]
    }

    fn summary(table: &mut ApnTable, user: u64, tac: Tac, apns: &[&str]) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac,
            active_days: 5,
            first_day: 0,
            last_day: 4,
            dominant_label: RoamingLabel::IH,
            labels: BTreeSet::from([RoamingLabel::IH]),
            apns: apns.iter().map(|s| table.intern(s)).collect(),
            radio_flags: RadioFlags::default(),
            events: 10,
            failed_events: 0,
            calls: 0,
            sms: 0,
            data_sessions: 3,
            bytes: 1_000,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly: [0; 24],
            mobility: MobilityAccum::default(),
        }
    }

    #[test]
    fn validated_apn_seeds_m2m() {
        let db = tacdb();
        let mut t = ApnTable::new();
        let gemalto = tac_of(&db, "Gemalto");
        let sums = vec![summary(
            &mut t,
            1,
            gemalto,
            &["smhp.centricaplc.com.mnc004.mcc204.gprs"],
        )];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2m));
        assert_eq!(c.validated_apns.len(), 1);
        assert!(c.propagated_tacs.contains(&gemalto.value()));
    }

    #[test]
    fn propagation_catches_apnless_siblings() {
        // Device 2 has no APN (voice only) but shares the Telit TAC with a
        // validated device — propagation classifies it m2m, which is the
        // paper's answer to the 21%-no-APN problem.
        let db = tacdb();
        let mut t = ApnTable::new();
        let telit = tac_of(&db, "Telit");
        let sums = vec![
            summary(&mut t, 1, telit, &["telemetry.rwe.de.mnc002.mcc262.gprs"]),
            summary(&mut t, 2, telit, &[]),
        ];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(2), Some(DeviceClass::M2m));
        assert_eq!(c.devices_without_apn, 1);
    }

    #[test]
    fn smartphone_by_os_and_consumer_apn() {
        let db = tacdb();
        let mut t = ApnTable::new();
        let phone = phone_tac(&db);
        let sums = vec![summary(&mut t, 1, phone, &["payandgo.example"])];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::Smart));
    }

    #[test]
    fn feature_phone_by_gsma_class() {
        let db = tacdb();
        let mut t = ApnTable::new();
        let feat = feature_tac(&db);
        let sums = vec![summary(&mut t, 1, feat, &[])];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::Feat));
    }

    #[test]
    fn module_without_apn_is_m2m_maybe() {
        let db = tacdb();
        let mut t = ApnTable::new();
        let gemalto = tac_of(&db, "Gemalto");
        // No validated-APN device shares this TAC in this population.
        let sums = vec![summary(&mut t, 1, gemalto, &[])];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2mMaybe));
    }

    #[test]
    fn smartphone_tac_not_propagated() {
        // A handset that touched an M2M APN is itself m2m (it used the
        // vertical's APN), but its TAC must not contaminate other handsets.
        let db = tacdb();
        let mut t = ApnTable::new();
        let phone = phone_tac(&db);
        let sums = vec![
            summary(&mut t, 1, phone, &["fleet.scania.com"]),
            summary(&mut t, 2, phone, &["payandgo.example"]),
        ];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2m));
        assert_eq!(c.class_of(2), Some(DeviceClass::Smart));
        assert!(!c.propagated_tacs.contains(&phone.value()));
    }

    #[test]
    fn counts_and_shares_sum_to_one() {
        let db = tacdb();
        let mut t = ApnTable::new();
        let sums = vec![
            summary(&mut t, 1, tac_of(&db, "Gemalto"), &["smhp.centricaplc.com"]),
            summary(&mut t, 2, phone_tac(&db), &["internet"]),
            summary(&mut t, 3, feature_tac(&db), &[]),
            summary(&mut t, 4, tac_of(&db, "Quectel"), &[]),
        ];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.classes.len(), 4);
        let total: f64 = c.shares().values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(c.counts().values().sum::<usize>(), 4);
    }

    #[test]
    fn unknown_tac_with_consumer_apn_is_feat() {
        // §4.3: feat if GSMA says feature phone *or* it uses a consumer APN
        // without a major smartphone OS. An unknown TAC has no OS info.
        let db = tacdb();
        let mut t = ApnTable::new();
        let unknown = Tac::new(99_000_000).unwrap();
        let sums = vec![summary(&mut t, 1, unknown, &["internet"])];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::Feat));
    }

    #[test]
    fn empty_population() {
        let db = tacdb();
        let c = Classifier::new(&db).classify(&[], &ApnTable::new());
        assert!(c.classes.is_empty());
        assert_eq!(c.total_apns, 0);
    }

    #[test]
    fn unobserved_table_entries_do_not_count() {
        // The table may intern more strings than this population used
        // (e.g. after merges); only observed symbols form the inventory.
        let db = tacdb();
        let mut t = ApnTable::new();
        t.intern("fleet.scania.com");
        let sums = vec![summary(&mut t, 1, phone_tac(&db), &["payandgo.example"])];
        let c = Classifier::new(&db).classify(&sums, &t);
        assert_eq!(c.total_apns, 1, "only the observed APN counts");
        assert!(
            c.validated_apns.is_empty(),
            "unobserved scania not validated"
        );
        assert_eq!(c.class_of(1), Some(DeviceClass::Smart));
    }
}
