//! Classifier validation against generator ground truth.
//!
//! The paper's authors validated their pipeline "at the cost of some
//! manual verification" — they had no ground truth. The simulator does:
//! every device's true [`Vertical`] is known to the scenario (and *only*
//! to the scenario). This module scores any [`Classification`] against
//! that hidden truth, mapping verticals to expected classes
//! (phones → `smart`/`feat`, everything else → `m2m`).

use crate::classify::{Classification, DeviceClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_model::vertical::Vertical;

/// The class a perfectly informed classifier would assign a vertical.
pub fn expected_class(v: Vertical) -> DeviceClass {
    match v {
        Vertical::Smartphone => DeviceClass::Smart,
        Vertical::FeaturePhone => DeviceClass::Feat,
        _ => DeviceClass::M2m,
    }
}

/// Confusion matrix over (expected, predicted) classes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    cells: BTreeMap<(DeviceClass, DeviceClass), usize>,
}

impl ConfusionMatrix {
    /// Records one (expected, predicted) observation.
    pub fn record(&mut self, expected: DeviceClass, predicted: DeviceClass) {
        *self.cells.entry((expected, predicted)).or_insert(0) += 1;
    }

    /// Cell count.
    pub fn get(&self, expected: DeviceClass, predicted: DeviceClass) -> usize {
        self.cells.get(&(expected, predicted)).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.cells.values().sum()
    }

    /// Precision of predicting `class`: TP / (TP + FP). `None` when the
    /// class was never predicted.
    pub fn precision(&self, class: DeviceClass) -> Option<f64> {
        let predicted: usize = DeviceClass::ALL.iter().map(|e| self.get(*e, class)).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / predicted as f64)
        }
    }

    /// Recall of `class`: TP / (TP + FN). `None` when the class never
    /// occurs in the ground truth.
    pub fn recall(&self, class: DeviceClass) -> Option<f64> {
        let actual: usize = DeviceClass::ALL.iter().map(|p| self.get(class, *p)).sum();
        if actual == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / actual as f64)
        }
    }

    /// F1 score of `class`.
    pub fn f1(&self, class: DeviceClass) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = DeviceClass::ALL.iter().map(|c| self.get(*c, *c)).sum();
        correct as f64 / total as f64
    }
}

/// A scored validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validation {
    /// The confusion matrix (with `m2m-maybe` counted as predicted class).
    pub matrix: ConfusionMatrix,
    /// Devices in the classification lacking ground truth (should be 0 in
    /// scenario runs).
    pub unmatched: usize,
    /// Binary M2M-vs-phone precision for the `m2m` prediction.
    pub m2m_precision: Option<f64>,
    /// Binary M2M-vs-phone recall (`m2m-maybe` counts as a miss, exactly
    /// as the paper drops those devices from the analysis).
    pub m2m_recall: Option<f64>,
}

/// Scores `classification` against the ground-truth vertical of each
/// device (keyed by anonymized device ID).
pub fn validate(classification: &Classification, truth: &BTreeMap<u64, Vertical>) -> Validation {
    let mut matrix = ConfusionMatrix::default();
    let mut unmatched = 0usize;
    let mut m2m_tp = 0usize;
    let mut m2m_fp = 0usize;
    let mut m2m_fn = 0usize;
    for (user, predicted) in &classification.classes {
        let Some(vertical) = truth.get(user) else {
            unmatched += 1;
            continue;
        };
        let expected = expected_class(*vertical);
        matrix.record(expected, *predicted);
        let truly_m2m = vertical.is_m2m();
        let predicted_m2m = *predicted == DeviceClass::M2m;
        match (truly_m2m, predicted_m2m) {
            (true, true) => m2m_tp += 1,
            (false, true) => m2m_fp += 1,
            (true, false) => m2m_fn += 1,
            (false, false) => {}
        }
    }
    let m2m_precision = if m2m_tp + m2m_fp == 0 {
        None
    } else {
        Some(m2m_tp as f64 / (m2m_tp + m2m_fp) as f64)
    };
    let m2m_recall = if m2m_tp + m2m_fn == 0 {
        None
    } else {
        Some(m2m_tp as f64 / (m2m_tp + m2m_fn) as f64)
    };
    Validation {
        matrix,
        unmatched,
        m2m_precision,
        m2m_recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classification(pairs: &[(u64, DeviceClass)]) -> Classification {
        let mut c = Classification::default();
        for (u, class) in pairs {
            c.classes.insert(*u, *class);
        }
        c
    }

    #[test]
    fn expected_class_mapping() {
        assert_eq!(expected_class(Vertical::Smartphone), DeviceClass::Smart);
        assert_eq!(expected_class(Vertical::FeaturePhone), DeviceClass::Feat);
        assert_eq!(expected_class(Vertical::SmartMeter), DeviceClass::M2m);
        assert_eq!(expected_class(Vertical::ConnectedCar), DeviceClass::M2m);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let c = classification(&[
            (1, DeviceClass::M2m),
            (2, DeviceClass::Smart),
            (3, DeviceClass::Feat),
        ]);
        let truth = BTreeMap::from([
            (1, Vertical::SmartMeter),
            (2, Vertical::Smartphone),
            (3, Vertical::FeaturePhone),
        ]);
        let v = validate(&c, &truth);
        assert_eq!(v.matrix.accuracy(), 1.0);
        assert_eq!(v.m2m_precision, Some(1.0));
        assert_eq!(v.m2m_recall, Some(1.0));
        assert_eq!(v.unmatched, 0);
    }

    #[test]
    fn m2m_maybe_counts_as_recall_miss() {
        let c = classification(&[(1, DeviceClass::M2mMaybe), (2, DeviceClass::M2m)]);
        let truth = BTreeMap::from([(1, Vertical::SmartMeter), (2, Vertical::SmartMeter)]);
        let v = validate(&c, &truth);
        assert_eq!(v.m2m_recall, Some(0.5));
        assert_eq!(v.m2m_precision, Some(1.0));
    }

    #[test]
    fn misclassified_phone_hurts_precision() {
        let c = classification(&[(1, DeviceClass::M2m), (2, DeviceClass::M2m)]);
        let truth = BTreeMap::from([(1, Vertical::SmartMeter), (2, Vertical::Smartphone)]);
        let v = validate(&c, &truth);
        assert_eq!(v.m2m_precision, Some(0.5));
        assert_eq!(v.matrix.get(DeviceClass::Smart, DeviceClass::M2m), 1);
    }

    #[test]
    fn precision_recall_none_for_absent_classes() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.precision(DeviceClass::M2m), None);
        assert_eq!(m.recall(DeviceClass::M2m), None);
        assert_eq!(m.f1(DeviceClass::M2m), None);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn unmatched_devices_counted() {
        let c = classification(&[(1, DeviceClass::M2m), (99, DeviceClass::Smart)]);
        let truth = BTreeMap::from([(1, Vertical::SmartMeter)]);
        let v = validate(&c, &truth);
        assert_eq!(v.unmatched, 1);
        assert_eq!(v.matrix.total(), 1);
    }

    #[test]
    fn f1_harmonic_mean() {
        let mut m = ConfusionMatrix::default();
        // 8 true m2m predicted m2m, 2 m2m predicted maybe, 2 smart
        // predicted m2m.
        for _ in 0..8 {
            m.record(DeviceClass::M2m, DeviceClass::M2m);
        }
        for _ in 0..2 {
            m.record(DeviceClass::M2m, DeviceClass::M2mMaybe);
        }
        for _ in 0..2 {
            m.record(DeviceClass::Smart, DeviceClass::M2m);
        }
        let p = m.precision(DeviceClass::M2m).unwrap();
        let r = m.recall(DeviceClass::M2m).unwrap();
        assert!((p - 0.8).abs() < 1e-12);
        assert!((r - 0.8).abs() < 1e-12);
        assert!((m.f1(DeviceClass::M2m).unwrap() - 0.8).abs() < 1e-12);
    }
}
