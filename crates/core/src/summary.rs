//! Per-device summaries: the devices-catalog folded across days.
//!
//! Classification and most population analyses operate per *device*, not
//! per device-day; a [`DeviceSummary`] merges every catalog row of one
//! anonymized device across the observation window.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use wtr_model::ids::{Plmn, Tac};
use wtr_model::intern::ApnSym;
use wtr_model::rat::RadioFlags;
use wtr_model::roaming::RoamingLabel;
use wtr_probes::catalog::{CatalogEntry, DevicesCatalog, MobilityAccum};
use wtr_sim::par;
use wtr_sim::stream::{drive_iter_with, ChunkFold};

/// One device, aggregated over the whole observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSummary {
    /// Anonymized device ID.
    pub user: u64,
    /// SIM home PLMN.
    pub sim_plmn: Plmn,
    /// Device TAC.
    pub tac: Tac,
    /// Days with at least one record.
    pub active_days: u32,
    /// First active day index.
    pub first_day: u32,
    /// Last active day index.
    pub last_day: u32,
    /// Roaming label observed most often (daily labels can vary for
    /// devices that roam in and out).
    pub dominant_label: RoamingLabel,
    /// All labels observed.
    pub labels: BTreeSet<RoamingLabel>,
    /// All APNs observed, as symbols of the source catalog's
    /// [`wtr_model::intern::ApnTable`] (pass that table alongside the
    /// summaries to anything that needs the strings back).
    pub apns: BTreeSet<ApnSym>,
    /// Radio-flags merged across days.
    pub radio_flags: RadioFlags,
    /// Total radio events.
    pub events: u64,
    /// Total failed radio events.
    pub failed_events: u64,
    /// Total calls.
    pub calls: u64,
    /// Total SMS-like transactions.
    pub sms: u64,
    /// Total data sessions.
    pub data_sessions: u64,
    /// Total bytes (both directions).
    pub bytes: u64,
    /// Whether any row was tagged as belonging to an operator-designated
    /// IMSI range (the SMIP smart-meter block, §4.4).
    pub in_designated_range: bool,
    /// Whether any row was tagged as belonging to a GSMA-published foreign
    /// M2M IMSI range (§1 transparency recommendation).
    pub in_published_m2m_range: bool,
    /// Distinct visited PLMN keys.
    pub visited: BTreeSet<u32>,
    /// Events per hour of day, summed across the window (diurnal shape).
    pub hourly: [u64; 24],
    /// Mobility accumulator merged across days.
    pub mobility: MobilityAccum,
}

impl DeviceSummary {
    /// Mean radio events per active day.
    pub fn events_per_active_day(&self) -> f64 {
        if self.active_days == 0 {
            0.0
        } else {
            self.events as f64 / self.active_days as f64
        }
    }

    /// Mean calls per active day.
    pub fn calls_per_active_day(&self) -> f64 {
        if self.active_days == 0 {
            0.0
        } else {
            self.calls as f64 / self.active_days as f64
        }
    }

    /// Mean bytes per active day.
    pub fn bytes_per_active_day(&self) -> f64 {
        if self.active_days == 0 {
            0.0
        } else {
            self.bytes as f64 / self.active_days as f64
        }
    }

    /// Whether the device ever used data services.
    pub fn used_data(&self) -> bool {
        self.data_sessions > 0
    }

    /// Whether the device ever used voice services.
    pub fn used_voice(&self) -> bool {
        self.calls + self.sms > 0
    }

    /// Whether any failed event was observed.
    pub fn had_failures(&self) -> bool {
        self.failed_events > 0
    }

    /// Radius of gyration over the whole window, in km.
    pub fn gyration_km(&self) -> Option<f64> {
        self.mobility.gyration_km()
    }

    /// Whether the device was ever seen as an international inbound roamer.
    pub fn ever_international_inbound(&self) -> bool {
        self.labels.iter().any(|l| l.is_international_inbound())
    }
}

/// Chunk-local accumulator: per device, the summary under construction
/// plus how often each daily label was seen (for the dominant-label vote).
type Partial = BTreeMap<u64, (DeviceSummary, BTreeMap<RoamingLabel, u32>)>;

/// Folds one catalog row into a partial. First-touch identity: the first
/// row a device contributes (earliest (user, day) in the chunk) sets
/// `sim_plmn`/`tac`/`first_day`.
fn fold_row(acc: &mut Partial, row: &CatalogEntry) {
    let (s, counts) = acc.entry(row.user).or_insert_with(|| {
        (
            DeviceSummary {
                user: row.user,
                sim_plmn: row.sim_plmn,
                tac: row.tac,
                active_days: 0,
                first_day: row.day.0,
                last_day: row.day.0,
                dominant_label: row.label,
                labels: BTreeSet::new(),
                apns: BTreeSet::new(),
                radio_flags: RadioFlags::default(),
                events: 0,
                failed_events: 0,
                calls: 0,
                sms: 0,
                data_sessions: 0,
                bytes: 0,
                in_designated_range: false,
                in_published_m2m_range: false,
                visited: BTreeSet::new(),
                hourly: [0; 24],
                mobility: MobilityAccum::default(),
            },
            BTreeMap::new(),
        )
    });
    s.active_days += 1;
    s.first_day = s.first_day.min(row.day.0);
    s.last_day = s.last_day.max(row.day.0);
    s.labels.insert(row.label);
    s.apns.extend(row.apns.iter().copied());
    s.radio_flags.merge(row.radio_flags);
    s.events += row.events;
    s.failed_events += row.failed_events;
    s.calls += row.calls;
    s.sms += row.sms;
    s.data_sessions += row.data_sessions;
    s.bytes += row.bytes_total();
    s.in_designated_range |= row.in_designated_range;
    s.in_published_m2m_range |= row.in_published_m2m_range;
    s.visited.extend(row.visited.iter().copied());
    for (h, n) in row.hourly.iter().enumerate() {
        s.hourly[h] += *n as u64;
    }
    s.mobility.merge(&row.mobility);
    *counts.entry(row.label).or_insert(0) += 1;
}

/// Merges the partial of a *later* chunk into an earlier one. Identity
/// fields keep the left (earlier) side, matching the serial fold.
fn merge_partials(left: &mut Partial, right: Partial) {
    for (user, (rs, rcounts)) in right {
        match left.entry(user) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert((rs, rcounts));
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let (s, counts) = o.get_mut();
                s.active_days += rs.active_days;
                s.first_day = s.first_day.min(rs.first_day);
                s.last_day = s.last_day.max(rs.last_day);
                s.labels.extend(rs.labels);
                s.apns.extend(rs.apns);
                s.radio_flags.merge(rs.radio_flags);
                s.events += rs.events;
                s.failed_events += rs.failed_events;
                s.calls += rs.calls;
                s.sms += rs.sms;
                s.data_sessions += rs.data_sessions;
                s.bytes += rs.bytes;
                s.in_designated_range |= rs.in_designated_range;
                s.in_published_m2m_range |= rs.in_published_m2m_range;
                s.visited.extend(rs.visited);
                for (h, n) in rs.hourly.iter().enumerate() {
                    s.hourly[h] += n;
                }
                s.mobility.merge(&rs.mobility);
                for (label, n) in rcounts {
                    *counts.entry(label).or_insert(0) += n;
                }
            }
        }
    }
}

/// Streaming accumulator for per-device summaries: the [`ChunkFold`]
/// behind [`summarize`] and the single-pass catalog pipeline
/// (`wtr_core::stream`).
///
/// Folds catalog rows (owned or borrowed chunks) into a per-device
/// partial; [`SummaryFold::finish`] resolves the dominant-label vote and
/// yields summaries sorted by device ID. State is O(devices), never
/// O(rows): this is what lets a visited-MNO-scale catalog stream through
/// without materializing.
///
/// Rows must arrive in the catalog's canonical (user, day) order for the
/// first-touch identity fields (`sim_plmn`/`tac`) to match the
/// materialized path — both the JSONL and WTRCAT writers emit that
/// order. All merges are integer adds, set unions and "first wins"
/// choices except the f64 mobility accumulator, whose bit-exactness
/// across paths is guaranteed by pinning chunk boundaries
/// (`wtr_sim::par::chunk_size`) rather than by associativity.
/// `Clone` (like every other analysis fold) so an open accumulation —
/// e.g. a `wtr_serve` day that has not sealed yet — can be snapshotted
/// and finished without disturbing the live fold.
#[derive(Debug, Default, Clone)]
pub struct SummaryFold {
    partial: Partial,
}

impl SummaryFold {
    /// An empty accumulator.
    pub fn new() -> Self {
        SummaryFold::default()
    }

    /// Devices seen so far.
    pub fn device_count(&self) -> usize {
        self.partial.len()
    }

    /// Resolves dominant labels and returns summaries sorted by device
    /// ID (`BTreeMap` order).
    pub fn finish(self) -> Vec<DeviceSummary> {
        self.partial
            .into_values()
            .map(|(mut s, counts)| {
                if let Some((label, _)) = counts
                    .iter()
                    .max_by_key(|(l, c)| (**c, std::cmp::Reverse(**l)))
                {
                    s.dominant_label = *label;
                }
                s
            })
            .collect()
    }
}

impl ChunkFold<CatalogEntry> for SummaryFold {
    fn zero(&self) -> Self {
        SummaryFold::new()
    }

    fn fold_chunk(&mut self, chunk: &[CatalogEntry]) {
        for row in chunk {
            fold_row(&mut self.partial, row);
        }
    }

    fn absorb(&mut self, later: Self) {
        merge_partials(&mut self.partial, later.partial);
    }
}

impl ChunkFold<&CatalogEntry> for SummaryFold {
    fn zero(&self) -> Self {
        SummaryFold::new()
    }

    fn fold_chunk(&mut self, chunk: &[&CatalogEntry]) {
        for row in chunk {
            fold_row(&mut self.partial, row);
        }
    }

    fn absorb(&mut self, later: Self) {
        merge_partials(&mut self.partial, later.partial);
    }
}

/// Folds a devices-catalog into per-device summaries, sorted by device ID.
///
/// The fold is sharded over worker threads (`wtr_sim::par`) through
/// [`SummaryFold`] without collecting the rows first; because the
/// catalog iterates in (user, day) order, chunk boundaries are pinned by
/// [`par::chunk_size`] and chunk partials merge in order, the result is
/// identical — byte for byte once serialized — at any thread count, and
/// bit-identical to streaming the same rows from a catalog file.
pub fn summarize(catalog: &DevicesCatalog) -> Vec<DeviceSummary> {
    let mut fold = SummaryFold::new();
    drive_iter_with(&mut fold, par::chunk_size(catalog.len()), catalog.iter());
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::time::Day;

    fn plmn() -> Plmn {
        Plmn::of(204, 4)
    }

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn sample_catalog() -> DevicesCatalog {
        let mut cat = DevicesCatalog::new(22);
        let sym = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
        for day in [0u32, 1, 2, 5] {
            let r = cat.row_mut(1, Day(day), plmn(), tac(), RoamingLabel::IH);
            r.events += 10;
            r.failed_events += 1;
            r.data_sessions += 2;
            r.bytes_up += 100;
            r.bytes_down += 50;
            r.apns.insert(sym);
        }
        // Device 2: one home day, one abroad day (outbound).
        let r = cat.row_mut(2, Day(0), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        r.events += 3;
        let r = cat.row_mut(2, Day(1), Plmn::of(234, 30), tac(), RoamingLabel::HA);
        r.calls += 1;
        r.call_secs += 60;
        cat
    }

    #[test]
    fn summary_aggregates_days() {
        let sums = summarize(&sample_catalog());
        assert_eq!(sums.len(), 2);
        let s1 = sums.iter().find(|s| s.user == 1).unwrap();
        assert_eq!(s1.active_days, 4);
        assert_eq!(s1.first_day, 0);
        assert_eq!(s1.last_day, 5);
        assert_eq!(s1.events, 40);
        assert_eq!(s1.failed_events, 4);
        assert_eq!(s1.data_sessions, 8);
        assert_eq!(s1.bytes, 600);
        assert_eq!(s1.dominant_label, RoamingLabel::IH);
        assert!(s1.ever_international_inbound());
        assert_eq!(s1.events_per_active_day(), 10.0);
        assert!(s1.used_data() && !s1.used_voice());
        assert!(s1.had_failures());
    }

    #[test]
    fn mixed_labels_tracked() {
        let sums = summarize(&sample_catalog());
        let s2 = sums.iter().find(|s| s.user == 2).unwrap();
        assert_eq!(s2.labels.len(), 2);
        assert!(s2.labels.contains(&RoamingLabel::HH));
        assert!(s2.labels.contains(&RoamingLabel::HA));
        assert!(!s2.ever_international_inbound());
        assert!(s2.used_voice());
    }

    #[test]
    fn dominant_label_is_most_frequent() {
        let mut cat = DevicesCatalog::new(22);
        for day in 0..5u32 {
            cat.row_mut(3, Day(day), plmn(), tac(), RoamingLabel::IH);
        }
        cat.row_mut(3, Day(6), plmn(), tac(), RoamingLabel::HH);
        let sums = summarize(&cat);
        assert_eq!(sums[0].dominant_label, RoamingLabel::IH);
    }

    #[test]
    fn empty_catalog() {
        let cat = DevicesCatalog::new(22);
        assert!(summarize(&cat).is_empty());
    }

    #[test]
    fn output_sorted_by_user() {
        let sums = summarize(&sample_catalog());
        assert!(sums.windows(2).all(|w| w[0].user < w[1].user));
    }
}
