//! Smart-meter (SMIP) identification and analysis (§4.4, §7.1; Fig. 11).
//!
//! Two populations:
//!
//! * **SMIP native** — smart meters on the studied MNO's own SIMs,
//!   identified through the operator's dedicated IMSI range (tagged by the
//!   probe as `in_designated_range`).
//! * **SMIP roaming** — inbound-roaming meters identified the paper's way:
//!   APN network-identifier patterns of UK energy companies. The analysis
//!   then *verifies* the paper's two observations rather than assuming
//!   them: all identified SIMs should come from a single foreign operator
//!   (one Dutch HMNO), and their TACs should map to M2M module vendors
//!   (Gemalto and Telit) in the GSMA catalog.

use crate::keywords::{match_m2m_keyword, VerticalHint};
use crate::metrics::Ecdf;
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use wtr_model::intern::ApnTable;
use wtr_model::tacdb::TacDatabase;
use wtr_sim::stream::{drive_slice, ChunkFold};

/// The identified SMIP populations, with the §4.4 verification evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmipPopulation {
    /// Device IDs of SMIP-native meters.
    pub native: BTreeSet<u64>,
    /// Device IDs of SMIP-roaming meters.
    pub roaming: BTreeSet<u64>,
    /// Home PLMN keys of the roaming meters (paper: exactly one, a Dutch
    /// operator).
    pub roaming_home_plmns: BTreeSet<u32>,
    /// TAC vendors of the roaming meters (paper: Gemalto and Telit only).
    pub roaming_vendors: BTreeSet<String>,
    /// Energy APN patterns that matched, with device counts.
    pub matched_patterns: BTreeMap<String, usize>,
}

/// Streaming accumulator for [`identify`]: set unions and integer
/// counts, exact under chunked folding. The energy-keyword verdict is
/// memoized per distinct symbol at construction (one scan per APN, not
/// per device × APN).
#[derive(Debug, Clone)]
pub struct SmipFold<'a> {
    tacdb: &'a TacDatabase,
    energy_kw: Vec<Option<&'static str>>,
    pop: SmipPopulation,
}

impl<'a> SmipFold<'a> {
    /// An empty accumulator; `apns` is the intern table the summaries'
    /// symbols resolve through.
    pub fn new(tacdb: &'a TacDatabase, apns: &ApnTable) -> Self {
        let energy_kw = apns
            .strings()
            .iter()
            .map(|apn| {
                match_m2m_keyword(apn)
                    .filter(|(_, hint)| *hint == VerticalHint::Energy)
                    .map(|(kw, _)| kw)
            })
            .collect();
        SmipFold {
            tacdb,
            energy_kw,
            pop: SmipPopulation {
                native: BTreeSet::new(),
                roaming: BTreeSet::new(),
                roaming_home_plmns: BTreeSet::new(),
                roaming_vendors: BTreeSet::new(),
                matched_patterns: BTreeMap::new(),
            },
        }
    }

    /// The identified populations.
    pub fn finish(self) -> SmipPopulation {
        self.pop
    }
}

impl ChunkFold<DeviceSummary> for SmipFold<'_> {
    fn zero(&self) -> Self {
        SmipFold {
            tacdb: self.tacdb,
            energy_kw: self.energy_kw.clone(),
            pop: SmipPopulation {
                native: BTreeSet::new(),
                roaming: BTreeSet::new(),
                roaming_home_plmns: BTreeSet::new(),
                roaming_vendors: BTreeSet::new(),
                matched_patterns: BTreeMap::new(),
            },
        }
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if s.in_designated_range && s.dominant_label.is_native_attached() {
                self.pop.native.insert(s.user);
                continue;
            }
            if !s.dominant_label.is_international_inbound() {
                continue;
            }
            let energy_match = s.apns.iter().find_map(|sym| self.energy_kw[sym.index()]);
            if let Some(kw) = energy_match {
                self.pop.roaming.insert(s.user);
                self.pop.roaming_home_plmns.insert(s.sim_plmn.packed());
                *self.pop.matched_patterns.entry(kw.to_owned()).or_insert(0) += 1;
                if let Some(info) = self.tacdb.get(s.tac) {
                    self.pop.roaming_vendors.insert(info.vendor.clone());
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        self.pop.native.extend(later.pop.native);
        self.pop.roaming.extend(later.pop.roaming);
        self.pop
            .roaming_home_plmns
            .extend(later.pop.roaming_home_plmns);
        self.pop.roaming_vendors.extend(later.pop.roaming_vendors);
        for (kw, n) in later.pop.matched_patterns {
            *self.pop.matched_patterns.entry(kw).or_insert(0) += n;
        }
    }
}

/// Identifies SMIP-native and SMIP-roaming meters from device summaries.
/// `apns` is the intern table the summaries' symbols resolve through; the
/// energy-keyword verdict is memoized per distinct symbol.
pub fn identify(
    summaries: &[DeviceSummary],
    tacdb: &TacDatabase,
    apns: &ApnTable,
) -> SmipPopulation {
    let mut fold = SmipFold::new(tacdb, apns);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

/// Fig. 11 + §7.1 statistics for one SMIP group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmipGroupStats {
    /// Devices in the group.
    pub devices: usize,
    /// Active days per device (Fig. 11-left).
    pub active_days: Ecdf,
    /// Active days restricted to the day-0 cohort (devices already active
    /// on the first day — the paper's "active from the first day" series).
    pub active_days_day1_cohort: Ecdf,
    /// Fraction active on every day of the window.
    pub full_period_fraction: f64,
    /// Signaling messages per device per day (Fig. 11-right).
    pub signaling_per_day: Ecdf,
    /// Fraction of devices with at least one failed signaling message.
    pub failed_device_fraction: f64,
    /// RAT-category shares (any plane) — §7.1: roaming meters 2G-only,
    /// native 2G+3G with 2/3 on 3G only.
    pub rat_categories: BTreeMap<String, f64>,
}

/// Streaming accumulator for [`group_stats`]: integer counts plus
/// order-preserving sample vectors, exact under chunked folding. Runs
/// after [`identify`] (it needs the member set), so a streamed analysis
/// drives it in a short second pass over the summaries.
#[derive(Debug, Clone)]
pub struct GroupStatsFold<'a> {
    members: &'a BTreeSet<u64>,
    window_days: u32,
    devices: usize,
    active_days: Vec<f64>,
    day1_cohort: Vec<f64>,
    full: usize,
    failed: usize,
    signaling: Vec<f64>,
    rat_counts: BTreeMap<String, f64>,
}

impl<'a> GroupStatsFold<'a> {
    /// An empty accumulator over `members` for a `window_days` window.
    pub fn new(members: &'a BTreeSet<u64>, window_days: u32) -> Self {
        GroupStatsFold {
            members,
            window_days,
            devices: 0,
            active_days: Vec::new(),
            day1_cohort: Vec::new(),
            full: 0,
            failed: 0,
            signaling: Vec::new(),
            rat_counts: BTreeMap::new(),
        }
    }

    /// Finalizes into the Fig. 11 statistics.
    pub fn finish(self) -> SmipGroupStats {
        let n = self.devices.max(1) as f64;
        SmipGroupStats {
            devices: self.devices,
            active_days: Ecdf::new(self.active_days),
            active_days_day1_cohort: Ecdf::new(self.day1_cohort),
            full_period_fraction: self.full as f64 / n,
            signaling_per_day: Ecdf::new(self.signaling),
            failed_device_fraction: self.failed as f64 / n,
            rat_categories: self
                .rat_counts
                .into_iter()
                .map(|(k, v)| (k, v / n))
                .collect(),
        }
    }
}

impl ChunkFold<DeviceSummary> for GroupStatsFold<'_> {
    fn zero(&self) -> Self {
        GroupStatsFold::new(self.members, self.window_days)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if !self.members.contains(&s.user) {
                continue;
            }
            self.devices += 1;
            self.active_days.push(s.active_days as f64);
            if s.first_day == 0 {
                self.day1_cohort.push(s.active_days as f64);
            }
            if s.active_days >= self.window_days {
                self.full += 1;
            }
            if s.had_failures() {
                self.failed += 1;
            }
            self.signaling.push(s.events_per_active_day());
            *self
                .rat_counts
                .entry(s.radio_flags.any.category_label().to_owned())
                .or_insert(0.0) += 1.0;
        }
    }

    fn absorb(&mut self, later: Self) {
        self.devices += later.devices;
        self.active_days.extend(later.active_days);
        self.day1_cohort.extend(later.day1_cohort);
        self.full += later.full;
        self.failed += later.failed;
        self.signaling.extend(later.signaling);
        for (k, v) in later.rat_counts {
            *self.rat_counts.entry(k).or_insert(0.0) += v;
        }
    }
}

/// Computes Fig. 11 statistics for a set of device IDs.
pub fn group_stats(
    summaries: &[DeviceSummary],
    members: &BTreeSet<u64>,
    window_days: u32,
) -> SmipGroupStats {
    let mut fold = GroupStatsFold::new(members, window_days);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::Tac;
    use wtr_model::operators::well_known;
    use wtr_model::rat::Rat;
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;
    use wtr_probes::catalog::DevicesCatalog;

    fn meter_tac(db: &TacDatabase, vendor: &str) -> Tac {
        let mut tacs: Vec<Tac> = db.tacs_of_vendor(vendor).collect();
        tacs.sort();
        tacs[0]
    }

    fn build() -> (Vec<DeviceSummary>, TacDatabase, ApnTable) {
        let db = TacDatabase::standard();
        let mut cat = DevicesCatalog::new(10);
        let centrica = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
        let scania = cat.intern_apn("fleet.scania.com.mnc002.mcc262.gprs");
        // Native SMIP meter: designated range, active all 10 days, 3G.
        for day in 0..10u32 {
            let r = cat.row_mut(
                1,
                Day(day),
                well_known::UK_STUDIED_MNO,
                meter_tac(&db, "Gemalto"),
                RoamingLabel::HH,
            );
            r.in_designated_range = true;
            r.events += 3;
            r.radio_flags.record(Rat::G3, true, false);
        }
        // Roaming SMIP meter: NL SIM, Centrica APN, 2G, 4 days, failures,
        // 10x signaling.
        for day in 0..4u32 {
            let r = cat.row_mut(
                2,
                Day(day),
                well_known::NL_SMART_METER_HMNO,
                meter_tac(&db, "Telit"),
                RoamingLabel::IH,
            );
            r.events += 30;
            r.failed_events += 2;
            r.apns.insert(centrica);
            r.radio_flags.record(Rat::G2, true, false);
        }
        // An inbound car (automotive APN): must NOT be identified as SMIP.
        let r = cat.row_mut(
            3,
            Day(0),
            well_known::DE_HMNO,
            meter_tac(&db, "Sierra Wireless"),
            RoamingLabel::IH,
        );
        r.apns.insert(scania);
        let table = cat.apn_table().clone();
        (summarize(&cat), db, table)
    }

    #[test]
    fn identify_partitions_native_and_roaming() {
        let (sums, db, table) = build();
        let pop = identify(&sums, &db, &table);
        assert!(pop
            .native
            .contains(&sums.iter().find(|s| s.in_designated_range).unwrap().user));
        assert_eq!(pop.native.len(), 1);
        assert_eq!(pop.roaming.len(), 1);
        // §4.4 verification evidence: single NL home operator, module
        // vendor TACs.
        assert_eq!(pop.roaming_home_plmns.len(), 1);
        assert!(pop
            .roaming_home_plmns
            .contains(&well_known::NL_SMART_METER_HMNO.packed()));
        assert_eq!(pop.roaming_vendors, BTreeSet::from(["Telit".to_owned()]));
        assert!(pop.matched_patterns.contains_key("centricaplc"));
    }

    #[test]
    fn car_is_not_a_meter() {
        let (sums, db, table) = build();
        let pop = identify(&sums, &db, &table);
        let car = sums
            .iter()
            .find(|s| s.apns.iter().any(|&a| table.resolve(a).contains("scania")))
            .unwrap();
        assert!(!pop.roaming.contains(&car.user));
        assert!(!pop.native.contains(&car.user));
    }

    #[test]
    fn group_stats_match_fig11_shape() {
        let (sums, db, table) = build();
        let pop = identify(&sums, &db, &table);
        let native = group_stats(&sums, &pop.native, 10);
        let roaming = group_stats(&sums, &pop.roaming, 10);
        assert_eq!(native.devices, 1);
        assert_eq!(roaming.devices, 1);
        // Native: full period; roaming: 4 of 10 days.
        assert_eq!(native.full_period_fraction, 1.0);
        assert_eq!(roaming.full_period_fraction, 0.0);
        assert_eq!(roaming.active_days.median(), Some(4.0));
        // Roaming signaling 10× native.
        assert!(
            roaming.signaling_per_day.median().unwrap()
                >= 9.0 * native.signaling_per_day.median().unwrap()
        );
        // Failures only on the roaming side.
        assert_eq!(native.failed_device_fraction, 0.0);
        assert_eq!(roaming.failed_device_fraction, 1.0);
        // RAT split (§7.1).
        assert_eq!(roaming.rat_categories["2G only"], 1.0);
        assert_eq!(native.rat_categories["3G only"], 1.0);
    }

    #[test]
    fn day1_cohort_filters_late_arrivals() {
        let db = TacDatabase::standard();
        let mut cat = DevicesCatalog::new(10);
        let tac = meter_tac(&db, "Gemalto");
        // Device 1 active from day 0 for 10 days; device 2 appears day 5.
        for day in 0..10u32 {
            let r = cat.row_mut(
                1,
                Day(day),
                well_known::UK_STUDIED_MNO,
                tac,
                RoamingLabel::HH,
            );
            r.in_designated_range = true;
        }
        for day in 5..10u32 {
            let r = cat.row_mut(
                2,
                Day(day),
                well_known::UK_STUDIED_MNO,
                tac,
                RoamingLabel::HH,
            );
            r.in_designated_range = true;
        }
        let sums = summarize(&cat);
        let pop = identify(&sums, &db, cat.apn_table());
        let stats = group_stats(&sums, &pop.native, 10);
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.active_days_day1_cohort.len(), 1);
        assert_eq!(stats.active_days_day1_cohort.median(), Some(10.0));
        // Whole-group full-period fraction is diluted by the late cohort —
        // the Fig. 11 deployment effect (73% → 83% for the day-1 cohort).
        assert_eq!(stats.full_period_fraction, 0.5);
    }

    #[test]
    fn empty_group() {
        let (sums, _, _) = build();
        let stats = group_stats(&sums, &BTreeSet::new(), 10);
        assert_eq!(stats.devices, 0);
        assert!(stats.active_days.is_empty());
        assert_eq!(stats.failed_device_fraction, 0.0);
    }
}
