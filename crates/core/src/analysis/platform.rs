//! M2M platform dataset analyses (§3.2–§3.3; Fig. 2, Fig. 3).
//!
//! Input is the platform probe's transaction log. All statistics are
//! computed exactly as the paper describes: device counts per HMNO,
//! row-normalized visited-country matrices, per-device signaling-record
//! distributions (split roaming/native), VMNOs-per-device, and
//! inter-VMNO switch counts for multi-VMNO devices.

use crate::metrics::{shares, CrossTab, Ecdf};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use wtr_model::country::Country;
use wtr_model::ids::Plmn;
use wtr_probes::records::{M2mMessageType, M2mTransaction};

fn country_of(plmn: Plmn) -> String {
    Country::by_mcc(plmn.mcc)
        .map(|c| c.iso.to_owned())
        .unwrap_or_else(|| format!("mcc{}", plmn.mcc))
}

/// Per-device aggregates extracted from the transaction log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformDevice {
    /// Anonymized device ID.
    pub device: u64,
    /// Home PLMN of the SIM.
    pub sim_plmn: Plmn,
    /// Number of transactions.
    pub records: u64,
    /// Whether any transaction succeeded.
    pub any_ok: bool,
    /// Whether any transaction was observed while roaming
    /// (visited country ≠ SIM country).
    pub ever_roaming: bool,
    /// Distinct visited PLMN keys.
    pub vmnos: BTreeSet<u32>,
    /// Distinct visited country ISO codes.
    pub countries: BTreeSet<String>,
    /// Number of inter-VMNO switches (changes of visited PLMN between
    /// consecutive transactions in time order).
    pub switches: u64,
}

/// Groups transactions per device. Transactions need not be pre-sorted.
pub fn per_device(transactions: &[M2mTransaction]) -> Vec<PlatformDevice> {
    let mut order: HashMap<u64, Vec<(u64, Plmn)>> = HashMap::new();
    let mut map: HashMap<u64, PlatformDevice> = HashMap::new();
    for t in transactions {
        let d = map.entry(t.device).or_insert_with(|| PlatformDevice {
            device: t.device,
            sim_plmn: t.sim_plmn,
            records: 0,
            any_ok: false,
            ever_roaming: false,
            vmnos: BTreeSet::new(),
            countries: BTreeSet::new(),
            switches: 0,
        });
        d.records += 1;
        d.any_ok |= t.result.is_ok();
        let roaming = country_of(t.sim_plmn) != country_of(t.visited_plmn);
        d.ever_roaming |= roaming;
        d.vmnos.insert(t.visited_plmn.packed());
        d.countries.insert(country_of(t.visited_plmn));
        // Cancel Location arrives at the *old* VMNO concurrently with the
        // new VMNO's registration; counting it in the serving sequence
        // would double-count every switch, so the switch metric follows
        // the Authentication/Update-Location sequence only.
        if t.message != M2mMessageType::CancelLocation {
            order
                .entry(t.device)
                .or_default()
                .push((t.time.as_secs(), t.visited_plmn));
        }
    }
    for (device, mut seq) in order {
        seq.sort_by_key(|(t, _)| *t);
        let switches = seq.windows(2).filter(|w| w[0].1 != w[1].1).count() as u64;
        map.get_mut(&device).expect("device exists").switches = switches;
    }
    let mut out: Vec<PlatformDevice> = map.into_values().collect();
    out.sort_by_key(|d| d.device);
    out
}

/// The §3.2 overview: HMNO shares, footprints, signaling distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformOverview {
    /// Total transactions in the log.
    pub total_transactions: usize,
    /// Total distinct devices.
    pub total_devices: usize,
    /// `(home-country ISO, device count, device share)`, descending (E1).
    pub hmno_device_shares: Vec<(String, f64, f64)>,
    /// `(home-country ISO, transaction share)` — ES carries 81.8% in the
    /// paper.
    pub hmno_signaling_shares: Vec<(String, f64, f64)>,
    /// Devices per (HMNO country, visited country) — Fig. 2 before row
    /// normalization (E2).
    pub visited_matrix: CrossTab,
    /// Distinct visited countries per HMNO country.
    pub countries_per_hmno: BTreeMap<String, usize>,
    /// Distinct VMNOs per HMNO country.
    pub vmnos_per_hmno: BTreeMap<String, usize>,
    /// Fraction of each HMNO's devices that never roam (MX ≈ 90% in the
    /// paper).
    pub home_fraction_per_hmno: BTreeMap<String, f64>,
}

/// Computes the §3.2 overview (E1/E2).
pub fn overview(transactions: &[M2mTransaction]) -> PlatformOverview {
    let devices = per_device(transactions);
    let mut device_counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut signaling_counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut visited_matrix = CrossTab::new();
    let mut countries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut vmnos: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let mut home_devices: BTreeMap<String, f64> = BTreeMap::new();
    for d in &devices {
        let home = country_of(d.sim_plmn);
        *device_counts.entry(home.clone()).or_insert(0.0) += 1.0;
        *signaling_counts.entry(home.clone()).or_insert(0.0) += d.records as f64;
        for c in &d.countries {
            visited_matrix.add(&home, c, 1.0);
            countries.entry(home.clone()).or_default().insert(c.clone());
        }
        for v in &d.vmnos {
            vmnos.entry(home.clone()).or_default().insert(*v);
        }
        if !d.ever_roaming {
            *home_devices.entry(home.clone()).or_insert(0.0) += 1.0;
        }
    }
    let home_fraction_per_hmno = device_counts
        .iter()
        .map(|(h, n)| {
            let at_home = home_devices.get(h).copied().unwrap_or(0.0);
            (h.clone(), if *n > 0.0 { at_home / n } else { 0.0 })
        })
        .collect();
    PlatformOverview {
        total_transactions: transactions.len(),
        total_devices: devices.len(),
        hmno_device_shares: shares(device_counts),
        hmno_signaling_shares: shares(signaling_counts),
        visited_matrix,
        countries_per_hmno: countries.into_iter().map(|(k, v)| (k, v.len())).collect(),
        vmnos_per_hmno: vmnos.into_iter().map(|(k, v)| (k, v.len())).collect(),
        home_fraction_per_hmno,
    }
}

/// The Fig. 3 device-level dynamics (E3–E5), optionally restricted to one
/// HMNO (the paper restricts §3.3 to the Spanish provider).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceDynamics {
    /// Signaling records per device, all devices (Fig. 3-left, "all").
    pub records_all: Ecdf,
    /// Records per device with ≥1 successful 4G procedure ("4G devices").
    pub records_ok: Ecdf,
    /// Records per roaming device.
    pub records_roaming: Ecdf,
    /// Records per native (never-roaming) device.
    pub records_native: Ecdf,
    /// Distinct VMNOs per *roaming* device (Fig. 3-center).
    pub vmnos_roaming: Ecdf,
    /// Inter-VMNO switches per device with ≥2 VMNOs (Fig. 3-right).
    pub switches_multi_vmno: Ecdf,
    /// Fraction of devices with only failed procedures (§3.3: 40%).
    pub only_failed_fraction: f64,
    /// Max VMNOs attempted by an only-failed device (§3.3: up to 19).
    pub max_vmnos_failed_device: usize,
}

/// Computes Fig. 3's distributions (E3–E5).
pub fn dynamics(transactions: &[M2mTransaction], hmno: Option<Plmn>) -> DeviceDynamics {
    let devices: Vec<PlatformDevice> = per_device(transactions)
        .into_iter()
        .filter(|d| hmno.is_none_or(|h| d.sim_plmn == h))
        .collect();
    let records_all = Ecdf::new(devices.iter().map(|d| d.records as f64).collect());
    let records_ok = Ecdf::new(
        devices
            .iter()
            .filter(|d| d.any_ok)
            .map(|d| d.records as f64)
            .collect(),
    );
    let records_roaming = Ecdf::new(
        devices
            .iter()
            .filter(|d| d.ever_roaming)
            .map(|d| d.records as f64)
            .collect(),
    );
    let records_native = Ecdf::new(
        devices
            .iter()
            .filter(|d| !d.ever_roaming)
            .map(|d| d.records as f64)
            .collect(),
    );
    let vmnos_roaming = Ecdf::new(
        devices
            .iter()
            .filter(|d| d.ever_roaming)
            .map(|d| d.vmnos.len() as f64)
            .collect(),
    );
    let switches_multi_vmno = Ecdf::new(
        devices
            .iter()
            .filter(|d| d.vmnos.len() >= 2)
            .map(|d| d.switches as f64)
            .collect(),
    );
    let failed: Vec<&PlatformDevice> = devices.iter().filter(|d| !d.any_ok).collect();
    let only_failed_fraction = if devices.is_empty() {
        0.0
    } else {
        failed.len() as f64 / devices.len() as f64
    };
    let max_vmnos_failed_device = failed.iter().map(|d| d.vmnos.len()).max().unwrap_or(0);
    DeviceDynamics {
        records_all,
        records_ok,
        records_roaming,
        records_native,
        vmnos_roaming,
        switches_multi_vmno,
        only_failed_fraction,
        max_vmnos_failed_device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::time::SimTime;
    use wtr_probes::records::M2mMessageType;
    use wtr_sim::events::ProcedureResult;

    const ES: Plmn = Plmn::of(214, 7);
    const UK: Plmn = Plmn::of(234, 30);
    const FR: Plmn = Plmn::of(208, 1);
    const ES2: Plmn = Plmn::of(214, 1);

    fn tx(device: u64, t: u64, sim: Plmn, visited: Plmn, ok: bool) -> M2mTransaction {
        M2mTransaction {
            device,
            time: SimTime::from_secs(t),
            sim_plmn: sim,
            visited_plmn: visited,
            message: M2mMessageType::UpdateLocation,
            result: if ok {
                ProcedureResult::Ok
            } else {
                ProcedureResult::RoamingNotAllowed
            },
        }
    }

    #[test]
    fn per_device_counts_switches_in_time_order() {
        // Shuffled input: switches must follow timestamps, not input order.
        let txs = vec![
            tx(1, 30, ES, FR, true),
            tx(1, 10, ES, UK, true),
            tx(1, 20, ES, UK, true),
            tx(1, 40, ES, UK, true),
        ];
        let devs = per_device(&txs);
        assert_eq!(devs.len(), 1);
        let d = &devs[0];
        assert_eq!(d.records, 4);
        assert_eq!(d.vmnos.len(), 2);
        // UK → UK → FR → UK = 2 switches.
        assert_eq!(d.switches, 2);
        assert!(d.ever_roaming);
    }

    #[test]
    fn national_roaming_within_country_is_not_roaming() {
        // ES SIM on another ES network: same country → not roaming.
        let txs = vec![tx(1, 0, ES, ES2, true)];
        let devs = per_device(&txs);
        assert!(!devs[0].ever_roaming);
    }

    #[test]
    fn overview_shares_and_footprint() {
        let txs = vec![
            tx(1, 0, ES, UK, true),
            tx(1, 10, ES, FR, true),
            tx(2, 0, ES, ES, true),
            tx(3, 0, Plmn::of(334, 20), Plmn::of(334, 20), true),
        ];
        let ov = overview(&txs);
        assert_eq!(ov.total_devices, 3);
        assert_eq!(ov.total_transactions, 4);
        let es = ov
            .hmno_device_shares
            .iter()
            .find(|(c, _, _)| c == "ES")
            .unwrap();
        assert!((es.2 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ov.countries_per_hmno["ES"], 3); // GB, FR, ES
        assert_eq!(ov.vmnos_per_hmno["ES"], 3);
        // MX device never roams; one of two ES devices stays home.
        assert!((ov.home_fraction_per_hmno["MX"] - 1.0).abs() < 1e-12);
        assert!((ov.home_fraction_per_hmno["ES"] - 0.5).abs() < 1e-12);
        // Fig. 2 matrix row-normalizes to 1.
        let row_sum: f64 = ov
            .visited_matrix
            .cols()
            .iter()
            .map(|c| ov.visited_matrix.row_share("ES", c))
            .sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamics_failure_stats() {
        let txs = vec![
            // Device 1: succeeds.
            tx(1, 0, ES, UK, true),
            // Device 2: only failures across 3 VMNOs.
            tx(2, 0, ES, UK, false),
            tx(2, 10, ES, FR, false),
            tx(2, 20, ES, ES2, false),
        ];
        let dyn_ = dynamics(&txs, None);
        assert!((dyn_.only_failed_fraction - 0.5).abs() < 1e-12);
        assert_eq!(dyn_.max_vmnos_failed_device, 3);
        assert_eq!(dyn_.records_all.len(), 2);
        assert_eq!(dyn_.records_ok.len(), 1);
    }

    #[test]
    fn dynamics_hmno_filter() {
        let mx = Plmn::of(334, 20);
        let txs = vec![tx(1, 0, ES, UK, true), tx(2, 0, mx, mx, true)];
        let all = dynamics(&txs, None);
        let es_only = dynamics(&txs, Some(ES));
        assert_eq!(all.records_all.len(), 2);
        assert_eq!(es_only.records_all.len(), 1);
    }

    #[test]
    fn vmnos_only_counts_roaming_devices() {
        let mx = Plmn::of(334, 20);
        let txs = vec![
            tx(1, 0, ES, UK, true),
            tx(1, 5, ES, FR, true),
            tx(2, 0, mx, mx, true),
        ];
        let dyn_ = dynamics(&txs, None);
        assert_eq!(dyn_.vmnos_roaming.len(), 1);
        assert_eq!(dyn_.vmnos_roaming.max(), Some(2.0));
        // Device 1 has 2 VMNOs → included in switch ECDF with 1 switch.
        assert_eq!(dyn_.switches_multi_vmno.len(), 1);
        assert_eq!(dyn_.switches_multi_vmno.max(), Some(1.0));
    }

    #[test]
    fn empty_log() {
        let dyn_ = dynamics(&[], None);
        assert!(dyn_.records_all.is_empty());
        assert_eq!(dyn_.only_failed_fraction, 0.0);
        let ov = overview(&[]);
        assert_eq!(ov.total_devices, 0);
    }
}
