//! Wholesale roaming revenue vs. infrastructure load (extension E21).
//!
//! The paper's business argument, quantified: "though these devices occupy
//! radio resources in MNOs networks and exploit the MNOs interconnections
//! in the cellular ecosystem, they do not generate traffic that would
//! allow MNOs to accrue revenue" (§1, §9). Visited operators bill their
//! roaming partners per unit of *chargeable* traffic (data volume, call
//! minutes, SMS — §2.1's record exchange); signaling is free. This module
//! computes, per device class, the share of *radio load* (signaling
//! events) a class imposes against the share of *wholesale revenue* it
//! generates — making the paper's asymmetry a number.

use crate::analysis::activity::StatusGroup;
use crate::classify::{Classification, DeviceClass};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_sim::stream::{drive_slice, ChunkFold};

/// Wholesale rate card for inbound roaming (inter-operator tariffs).
///
/// Defaults approximate EU-regulated wholesale caps of the paper's era
/// (2019): data ~ €4/GB, voice ~ €0.03/min, SMS ~ €0.01.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateCard {
    /// Currency units per megabyte of data.
    pub per_mb: f64,
    /// Currency units per minute of voice.
    pub per_voice_minute: f64,
    /// Currency units per SMS-like transaction.
    pub per_sms: f64,
}

impl Default for RateCard {
    fn default() -> Self {
        RateCard {
            per_mb: 0.004,
            per_voice_minute: 0.03,
            per_sms: 0.01,
        }
    }
}

impl RateCard {
    /// Wholesale revenue one device generated over the window.
    pub fn revenue_of(&self, s: &DeviceSummary) -> f64 {
        let mb = s.bytes as f64 / 1_000_000.0;
        mb * self.per_mb
            + (s.call_seconds_estimate() / 60.0) * self.per_voice_minute
            + s.sms as f64 * self.per_sms
    }
}

impl DeviceSummary {
    /// Call seconds are not carried on the summary (the catalog has them
    /// per day); estimate from call count with the population-typical
    /// 90-second mean, which is what clearing estimates look like when
    /// only call counts survive aggregation.
    pub fn call_seconds_estimate(&self) -> f64 {
        self.calls as f64 * 90.0
    }
}

/// Load-vs-revenue for one device class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassEconomics {
    /// The class.
    pub class: DeviceClass,
    /// Inbound-roaming devices of this class.
    pub devices: usize,
    /// Share of all inbound-roamer radio events this class causes.
    pub load_share: f64,
    /// Share of all inbound-roamer wholesale revenue this class brings.
    pub revenue_share: f64,
    /// Absolute revenue (rate-card units).
    pub revenue: f64,
    /// Mean revenue per device (skewed by heavy verticals like cars).
    pub revenue_per_device: f64,
    /// Median revenue per device — the paper's "typical" M2M device.
    pub revenue_median_per_device: f64,
}

impl ClassEconomics {
    /// Load-to-revenue ratio: > 1 means the class consumes more of the
    /// network than it pays for (the paper's M2M complaint).
    pub fn load_to_revenue(&self) -> f64 {
        if self.revenue_share <= 0.0 {
            f64::INFINITY
        } else {
            self.load_share / self.revenue_share
        }
    }
}

/// Streaming accumulator for [`inbound_economics`].
///
/// Per-class load is a sum of integer-valued event counts (exact under
/// any regrouping while totals stay below 2⁵³); per-device revenues are
/// *collected*, not summed, during folding — `finish` sorts each class's
/// revenue vector with a total order and sums in sorted order, and
/// derives the grand totals from the per-class figures in class order.
/// Every reported number is therefore a pure function of the input
/// multiset, identical at any thread count or chunking.
#[derive(Debug, Clone)]
pub struct RevenueFold<'a> {
    classification: &'a Classification,
    rates: RateCard,
    per_class: BTreeMap<DeviceClass, (f64, Vec<f64>)>,
}

impl<'a> RevenueFold<'a> {
    /// An empty accumulator billing at `rates`.
    pub fn new(classification: &'a Classification, rates: RateCard) -> Self {
        RevenueFold {
            classification,
            rates,
            per_class: BTreeMap::new(),
        }
    }

    /// Finalizes into per-class economics, ordered by class.
    pub fn finish(self) -> Vec<ClassEconomics> {
        // Reduce each class first (sorted revenue sums), then derive the
        // totals from the per-class figures in class order.
        let reduced: Vec<(DeviceClass, f64, Vec<f64>, f64)> = self
            .per_class
            .into_iter()
            .map(|(class, (load, mut revenues))| {
                revenues.sort_by(f64::total_cmp);
                let revenue: f64 = revenues.iter().sum();
                (class, load, revenues, revenue)
            })
            .collect();
        let total_load: f64 = reduced.iter().map(|(_, load, _, _)| load).sum();
        let total_revenue: f64 = reduced.iter().map(|(_, _, _, revenue)| revenue).sum();
        reduced
            .into_iter()
            .map(|(class, load, revenues, revenue)| {
                let devices = revenues.len();
                let median = if devices == 0 {
                    0.0
                } else {
                    revenues[devices / 2]
                };
                ClassEconomics {
                    class,
                    devices,
                    load_share: if total_load > 0.0 {
                        load / total_load
                    } else {
                        0.0
                    },
                    revenue_share: if total_revenue > 0.0 {
                        revenue / total_revenue
                    } else {
                        0.0
                    },
                    revenue,
                    revenue_per_device: if devices > 0 {
                        revenue / devices as f64
                    } else {
                        0.0
                    },
                    revenue_median_per_device: median,
                }
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for RevenueFold<'_> {
    fn zero(&self) -> Self {
        RevenueFold::new(self.classification, self.rates)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if StatusGroup::of(s) != Some(StatusGroup::InboundRoaming) {
                continue;
            }
            let Some(class) = self.classification.class_of(s.user) else {
                continue;
            };
            let entry = self.per_class.entry(class).or_insert((0.0, Vec::new()));
            entry.0 += s.events as f64;
            entry.1.push(self.rates.revenue_of(s));
        }
    }

    fn absorb(&mut self, later: Self) {
        for (class, (load, revenues)) in later.per_class {
            let entry = self.per_class.entry(class).or_insert((0.0, Vec::new()));
            entry.0 += load;
            entry.1.extend(revenues);
        }
    }
}

/// Computes load-vs-revenue over the *international inbound* population —
/// the devices whose traffic the studied MNO bills to roaming partners.
pub fn inbound_economics(
    summaries: &[DeviceSummary],
    classification: &Classification,
    rates: RateCard,
) -> Vec<ClassEconomics> {
    let mut fold = RevenueFold::new(classification, rates);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::RadioFlags;
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn summary(
        user: u64,
        label: RoamingLabel,
        events: u64,
        bytes: u64,
        calls: u64,
        sms: u64,
    ) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac: Tac::new(35_000_000).unwrap(),
            active_days: 10,
            first_day: 0,
            last_day: 9,
            dominant_label: label,
            labels: BTreeSet::from([label]),
            apns: BTreeSet::new(),
            radio_flags: RadioFlags::default(),
            events,
            failed_events: 0,
            calls,
            sms,
            data_sessions: u64::from(bytes > 0),
            bytes,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly: [0; 24],
            mobility: MobilityAccum::default(),
        }
    }

    fn classify(pairs: &[(u64, DeviceClass)]) -> Classification {
        let mut c = Classification::default();
        for (u, class) in pairs {
            c.classes.insert(*u, *class);
        }
        c
    }

    #[test]
    fn m2m_load_exceeds_revenue_share() {
        // Meter: lots of signaling, almost no billable traffic.
        // Tourist: less signaling, heavy data.
        let sums = vec![
            summary(1, RoamingLabel::IH, 900, 50_000, 0, 2),
            summary(2, RoamingLabel::IH, 300, 2_000_000_000, 20, 10),
        ];
        let cls = classify(&[(1, DeviceClass::M2m), (2, DeviceClass::Smart)]);
        let econ = inbound_economics(&sums, &cls, RateCard::default());
        let m2m = econ.iter().find(|e| e.class == DeviceClass::M2m).unwrap();
        let smart = econ.iter().find(|e| e.class == DeviceClass::Smart).unwrap();
        assert!(m2m.load_share > 0.7, "m2m load {}", m2m.load_share);
        assert!(
            m2m.revenue_share < 0.01,
            "m2m revenue {}",
            m2m.revenue_share
        );
        assert!(m2m.load_to_revenue() > 50.0);
        assert!(smart.load_to_revenue() < 1.0);
        // Shares normalize.
        let load: f64 = econ.iter().map(|e| e.load_share).sum();
        let rev: f64 = econ.iter().map(|e| e.revenue_share).sum();
        assert!((load - 1.0).abs() < 1e-9 && (rev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn native_devices_excluded() {
        let sums = vec![
            summary(1, RoamingLabel::HH, 500, 1_000_000, 5, 0),
            summary(2, RoamingLabel::IH, 100, 1_000_000, 0, 0),
        ];
        let cls = classify(&[(1, DeviceClass::Smart), (2, DeviceClass::M2m)]);
        let econ = inbound_economics(&sums, &cls, RateCard::default());
        assert_eq!(econ.len(), 1);
        assert_eq!(econ[0].class, DeviceClass::M2m);
        assert_eq!(econ[0].devices, 1);
    }

    #[test]
    fn rate_card_components() {
        let rates = RateCard {
            per_mb: 1.0,
            per_voice_minute: 10.0,
            per_sms: 100.0,
        };
        let s = summary(1, RoamingLabel::IH, 0, 5_000_000, 2, 3);
        // 5 MB + 2 calls × 90s = 3 min + 3 SMS.
        let expected = 5.0 * 1.0 + 3.0 * 10.0 + 3.0 * 100.0;
        assert!((rates.revenue_of(&s) - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_revenue_class_has_infinite_ratio() {
        let sums = vec![summary(1, RoamingLabel::IH, 100, 0, 0, 0)];
        let cls = classify(&[(1, DeviceClass::M2m)]);
        let econ = inbound_economics(&sums, &cls, RateCard::default());
        assert!(econ[0].load_to_revenue().is_infinite());
    }

    #[test]
    fn empty_population() {
        let econ = inbound_economics(&[], &Classification::default(), RateCard::default());
        assert!(econ.is_empty());
    }
}
