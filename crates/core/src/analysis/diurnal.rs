//! Diurnal traffic shapes per device class (extension E22).
//!
//! §1 motivates the whole classification problem with the observation that
//! "M2M traffic exhibits significantly different features than phone
//! traffic in a range of aspects from signaling, to uplink/downlink
//! traffic volume ratios to diurnal patterns \[18\]". This module extracts
//! the diurnal fingerprint from the catalog's per-hour event histograms:
//! machine traffic is flat around the clock; human traffic collapses at
//! night. The night-share statistic alone separates the classes — a
//! lightweight classification feature operators get for free.

use crate::classify::{Classification, DeviceClass};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use wtr_sim::stream::{drive_slice, ChunkFold};

/// Hours treated as night (00:00–05:59).
pub const NIGHT_HOURS: std::ops::Range<usize> = 0..6;

/// The diurnal profile of one device class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// The class.
    pub class: DeviceClass,
    /// Devices aggregated.
    pub devices: usize,
    /// Normalized share of events per hour of day (sums to 1 when any
    /// events exist).
    pub hourly_share: [f64; 24],
    /// Fraction of events during [`NIGHT_HOURS`]. A perfectly flat source
    /// sits at 0.25; human traffic sits far below.
    pub night_share: f64,
    /// Peak-to-trough ratio of the hourly shares (∞-safe: trough floored
    /// at one event). Flat machine traffic ≈ 1–2; human traffic ≫ 2.
    pub peak_to_trough: f64,
}

/// Streaming accumulator for [`profiles`]: one pass sums the hourly
/// event histograms for every requested class at once. All state is
/// integer-valued, so chunked folding and absorbing is exact at any
/// thread count.
#[derive(Debug, Clone)]
pub struct DiurnalFold<'a> {
    classification: &'a Classification,
    classes: &'a [DeviceClass],
    hourly: Vec<[u64; 24]>,
    devices: Vec<usize>,
}

impl<'a> DiurnalFold<'a> {
    /// An empty accumulator for `classes`.
    pub fn new(classification: &'a Classification, classes: &'a [DeviceClass]) -> Self {
        DiurnalFold {
            classification,
            classes,
            hourly: vec![[0; 24]; classes.len()],
            devices: vec![0; classes.len()],
        }
    }

    /// Normalizes the histograms into diurnal profiles, one per class in
    /// construction order.
    pub fn finish(self) -> Vec<DiurnalProfile> {
        self.classes
            .iter()
            .zip(self.hourly)
            .zip(self.devices)
            .map(|((class, hourly), devices)| {
                let total: u64 = hourly.iter().sum();
                let mut hourly_share = [0.0; 24];
                if total > 0 {
                    for (h, n) in hourly.iter().enumerate() {
                        hourly_share[h] = *n as f64 / total as f64;
                    }
                }
                let night: u64 = hourly[NIGHT_HOURS].iter().sum();
                let peak = hourly.iter().copied().max().unwrap_or(0) as f64;
                let trough = hourly.iter().copied().min().unwrap_or(0).max(1) as f64;
                DiurnalProfile {
                    class: *class,
                    devices,
                    hourly_share,
                    night_share: if total > 0 {
                        night as f64 / total as f64
                    } else {
                        0.0
                    },
                    peak_to_trough: if total > 0 { peak / trough } else { 0.0 },
                }
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for DiurnalFold<'_> {
    fn zero(&self) -> Self {
        DiurnalFold::new(self.classification, self.classes)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            let Some(class) = self.classification.class_of(s.user) else {
                continue;
            };
            for (i, wanted) in self.classes.iter().enumerate() {
                if *wanted == class {
                    self.devices[i] += 1;
                    for (h, n) in s.hourly.iter().enumerate() {
                        self.hourly[i][h] += n;
                    }
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (mine, theirs) in self.devices.iter_mut().zip(later.devices) {
            *mine += theirs;
        }
        for (mine, theirs) in self.hourly.iter_mut().zip(later.hourly) {
            for (h, n) in theirs.iter().enumerate() {
                mine[h] += n;
            }
        }
    }
}

/// Computes diurnal profiles for the requested classes in a single
/// chunk-parallel pass.
pub fn profiles(
    summaries: &[DeviceSummary],
    classification: &Classification,
    classes: &[DeviceClass],
) -> Vec<DiurnalProfile> {
    let mut fold = DiurnalFold::new(classification, classes);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::RadioFlags;
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn summary(user: u64, hourly: [u64; 24]) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac: Tac::new(35_000_000).unwrap(),
            active_days: 1,
            first_day: 0,
            last_day: 0,
            dominant_label: RoamingLabel::IH,
            labels: BTreeSet::from([RoamingLabel::IH]),
            apns: BTreeSet::new(),
            radio_flags: RadioFlags::default(),
            events: hourly.iter().sum(),
            failed_events: 0,
            calls: 0,
            sms: 0,
            data_sessions: 0,
            bytes: 0,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly,
            mobility: MobilityAccum::default(),
        }
    }

    fn classify(pairs: &[(u64, DeviceClass)]) -> Classification {
        let mut c = Classification::default();
        for (u, class) in pairs {
            c.classes.insert(*u, *class);
        }
        c
    }

    #[test]
    fn flat_machine_vs_diurnal_human() {
        // Machine: 10 events every hour. Human: nothing at night, heavy
        // evenings.
        let machine = summary(1, [10; 24]);
        let mut human_hours = [0u64; 24];
        for (h, slot) in human_hours.iter_mut().enumerate().take(23).skip(8) {
            *slot = if (17..22).contains(&h) { 40 } else { 10 };
        }
        let human = summary(2, human_hours);
        let cls = classify(&[(1, DeviceClass::M2m), (2, DeviceClass::Smart)]);
        let p = profiles(
            &[machine, human],
            &cls,
            &[DeviceClass::M2m, DeviceClass::Smart],
        );
        let m2m = &p[0];
        let smart = &p[1];
        assert!(
            (m2m.night_share - 0.25).abs() < 1e-9,
            "flat night share {}",
            m2m.night_share
        );
        assert_eq!(smart.night_share, 0.0);
        assert!(m2m.peak_to_trough < 1.5);
        assert!(smart.peak_to_trough > 10.0);
        let total: f64 = m2m.hourly_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_class() {
        let p = profiles(&[], &Classification::default(), &[DeviceClass::Feat]);
        assert_eq!(p[0].devices, 0);
        assert_eq!(p[0].night_share, 0.0);
        assert_eq!(p[0].peak_to_trough, 0.0);
    }

    #[test]
    fn aggregates_across_devices() {
        let mut a_h = [0u64; 24];
        a_h[3] = 5;
        let mut b_h = [0u64; 24];
        b_h[15] = 15;
        let cls = classify(&[(1, DeviceClass::M2m), (2, DeviceClass::M2m)]);
        let p = profiles(
            &[summary(1, a_h), summary(2, b_h)],
            &cls,
            &[DeviceClass::M2m],
        );
        assert_eq!(p[0].devices, 2);
        assert!((p[0].night_share - 0.25).abs() < 1e-9); // 5 of 20 at 03:00
        assert!((p[0].hourly_share[15] - 0.75).abs() < 1e-9);
    }
}
