//! Device network usage by RAT (§6.1; Fig. 9).
//!
//! For each device class, the share of devices per RAT-combination
//! category, over three planes: any connectivity (Fig. 9-left), data
//! (center) and voice (right). Headlines reproduced: 77.4% of M2M devices
//! are 2G-only, 56.7% use only 2G data, 24.5% use no data at all, 27.5% no
//! voice; 56.8% of feature phones use no data but only 7.3% lack voice.

use crate::classify::{Classification, DeviceClass};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_model::rat::RatSet;
use wtr_sim::stream::{drive_slice, ChunkFold};

/// Which service plane a Fig. 9 panel looks at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Any successful radio activity (Fig. 9-left).
    Any,
    /// Data-plane activity (Fig. 9-center).
    Data,
    /// Voice-plane activity (Fig. 9-right).
    Voice,
}

impl Plane {
    /// Extracts the plane's RAT set from merged radio-flags.
    pub fn of(self, s: &DeviceSummary) -> RatSet {
        match self {
            Plane::Any => s.radio_flags.any,
            Plane::Data => s.radio_flags.data,
            Plane::Voice => s.radio_flags.voice,
        }
    }

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            Plane::Any => "connectivity",
            Plane::Data => "data",
            Plane::Voice => "voice",
        }
    }
}

/// Category shares for one (class, plane): RAT-combination label →
/// fraction of the class's devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatUsage {
    /// The class.
    pub class: DeviceClass,
    /// The plane.
    pub plane: Plane,
    /// Devices in the class.
    pub devices: usize,
    /// Category label (e.g. "2G only", "none") → share.
    pub shares: BTreeMap<String, f64>,
}

impl RatUsage {
    /// Share of one category (0 when absent).
    pub fn share(&self, category: &str) -> f64 {
        self.shares.get(category).copied().unwrap_or(0.0)
    }
}

/// Streaming accumulator for [`rat_usage`]: one pass over the summaries
/// counts every requested class at once (the old code re-scanned the
/// population per class). Counts are integer-valued, so chunked folding
/// and absorbing is exact at any thread count.
#[derive(Debug, Clone)]
pub struct RatUsageFold<'a> {
    classification: &'a Classification,
    classes: &'a [DeviceClass],
    plane: Plane,
    devices: Vec<usize>,
    counts: Vec<BTreeMap<String, f64>>,
}

impl<'a> RatUsageFold<'a> {
    /// An empty accumulator for `classes` on `plane`.
    pub fn new(
        classification: &'a Classification,
        classes: &'a [DeviceClass],
        plane: Plane,
    ) -> Self {
        RatUsageFold {
            classification,
            classes,
            plane,
            devices: vec![0; classes.len()],
            counts: vec![BTreeMap::new(); classes.len()],
        }
    }

    /// Normalizes counts into the Fig. 9 shares, one entry per class in
    /// the order requested at construction.
    pub fn finish(self) -> Vec<RatUsage> {
        self.classes
            .iter()
            .zip(self.devices)
            .zip(self.counts)
            .map(|((class, devices), counts)| {
                let total = devices.max(1) as f64;
                RatUsage {
                    class: *class,
                    plane: self.plane,
                    devices,
                    shares: counts.into_iter().map(|(k, v)| (k, v / total)).collect(),
                }
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for RatUsageFold<'_> {
    fn zero(&self) -> Self {
        RatUsageFold::new(self.classification, self.classes, self.plane)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            let Some(class) = self.classification.class_of(s.user) else {
                continue;
            };
            for (i, wanted) in self.classes.iter().enumerate() {
                if *wanted == class {
                    self.devices[i] += 1;
                    let set = self.plane.of(s);
                    *self.counts[i]
                        .entry(set.category_label().to_owned())
                        .or_insert(0.0) += 1.0;
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (mine, theirs) in self.devices.iter_mut().zip(later.devices) {
            *mine += theirs;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(later.counts) {
            for (k, v) in theirs {
                *mine.entry(k).or_insert(0.0) += v;
            }
        }
    }
}

/// Computes the Fig. 9 category shares for every requested class, on one
/// plane, in a single chunk-parallel pass (`wtr_sim::stream`). Ordered
/// maps and integer counts keep the shares identical at any thread count.
pub fn rat_usage(
    summaries: &[DeviceSummary],
    classification: &Classification,
    classes: &[DeviceClass],
    plane: Plane,
) -> Vec<RatUsage> {
    let mut fold = RatUsageFold::new(classification, classes, plane);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::{RadioFlags, Rat};
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn summary(user: u64, any: RatSet, data: RatSet, voice: RatSet) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac: Tac::new(35_000_000).unwrap(),
            active_days: 1,
            first_day: 0,
            last_day: 0,
            dominant_label: RoamingLabel::IH,
            labels: BTreeSet::from([RoamingLabel::IH]),
            apns: BTreeSet::new(),
            radio_flags: RadioFlags { any, data, voice },
            events: 1,
            failed_events: 0,
            calls: 0,
            sms: 0,
            data_sessions: 0,
            bytes: 0,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly: [0; 24],
            mobility: MobilityAccum::default(),
        }
    }

    fn classify_all(sums: &[DeviceSummary], class: DeviceClass) -> Classification {
        let mut c = Classification::default();
        for s in sums {
            c.classes.insert(s.user, class);
        }
        c
    }

    #[test]
    fn category_shares_normalize() {
        let sums = vec![
            summary(1, RatSet::G2_ONLY, RatSet::G2_ONLY, RatSet::EMPTY),
            summary(2, RatSet::G2_ONLY, RatSet::EMPTY, RatSet::G2_ONLY),
            summary(
                3,
                RatSet::CONVENTIONAL,
                RatSet::only(Rat::G4),
                RatSet::EMPTY,
            ),
            summary(4, RatSet::G2_G3, RatSet::G2_G3, RatSet::only(Rat::G2)),
        ];
        let cls = classify_all(&sums, DeviceClass::M2m);
        let usage = rat_usage(&sums, &cls, &[DeviceClass::M2m], Plane::Any);
        assert_eq!(usage.len(), 1);
        let u = &usage[0];
        assert_eq!(u.devices, 4);
        let total: f64 = u.shares.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((u.share("2G only") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn data_plane_counts_no_data_devices() {
        let sums = vec![
            summary(1, RatSet::G2_ONLY, RatSet::EMPTY, RatSet::G2_ONLY),
            summary(2, RatSet::G2_ONLY, RatSet::G2_ONLY, RatSet::EMPTY),
        ];
        let cls = classify_all(&sums, DeviceClass::M2m);
        let usage = rat_usage(&sums, &cls, &[DeviceClass::M2m], Plane::Data);
        // One of two devices has no data activity → "none" = 0.5,
        // the Fig. 9-center "24.5% of M2M not active on data" bucket.
        assert!((usage[0].share("none") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classes_are_independent() {
        let sums = vec![
            summary(1, RatSet::G2_ONLY, RatSet::EMPTY, RatSet::EMPTY),
            summary(
                2,
                RatSet::CONVENTIONAL,
                RatSet::CONVENTIONAL,
                RatSet::CONVENTIONAL,
            ),
        ];
        let mut cls = Classification::default();
        cls.classes.insert(1, DeviceClass::Feat);
        cls.classes.insert(2, DeviceClass::Smart);
        let usage = rat_usage(
            &sums,
            &cls,
            &[DeviceClass::Feat, DeviceClass::Smart],
            Plane::Any,
        );
        assert_eq!(usage[0].devices, 1);
        assert_eq!(usage[1].devices, 1);
        assert!((usage[0].share("2G only") - 1.0).abs() < 1e-12);
        assert!((usage[1].share("2G+3G+4G") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_yields_zero_devices() {
        let sums = vec![summary(1, RatSet::G2_ONLY, RatSet::EMPTY, RatSet::EMPTY)];
        let cls = classify_all(&sums, DeviceClass::M2m);
        let usage = rat_usage(&sums, &cls, &[DeviceClass::Smart], Plane::Any);
        assert_eq!(usage[0].devices, 0);
        assert!(usage[0].shares.is_empty());
    }
}
