//! Population structure analyses (§4.2, §5.1, §5.2; Fig. 5, Fig. 6).

use crate::classify::{Classification, DeviceClass};
use crate::metrics::{shares, CrossTab};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_model::country::Country;
use wtr_model::roaming::RoamingLabel;
use wtr_probes::catalog::{CatalogEntry, DevicesCatalog};
use wtr_sim::par;

/// Per-day roaming-label shares (E6). The paper reports H:H ≈ 48%,
/// V:H ≈ 33%, I:H ≈ 18% per day, "stable across the 22 days".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelShares {
    /// For each day: label → fraction of that day's devices.
    pub per_day: Vec<BTreeMap<RoamingLabel, f64>>,
    /// Overall label → fraction over all device-days.
    pub overall: BTreeMap<RoamingLabel, f64>,
}

/// Computes daily roaming-label shares from the catalog. The count pass
/// is sharded over worker threads (`wtr_sim::par`) into ordered maps,
/// keeping the result thread-count-invariant.
pub fn label_shares(catalog: &DevicesCatalog) -> LabelShares {
    let days = catalog.window_days();
    let rows: Vec<&CatalogEntry> = catalog.iter().collect();
    type Counts = (
        Vec<BTreeMap<RoamingLabel, f64>>,
        BTreeMap<RoamingLabel, f64>,
    );
    let (per_day_counts, overall_counts): Counts = par::par_map_reduce(
        &rows,
        || (vec![BTreeMap::new(); days as usize], BTreeMap::new()),
        |(mut per_day, mut overall), row| {
            if (row.day.0 as usize) < per_day.len() {
                *per_day[row.day.0 as usize].entry(row.label).or_insert(0.0) += 1.0;
            }
            *overall.entry(row.label).or_insert(0.0) += 1.0;
            (per_day, overall)
        },
        |(mut lp, mut lo), (rp, ro)| {
            for (day, counts) in rp.into_iter().enumerate() {
                for (label, n) in counts {
                    *lp[day].entry(label).or_insert(0.0) += n;
                }
            }
            for (label, n) in ro {
                *lo.entry(label).or_insert(0.0) += n;
            }
            (lp, lo)
        },
    );
    let normalize = |counts: BTreeMap<RoamingLabel, f64>| -> BTreeMap<RoamingLabel, f64> {
        let total: f64 = counts.values().sum();
        counts
            .into_iter()
            .map(|(l, c)| (l, if total > 0.0 { c / total } else { 0.0 }))
            .collect()
    };
    LabelShares {
        per_day: per_day_counts.into_iter().map(normalize).collect(),
        overall: normalize(overall_counts),
    }
}

/// Home-country structure of inbound roamers (Fig. 5; E8/E9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomeCountries {
    /// `(ISO, device count, share)` over all international inbound
    /// roamers, descending (Fig. 5-top).
    pub overall: Vec<(String, f64, f64)>,
    /// Devices per (device class, home country) — Fig. 5-bottom; the
    /// paper row-normalizes per class.
    pub by_class: CrossTab,
}

/// Computes the Fig. 5 distributions over international inbound roamers.
pub fn home_countries(
    summaries: &[DeviceSummary],
    classification: &Classification,
) -> HomeCountries {
    let (counts, by_class) = par::par_map_reduce(
        summaries,
        || (BTreeMap::<String, f64>::new(), CrossTab::new()),
        |(mut counts, mut by_class), s| {
            if s.dominant_label.is_international_inbound() {
                let iso = Country::by_mcc(s.sim_plmn.mcc)
                    .map(|c| c.iso.to_owned())
                    .unwrap_or_else(|| format!("mcc{}", s.sim_plmn.mcc));
                *counts.entry(iso.clone()).or_insert(0.0) += 1.0;
                if let Some(class) = classification.class_of(s.user) {
                    by_class.add(class.label(), &iso, 1.0);
                }
            }
            (counts, by_class)
        },
        |(mut lc, mut lt), (rc, rt)| {
            for (iso, n) in rc {
                *lc.entry(iso).or_insert(0.0) += n;
            }
            lt.merge(rt);
            (lc, lt)
        },
    );
    HomeCountries {
        overall: shares(counts),
        by_class,
    }
}

/// The Fig. 6 heatmaps (E10): device class × roaming label, both
/// normalizations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassLabelBreakdown {
    /// Device counts per (class, dominant label).
    pub table: CrossTab,
}

impl ClassLabelBreakdown {
    /// Fig. 6-left: fraction of each *class* carrying each label.
    pub fn share_of_class(&self, class: DeviceClass, label: RoamingLabel) -> f64 {
        self.table.row_share(class.label(), &label.to_string())
    }

    /// Fig. 6-right: composition of each *label* by class.
    pub fn share_of_label(&self, class: DeviceClass, label: RoamingLabel) -> f64 {
        self.table.col_share(class.label(), &label.to_string())
    }
}

/// Builds the class × label table from device summaries.
pub fn class_label_breakdown(
    summaries: &[DeviceSummary],
    classification: &Classification,
) -> ClassLabelBreakdown {
    let table = par::par_map_reduce(
        summaries,
        CrossTab::new,
        |mut table, s| {
            if let Some(class) = classification.class_of(s.user) {
                table.add(class.label(), &s.dominant_label.to_string(), 1.0);
            }
            table
        },
        |mut left, right| {
            left.merge(right);
            left
        },
    );
    ClassLabelBreakdown { table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::time::Day;

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn catalog_with_labels() -> DevicesCatalog {
        let mut cat = DevicesCatalog::new(3);
        // Day 0: 2 native, 1 inbound. Day 1: 1 native, 1 inbound.
        cat.row_mut(1, Day(0), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        cat.row_mut(2, Day(0), Plmn::of(234, 31), tac(), RoamingLabel::VH);
        cat.row_mut(3, Day(0), Plmn::of(204, 4), tac(), RoamingLabel::IH);
        cat.row_mut(1, Day(1), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        cat.row_mut(3, Day(1), Plmn::of(204, 4), tac(), RoamingLabel::IH);
        cat
    }

    #[test]
    fn label_shares_per_day_normalize() {
        let ls = label_shares(&catalog_with_labels());
        assert_eq!(ls.per_day.len(), 3);
        let day0: f64 = ls.per_day[0].values().sum();
        assert!((day0 - 1.0).abs() < 1e-12);
        assert!((ls.per_day[0][&RoamingLabel::IH] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ls.per_day[1][&RoamingLabel::HH] - 0.5).abs() < 1e-12);
        // Day 2 has no rows.
        assert!(ls.per_day[2].is_empty());
        let overall: f64 = ls.overall.values().sum();
        assert!((overall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn home_countries_filters_to_international_inbound() {
        let cat = catalog_with_labels();
        let sums = summarize(&cat);
        let mut cls = Classification::default();
        for s in &sums {
            cls.classes.insert(s.user, DeviceClass::M2m);
        }
        let hc = home_countries(&sums, &cls);
        // Only device 3 (NL SIM, I:H) counts.
        assert_eq!(hc.overall.len(), 1);
        assert_eq!(hc.overall[0].0, "NL");
        assert!((hc.overall[0].2 - 1.0).abs() < 1e-12);
        assert_eq!(hc.by_class.get("m2m", "NL"), 1.0);
    }

    #[test]
    fn class_label_breakdown_shares() {
        let cat = catalog_with_labels();
        let sums = summarize(&cat);
        let mut cls = Classification::default();
        let classes: BTreeMap<u64, DeviceClass> = sums
            .iter()
            .map(|s| {
                let c = if s.dominant_label == RoamingLabel::IH {
                    DeviceClass::M2m
                } else {
                    DeviceClass::Smart
                };
                (s.user, c)
            })
            .collect();
        cls.classes = classes;
        let b = class_label_breakdown(&sums, &cls);
        assert!((b.share_of_class(DeviceClass::M2m, RoamingLabel::IH) - 1.0).abs() < 1e-12);
        assert!((b.share_of_label(DeviceClass::M2m, RoamingLabel::IH) - 1.0).abs() < 1e-12);
        assert_eq!(b.share_of_class(DeviceClass::Smart, RoamingLabel::IH), 0.0);
        // Two smart devices: one H:H, one V:H.
        assert!((b.share_of_class(DeviceClass::Smart, RoamingLabel::HH) - 0.5).abs() < 1e-12);
    }
}
