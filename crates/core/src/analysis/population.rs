//! Population structure analyses (§4.2, §5.1, §5.2; Fig. 5, Fig. 6).

use crate::classify::{Classification, DeviceClass};
use crate::metrics::{shares, CrossTab};
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_model::country::Country;
use wtr_model::roaming::RoamingLabel;
use wtr_probes::catalog::{CatalogEntry, DevicesCatalog};
use wtr_sim::par;
use wtr_sim::stream::{drive_iter_with, drive_slice, ChunkFold};

/// Per-day roaming-label shares (E6). The paper reports H:H ≈ 48%,
/// V:H ≈ 33%, I:H ≈ 18% per day, "stable across the 22 days".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelShares {
    /// For each day: label → fraction of that day's devices.
    pub per_day: Vec<BTreeMap<RoamingLabel, f64>>,
    /// Overall label → fraction over all device-days.
    pub overall: BTreeMap<RoamingLabel, f64>,
}

/// Streaming accumulator for [`label_shares`]: integer-valued counts per
/// (day, label), so chunked folding and absorbing is exact. State is
/// O(days × labels); rides along in the single-pass catalog pipeline
/// next to the summary fold.
#[derive(Debug, Clone)]
pub struct LabelSharesFold {
    per_day: Vec<BTreeMap<RoamingLabel, f64>>,
    overall: BTreeMap<RoamingLabel, f64>,
}

impl LabelSharesFold {
    /// An empty accumulator for a `window_days`-day catalog.
    pub fn new(window_days: u32) -> Self {
        LabelSharesFold {
            per_day: vec![BTreeMap::new(); window_days as usize],
            overall: BTreeMap::new(),
        }
    }

    fn fold_entry(&mut self, row: &CatalogEntry) {
        if (row.day.0 as usize) < self.per_day.len() {
            *self.per_day[row.day.0 as usize]
                .entry(row.label)
                .or_insert(0.0) += 1.0;
        }
        *self.overall.entry(row.label).or_insert(0.0) += 1.0;
    }

    fn merge(&mut self, later: LabelSharesFold) {
        for (day, counts) in later.per_day.into_iter().enumerate() {
            for (label, n) in counts {
                *self.per_day[day].entry(label).or_insert(0.0) += n;
            }
        }
        for (label, n) in later.overall {
            *self.overall.entry(label).or_insert(0.0) += n;
        }
    }

    /// Normalizes counts into shares.
    pub fn finish(self) -> LabelShares {
        let normalize = |counts: BTreeMap<RoamingLabel, f64>| -> BTreeMap<RoamingLabel, f64> {
            let total: f64 = counts.values().sum();
            counts
                .into_iter()
                .map(|(l, c)| (l, if total > 0.0 { c / total } else { 0.0 }))
                .collect()
        };
        LabelShares {
            per_day: self.per_day.into_iter().map(normalize).collect(),
            overall: normalize(self.overall),
        }
    }
}

impl ChunkFold<CatalogEntry> for LabelSharesFold {
    fn zero(&self) -> Self {
        LabelSharesFold::new(self.per_day.len() as u32)
    }

    fn fold_chunk(&mut self, chunk: &[CatalogEntry]) {
        for row in chunk {
            self.fold_entry(row);
        }
    }

    fn absorb(&mut self, later: Self) {
        self.merge(later);
    }
}

impl ChunkFold<&CatalogEntry> for LabelSharesFold {
    fn zero(&self) -> Self {
        LabelSharesFold::new(self.per_day.len() as u32)
    }

    fn fold_chunk(&mut self, chunk: &[&CatalogEntry]) {
        for row in chunk {
            self.fold_entry(row);
        }
    }

    fn absorb(&mut self, later: Self) {
        self.merge(later);
    }
}

/// Computes daily roaming-label shares from the catalog. The count pass
/// folds directly over the catalog's row iterator — no intermediate
/// `Vec` of references — sharded over worker threads (`wtr_sim::par`)
/// into ordered maps, keeping the result thread-count-invariant.
pub fn label_shares(catalog: &DevicesCatalog) -> LabelShares {
    let mut fold = LabelSharesFold::new(catalog.window_days());
    drive_iter_with(&mut fold, par::chunk_size(catalog.len()), catalog.iter());
    fold.finish()
}

/// Home-country structure of inbound roamers (Fig. 5; E8/E9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomeCountries {
    /// `(ISO, device count, share)` over all international inbound
    /// roamers, descending (Fig. 5-top).
    pub overall: Vec<(String, f64, f64)>,
    /// Devices per (device class, home country) — Fig. 5-bottom; the
    /// paper row-normalizes per class.
    pub by_class: CrossTab,
}

/// Streaming accumulator for [`home_countries`]: integer-valued counts,
/// exact under chunked folding. Borrows the classification for class
/// lookups, so it can ride in a broadcast pass over the summaries.
#[derive(Debug, Clone)]
pub struct HomeCountriesFold<'a> {
    classification: &'a Classification,
    counts: BTreeMap<String, f64>,
    by_class: CrossTab,
}

impl<'a> HomeCountriesFold<'a> {
    /// An empty accumulator resolving classes through `classification`.
    pub fn new(classification: &'a Classification) -> Self {
        HomeCountriesFold {
            classification,
            counts: BTreeMap::new(),
            by_class: CrossTab::new(),
        }
    }

    /// Finalizes into the Fig. 5 distributions.
    pub fn finish(self) -> HomeCountries {
        HomeCountries {
            overall: shares(self.counts),
            by_class: self.by_class,
        }
    }
}

impl ChunkFold<DeviceSummary> for HomeCountriesFold<'_> {
    fn zero(&self) -> Self {
        HomeCountriesFold::new(self.classification)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if s.dominant_label.is_international_inbound() {
                let iso = Country::by_mcc(s.sim_plmn.mcc)
                    .map(|c| c.iso.to_owned())
                    .unwrap_or_else(|| format!("mcc{}", s.sim_plmn.mcc));
                *self.counts.entry(iso.clone()).or_insert(0.0) += 1.0;
                if let Some(class) = self.classification.class_of(s.user) {
                    self.by_class.add(class.label(), &iso, 1.0);
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (iso, n) in later.counts {
            *self.counts.entry(iso).or_insert(0.0) += n;
        }
        self.by_class.merge(later.by_class);
    }
}

/// Computes the Fig. 5 distributions over international inbound roamers.
pub fn home_countries(
    summaries: &[DeviceSummary],
    classification: &Classification,
) -> HomeCountries {
    let mut fold = HomeCountriesFold::new(classification);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

/// The Fig. 6 heatmaps (E10): device class × roaming label, both
/// normalizations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassLabelBreakdown {
    /// Device counts per (class, dominant label).
    pub table: CrossTab,
}

impl ClassLabelBreakdown {
    /// Fig. 6-left: fraction of each *class* carrying each label.
    pub fn share_of_class(&self, class: DeviceClass, label: RoamingLabel) -> f64 {
        self.table.row_share(class.label(), &label.to_string())
    }

    /// Fig. 6-right: composition of each *label* by class.
    pub fn share_of_label(&self, class: DeviceClass, label: RoamingLabel) -> f64 {
        self.table.col_share(class.label(), &label.to_string())
    }
}

/// Streaming accumulator for [`class_label_breakdown`]: integer-valued
/// cross-tab counts, exact under chunked folding.
#[derive(Debug, Clone)]
pub struct ClassLabelFold<'a> {
    classification: &'a Classification,
    table: CrossTab,
}

impl<'a> ClassLabelFold<'a> {
    /// An empty accumulator resolving classes through `classification`.
    pub fn new(classification: &'a Classification) -> Self {
        ClassLabelFold {
            classification,
            table: CrossTab::new(),
        }
    }

    /// Finalizes into the Fig. 6 table.
    pub fn finish(self) -> ClassLabelBreakdown {
        ClassLabelBreakdown { table: self.table }
    }
}

impl ChunkFold<DeviceSummary> for ClassLabelFold<'_> {
    fn zero(&self) -> Self {
        ClassLabelFold::new(self.classification)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if let Some(class) = self.classification.class_of(s.user) {
                self.table
                    .add(class.label(), &s.dominant_label.to_string(), 1.0);
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        self.table.merge(later.table);
    }
}

/// Builds the class × label table from device summaries.
pub fn class_label_breakdown(
    summaries: &[DeviceSummary],
    classification: &Classification,
) -> ClassLabelBreakdown {
    let mut fold = ClassLabelFold::new(classification);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::time::Day;

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn catalog_with_labels() -> DevicesCatalog {
        let mut cat = DevicesCatalog::new(3);
        // Day 0: 2 native, 1 inbound. Day 1: 1 native, 1 inbound.
        cat.row_mut(1, Day(0), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        cat.row_mut(2, Day(0), Plmn::of(234, 31), tac(), RoamingLabel::VH);
        cat.row_mut(3, Day(0), Plmn::of(204, 4), tac(), RoamingLabel::IH);
        cat.row_mut(1, Day(1), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        cat.row_mut(3, Day(1), Plmn::of(204, 4), tac(), RoamingLabel::IH);
        cat
    }

    #[test]
    fn label_shares_per_day_normalize() {
        let ls = label_shares(&catalog_with_labels());
        assert_eq!(ls.per_day.len(), 3);
        let day0: f64 = ls.per_day[0].values().sum();
        assert!((day0 - 1.0).abs() < 1e-12);
        assert!((ls.per_day[0][&RoamingLabel::IH] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ls.per_day[1][&RoamingLabel::HH] - 0.5).abs() < 1e-12);
        // Day 2 has no rows.
        assert!(ls.per_day[2].is_empty());
        let overall: f64 = ls.overall.values().sum();
        assert!((overall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn home_countries_filters_to_international_inbound() {
        let cat = catalog_with_labels();
        let sums = summarize(&cat);
        let mut cls = Classification::default();
        for s in &sums {
            cls.classes.insert(s.user, DeviceClass::M2m);
        }
        let hc = home_countries(&sums, &cls);
        // Only device 3 (NL SIM, I:H) counts.
        assert_eq!(hc.overall.len(), 1);
        assert_eq!(hc.overall[0].0, "NL");
        assert!((hc.overall[0].2 - 1.0).abs() < 1e-12);
        assert_eq!(hc.by_class.get("m2m", "NL"), 1.0);
    }

    #[test]
    fn class_label_breakdown_shares() {
        let cat = catalog_with_labels();
        let sums = summarize(&cat);
        let mut cls = Classification::default();
        let classes: BTreeMap<u64, DeviceClass> = sums
            .iter()
            .map(|s| {
                let c = if s.dominant_label == RoamingLabel::IH {
                    DeviceClass::M2m
                } else {
                    DeviceClass::Smart
                };
                (s.user, c)
            })
            .collect();
        cls.classes = classes;
        let b = class_label_breakdown(&sums, &cls);
        assert!((b.share_of_class(DeviceClass::M2m, RoamingLabel::IH) - 1.0).abs() < 1e-12);
        assert!((b.share_of_label(DeviceClass::M2m, RoamingLabel::IH) - 1.0).abs() < 1e-12);
        assert_eq!(b.share_of_class(DeviceClass::Smart, RoamingLabel::IH), 0.0);
        // Two smart devices: one H:H, one V:H.
        assert!((b.share_of_class(DeviceClass::Smart, RoamingLabel::HH) - 0.5).abs() < 1e-12);
    }
}
