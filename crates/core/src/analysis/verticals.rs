//! IoT vertical comparison: connected cars vs smart meters (§7.2; Fig. 12).
//!
//! "Using the exposed APN information from inbound roaming IoT devices …
//! we separate devices mapping to connected cars. We further use this
//! dataset to contrast against the traffic patterns of smart energy
//! meters." Cars should look like inbound-roaming smartphones (high
//! mobility, high signaling, real data); meters should be stationary with
//! tiny traffic.

use crate::keywords::{match_m2m_keyword, VerticalHint};
use crate::metrics::Ecdf;
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use wtr_model::intern::ApnTable;
use wtr_sim::stream::{drive_slice, ChunkFold};

/// Traffic/mobility profile of one identified vertical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerticalProfile {
    /// Human label ("connected-cars", "smart-meters").
    pub name: String,
    /// Devices identified.
    pub devices: usize,
    /// Radius of gyration per device, km (Fig. 12-left).
    pub gyration_km: Ecdf,
    /// Signaling events per active day (Fig. 12-center).
    pub signaling_per_day: Ecdf,
    /// Bytes per active day (Fig. 12-right).
    pub bytes_per_day: Ecdf,
}

/// Order-preserving sample accumulator for one vertical's profile.
#[derive(Debug, Clone, Default)]
struct ProfileAcc {
    devices: usize,
    gyration: Vec<f64>,
    signaling: Vec<f64>,
    bytes: Vec<f64>,
}

impl ProfileAcc {
    fn add(&mut self, s: &DeviceSummary) {
        self.devices += 1;
        if let Some(g) = s.gyration_km() {
            self.gyration.push(g);
        }
        self.signaling.push(s.events_per_active_day());
        self.bytes.push(s.bytes_per_active_day());
    }

    fn extend(&mut self, later: ProfileAcc) {
        self.devices += later.devices;
        self.gyration.extend(later.gyration);
        self.signaling.extend(later.signaling);
        self.bytes.extend(later.bytes);
    }

    fn finish(self, name: &str) -> VerticalProfile {
        VerticalProfile {
            name: name.to_owned(),
            devices: self.devices,
            gyration_km: Ecdf::new(self.gyration),
            signaling_per_day: Ecdf::new(self.signaling),
            bytes_per_day: Ecdf::new(self.bytes),
        }
    }
}

/// Streaming accumulator for [`compare`]: one pass splits inbound
/// roamers into the two Fig. 12 verticals. The per-symbol vertical hint
/// is memoized at construction; chunk sample vectors concatenate in
/// input order, so the profiles are identical at any thread count.
#[derive(Debug, Clone)]
pub struct VerticalsFold {
    hints: Vec<Option<VerticalHint>>,
    cars: ProfileAcc,
    meters: ProfileAcc,
}

impl VerticalsFold {
    /// An empty accumulator; `apns` is the intern table the summaries'
    /// symbols resolve through.
    pub fn new(apns: &ApnTable) -> Self {
        let hints = apns
            .strings()
            .iter()
            .map(|a| match_m2m_keyword(a).map(|(_, h)| h))
            .collect();
        VerticalsFold {
            hints,
            cars: ProfileAcc::default(),
            meters: ProfileAcc::default(),
        }
    }

    /// Builds the (connected-cars, smart-meters) profile pair.
    pub fn finish(self) -> (VerticalProfile, VerticalProfile) {
        (
            self.cars.finish("connected-cars"),
            self.meters.finish("smart-meters"),
        )
    }
}

impl ChunkFold<DeviceSummary> for VerticalsFold {
    fn zero(&self) -> Self {
        VerticalsFold {
            hints: self.hints.clone(),
            cars: ProfileAcc::default(),
            meters: ProfileAcc::default(),
        }
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            if !s.dominant_label.is_international_inbound() {
                continue;
            }
            match s.apns.iter().find_map(|sym| self.hints[sym.index()]) {
                Some(VerticalHint::Automotive) => self.cars.add(s),
                Some(VerticalHint::Energy) => self.meters.add(s),
                _ => {}
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        self.cars.extend(later.cars);
        self.meters.extend(later.meters);
    }
}

/// Splits inbound-roaming devices into verticals by APN hint and profiles
/// the two Fig. 12 groups in a single chunk-parallel pass. `apns` is the
/// intern table the summaries' symbols resolve through; the vertical hint
/// is memoized per distinct symbol.
pub fn compare(summaries: &[DeviceSummary], apns: &ApnTable) -> (VerticalProfile, VerticalProfile) {
    let mut fold = VerticalsFold::new(apns);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;
    use wtr_probes::catalog::DevicesCatalog;
    use wtr_radio::geo::GeoPoint;

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn build() -> (Vec<DeviceSummary>, ApnTable) {
        let mut cat = DevicesCatalog::new(10);
        let car_apn = cat.intern_apn("fleet.scania.com.mnc002.mcc262.gprs");
        let meter_apn = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
        let native_car_apn = cat.intern_apn("fleet.scania.com");
        // A car: automotive APN, mobile, chatty, data-heavy.
        for day in 0..10u32 {
            let r = cat.row_mut(1, Day(day), Plmn::of(262, 2), tac(), RoamingLabel::IH);
            r.apns.insert(car_apn);
            r.events += 50;
            r.data_sessions += 20;
            r.bytes_up += 1_000_000;
            r.bytes_down += 2_000_000;
            for k in 0..5 {
                r.mobility.add(
                    GeoPoint::new(50.0 + day as f64 * 0.3 + k as f64 * 0.1, 8.0),
                    1.0,
                );
            }
        }
        // A meter: energy APN, stationary, quiet.
        for day in 0..10u32 {
            let r = cat.row_mut(2, Day(day), Plmn::of(204, 4), tac(), RoamingLabel::IH);
            r.apns.insert(meter_apn);
            r.events += 5;
            r.data_sessions += 1;
            r.bytes_up += 1_500;
            r.mobility.add(GeoPoint::new(52.0, -1.0), 1.0);
        }
        // A native car-APN device: excluded (not inbound roaming).
        let r = cat.row_mut(3, Day(0), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        r.apns.insert(native_car_apn);
        let table = cat.apn_table().clone();
        (summarize(&cat), table)
    }

    #[test]
    fn cars_and_meters_separated() {
        let (sums, table) = build();
        let (cars, meters) = compare(&sums, &table);
        assert_eq!(cars.devices, 1);
        assert_eq!(meters.devices, 1);
    }

    #[test]
    fn fig12_contrasts_hold() {
        let (sums, table) = build();
        let (cars, meters) = compare(&sums, &table);
        // Mobility: cars travel, meters don't.
        assert!(cars.gyration_km.median().unwrap() > 10.0);
        assert!(meters.gyration_km.median().unwrap() < 0.001);
        // Signaling: cars ≫ meters.
        assert!(
            cars.signaling_per_day.median().unwrap()
                > 5.0 * meters.signaling_per_day.median().unwrap()
        );
        // Data: cars ≫ meters.
        assert!(
            cars.bytes_per_day.median().unwrap() > 100.0 * meters.bytes_per_day.median().unwrap()
        );
    }

    #[test]
    fn native_devices_excluded() {
        let (sums, table) = build();
        let (cars, _) = compare(&sums, &table);
        // Device 3 has a car APN but is native: excluded.
        assert_eq!(cars.devices, 1);
    }

    #[test]
    fn empty_population() {
        let (cars, meters) = compare(&[], &ApnTable::new());
        assert_eq!(cars.devices, 0);
        assert_eq!(meters.devices, 0);
        assert!(cars.gyration_km.is_empty());
        assert!(meters.bytes_per_day.is_empty());
    }
}
