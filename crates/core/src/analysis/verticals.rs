//! IoT vertical comparison: connected cars vs smart meters (§7.2; Fig. 12).
//!
//! "Using the exposed APN information from inbound roaming IoT devices …
//! we separate devices mapping to connected cars. We further use this
//! dataset to contrast against the traffic patterns of smart energy
//! meters." Cars should look like inbound-roaming smartphones (high
//! mobility, high signaling, real data); meters should be stationary with
//! tiny traffic.

use crate::keywords::{match_m2m_keyword, VerticalHint};
use crate::metrics::Ecdf;
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use wtr_model::intern::ApnTable;

/// Traffic/mobility profile of one identified vertical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerticalProfile {
    /// Human label ("connected-cars", "smart-meters").
    pub name: String,
    /// Devices identified.
    pub devices: usize,
    /// Radius of gyration per device, km (Fig. 12-left).
    pub gyration_km: Ecdf,
    /// Signaling events per active day (Fig. 12-center).
    pub signaling_per_day: Ecdf,
    /// Bytes per active day (Fig. 12-right).
    pub bytes_per_day: Ecdf,
}

fn profile_of<'a>(name: &str, devices: impl Iterator<Item = &'a DeviceSummary>) -> VerticalProfile {
    let group: Vec<&DeviceSummary> = devices.collect();
    VerticalProfile {
        name: name.to_owned(),
        devices: group.len(),
        gyration_km: Ecdf::new(group.iter().filter_map(|s| s.gyration_km()).collect()),
        signaling_per_day: Ecdf::new(group.iter().map(|s| s.events_per_active_day()).collect()),
        bytes_per_day: Ecdf::new(group.iter().map(|s| s.bytes_per_active_day()).collect()),
    }
}

/// Splits inbound-roaming devices into verticals by APN hint and profiles
/// the two Fig. 12 groups. `apns` is the intern table the summaries'
/// symbols resolve through; the vertical hint is memoized per distinct
/// symbol.
pub fn compare(summaries: &[DeviceSummary], apns: &ApnTable) -> (VerticalProfile, VerticalProfile) {
    // One keyword scan per distinct APN, reused across the population.
    let hints: Vec<Option<VerticalHint>> = apns
        .strings()
        .iter()
        .map(|a| match_m2m_keyword(a).map(|(_, h)| h))
        .collect();
    let hint_of = |s: &DeviceSummary| -> Option<VerticalHint> {
        s.apns.iter().find_map(|sym| hints[sym.index()])
    };
    let cars = profile_of(
        "connected-cars",
        summaries.iter().filter(|s| {
            s.dominant_label.is_international_inbound()
                && hint_of(s) == Some(VerticalHint::Automotive)
        }),
    );
    let meters = profile_of(
        "smart-meters",
        summaries.iter().filter(|s| {
            s.dominant_label.is_international_inbound() && hint_of(s) == Some(VerticalHint::Energy)
        }),
    );
    (cars, meters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;
    use wtr_probes::catalog::DevicesCatalog;
    use wtr_radio::geo::GeoPoint;

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn build() -> (Vec<DeviceSummary>, ApnTable) {
        let mut cat = DevicesCatalog::new(10);
        let car_apn = cat.intern_apn("fleet.scania.com.mnc002.mcc262.gprs");
        let meter_apn = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
        let native_car_apn = cat.intern_apn("fleet.scania.com");
        // A car: automotive APN, mobile, chatty, data-heavy.
        for day in 0..10u32 {
            let r = cat.row_mut(1, Day(day), Plmn::of(262, 2), tac(), RoamingLabel::IH);
            r.apns.insert(car_apn);
            r.events += 50;
            r.data_sessions += 20;
            r.bytes_up += 1_000_000;
            r.bytes_down += 2_000_000;
            for k in 0..5 {
                r.mobility.add(
                    GeoPoint::new(50.0 + day as f64 * 0.3 + k as f64 * 0.1, 8.0),
                    1.0,
                );
            }
        }
        // A meter: energy APN, stationary, quiet.
        for day in 0..10u32 {
            let r = cat.row_mut(2, Day(day), Plmn::of(204, 4), tac(), RoamingLabel::IH);
            r.apns.insert(meter_apn);
            r.events += 5;
            r.data_sessions += 1;
            r.bytes_up += 1_500;
            r.mobility.add(GeoPoint::new(52.0, -1.0), 1.0);
        }
        // A native car-APN device: excluded (not inbound roaming).
        let r = cat.row_mut(3, Day(0), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        r.apns.insert(native_car_apn);
        let table = cat.apn_table().clone();
        (summarize(&cat), table)
    }

    #[test]
    fn cars_and_meters_separated() {
        let (sums, table) = build();
        let (cars, meters) = compare(&sums, &table);
        assert_eq!(cars.devices, 1);
        assert_eq!(meters.devices, 1);
    }

    #[test]
    fn fig12_contrasts_hold() {
        let (sums, table) = build();
        let (cars, meters) = compare(&sums, &table);
        // Mobility: cars travel, meters don't.
        assert!(cars.gyration_km.median().unwrap() > 10.0);
        assert!(meters.gyration_km.median().unwrap() < 0.001);
        // Signaling: cars ≫ meters.
        assert!(
            cars.signaling_per_day.median().unwrap()
                > 5.0 * meters.signaling_per_day.median().unwrap()
        );
        // Data: cars ≫ meters.
        assert!(
            cars.bytes_per_day.median().unwrap() > 100.0 * meters.bytes_per_day.median().unwrap()
        );
    }

    #[test]
    fn native_devices_excluded() {
        let (sums, table) = build();
        let (cars, _) = compare(&sums, &table);
        // Device 3 has a car APN but is native: excluded.
        assert_eq!(cars.devices, 1);
    }

    #[test]
    fn empty_population() {
        let (cars, meters) = compare(&[], &ApnTable::new());
        assert_eq!(cars.devices, 0);
        assert_eq!(meters.devices, 0);
        assert!(cars.gyration_km.is_empty());
        assert!(meters.bytes_per_day.is_empty());
    }
}
