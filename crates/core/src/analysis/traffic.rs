//! Traffic volume analysis (§6.2; Fig. 10).
//!
//! For each (device class, native/inbound) population: per-device
//! distributions of daily radio-resource signaling events, daily voice
//! calls, and daily data volume. The shapes to reproduce: M2M signals far
//! less than smartphones and calls almost never; inbound M2M moves almost
//! no data; inbound smartphones move visibly less data than native ones
//! ("bill shock").

use crate::analysis::activity::StatusGroup;
use crate::classify::{Classification, DeviceClass};
use crate::metrics::Ecdf;
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use wtr_sim::stream::{drive_slice, ChunkFold};

/// The three Fig. 10 panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficMetric {
    /// Radio-resource signaling events per active day (Fig. 10-left).
    SignalingPerDay,
    /// Voice calls per active day (Fig. 10-center).
    CallsPerDay,
    /// Data bytes per active day (Fig. 10-right).
    BytesPerDay,
}

impl TrafficMetric {
    /// Extracts the metric from a summary.
    pub fn of(self, s: &DeviceSummary) -> f64 {
        match self {
            TrafficMetric::SignalingPerDay => s.events_per_active_day(),
            TrafficMetric::CallsPerDay => s.calls_per_active_day(),
            TrafficMetric::BytesPerDay => s.bytes_per_active_day(),
        }
    }

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            TrafficMetric::SignalingPerDay => "signaling events/day",
            TrafficMetric::CallsPerDay => "calls/day",
            TrafficMetric::BytesPerDay => "bytes/day",
        }
    }
}

/// One (class, status, metric) distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficDist {
    /// The class.
    pub class: DeviceClass,
    /// Native vs inbound.
    pub status: StatusGroup,
    /// Which panel.
    pub metric: TrafficMetric,
    /// Per-device daily values.
    pub dist: Ecdf,
}

/// Streaming accumulator for [`traffic_dist`]: one pass extracts the
/// samples for every requested (class, status) pair at once (the old
/// code re-scanned the population per pair). Chunk sample vectors
/// concatenate in input order, and [`Ecdf::new`] sorts with a total
/// order, so the distributions are identical at any thread count.
#[derive(Debug, Clone)]
pub struct TrafficFold<'a> {
    classification: &'a Classification,
    pairs: &'a [(DeviceClass, StatusGroup)],
    metric: TrafficMetric,
    samples: Vec<Vec<f64>>,
}

impl<'a> TrafficFold<'a> {
    /// An empty accumulator for `pairs` on `metric`.
    pub fn new(
        classification: &'a Classification,
        pairs: &'a [(DeviceClass, StatusGroup)],
        metric: TrafficMetric,
    ) -> Self {
        TrafficFold {
            classification,
            pairs,
            metric,
            samples: vec![Vec::new(); pairs.len()],
        }
    }

    /// Builds the Fig. 10 distributions, one per pair in the order
    /// requested at construction.
    pub fn finish(self) -> Vec<TrafficDist> {
        self.pairs
            .iter()
            .zip(self.samples)
            .map(|((class, status), samples)| TrafficDist {
                class: *class,
                status: *status,
                metric: self.metric,
                dist: Ecdf::new(samples),
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for TrafficFold<'_> {
    fn zero(&self) -> Self {
        TrafficFold::new(self.classification, self.pairs, self.metric)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            let class = self.classification.class_of(s.user);
            let status = StatusGroup::of(s);
            for (i, (wc, ws)) in self.pairs.iter().enumerate() {
                if class == Some(*wc) && status == Some(*ws) {
                    self.samples[i].push(self.metric.of(s));
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (mine, theirs) in self.samples.iter_mut().zip(later.samples) {
            mine.extend(theirs);
        }
    }
}

/// Computes one Fig. 10 panel for the requested (class, status) pairs in
/// a single chunk-parallel pass (`wtr_sim::stream`); chunk results
/// concatenate in input order, so the resulting distributions are
/// identical at any thread count.
pub fn traffic_dist(
    summaries: &[DeviceSummary],
    classification: &Classification,
    pairs: &[(DeviceClass, StatusGroup)],
    metric: TrafficMetric,
) -> Vec<TrafficDist> {
    let mut fold = TrafficFold::new(classification, pairs, metric);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

/// Fraction of a population with a zero value for `metric` — e.g. "for the
/// vast majority of M2M devices we do not find any calls registered".
pub fn zero_fraction(dist: &TrafficDist) -> f64 {
    if dist.dist.is_empty() {
        0.0
    } else {
        dist.dist.fraction_at_or_below(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::RadioFlags;
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn summary(
        user: u64,
        label: RoamingLabel,
        events: u64,
        calls: u64,
        bytes: u64,
        days: u32,
    ) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac: Tac::new(35_000_000).unwrap(),
            active_days: days,
            first_day: 0,
            last_day: days.saturating_sub(1),
            dominant_label: label,
            labels: BTreeSet::from([label]),
            apns: BTreeSet::new(),
            radio_flags: RadioFlags::default(),
            events,
            failed_events: 0,
            calls,
            sms: 0,
            data_sessions: u64::from(bytes > 0),
            bytes,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly: [0; 24],
            mobility: MobilityAccum::default(),
        }
    }

    fn classification(pairs: &[(u64, DeviceClass)]) -> Classification {
        let mut c = Classification::default();
        for (u, class) in pairs {
            c.classes.insert(*u, *class);
        }
        c
    }

    #[test]
    fn panel_split_by_class_and_status() {
        let sums = vec![
            summary(1, RoamingLabel::IH, 20, 0, 100, 10), // inbound m2m
            summary(2, RoamingLabel::HH, 400, 30, 5_000_000, 10), // native smart
            summary(3, RoamingLabel::IH, 300, 10, 500_000, 10), // inbound smart
        ];
        let cls = classification(&[
            (1, DeviceClass::M2m),
            (2, DeviceClass::Smart),
            (3, DeviceClass::Smart),
        ]);
        let pairs = [
            (DeviceClass::M2m, StatusGroup::InboundRoaming),
            (DeviceClass::Smart, StatusGroup::Native),
            (DeviceClass::Smart, StatusGroup::InboundRoaming),
        ];
        let sig = traffic_dist(&sums, &cls, &pairs, TrafficMetric::SignalingPerDay);
        assert_eq!(sig[0].dist.median(), Some(2.0));
        assert_eq!(sig[1].dist.median(), Some(40.0));
        // M2M ≪ smartphones (Fig. 10-left).
        assert!(sig[0].dist.median().unwrap() < sig[1].dist.median().unwrap() / 10.0);

        let bytes = traffic_dist(&sums, &cls, &pairs, TrafficMetric::BytesPerDay);
        // Native smart ≫ inbound smart (bill shock, Fig. 10-right).
        assert!(bytes[1].dist.median().unwrap() > bytes[2].dist.median().unwrap() * 5.0);
    }

    #[test]
    fn zero_call_fraction() {
        let sums = vec![
            summary(1, RoamingLabel::IH, 10, 0, 0, 5),
            summary(2, RoamingLabel::IH, 10, 0, 0, 5),
            summary(3, RoamingLabel::IH, 10, 2, 0, 5),
        ];
        let cls = classification(&[
            (1, DeviceClass::M2m),
            (2, DeviceClass::M2m),
            (3, DeviceClass::M2m),
        ]);
        let calls = traffic_dist(
            &sums,
            &cls,
            &[(DeviceClass::M2m, StatusGroup::InboundRoaming)],
            TrafficMetric::CallsPerDay,
        );
        let zf = zero_fraction(&calls[0]);
        assert!((zf - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population() {
        let cls = classification(&[]);
        let d = traffic_dist(
            &[],
            &cls,
            &[(DeviceClass::Feat, StatusGroup::Native)],
            TrafficMetric::BytesPerDay,
        );
        assert!(d[0].dist.is_empty());
        assert_eq!(zero_fraction(&d[0]), 0.0);
    }
}
