//! Spatio-temporal dynamics (§5.3; Fig. 7, Fig. 8).
//!
//! Fig. 7 plots the number of active days per device, split by class and
//! by native/inbound roaming status; the paper's headline is that inbound
//! roaming M2M devices stay 4.5× longer than inbound roaming smartphones
//! (median 9 vs 2 days). Fig. 8 plots the radius of gyration per device;
//! M2M inbound roamers are stationary (~80% under 1 km).

use crate::classify::{Classification, DeviceClass};
use crate::metrics::Ecdf;
use crate::summary::DeviceSummary;
use serde::{Deserialize, Serialize};
use wtr_sim::stream::{drive_slice, ChunkFold};

/// Roaming-status grouping used by Fig. 7 / Fig. 10: native-attached
/// (H:H / V:H) vs international inbound (I:H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusGroup {
    /// H:H or V:H devices.
    Native,
    /// I:H devices.
    InboundRoaming,
}

impl StatusGroup {
    /// Group of a summary by its dominant label; `None` for labels outside
    /// the comparison (outbound roamers, national inbound).
    pub fn of(summary: &DeviceSummary) -> Option<StatusGroup> {
        let l = summary.dominant_label;
        if l.is_international_inbound() {
            Some(StatusGroup::InboundRoaming)
        } else if l.is_native_attached() {
            Some(StatusGroup::Native)
        } else {
            None
        }
    }

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            StatusGroup::Native => "native",
            StatusGroup::InboundRoaming => "inbound-roaming",
        }
    }
}

/// Active-days distributions for one (class, status) population (E11).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveDays {
    /// The class.
    pub class: DeviceClass,
    /// The roaming-status group.
    pub status: StatusGroup,
    /// ECDF of active-day counts.
    pub days: Ecdf,
}

/// Streaming accumulator for [`active_days`]: one pass collects the
/// sample vectors for every requested (class, status) pair. Chunk
/// vectors concatenate in input order, so the ECDFs are identical at
/// any thread count.
#[derive(Debug, Clone)]
pub struct ActiveDaysFold<'a> {
    classification: &'a Classification,
    pairs: &'a [(DeviceClass, StatusGroup)],
    samples: Vec<Vec<f64>>,
}

impl<'a> ActiveDaysFold<'a> {
    /// An empty accumulator for `pairs`.
    pub fn new(
        classification: &'a Classification,
        pairs: &'a [(DeviceClass, StatusGroup)],
    ) -> Self {
        ActiveDaysFold {
            classification,
            pairs,
            samples: vec![Vec::new(); pairs.len()],
        }
    }

    /// Builds the Fig. 7 ECDFs, one per pair in construction order.
    pub fn finish(self) -> Vec<ActiveDays> {
        self.pairs
            .iter()
            .zip(self.samples)
            .map(|((class, status), samples)| ActiveDays {
                class: *class,
                status: *status,
                days: Ecdf::new(samples),
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for ActiveDaysFold<'_> {
    fn zero(&self) -> Self {
        ActiveDaysFold::new(self.classification, self.pairs)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            let class = self.classification.class_of(s.user);
            let status = StatusGroup::of(s);
            for (i, (wc, ws)) in self.pairs.iter().enumerate() {
                if class == Some(*wc) && status == Some(*ws) {
                    self.samples[i].push(s.active_days as f64);
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (mine, theirs) in self.samples.iter_mut().zip(later.samples) {
            mine.extend(theirs);
        }
    }
}

/// Computes Fig. 7's active-days ECDFs for the requested (class, status)
/// pairs.
pub fn active_days(
    summaries: &[DeviceSummary],
    classification: &Classification,
    pairs: &[(DeviceClass, StatusGroup)],
) -> Vec<ActiveDays> {
    let mut fold = ActiveDaysFold::new(classification, pairs);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

/// Gyration distribution for one (class, status) population (E12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gyration {
    /// The class.
    pub class: DeviceClass,
    /// The roaming-status group.
    pub status: StatusGroup,
    /// ECDF of per-device gyration radii in km (devices with radio
    /// visibility only — outbound roamers have no sector data).
    pub gyration_km: Ecdf,
}

/// Streaming accumulator for [`gyration`]: same shape as
/// [`ActiveDaysFold`], sampling `gyration_km()` where defined.
#[derive(Debug, Clone)]
pub struct GyrationFold<'a> {
    classification: &'a Classification,
    pairs: &'a [(DeviceClass, StatusGroup)],
    samples: Vec<Vec<f64>>,
}

impl<'a> GyrationFold<'a> {
    /// An empty accumulator for `pairs`.
    pub fn new(
        classification: &'a Classification,
        pairs: &'a [(DeviceClass, StatusGroup)],
    ) -> Self {
        GyrationFold {
            classification,
            pairs,
            samples: vec![Vec::new(); pairs.len()],
        }
    }

    /// Builds the Fig. 8 ECDFs, one per pair in construction order.
    pub fn finish(self) -> Vec<Gyration> {
        self.pairs
            .iter()
            .zip(self.samples)
            .map(|((class, status), samples)| Gyration {
                class: *class,
                status: *status,
                gyration_km: Ecdf::new(samples),
            })
            .collect()
    }
}

impl ChunkFold<DeviceSummary> for GyrationFold<'_> {
    fn zero(&self) -> Self {
        GyrationFold::new(self.classification, self.pairs)
    }

    fn fold_chunk(&mut self, chunk: &[DeviceSummary]) {
        for s in chunk {
            let class = self.classification.class_of(s.user);
            let status = StatusGroup::of(s);
            for (i, (wc, ws)) in self.pairs.iter().enumerate() {
                if class == Some(*wc) && status == Some(*ws) {
                    if let Some(g) = s.gyration_km() {
                        self.samples[i].push(g);
                    }
                }
            }
        }
    }

    fn absorb(&mut self, later: Self) {
        for (mine, theirs) in self.samples.iter_mut().zip(later.samples) {
            mine.extend(theirs);
        }
    }
}

/// Computes Fig. 8's radius-of-gyration ECDFs.
pub fn gyration(
    summaries: &[DeviceSummary],
    classification: &Classification,
    pairs: &[(DeviceClass, StatusGroup)],
) -> Vec<Gyration> {
    let mut fold = GyrationFold::new(classification, pairs);
    drive_slice(&mut fold, summaries);
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;
    use wtr_probes::catalog::DevicesCatalog;
    use wtr_radio::geo::GeoPoint;

    fn tac() -> Tac {
        Tac::new(35_000_000).unwrap()
    }

    fn build() -> (Vec<DeviceSummary>, Classification) {
        let mut cat = DevicesCatalog::new(22);
        // Device 1: inbound m2m, 9 active days, stationary.
        for day in 0..9u32 {
            let r = cat.row_mut(1, Day(day), Plmn::of(204, 4), tac(), RoamingLabel::IH);
            r.mobility.add(GeoPoint::new(52.0, -1.0), 1.0);
        }
        // Device 2: inbound smartphone, 2 active days, mobile.
        for day in 0..2u32 {
            let r = cat.row_mut(2, Day(day), Plmn::of(208, 1), tac(), RoamingLabel::IH);
            r.mobility
                .add(GeoPoint::new(52.0 + day as f64 * 0.3, -1.0), 1.0);
            r.mobility
                .add(GeoPoint::new(52.2 + day as f64 * 0.3, -0.8), 1.0);
        }
        // Device 3: native smartphone, 20 days.
        for day in 0..20u32 {
            cat.row_mut(3, Day(day), Plmn::of(234, 30), tac(), RoamingLabel::HH);
        }
        let sums = summarize(&cat);
        let mut cls = Classification::default();
        cls.classes.insert(1, DeviceClass::M2m);
        cls.classes.insert(2, DeviceClass::Smart);
        cls.classes.insert(3, DeviceClass::Smart);
        (sums, cls)
    }

    #[test]
    fn status_grouping() {
        let (sums, _) = build();
        let s1 = sums.iter().find(|s| s.user == 1).unwrap();
        let s3 = sums.iter().find(|s| s.user == 3).unwrap();
        assert_eq!(StatusGroup::of(s1), Some(StatusGroup::InboundRoaming));
        assert_eq!(StatusGroup::of(s3), Some(StatusGroup::Native));
    }

    #[test]
    fn active_days_split_matches_fig7_shape() {
        let (sums, cls) = build();
        let result = active_days(
            &sums,
            &cls,
            &[
                (DeviceClass::M2m, StatusGroup::InboundRoaming),
                (DeviceClass::Smart, StatusGroup::InboundRoaming),
                (DeviceClass::Smart, StatusGroup::Native),
            ],
        );
        assert_eq!(result[0].days.median(), Some(9.0));
        assert_eq!(result[1].days.median(), Some(2.0));
        assert_eq!(result[2].days.median(), Some(20.0));
        // The paper's 4.5× inbound contrast.
        assert!(result[0].days.median().unwrap() > 4.0 * result[1].days.median().unwrap());
    }

    #[test]
    fn gyration_stationary_vs_mobile() {
        let (sums, cls) = build();
        let result = gyration(
            &sums,
            &cls,
            &[
                (DeviceClass::M2m, StatusGroup::InboundRoaming),
                (DeviceClass::Smart, StatusGroup::InboundRoaming),
            ],
        );
        let meter = result[0].gyration_km.median().unwrap();
        let phone = result[1].gyration_km.median().unwrap();
        assert!(meter < 0.001, "meter gyration {meter}");
        assert!(phone > 1.0, "phone gyration {phone}");
    }

    #[test]
    fn empty_pair_yields_empty_ecdf() {
        let (sums, cls) = build();
        let result = active_days(&sums, &cls, &[(DeviceClass::Feat, StatusGroup::Native)]);
        assert!(result[0].days.is_empty());
    }
}
