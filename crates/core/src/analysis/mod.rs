//! One module per paper figure/table: each produces a plain data struct
//! the reproduction harness prints and the tests assert on.
//!
//! | Module | Paper artifacts | Experiments |
//! |---|---|---|
//! | [`platform`] | §3.2 table, Fig. 2, Fig. 3 | E1–E5 |
//! | [`population`] | §4.2 shares, Fig. 5, Fig. 6 | E6, E8–E10 |
//! | [`activity`] | Fig. 7, Fig. 8 | E11, E12 |
//! | [`rat_usage`] | Fig. 9 | E13 |
//! | [`traffic`] | Fig. 10 | E14 |
//! | [`smip`] | Fig. 11, §7.1 | E15–E17 |
//! | [`verticals`] | Fig. 12 | E18 |
//!
//! Extensions beyond the paper's figures (motivated by its §1/§8/§9
//! discussion): [`revenue`] (load-vs-wholesale-revenue asymmetry, E21),
//! [`diurnal`] (machine vs human traffic shapes, E22).

pub mod activity;
pub mod diurnal;
pub mod platform;
pub mod population;
pub mod rat_usage;
pub mod revenue;
pub mod smip;
pub mod traffic;
pub mod verticals;
