//! Terminal rendering: aligned tables, share bars and ASCII CDFs —
//! plus the named analysis-table renderers shared by `wtr analyze`
//! and the `wtr_serve` report endpoints.
//!
//! The reproduction harness prints every figure as text; these helpers
//! keep the output readable and consistent across experiments. The
//! [`render_analysis`]/[`render_classify`] entry points are the single
//! source of report bytes: the CLI prints their output verbatim and the
//! server caches it verbatim, so `GET /report/{tenant}/{table}` and
//! `wtr analyze --stream {table}` are diffable byte for byte.

use crate::classify::Classification;
use crate::metrics::{CrossTab, Ecdf};
use crate::stream::{AnalysisSuite, StreamedCatalog, METRICS, PLANES};
use std::fmt::Write as _;

/// The 11 named analysis tables, in the order `wtr analyze` prints them
/// when no explicit selection is given.
pub const ANALYSES: [&str; 11] = [
    "labels",
    "classes",
    "home",
    "active",
    "elements",
    "rat",
    "traffic",
    "smip",
    "verticals",
    "diurnal",
    "revenue",
];

/// Renders one named analysis table over a streamed catalog and its
/// analysis suite. Returns the exact text `wtr analyze` prints for that
/// table (without the blank separator line the CLI appends between
/// tables). Unknown names are an error naming the offender.
pub fn render_analysis(
    name: &str,
    data: &StreamedCatalog,
    suite: &AnalysisSuite,
) -> Result<String, String> {
    let mut out = String::new();
    match name {
        "labels" => {
            let ls = &data.label_shares;
            let _ = writeln!(out, "roaming-label shares (overall):");
            for (label, share) in &ls.overall {
                let _ = writeln!(
                    out,
                    "  {label}  {:>5.1}%  {}",
                    share * 100.0,
                    bar(*share, 30)
                );
            }
        }
        "classes" => {
            let _ = writeln!(out, "device classes:");
            for (class, share) in suite.classification.shares() {
                let _ = writeln!(out, "  {:<10} {:>6.1}%", class.label(), share * 100.0);
            }
        }
        "home" => {
            let hc = &suite.home;
            out.push_str(&shares_table(
                "inbound roamers by home country (top 10)",
                &hc.overall,
                10,
            ));
        }
        "rat" => {
            for (plane, usage) in PLANES.iter().zip(&suite.rat) {
                let _ = writeln!(out, "RAT usage ({}):", plane.label());
                for u in usage {
                    let mut cats: Vec<(&String, &f64)> = u.shares.iter().collect();
                    cats.sort_by(|a, b| b.1.total_cmp(a.1));
                    let top: Vec<String> = cats
                        .iter()
                        .take(3)
                        .map(|(k, v)| format!("{k} {:.0}%", **v * 100.0))
                        .collect();
                    let _ = writeln!(out, "  {:<6} {}", u.class.label(), top.join(", "));
                }
            }
        }
        "traffic" => {
            for (metric, dists) in METRICS.iter().zip(&suite.traffic) {
                let _ = writeln!(out, "{} (medians):", metric.label());
                for d in dists {
                    let _ = writeln!(
                        out,
                        "  {:<6} {:<16} {:>14.1}",
                        d.class.label(),
                        d.status.label(),
                        d.dist.median().unwrap_or(0.0)
                    );
                }
            }
        }
        "smip" => {
            let native = &suite.smip_native;
            let roaming = &suite.smip_roaming;
            let _ = writeln!(
                out,
                "SMIP: {} native, {} roaming meters; signaling/day {:.1} vs {:.1}; failed {:.0}% vs {:.0}%",
                native.devices,
                roaming.devices,
                native.signaling_per_day.mean().unwrap_or(0.0),
                roaming.signaling_per_day.mean().unwrap_or(0.0),
                native.failed_device_fraction * 100.0,
                roaming.failed_device_fraction * 100.0
            );
        }
        "verticals" => {
            let (cars, meters) = &suite.verticals;
            let _ = writeln!(
                out,
                "verticals: {} cars (gyration {:.1} km) vs {} meters (gyration {:.3} km)",
                cars.devices,
                cars.gyration_km.median().unwrap_or(0.0),
                meters.devices,
                meters.gyration_km.median().unwrap_or(0.0)
            );
        }
        "diurnal" => {
            let _ = writeln!(out, "diurnal shapes:");
            for p in &suite.diurnal {
                let _ = writeln!(
                    out,
                    "  {:<6} night {:>5.1}%  peak/trough {:>5.1}x",
                    p.class.label(),
                    p.night_share * 100.0,
                    p.peak_to_trough
                );
            }
        }
        "revenue" => {
            let _ = writeln!(out, "inbound economics:");
            for e in &suite.revenue {
                let _ = writeln!(
                    out,
                    "  {:<10} load {:>5.1}%  revenue {:>5.1}%  median €{:.4}/device",
                    e.class.label(),
                    e.load_share * 100.0,
                    e.revenue_share * 100.0,
                    e.revenue_median_per_device
                );
            }
        }
        "active" => {
            let res = &suite.active;
            let _ = writeln!(
                out,
                "active days (inbound medians): m2m {:.0}, smart {:.0}",
                res[0].days.median().unwrap_or(0.0),
                res[1].days.median().unwrap_or(0.0)
            );
        }
        "elements" => {
            // Element load needs the raw probe, which a catalog file
            // does not carry; approximate from radio-flags instead:
            // LTE-family active devices load the MME, 2G/3G the SGSN.
            let mut mme = 0u64;
            let mut sgsn = 0u64;
            for s in &data.summaries {
                let set = s.radio_flags.any;
                if set.contains(wtr_model::rat::Rat::G4) || set.contains(wtr_model::rat::Rat::NbIot)
                {
                    mme += s.events;
                } else {
                    sgsn += s.events;
                }
            }
            let _ = writeln!(
                out,
                "element attribution (approx. from radio-flags): MME-side {mme} events, SGSN-side {sgsn} events"
            );
        }
        other => return Err(format!("unknown analysis {other:?}")),
    }
    Ok(out)
}

/// Renders the classification summary exactly as `wtr classify` prints
/// it (pipeline banner, device count, per-class shares, APN statistics).
pub fn render_classify(pipeline: &str, devices: usize, classification: &Classification) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pipeline: {pipeline}");
    let _ = writeln!(out, "devices: {devices}");
    for (class, share) in classification.shares() {
        let _ = writeln!(out, "  {:<10} {:>6.1}%", class.label(), share * 100.0);
    }
    let _ = writeln!(
        out,
        "APNs: {} distinct, {} validated M2M; {} devices without APN; \
         {} NB-IoT-detected; {} range-detected",
        classification.total_apns,
        classification.validated_apns.len(),
        classification.devices_without_apn,
        classification.nbiot_detected,
        classification.range_detected
    );
    out
}

/// Renders an aligned table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", cell, width = widths[i]);
        }
        out.push('\n');
    };
    render_row(
        &mut out,
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders a horizontal share bar (`####----`) of `width` characters.
pub fn bar(fraction: f64, width: usize) -> String {
    let f = fraction.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled),
        "·".repeat(width.saturating_sub(filled))
    )
}

/// Renders labeled shares as bar rows: `label  count  share  bar`.
pub fn shares_table(title: &str, rows: &[(String, f64, f64)], top: usize) -> String {
    let mut out = format!("{title}\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .take(top)
        .map(|(label, count, share)| {
            vec![
                label.clone(),
                format!("{count:.0}"),
                format!("{:5.1}%", share * 100.0),
                bar(*share, 30),
            ]
        })
        .collect();
    out.push_str(&table(&["label", "count", "share", ""], &body));
    out
}

/// Renders an ECDF as rows of `x  F(x)` with a bar, plus summary stats.
pub fn cdf(title: &str, ecdf: &Ecdf, points: usize) -> String {
    let mut out = format!("{title}\n");
    if ecdf.is_empty() {
        out.push_str("  (no samples)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  n={} mean={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2}",
        ecdf.len(),
        ecdf.mean().unwrap_or(0.0),
        ecdf.quantile(0.5).unwrap_or(0.0),
        ecdf.quantile(0.9).unwrap_or(0.0),
        ecdf.quantile(0.99).unwrap_or(0.0),
        ecdf.max().unwrap_or(0.0),
    );
    for (x, f) in ecdf.curve(points) {
        let _ = writeln!(out, "  {:>14.3}  {:>6.1}%  {}", x, f * 100.0, bar(f, 30));
    }
    out
}

/// Renders a row-normalized cross-tab heatmap as text (values in %).
pub fn heatmap_row_normalized(title: &str, tab: &CrossTab) -> String {
    let rows = tab.rows();
    let cols = tab.cols();
    let mut body = Vec::new();
    for r in &rows {
        let mut cells = vec![r.clone()];
        for c in &cols {
            cells.push(format!("{:5.1}", tab.row_share(r, c) * 100.0));
        }
        body.push(cells);
    }
    let mut headers: Vec<&str> = vec![""];
    headers.extend(cols.iter().map(String::as_str));
    format!("{title} (row %)\n{}", table(&headers, &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns align: "value" and "22" start at the same offset.
        let header_off = lines[0].find("value").unwrap();
        let cell_off = lines[3].find("22").unwrap();
        assert_eq!(header_off, cell_off);
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.0, 10), "··········");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(2.0, 10), "##########");
        assert_eq!(bar(-1.0, 10), "··········");
        assert_eq!(bar(0.5, 10), "#####·····");
    }

    #[test]
    fn cdf_renders_stats_and_handles_empty() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let out = cdf("records", &e, 8);
        assert!(out.contains("n=100"));
        assert!(out.contains("p50=50"));
        let empty = cdf("nothing", &Ecdf::new(vec![]), 8);
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn shares_table_truncates_to_top() {
        let rows = vec![
            ("NL".to_owned(), 60.0, 0.6),
            ("SE".to_owned(), 30.0, 0.3),
            ("ES".to_owned(), 10.0, 0.1),
        ];
        let out = shares_table("home countries", &rows, 2);
        assert!(out.contains("NL"));
        assert!(out.contains("SE"));
        assert!(!out.contains("ES"));
    }

    #[test]
    fn heatmap_contains_percentages() {
        let mut t = CrossTab::new();
        t.add("m2m", "I:H", 3.0);
        t.add("m2m", "H:H", 1.0);
        let out = heatmap_row_normalized("fig6", &t);
        assert!(out.contains("75.0"));
        assert!(out.contains("25.0"));
    }
}
