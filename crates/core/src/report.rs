//! Terminal rendering: aligned tables, share bars and ASCII CDFs.
//!
//! The reproduction harness prints every figure as text; these helpers
//! keep the output readable and consistent across experiments.

use crate::metrics::{CrossTab, Ecdf};
use std::fmt::Write as _;

/// Renders an aligned table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", cell, width = widths[i]);
        }
        out.push('\n');
    };
    render_row(
        &mut out,
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders a horizontal share bar (`####----`) of `width` characters.
pub fn bar(fraction: f64, width: usize) -> String {
    let f = fraction.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled),
        "·".repeat(width.saturating_sub(filled))
    )
}

/// Renders labeled shares as bar rows: `label  count  share  bar`.
pub fn shares_table(title: &str, rows: &[(String, f64, f64)], top: usize) -> String {
    let mut out = format!("{title}\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .take(top)
        .map(|(label, count, share)| {
            vec![
                label.clone(),
                format!("{count:.0}"),
                format!("{:5.1}%", share * 100.0),
                bar(*share, 30),
            ]
        })
        .collect();
    out.push_str(&table(&["label", "count", "share", ""], &body));
    out
}

/// Renders an ECDF as rows of `x  F(x)` with a bar, plus summary stats.
pub fn cdf(title: &str, ecdf: &Ecdf, points: usize) -> String {
    let mut out = format!("{title}\n");
    if ecdf.is_empty() {
        out.push_str("  (no samples)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  n={} mean={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2}",
        ecdf.len(),
        ecdf.mean().unwrap_or(0.0),
        ecdf.quantile(0.5).unwrap_or(0.0),
        ecdf.quantile(0.9).unwrap_or(0.0),
        ecdf.quantile(0.99).unwrap_or(0.0),
        ecdf.max().unwrap_or(0.0),
    );
    for (x, f) in ecdf.curve(points) {
        let _ = writeln!(out, "  {:>14.3}  {:>6.1}%  {}", x, f * 100.0, bar(f, 30));
    }
    out
}

/// Renders a row-normalized cross-tab heatmap as text (values in %).
pub fn heatmap_row_normalized(title: &str, tab: &CrossTab) -> String {
    let rows = tab.rows();
    let cols = tab.cols();
    let mut body = Vec::new();
    for r in &rows {
        let mut cells = vec![r.clone()];
        for c in &cols {
            cells.push(format!("{:5.1}", tab.row_share(r, c) * 100.0));
        }
        body.push(cells);
    }
    let mut headers: Vec<&str> = vec![""];
    headers.extend(cols.iter().map(String::as_str));
    format!("{title} (row %)\n{}", table(&headers, &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns align: "value" and "22" start at the same offset.
        let header_off = lines[0].find("value").unwrap();
        let cell_off = lines[3].find("22").unwrap();
        assert_eq!(header_off, cell_off);
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.0, 10), "··········");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(2.0, 10), "##########");
        assert_eq!(bar(-1.0, 10), "··········");
        assert_eq!(bar(0.5, 10), "#####·····");
    }

    #[test]
    fn cdf_renders_stats_and_handles_empty() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let out = cdf("records", &e, 8);
        assert!(out.contains("n=100"));
        assert!(out.contains("p50=50"));
        let empty = cdf("nothing", &Ecdf::new(vec![]), 8);
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn shares_table_truncates_to_top() {
        let rows = vec![
            ("NL".to_owned(), 60.0, 0.6),
            ("SE".to_owned(), 30.0, 0.3),
            ("ES".to_owned(), 10.0, 0.1),
        ];
        let out = shares_table("home countries", &rows, 2);
        assert!(out.contains("NL"));
        assert!(out.contains("SE"));
        assert!(!out.contains("ES"));
    }

    #[test]
    fn heatmap_contains_percentages() {
        let mut t = CrossTab::new();
        t.add("m2m", "I:H", 3.0);
        t.add("m2m", "H:H", 1.0);
        let out = heatmap_row_normalized("fig6", &t);
        assert!(out.contains("75.0"));
        assert!(out.contains("25.0"));
    }
}
