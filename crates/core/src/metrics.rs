//! Statistical primitives: empirical CDFs and cross-tabulations.
//!
//! Every figure in the paper is either a CDF ([`Ecdf`]) or a normalized
//! contingency table ([`CrossTab`]); these two types plus shares cover the
//! whole evaluation section.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wtr_sim::par;

/// An empirical cumulative distribution function over `f64` samples.
///
/// ```
/// use wtr_core::metrics::Ecdf;
///
/// let records_per_device = Ecdf::new(vec![12.0, 40.0, 267.0, 8.0, 1900.0]);
/// assert_eq!(records_per_device.median(), Some(40.0));
/// assert_eq!(records_per_device.fraction_at_or_below(300.0), 0.8);
/// assert_eq!(records_per_device.max(), Some(1900.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (NaNs are rejected with a debug assertion and
    /// dropped in release builds).
    ///
    /// Sorting is sharded over worker threads (`wtr_sim::par`): fixed
    /// chunks are sorted independently and merged with `total_cmp`.
    /// Since `total_cmp` is a total order (equal keys are bit-identical),
    /// the merged vector equals the serial sort exactly at any thread
    /// count.
    pub fn new(mut samples: Vec<f64>) -> Self {
        debug_assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.retain(|x| !x.is_nan());
        let runs = par::chunked_map(&samples, |chunk| {
            let mut v = chunk.to_vec();
            v.sort_by(f64::total_cmp);
            v
        });
        Ecdf {
            sorted: merge_sorted_runs(runs),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median (quantile 0.5).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evenly-spaced `(x, F(x))` points for plotting/rendering: at most
    /// `points` sampled steps, plus at most one extra closing point at the
    /// maximum — so never more than `points + 1` entries.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        // Ceiling division: with truncation (the old behaviour) `n = 100,
        // points = 32` yielded a step of 3 and 34 points, violating the
        // documented bound.
        let step = n.div_ceil(points).max(1);
        let mut out = Vec::new();
        let mut i = step - 1;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|(x, _)| *x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// Merges pre-sorted runs (ordered by `f64::total_cmp`) into one sorted
/// vector — the reduce step of the parallel ECDF build.
fn merge_sorted_runs(mut runs: Vec<Vec<f64>>) -> Vec<f64> {
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("one run"),
        _ => {}
    }
    // Repeatedly merge pairs; with at most 64 runs this is at most six
    // passes over the data.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().expect("one run")
}

/// Merges two sorted vectors under `total_cmp`.
fn merge_two(a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia].total_cmp(&b[ib]).is_le() {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

/// A labeled contingency table with row/column normalization — the shape
/// of Fig. 2, Fig. 5-bottom and Fig. 6.
///
/// ```
/// use wtr_core::metrics::CrossTab;
///
/// let mut fig6 = CrossTab::new();
/// fig6.add("m2m", "I:H", 747.0);
/// fig6.add("m2m", "H:H", 253.0);
/// assert!((fig6.row_share("m2m", "I:H") - 0.747).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossTab {
    cells: BTreeMap<(String, String), f64>,
}

impl CrossTab {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to cell (row, col).
    pub fn add(&mut self, row: &str, col: &str, weight: f64) {
        *self
            .cells
            .entry((row.to_owned(), col.to_owned()))
            .or_insert(0.0) += weight;
    }

    /// Adds every cell of `other` into this table — the reduce step when
    /// tables are built from chunks of a population in parallel.
    pub fn merge(&mut self, other: CrossTab) {
        for ((row, col), v) in other.cells {
            *self.cells.entry((row, col)).or_insert(0.0) += v;
        }
    }

    /// Raw cell value.
    pub fn get(&self, row: &str, col: &str) -> f64 {
        self.cells
            .get(&(row.to_owned(), col.to_owned()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Distinct row labels, sorted.
    pub fn rows(&self) -> Vec<String> {
        let mut out: Vec<String> = self.cells.keys().map(|(r, _)| r.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Distinct column labels, sorted.
    pub fn cols(&self) -> Vec<String> {
        let mut out: Vec<String> = self.cells.keys().map(|(_, c)| c.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Sum of one row.
    pub fn row_total(&self, row: &str) -> f64 {
        self.cells
            .iter()
            .filter(|((r, _), _)| r == row)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of one column.
    pub fn col_total(&self, col: &str) -> f64 {
        self.cells
            .iter()
            .filter(|((_, c), _)| c == col)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Cell value normalized by its row total (the paper normalizes Fig. 2
    /// and Fig. 5-bottom by row).
    pub fn row_share(&self, row: &str, col: &str) -> f64 {
        let t = self.row_total(row);
        if t <= 0.0 {
            0.0
        } else {
            self.get(row, col) / t
        }
    }

    /// Cell value normalized by its column total (Fig. 6-right).
    pub fn col_share(&self, row: &str, col: &str) -> f64 {
        let t = self.col_total(col);
        if t <= 0.0 {
            0.0
        } else {
            self.get(row, col) / t
        }
    }
}

/// Shares of a labeled counter: `(label, count, fraction)` rows sorted by
/// count descending. The building block of every "X% of devices are Y"
/// statement in the paper.
pub fn shares<I: IntoIterator<Item = (String, f64)>>(counts: I) -> Vec<(String, f64, f64)> {
    let items: Vec<(String, f64)> = counts.into_iter().collect();
    let total: f64 = items.iter().map(|(_, c)| c).sum();
    let mut out: Vec<(String, f64, f64)> = items
        .into_iter()
        .map(|(l, c)| {
            let share = if total > 0.0 { c / total } else { 0.0 };
            (l, c, share)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.quantile(0.2), Some(1.0));
        assert_eq!(e.quantile(0.21), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
        assert_eq!(e.mean(), Some(3.0));
    }

    #[test]
    fn ecdf_fraction_below() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn ecdf_curve_monotone_and_ends_at_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let e = Ecdf::new(samples);
        let points = 32;
        let curve = e.curve(points);
        assert!(
            curve.len() <= points + 1,
            "curve({points}) returned {} points",
            curve.len()
        );
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_curve_honors_bound_for_awkward_ratios() {
        // The regression case: n = 100, points = 32. Truncating division
        // produced a step of 3 and a 34-point curve.
        let e = Ecdf::new((0..100).map(|i| i as f64).collect());
        for points in [1usize, 2, 3, 7, 31, 32, 33, 99, 100, 101] {
            let curve = e.curve(points);
            assert!(
                curve.len() <= points + 1,
                "n=100 curve({points}) returned {} points",
                curve.len()
            );
            assert_eq!(curve.last().unwrap().1, 1.0);
        }
    }

    #[test]
    fn ecdf_parallel_sort_matches_serial() {
        // Pseudo-random samples, long enough to span many chunks.
        let samples: Vec<f64> = (0..40_000u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                (x as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect();
        let mut expected = samples.clone();
        expected.sort_by(f64::total_cmp);
        for t in [1usize, 2, 8] {
            par::set_threads(Some(t));
            let e = Ecdf::new(samples.clone());
            assert_eq!(e.len(), expected.len());
            assert_eq!(e.min(), expected.first().copied());
            assert_eq!(e.median(), Some(expected[expected.len() / 2 - 1]));
            assert_eq!(e.max(), expected.last().copied());
        }
        par::set_threads(None);
    }

    #[test]
    fn crosstab_normalizations() {
        let mut t = CrossTab::new();
        t.add("m2m", "I:H", 75.0);
        t.add("m2m", "H:H", 25.0);
        t.add("smart", "I:H", 12.0);
        t.add("smart", "H:H", 88.0);
        assert_eq!(t.row_share("m2m", "I:H"), 0.75);
        assert_eq!(t.row_share("smart", "H:H"), 0.88);
        let ih_total = t.col_total("I:H");
        assert!((t.col_share("m2m", "I:H") - 75.0 / ih_total).abs() < 1e-12);
        assert_eq!(t.total(), 200.0);
        assert_eq!(t.rows(), vec!["m2m".to_string(), "smart".to_string()]);
        assert_eq!(t.cols(), vec!["H:H".to_string(), "I:H".to_string()]);
    }

    #[test]
    fn crosstab_missing_cells_are_zero() {
        let mut t = CrossTab::new();
        t.add("a", "x", 1.0);
        assert_eq!(t.get("a", "y"), 0.0);
        assert_eq!(t.row_share("zz", "x"), 0.0);
    }

    #[test]
    fn shares_sorted_and_normalized() {
        let s = shares(vec![
            ("NL".to_owned(), 30.0),
            ("SE".to_owned(), 20.0),
            ("ES".to_owned(), 10.0),
            ("FR".to_owned(), 40.0),
        ]);
        assert_eq!(s[0].0, "FR");
        assert!((s[0].2 - 0.4).abs() < 1e-12);
        let total: f64 = s.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shares_empty_input() {
        let s = shares(Vec::<(String, f64)>::new());
        assert!(s.is_empty());
    }
}
