//! Statistical primitives: empirical CDFs and cross-tabulations.
//!
//! Every figure in the paper is either a CDF ([`Ecdf`]) or a normalized
//! contingency table ([`CrossTab`]); these two types plus shares cover the
//! whole evaluation section.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An empirical cumulative distribution function over `f64` samples.
///
/// ```
/// use wtr_core::metrics::Ecdf;
///
/// let records_per_device = Ecdf::new(vec![12.0, 40.0, 267.0, 8.0, 1900.0]);
/// assert_eq!(records_per_device.median(), Some(40.0));
/// assert_eq!(records_per_device.fraction_at_or_below(300.0), 0.8);
/// assert_eq!(records_per_device.max(), Some(1900.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (NaNs are rejected with a debug assertion and
    /// dropped in release builds).
    pub fn new(mut samples: Vec<f64>) -> Self {
        debug_assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median (quantile 0.5).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evenly-spaced `(x, F(x))` points for plotting/rendering, at most
    /// `points` of them.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::new();
        let mut i = step - 1;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|(x, _)| *x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// A labeled contingency table with row/column normalization — the shape
/// of Fig. 2, Fig. 5-bottom and Fig. 6.
///
/// ```
/// use wtr_core::metrics::CrossTab;
///
/// let mut fig6 = CrossTab::new();
/// fig6.add("m2m", "I:H", 747.0);
/// fig6.add("m2m", "H:H", 253.0);
/// assert!((fig6.row_share("m2m", "I:H") - 0.747).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossTab {
    cells: BTreeMap<(String, String), f64>,
}

impl CrossTab {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to cell (row, col).
    pub fn add(&mut self, row: &str, col: &str, weight: f64) {
        *self
            .cells
            .entry((row.to_owned(), col.to_owned()))
            .or_insert(0.0) += weight;
    }

    /// Raw cell value.
    pub fn get(&self, row: &str, col: &str) -> f64 {
        self.cells
            .get(&(row.to_owned(), col.to_owned()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Distinct row labels, sorted.
    pub fn rows(&self) -> Vec<String> {
        let mut out: Vec<String> = self.cells.keys().map(|(r, _)| r.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Distinct column labels, sorted.
    pub fn cols(&self) -> Vec<String> {
        let mut out: Vec<String> = self.cells.keys().map(|(_, c)| c.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Sum of one row.
    pub fn row_total(&self, row: &str) -> f64 {
        self.cells
            .iter()
            .filter(|((r, _), _)| r == row)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of one column.
    pub fn col_total(&self, col: &str) -> f64 {
        self.cells
            .iter()
            .filter(|((_, c), _)| c == col)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Cell value normalized by its row total (the paper normalizes Fig. 2
    /// and Fig. 5-bottom by row).
    pub fn row_share(&self, row: &str, col: &str) -> f64 {
        let t = self.row_total(row);
        if t <= 0.0 {
            0.0
        } else {
            self.get(row, col) / t
        }
    }

    /// Cell value normalized by its column total (Fig. 6-right).
    pub fn col_share(&self, row: &str, col: &str) -> f64 {
        let t = self.col_total(col);
        if t <= 0.0 {
            0.0
        } else {
            self.get(row, col) / t
        }
    }
}

/// Shares of a labeled counter: `(label, count, fraction)` rows sorted by
/// count descending. The building block of every "X% of devices are Y"
/// statement in the paper.
pub fn shares<I: IntoIterator<Item = (String, f64)>>(counts: I) -> Vec<(String, f64, f64)> {
    let items: Vec<(String, f64)> = counts.into_iter().collect();
    let total: f64 = items.iter().map(|(_, c)| c).sum();
    let mut out: Vec<(String, f64, f64)> = items
        .into_iter()
        .map(|(l, c)| {
            let share = if total > 0.0 { c / total } else { 0.0 };
            (l, c, share)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.quantile(0.2), Some(1.0));
        assert_eq!(e.quantile(0.21), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
        assert_eq!(e.mean(), Some(3.0));
    }

    #[test]
    fn ecdf_fraction_below() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn ecdf_curve_monotone_and_ends_at_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let e = Ecdf::new(samples);
        let curve = e.curve(32);
        assert!(curve.len() <= 34);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn crosstab_normalizations() {
        let mut t = CrossTab::new();
        t.add("m2m", "I:H", 75.0);
        t.add("m2m", "H:H", 25.0);
        t.add("smart", "I:H", 12.0);
        t.add("smart", "H:H", 88.0);
        assert_eq!(t.row_share("m2m", "I:H"), 0.75);
        assert_eq!(t.row_share("smart", "H:H"), 0.88);
        let ih_total = t.col_total("I:H");
        assert!((t.col_share("m2m", "I:H") - 75.0 / ih_total).abs() < 1e-12);
        assert_eq!(t.total(), 200.0);
        assert_eq!(t.rows(), vec!["m2m".to_string(), "smart".to_string()]);
        assert_eq!(t.cols(), vec!["H:H".to_string(), "I:H".to_string()]);
    }

    #[test]
    fn crosstab_missing_cells_are_zero() {
        let mut t = CrossTab::new();
        t.add("a", "x", 1.0);
        assert_eq!(t.get("a", "y"), 0.0);
        assert_eq!(t.row_share("zz", "x"), 0.0);
    }

    #[test]
    fn shares_sorted_and_normalized() {
        let s = shares(vec![
            ("NL".to_owned(), 30.0),
            ("SE".to_owned(), 20.0),
            ("ES".to_owned(), 10.0),
            ("FR".to_owned(), 40.0),
        ]);
        assert_eq!(s[0].0, "FR");
        assert!((s[0].2 - 0.4).abs() < 1e-12);
        let total: f64 = s.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shares_empty_input() {
        let s = shares(Vec::<(String, f64)>::new());
        assert!(s.is_empty());
    }
}
