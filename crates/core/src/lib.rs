//! # wtr-core — the paper's primary contribution
//!
//! *Where Things Roam* (IMC 2020) contributes, beyond its measurements, a
//! practical method a visited MNO can run on its own records to understand
//! and manage roaming IoT devices. This crate is that method as a library:
//!
//! * **Device summaries** ([`summary`]) — fold the daily devices-catalog
//!   into per-device views (the unit of classification).
//! * **Classification** ([`keywords`], [`classify`], [`baseline`]) — the
//!   multi-step pipeline of §4.3 (APN keywords → validated APNs → device-
//!   property propagation) producing `smart` / `feat` / `m2m` /
//!   `m2m-maybe`, plus the naive baselines the paper argues against.
//! * **SMIP identification** ([`analysis::smip`]) — the §4.4 recipe:
//!   dedicated IMSI ranges for native smart meters, energy-company APN
//!   patterns + single foreign home operator + module-vendor TACs for
//!   roaming ones.
//! * **Metrics** ([`metrics`]) — empirical CDFs, shares, cross-tabulations;
//!   mobility (centroid/gyration) comes with the catalog rows.
//! * **Analyses** ([`analysis`]) — one module per paper figure/table,
//!   producing plain data structs the bench harness prints.
//! * **Validation** ([`validate`]) — precision/recall of any classifier
//!   against generator ground truth (the measurement the paper's authors
//!   could not make).
//! * **Reports** ([`report`]) — terminal rendering of tables and CDFs.
//!
//! Everything here consumes only probe *records* — never simulator ground
//! truth — so the pipeline runs unchanged on real operator data shaped
//! like the record schemas in `wtr-probes`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod classify;
pub mod keywords;
pub mod metrics;
pub mod report;
pub mod stream;
pub mod summary;
pub mod validate;

pub use classify::{Classification, Classifier, DeviceClass};
pub use metrics::{CrossTab, Ecdf};
pub use stream::{materialize_catalog, stream_catalog, AnalysisSuite, StreamedCatalog};
pub use summary::{summarize, DeviceSummary};
pub use validate::{ConfusionMatrix, Validation};
