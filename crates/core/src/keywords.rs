//! The APN keyword vocabulary (§4.3).
//!
//! "Ranking the APNs by number of devices using it, we identified 26
//! 'keywords' in the APN string which we mapped to M2M/IoT verticals using
//! information found online (e.g., scania — automotive company, rwe —
//! energy company, intelligent.m2m — global IoT SIM provider)."
//!
//! This module carries that vocabulary: 26 M2M keywords each mapped to a
//! vertical hint, plus the consumer keywords (e.g. `payandgo`) used for the
//! `smart` / `feat` classes. Keywords match as substrings of APN
//! network-identifier labels, case-insensitively.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The vertical a keyword hints at — the industry of the APN's owner, as
/// one would find "online".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VerticalHint {
    /// Energy / utilities (smart meters).
    Energy,
    /// Automotive (connected cars, trucks).
    Automotive,
    /// Logistics / asset tracking.
    Logistics,
    /// Payments / POS terminals.
    Payments,
    /// Security / alarm services.
    Security,
    /// Wearables / consumer IoT gadgets.
    Wearables,
    /// Industrial telemetry.
    Industrial,
    /// A global IoT SIM / M2M platform provider.
    IotPlatform,
}

impl fmt::Display for VerticalHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerticalHint::Energy => "energy",
            VerticalHint::Automotive => "automotive",
            VerticalHint::Logistics => "logistics",
            VerticalHint::Payments => "payments",
            VerticalHint::Security => "security",
            VerticalHint::Wearables => "wearables",
            VerticalHint::Industrial => "industrial",
            VerticalHint::IotPlatform => "iot-platform",
        };
        f.write_str(s)
    }
}

/// The 26 M2M keywords with their vertical hints.
///
/// Energy entries include the five UK energy companies §4.4 identifies in
/// SMIP-roaming APNs (Elster, RWE, Centrica, General Electric, BGLOBAL).
pub const M2M_KEYWORDS: &[(&str, VerticalHint)] = &[
    // Energy / smart metering.
    ("centrica", VerticalHint::Energy),
    ("centricaplc", VerticalHint::Energy),
    ("rwe", VerticalHint::Energy),
    ("elster", VerticalHint::Energy),
    ("bglobal", VerticalHint::Energy),
    ("generalelectric", VerticalHint::Energy),
    ("smhp", VerticalHint::Energy),
    ("smartmeter", VerticalHint::Energy),
    ("metering", VerticalHint::Energy),
    // Automotive.
    ("scania", VerticalHint::Automotive),
    ("telematics", VerticalHint::Automotive),
    ("connectedcar", VerticalHint::Automotive),
    ("automotive", VerticalHint::Automotive),
    ("fleet", VerticalHint::Automotive),
    // Logistics / tracking.
    ("tracker", VerticalHint::Logistics),
    ("tracking", VerticalHint::Logistics),
    ("logistics", VerticalHint::Logistics),
    ("asset", VerticalHint::Logistics),
    // Payments.
    ("pos", VerticalHint::Payments),
    ("payment", VerticalHint::Payments),
    // Security.
    ("alarm", VerticalHint::Security),
    ("securitas", VerticalHint::Security),
    // Wearables / industrial.
    ("wearable", VerticalHint::Wearables),
    ("telemetry", VerticalHint::Industrial),
    // IoT platform providers.
    ("intelligent-m2m", VerticalHint::IotPlatform),
    ("m2m", VerticalHint::IotPlatform),
];

/// Consumer-service keywords (§4.3 names `payandgo` as the example).
pub const CONSUMER_KEYWORDS: &[&str] = &[
    "payandgo",
    "internet",
    "web",
    "wap",
    "mms",
    "prepay",
    "contract",
    "broadband",
    "mobile",
];

/// Allocation-free ASCII case-insensitive substring search: whether
/// `haystack` contains `needle`, comparing bytes with
/// [`u8::eq_ignore_ascii_case`]. `needle` is expected lowercase (all
/// vocabulary entries are); no intermediate lowercased copy of the
/// haystack is ever built — this is what keeps the per-distinct-APN
/// classification scan allocation-free.
pub fn contains_ignore_ascii_case(haystack: &str, needle: &str) -> bool {
    let (h, n) = (haystack.as_bytes(), needle.as_bytes());
    if n.is_empty() {
        return true;
    }
    if n.len() > h.len() {
        return false;
    }
    h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

/// `M2M_KEYWORDS` sorted longest-first, computed once. Longer keywords
/// first so `centricaplc` wins over `centrica`, and specific names win
/// over the generic `m2m`; ties keep vocabulary order (stable sort).
fn m2m_keywords_by_len() -> &'static [(&'static str, VerticalHint)] {
    static SORTED: std::sync::OnceLock<Vec<(&'static str, VerticalHint)>> =
        std::sync::OnceLock::new();
    SORTED.get_or_init(|| {
        let mut sorted = M2M_KEYWORDS.to_vec();
        sorted.sort_by_key(|(k, _)| std::cmp::Reverse(k.len()));
        sorted
    })
}

/// Finds the first M2M keyword matching `apn_string` (any label substring,
/// input need not be lowercase). Allocation-free.
pub fn match_m2m_keyword(apn_string: &str) -> Option<(&'static str, VerticalHint)> {
    m2m_keywords_by_len()
        .iter()
        .find(|(kw, _)| contains_ignore_ascii_case(apn_string, kw))
        .copied()
}

/// Whether `apn_string` matches a consumer keyword. Allocation-free.
pub fn is_consumer_apn(apn_string: &str) -> bool {
    CONSUMER_KEYWORDS
        .iter()
        .any(|kw| contains_ignore_ascii_case(apn_string, kw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_has_26_m2m_keywords() {
        assert_eq!(M2M_KEYWORDS.len(), 26, "the paper's keyword count");
    }

    #[test]
    fn keywords_are_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (kw, _) in M2M_KEYWORDS {
            assert_eq!(*kw, kw.to_ascii_lowercase());
            assert!(seen.insert(*kw), "{kw} duplicated");
        }
    }

    #[test]
    fn paper_examples_match() {
        // §4.3's worked examples.
        assert_eq!(
            match_m2m_keyword("fleetweb.scania.com").map(|(_, h)| h),
            Some(VerticalHint::Automotive)
        );
        assert_eq!(
            match_m2m_keyword("telemetry.rwe.de").map(|(_, h)| h),
            Some(VerticalHint::Industrial) // telemetry is longer than rwe
        );
        assert_eq!(
            match_m2m_keyword("smhp.centricaplc.com.mnc004.mcc204.gprs").map(|(_, h)| h),
            Some(VerticalHint::Energy)
        );
        assert_eq!(
            match_m2m_keyword("intelligent-m2m.provider").map(|(k, _)| k),
            Some("intelligent-m2m")
        );
    }

    #[test]
    fn longest_keyword_wins() {
        // `centricaplc` must win over `centrica`; `intelligent-m2m` over
        // bare `m2m`.
        assert_eq!(
            match_m2m_keyword("x.centricaplc.y").map(|(k, _)| k),
            Some("centricaplc")
        );
        assert_eq!(match_m2m_keyword("a.m2m.b").map(|(k, _)| k), Some("m2m"));
    }

    #[test]
    fn consumer_keywords_match() {
        assert!(is_consumer_apn("payandgo.o2.co.uk"));
        assert!(is_consumer_apn("Internet"));
        assert!(!is_consumer_apn("smhp.centricaplc.com"));
    }

    #[test]
    fn generic_strings_do_not_match_m2m() {
        assert!(match_m2m_keyword("internet").is_none());
        assert!(match_m2m_keyword("payandgo.example").is_none());
        assert!(match_m2m_keyword("").is_none());
    }

    #[test]
    fn case_insensitive() {
        assert!(match_m2m_keyword("SCANIA.COM").is_some());
        assert!(is_consumer_apn("PAYANDGO"));
    }

    #[test]
    fn ascii_search_matches_std_contains_on_lowercase() {
        let cases = [
            ("", "", true),
            ("abc", "", true),
            ("", "a", false),
            ("a", "abc", false),
            ("x.CentricaPLC.y", "centricaplc", true),
            ("x.centrica.y", "centricaplc", false),
            ("M2M", "m2m", true),
            ("mm2m2m", "m2m", true),
        ];
        for (hay, needle, want) in cases {
            assert_eq!(
                contains_ignore_ascii_case(hay, needle),
                want,
                "{hay:?} contains {needle:?}"
            );
            assert_eq!(
                hay.to_ascii_lowercase().contains(needle),
                want,
                "std reference for {hay:?}/{needle:?}"
            );
        }
    }
}
