//! Baseline classifiers the paper compares against (§4.3).
//!
//! * [`vendor_baseline`] — the "big players" heuristic: a fixed list of
//!   known M2M module vendors ("Gemalto, Telit, and Sierra Wireless …
//!   combined 75% of all inroaming devices"). The paper calls this "a
//!   naïve approach" because it still needs per-vendor manual vetting and
//!   misses the long tail.
//! * [`apn_only_baseline`] — keywords without property propagation: "when
//!   used in isolation, APNs are not enough as we find about 21% of the
//!   devices in the dataset not having any APN".
//!
//! Both emit the same [`Classification`] shape as the full pipeline so the
//! validation module can compare them head-to-head (experiment E19).

use crate::classify::{Classification, DeviceClass};
use crate::keywords::{is_consumer_apn, match_m2m_keyword};
use crate::summary::DeviceSummary;
use wtr_model::intern::ApnTable;
use wtr_model::tacdb::{GsmaClass, TacDatabase};

/// Vendors treated as M2M by the "big players" baseline.
pub const BIG_PLAYERS: &[&str] = &["Gemalto", "Telit", "Sierra Wireless"];

/// The vendor-list baseline: TAC vendor ∈ big players → `m2m`; GSMA
/// smartphone class → `smart`; GSMA feature-phone class → `feat`;
/// everything else `m2m-maybe`.
pub fn vendor_baseline(tacdb: &TacDatabase, summaries: &[DeviceSummary]) -> Classification {
    let mut result = Classification::default();
    for s in summaries {
        if s.apns.is_empty() {
            result.devices_without_apn += 1;
        }
        let info = tacdb.get(s.tac);
        let class = match info {
            Some(i) if BIG_PLAYERS.contains(&i.vendor.as_str()) => DeviceClass::M2m,
            Some(i) if i.gsma_class == GsmaClass::Smartphone => DeviceClass::Smart,
            Some(i) if i.gsma_class == GsmaClass::FeaturePhone => DeviceClass::Feat,
            _ => DeviceClass::M2mMaybe,
        };
        result.classes.insert(s.user, class);
    }
    result
}

/// The APN-keywords-only baseline: validated APN → `m2m`; consumer APN →
/// `smart`/`feat` by OS; **no propagation**, so every APN-less device lands
/// in `m2m-maybe`. `apns` is the intern table the summaries' symbols
/// resolve through; keyword verdicts are memoized per distinct symbol.
pub fn apn_only_baseline(
    tacdb: &TacDatabase,
    summaries: &[DeviceSummary],
    apns: &ApnTable,
) -> Classification {
    let mut result = Classification::default();
    // One keyword scan per distinct symbol, reused for every device.
    let m2m_kw: Vec<Option<&'static str>> = apns
        .strings()
        .iter()
        .map(|a| match_m2m_keyword(a).map(|(kw, _)| kw))
        .collect();
    let consumer: Vec<bool> = apns.strings().iter().map(|a| is_consumer_apn(a)).collect();
    for s in summaries {
        if s.apns.is_empty() {
            result.devices_without_apn += 1;
        }
        let mut m2m_apn = false;
        for &sym in &s.apns {
            if let Some(kw) = m2m_kw[sym.index()] {
                result
                    .validated_apns
                    .insert(apns.resolve(sym).to_owned(), kw.to_owned());
                m2m_apn = true;
            }
        }
        result.total_apns = result.total_apns.max(result.validated_apns.len());
        let class = if m2m_apn {
            DeviceClass::M2m
        } else if s.apns.iter().any(|sym| consumer[sym.index()]) {
            let os_major = tacdb
                .get(s.tac)
                .is_some_and(|i| i.os.is_major_smartphone_os());
            if os_major {
                DeviceClass::Smart
            } else {
                DeviceClass::Feat
            }
        } else {
            DeviceClass::M2mMaybe
        };
        result.classes.insert(s.user, class);
    }
    result
}

/// The IMSI-range-only classifier: trusts nothing but the GSMA
/// transparency ranges (§1). Perfect precision on tagged devices, but
/// recall is bounded by how many partners actually publish ranges — in
/// 2019 almost none did, which is why the paper had to invent the APN
/// pipeline.
pub fn imsi_range_baseline(tacdb: &TacDatabase, summaries: &[DeviceSummary]) -> Classification {
    let mut result = Classification::default();
    for s in summaries {
        if s.apns.is_empty() {
            result.devices_without_apn += 1;
        }
        let class = if s.in_published_m2m_range || s.in_designated_range {
            result.range_detected += 1;
            DeviceClass::M2m
        } else {
            match tacdb.get(s.tac) {
                Some(i) if i.gsma_class == GsmaClass::Smartphone => DeviceClass::Smart,
                Some(i) if i.gsma_class == GsmaClass::FeaturePhone => DeviceClass::Feat,
                _ => DeviceClass::M2mMaybe,
            }
        };
        result.classes.insert(s.user, class);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::rat::RadioFlags;
    use wtr_model::roaming::RoamingLabel;
    use wtr_probes::catalog::MobilityAccum;

    fn summary(table: &mut ApnTable, user: u64, tac: Tac, apns: &[&str]) -> DeviceSummary {
        DeviceSummary {
            user,
            sim_plmn: Plmn::of(204, 4),
            tac,
            active_days: 1,
            first_day: 0,
            last_day: 0,
            dominant_label: RoamingLabel::IH,
            labels: BTreeSet::from([RoamingLabel::IH]),
            apns: apns.iter().map(|s| table.intern(s)).collect(),
            radio_flags: RadioFlags::default(),
            events: 1,
            failed_events: 0,
            calls: 0,
            sms: 0,
            data_sessions: 0,
            bytes: 0,
            in_designated_range: false,
            in_published_m2m_range: false,
            visited: BTreeSet::new(),
            hourly: [0; 24],
            mobility: MobilityAccum::default(),
        }
    }

    fn tac_of(db: &TacDatabase, vendor: &str) -> Tac {
        let mut tacs: Vec<Tac> = db.tacs_of_vendor(vendor).collect();
        tacs.sort();
        tacs[0]
    }

    #[test]
    fn vendor_baseline_flags_big_players() {
        let db = TacDatabase::standard();
        let mut t = ApnTable::new();
        let sums = vec![
            summary(&mut t, 1, tac_of(&db, "Gemalto"), &[]),
            summary(&mut t, 2, tac_of(&db, "Quectel"), &[]),
        ];
        let c = vendor_baseline(&db, &sums);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2m));
        // Long-tail M2M vendor missed — the baseline's known weakness.
        assert_eq!(c.class_of(2), Some(DeviceClass::M2mMaybe));
    }

    #[test]
    fn apn_only_baseline_misses_apnless_devices() {
        let db = TacDatabase::standard();
        let mut t = ApnTable::new();
        let telit = tac_of(&db, "Telit");
        let sums = vec![
            summary(&mut t, 1, telit, &["telemetry.rwe.de"]),
            summary(&mut t, 2, telit, &[]), // same hardware, no APN
        ];
        let c = apn_only_baseline(&db, &sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2m));
        assert_eq!(
            c.class_of(2),
            Some(DeviceClass::M2mMaybe),
            "no propagation: the APN-less sibling is lost"
        );
        assert_eq!(c.devices_without_apn, 1);
    }

    #[test]
    fn imsi_range_baseline_uses_only_range_tags() {
        let db = TacDatabase::standard();
        let mut t = ApnTable::new();
        let telit = tac_of(&db, "Telit");
        let mut tagged = summary(&mut t, 1, telit, &["telemetry.rwe.de"]);
        tagged.in_published_m2m_range = true;
        let untagged = summary(&mut t, 2, telit, &["telemetry.rwe.de"]);
        let c = imsi_range_baseline(&db, &[tagged, untagged]);
        assert_eq!(c.class_of(1), Some(DeviceClass::M2m));
        // Same device, same APN — but no published range, so the
        // range-only classifier cannot identify it.
        assert_eq!(c.class_of(2), Some(DeviceClass::M2mMaybe));
        assert_eq!(c.range_detected, 1);
    }

    #[test]
    fn apn_only_classifies_phones_by_consumer_apn() {
        let db = TacDatabase::standard();
        let phone = {
            let mut tacs: Vec<Tac> = db
                .iter()
                .filter(|e| e.gsma_class == GsmaClass::Smartphone)
                .map(|e| e.tac)
                .collect();
            tacs.sort();
            tacs[0]
        };
        let mut t = ApnTable::new();
        let sums = vec![summary(&mut t, 1, phone, &["payandgo.example"])];
        let c = apn_only_baseline(&db, &sums, &t);
        assert_eq!(c.class_of(1), Some(DeviceClass::Smart));
    }
}
