//! Single-pass streaming front end for the visited-MNO pipeline.
//!
//! The materialized pipeline loads a whole [`DevicesCatalog`] into
//! memory, then re-scans it (and the summary vector) once per analysis.
//! This module collapses that into two bounded passes:
//!
//! 1. **File pass** ([`stream_catalog`]) — a chunked
//!    [`CatalogStream`](wtr_probes::io::CatalogStream) feeds a broadcast
//!    of [`ChunkFold`] sinks: device-summary accumulation
//!    ([`SummaryFold`]) and per-day label shares ([`LabelSharesFold`])
//!    ride the same chunks. Peak memory is O(devices + chunk window) —
//!    catalog rows are dropped as soon as each chunk is folded, and no
//!    `DevicesCatalog` ever exists.
//! 2. **Summary pass** ([`analyze`]) — after classification, *every*
//!    per-summary analysis table folds in one broadcast
//!    [`drive_slice`] over the summaries (plus one short follow-up pass
//!    for the SMIP group statistics, which need the identified member
//!    sets). The 6+ independent re-scans of the materialized path
//!    become one.
//!
//! # Equivalence
//!
//! Both passes use chunk boundaries that are pure functions of the
//! record count ([`wtr_sim::par::chunk_size`]), the same boundaries the
//! materialized functions use — so every number here is byte-identical
//! to the materialized pipeline at any thread count. The
//! `stream_equivalence` test suite serializes both sides and compares
//! bytes.

use crate::analysis::activity::{
    active_days, gyration, ActiveDays, ActiveDaysFold, Gyration, GyrationFold, StatusGroup,
};
use crate::analysis::diurnal::{profiles, DiurnalFold, DiurnalProfile};
use crate::analysis::population::{
    class_label_breakdown, home_countries, ClassLabelBreakdown, ClassLabelFold, HomeCountries,
    HomeCountriesFold, LabelShares, LabelSharesFold,
};
use crate::analysis::rat_usage::{rat_usage, Plane, RatUsage, RatUsageFold};
use crate::analysis::revenue::{inbound_economics, ClassEconomics, RateCard, RevenueFold};
use crate::analysis::smip::{
    group_stats, identify, GroupStatsFold, SmipFold, SmipGroupStats, SmipPopulation,
};
use crate::analysis::traffic::{traffic_dist, TrafficDist, TrafficFold, TrafficMetric};
use crate::analysis::verticals::{compare, VerticalProfile, VerticalsFold};
use crate::classify::{Classification, Classifier, DeviceClass};
use crate::summary::{DeviceSummary, SummaryFold};
use std::io::BufRead;
use wtr_model::intern::ApnTable;
use wtr_model::tacdb::TacDatabase;
use wtr_probes::catalog::DevicesCatalog;
use wtr_probes::io::{CatalogStream, IoError};
use wtr_sim::stream::{drive, drive_slice};

/// The canonical classes the reporting pipeline profiles (Fig. 9,
/// diurnal shapes): the populations the paper actually contrasts.
pub const CLASSES: [DeviceClass; 3] = [DeviceClass::M2m, DeviceClass::Smart, DeviceClass::Feat];

/// The Fig. 10 traffic populations.
pub const TRAFFIC_PAIRS: [(DeviceClass, StatusGroup); 3] = [
    (DeviceClass::M2m, StatusGroup::InboundRoaming),
    (DeviceClass::Smart, StatusGroup::Native),
    (DeviceClass::Smart, StatusGroup::InboundRoaming),
];

/// The Fig. 7/Fig. 8 inbound-contrast populations.
pub const ACTIVE_PAIRS: [(DeviceClass, StatusGroup); 2] = [
    (DeviceClass::M2m, StatusGroup::InboundRoaming),
    (DeviceClass::Smart, StatusGroup::InboundRoaming),
];

/// The three Fig. 9 planes, in reporting order.
pub const PLANES: [Plane; 3] = [Plane::Any, Plane::Data, Plane::Voice];

/// The three Fig. 10 metrics, in reporting order.
pub const METRICS: [TrafficMetric; 3] = [
    TrafficMetric::SignalingPerDay,
    TrafficMetric::CallsPerDay,
    TrafficMetric::BytesPerDay,
];

/// Everything the analysis pipeline needs from a catalog, produced
/// without ever materializing the catalog itself.
///
/// `Clone` + serde so a sealed snapshot can be cached (or shipped)
/// without re-folding the catalog — the `wtr_serve` snapshot surface.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamedCatalog {
    /// Per-device summaries (canonical user order).
    pub summaries: Vec<DeviceSummary>,
    /// The interned APN table the summaries' symbols resolve through.
    pub apns: ApnTable,
    /// Window length in days.
    pub window_days: u32,
    /// Catalog rows consumed.
    pub rows: u64,
    /// Per-day roaming-label shares (folded during the same pass).
    pub label_shares: LabelShares,
}

/// Reads a catalog file (JSONL or `WTRCAT`, auto-sniffed) in bounded
/// memory: one chunked pass feeds summary accumulation and the label
/// shares simultaneously; rows are dropped chunk by chunk.
///
/// Byte-identical to `read_catalog_auto` followed by
/// [`crate::summary::summarize`] and
/// [`crate::analysis::population::label_shares`]: the stream re-chunks
/// at [`wtr_sim::par::chunk_size`] of the declared row count, the same
/// boundaries the materialized path folds with.
pub fn stream_catalog<R: BufRead>(input: R) -> Result<StreamedCatalog, IoError> {
    let mut stream = CatalogStream::new(input)?;
    let window_days = stream.window_days();
    let mut sinks = (SummaryFold::new(), LabelSharesFold::new(window_days));
    let rows = drive(&mut stream, &mut sinks)?;
    let apns = stream.finish()?;
    let (summary_fold, label_fold) = sinks;
    Ok(StreamedCatalog {
        summaries: summary_fold.finish(),
        apns,
        window_days,
        rows,
        label_shares: label_fold.finish(),
    })
}

/// [`StreamedCatalog`] built from an in-memory catalog — the
/// materialized entry point to the same downstream [`analyze`] call.
pub fn materialize_catalog(catalog: &DevicesCatalog) -> StreamedCatalog {
    StreamedCatalog {
        summaries: crate::summary::summarize(catalog),
        apns: catalog.apn_table().clone(),
        window_days: catalog.window_days(),
        rows: catalog.len() as u64,
        label_shares: crate::analysis::population::label_shares(catalog),
    }
}

/// Every per-summary analysis table of the reporting pipeline, computed
/// by [`analyze`] in one broadcast pass.
///
/// `Clone` + canonical serde across the whole suite (every member table
/// already serializes canonically — `BTreeMap` keys, stable vector
/// orders), so one computed suite can be cached per absorb generation
/// and served repeatedly without re-folding: the `wtr_serve` response
/// cache stores exactly this.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AnalysisSuite {
    /// The §4.3 classification.
    pub classification: Classification,
    /// Fig. 5 home-country structure of inbound roamers.
    pub home: HomeCountries,
    /// Fig. 6 class × label table.
    pub class_label: ClassLabelBreakdown,
    /// Fig. 9 RAT usage, one `Vec<RatUsage>` per plane in [`PLANES`]
    /// order (each over [`CLASSES`]).
    pub rat: Vec<Vec<RatUsage>>,
    /// Fig. 10 traffic distributions, one `Vec<TrafficDist>` per metric
    /// in [`METRICS`] order (each over [`TRAFFIC_PAIRS`]).
    pub traffic: Vec<Vec<TrafficDist>>,
    /// Fig. 7 active-days ECDFs over [`ACTIVE_PAIRS`].
    pub active: Vec<ActiveDays>,
    /// Fig. 8 gyration ECDFs over [`ACTIVE_PAIRS`].
    pub gyration: Vec<Gyration>,
    /// §4.4 SMIP populations.
    pub smip: SmipPopulation,
    /// Fig. 11 statistics for the native meters.
    pub smip_native: SmipGroupStats,
    /// Fig. 11 statistics for the roaming meters.
    pub smip_roaming: SmipGroupStats,
    /// Fig. 12 (connected-cars, smart-meters) profiles.
    pub verticals: (VerticalProfile, VerticalProfile),
    /// Diurnal profiles over [`CLASSES`].
    pub diurnal: Vec<DiurnalProfile>,
    /// Inbound load-vs-revenue economics.
    pub revenue: Vec<ClassEconomics>,
}

/// Runs classification, then folds **all** analysis tables in one
/// broadcast [`drive_slice`] over the summaries (nested
/// [`ChunkFold`] tuples + `Vec` broadcast), plus one short follow-up
/// pass for the SMIP group statistics (they need the member sets
/// [`identify`] produces).
///
/// Byte-identical to calling each analysis function separately — the
/// broadcast shares chunk boundaries with the standalone drivers — and
/// thread-count invariant.
pub fn analyze(
    summaries: &[DeviceSummary],
    apns: &ApnTable,
    window_days: u32,
    tacdb: &TacDatabase,
) -> AnalysisSuite {
    let classification = Classifier::new(tacdb).classify(summaries, apns);

    let rat_folds: Vec<RatUsageFold> = PLANES
        .iter()
        .map(|plane| RatUsageFold::new(&classification, &CLASSES, *plane))
        .collect();
    let traffic_folds: Vec<TrafficFold> = METRICS
        .iter()
        .map(|metric| TrafficFold::new(&classification, &TRAFFIC_PAIRS, *metric))
        .collect();
    let mut sinks = (
        HomeCountriesFold::new(&classification),
        ClassLabelFold::new(&classification),
        rat_folds,
        traffic_folds,
        (
            ActiveDaysFold::new(&classification, &ACTIVE_PAIRS),
            GyrationFold::new(&classification, &ACTIVE_PAIRS),
            SmipFold::new(tacdb, apns),
            VerticalsFold::new(apns),
            (
                DiurnalFold::new(&classification, &CLASSES),
                RevenueFold::new(&classification, RateCard::default()),
            ),
        ),
    );
    drive_slice(&mut sinks, summaries);
    let (
        home_fold,
        class_label_fold,
        rat_folds,
        traffic_folds,
        (active_fold, gyration_fold, smip_fold, verticals_fold, (diurnal_fold, revenue_fold)),
    ) = sinks;

    let smip = smip_fold.finish();
    // Second (short) pass: the Fig. 11 group statistics depend on the
    // member sets identified above, so they cannot ride the first
    // broadcast. Both groups fold in one pass here.
    let mut group_sinks = (
        GroupStatsFold::new(&smip.native, window_days),
        GroupStatsFold::new(&smip.roaming, window_days),
    );
    drive_slice(&mut group_sinks, summaries);
    let (native_fold, roaming_fold) = group_sinks;

    AnalysisSuite {
        home: home_fold.finish(),
        class_label: class_label_fold.finish(),
        rat: rat_folds.into_iter().map(RatUsageFold::finish).collect(),
        traffic: traffic_folds.into_iter().map(TrafficFold::finish).collect(),
        active: active_fold.finish(),
        gyration: gyration_fold.finish(),
        smip_native: native_fold.finish(),
        smip_roaming: roaming_fold.finish(),
        smip,
        verticals: verticals_fold.finish(),
        diurnal: diurnal_fold.finish(),
        revenue: revenue_fold.finish(),
        classification,
    }
}

/// The same suite via the standalone per-table functions — the
/// reference the equivalence tests compare [`analyze`] against.
pub fn analyze_rescan(
    summaries: &[DeviceSummary],
    apns: &ApnTable,
    window_days: u32,
    tacdb: &TacDatabase,
) -> AnalysisSuite {
    let classification = Classifier::new(tacdb).classify(summaries, apns);
    let smip = identify(summaries, tacdb, apns);
    AnalysisSuite {
        home: home_countries(summaries, &classification),
        class_label: class_label_breakdown(summaries, &classification),
        rat: PLANES
            .iter()
            .map(|p| rat_usage(summaries, &classification, &CLASSES, *p))
            .collect(),
        traffic: METRICS
            .iter()
            .map(|m| traffic_dist(summaries, &classification, &TRAFFIC_PAIRS, *m))
            .collect(),
        active: active_days(summaries, &classification, &ACTIVE_PAIRS),
        gyration: gyration(summaries, &classification, &ACTIVE_PAIRS),
        smip_native: group_stats(summaries, &smip.native, window_days),
        smip_roaming: group_stats(summaries, &smip.roaming, window_days),
        verticals: compare(summaries, apns),
        diurnal: profiles(summaries, &classification, &CLASSES),
        revenue: inbound_economics(summaries, &classification, RateCard::default()),
        smip,
        classification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::ids::{Plmn, Tac};
    use wtr_model::roaming::RoamingLabel;
    use wtr_model::time::Day;
    use wtr_probes::io::{write_catalog, write_catalog_bin};

    fn catalog() -> DevicesCatalog {
        let mut cat = DevicesCatalog::new(5);
        let apn = cat.intern_apn("smhp.centricaplc.com.mnc004.mcc204.gprs");
        let tac = Tac::new(35_000_000).unwrap();
        for user in 0..40u64 {
            for day in 0..(1 + user % 5) as u32 {
                let (plmn, label) = if user % 3 == 0 {
                    (Plmn::of(204, 4), RoamingLabel::IH)
                } else {
                    (Plmn::of(234, 30), RoamingLabel::HH)
                };
                let r = cat.row_mut(user, Day(day), plmn, tac, label);
                r.events += 2 + user % 7;
                if user % 3 == 0 {
                    r.apns.insert(apn);
                }
            }
        }
        cat
    }

    #[test]
    fn stream_catalog_matches_materialized_jsonl() {
        let cat = catalog();
        let mut buf = Vec::new();
        write_catalog(&mut buf, &cat).unwrap();
        let streamed = stream_catalog(buf.as_slice()).unwrap();
        let materialized = materialize_catalog(&cat);
        assert_eq!(streamed.rows, materialized.rows);
        assert_eq!(streamed.window_days, materialized.window_days);
        assert_eq!(
            serde_json::to_string(&streamed.summaries).unwrap(),
            serde_json::to_string(&materialized.summaries).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&streamed.label_shares).unwrap(),
            serde_json::to_string(&materialized.label_shares).unwrap()
        );
    }

    #[test]
    fn stream_catalog_matches_materialized_wtrcat() {
        let cat = catalog();
        let mut buf = Vec::new();
        write_catalog_bin(&mut buf, &cat).unwrap();
        let streamed = stream_catalog(buf.as_slice()).unwrap();
        let materialized = materialize_catalog(&cat);
        assert_eq!(
            serde_json::to_string(&streamed.summaries).unwrap(),
            serde_json::to_string(&materialized.summaries).unwrap()
        );
        assert_eq!(streamed.apns.strings(), materialized.apns.strings());
    }

    #[test]
    fn broadcast_suite_matches_rescans() {
        let cat = catalog();
        let data = materialize_catalog(&cat);
        let tacdb = TacDatabase::standard();
        let one_pass = analyze(&data.summaries, &data.apns, data.window_days, &tacdb);
        let rescan = analyze_rescan(&data.summaries, &data.apns, data.window_days, &tacdb);
        assert_eq!(
            serde_json::to_string(&one_pass.classification).unwrap(),
            serde_json::to_string(&rescan.classification).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&one_pass.home).unwrap(),
            serde_json::to_string(&rescan.home).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&one_pass.rat).unwrap(),
            serde_json::to_string(&rescan.rat).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&one_pass.traffic).unwrap(),
            serde_json::to_string(&rescan.traffic).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&one_pass.smip).unwrap(),
            serde_json::to_string(&rescan.smip).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&one_pass.revenue).unwrap(),
            serde_json::to_string(&rescan.revenue).unwrap()
        );
    }
}
