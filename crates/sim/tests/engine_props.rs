//! Property tests for the discrete-event engine and traffic samplers,
//! including the heap-vs-calendar scheduler equivalence matrix.

use proptest::prelude::*;
use wtr_model::time::{SimDuration, SimTime};
use wtr_sim::engine::{Agent, AgentId, Engine, Scheduler, SchedulerKind, WakeTag};
use wtr_sim::rng::SubstreamRng;

/// Agent that fires once per preset time, logging into the shared world.
struct Preset {
    times: Vec<u64>,
}

impl Agent<Vec<(u64, u32)>> for Preset {
    fn init(&mut self, id: AgentId, _w: &mut Vec<(u64, u32)>, s: &mut Scheduler) {
        for t in &self.times {
            s.wake_at(id, WakeTag(0), SimTime::from_secs(*t));
        }
    }
    fn wake(&mut self, id: AgentId, _tag: WakeTag, w: &mut Vec<(u64, u32)>, s: &mut Scheduler) {
        w.push((s.now().as_secs(), id.0));
    }
}

proptest! {
    #[test]
    fn dispatch_is_globally_time_ordered(
        schedules in prop::collection::vec(
            prop::collection::vec(0u64..5_000, 0..20),
            1..8
        ),
        horizon in 1u64..5_000
    ) {
        let mut engine = Engine::new(Vec::new(), SimTime::from_secs(horizon));
        let mut expected = 0usize;
        for times in &schedules {
            expected += times.iter().filter(|t| **t < horizon).count();
            engine.add_agent(Preset { times: times.clone() });
        }
        let log = engine.run();
        // Every in-horizon wake fires exactly once.
        prop_assert_eq!(log.len(), expected);
        // Timestamps are monotone.
        prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        // Nothing fires at or past the horizon.
        prop_assert!(log.iter().all(|(t, _)| *t < horizon));
    }

    #[test]
    fn engine_is_reproducible(
        schedules in prop::collection::vec(
            prop::collection::vec(0u64..2_000, 0..12),
            1..5
        )
    ) {
        let run = || {
            let mut engine = Engine::new(Vec::new(), SimTime::from_secs(2_000));
            for times in &schedules {
                engine.add_agent(Preset { times: times.clone() });
            }
            engine.run()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn poisson_mean_tracks_lambda(lambda in 0.1f64..40.0, seed in any::<u64>()) {
        let mut rng = SubstreamRng::derive(seed, 1);
        let n = 3_000;
        let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
        let mean = total as f64 / n as f64;
        // 5-sigma band for the sample mean of a Poisson.
        let sigma = (lambda / n as f64).sqrt();
        prop_assert!((mean - lambda).abs() < 5.0 * sigma + 0.05,
            "lambda {} mean {}", lambda, mean);
    }

    #[test]
    fn weighted_index_stays_in_bounds(
        weights in prop::collection::vec(0.0f64..10.0, 1..12),
        seed in any::<u64>()
    ) {
        let mut rng = SubstreamRng::derive(seed, 2);
        for _ in 0..100 {
            let idx = rng.weighted_index(&weights);
            prop_assert!(idx < weights.len());
        }
    }

    #[test]
    fn lognormal_positive(median in 0.1f64..1e6, sigma in 0.0f64..3.0, seed in any::<u64>()) {
        let mut rng = SubstreamRng::derive(seed, 3);
        for _ in 0..50 {
            prop_assert!(rng.lognormal(median, sigma) > 0.0);
        }
    }

    #[test]
    fn mobility_positions_always_valid(
        seed in any::<u64>(),
        t in 0u64..86_400 * 22
    ) {
        use wtr_model::country::Country;
        use wtr_radio::geo::CountryGeometry;
        use wtr_sim::mobility::MobilityModel;
        let geom = CountryGeometry::of(Country::by_iso("ES").unwrap());
        for model in [
            MobilityModel::stationary_in(&geom, seed),
            MobilityModel::local_area_in(&geom, 0.2, seed),
            MobilityModel::Waypoint { geometry: geom, leg_hours: 2, seed },
        ] {
            let p = model.position(SimTime::from_secs(t));
            prop_assert!((-90.0..=90.0).contains(&p.lat));
            prop_assert!((-180.0..=180.0).contains(&p.lon));
        }
    }
}

// ---------------------------------------------------------------------
// Heap-vs-calendar dispatch-order equivalence.
//
// The calendar queue must reproduce the `BinaryHeap` dispatch sequence
// *bit for bit* under every wake-up time distribution, including the
// ones its bucket geometry handles worst: pathological same-instant
// bursts (firmware-campaign storms per Finley & Vesselkov) and tight
// clusters that force the occupancy-feedback narrowing.
// ---------------------------------------------------------------------

/// How raw wake-up draws map onto the simulated horizon.
#[derive(Debug, Clone, Copy)]
enum TimeShape {
    /// Uniform over the whole horizon.
    Uniform,
    /// Everything inside a few narrow clusters.
    Clustered,
    /// Everything at a handful of exact instants (same-timestamp burst).
    Burst,
}

const EQ_HORIZON: u64 = 200_000;

/// Maps a raw `0..u32::MAX` draw to a wake-up time under `shape`.
fn shape_time(shape: TimeShape, raw: u32) -> u64 {
    let raw = u64::from(raw);
    match shape {
        TimeShape::Uniform => raw % EQ_HORIZON,
        TimeShape::Clustered => {
            // 4 clusters of 256 seconds spread over the horizon.
            let cluster = raw % 4;
            cluster * (EQ_HORIZON / 4) + (raw / 7) % 256
        }
        TimeShape::Burst => {
            // 3 exact instants: every draw collides with many others.
            [100u64, 50_000, 199_999][(raw % 3) as usize]
        }
    }
}

/// Agent driven by preset wake-ups that also re-schedules: every wake
/// with budget left schedules one follow-up `gap` seconds out (gap 0 =
/// a same-instant re-schedule, the calendar's in-window splice path).
struct Replayer {
    times: Vec<u64>,
    budget: u32,
    gap: u64,
}

type EqLog = Vec<(u64, u32, u32)>;

impl Agent<EqLog> for Replayer {
    fn init(&mut self, id: AgentId, _w: &mut EqLog, s: &mut Scheduler) {
        for t in &self.times {
            s.wake_at(id, WakeTag(0), SimTime::from_secs(*t));
        }
    }
    fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut EqLog, s: &mut Scheduler) {
        w.push((s.now().as_secs(), id.0, tag.0));
        if tag.0 < self.budget {
            s.wake_at(
                id,
                WakeTag(tag.0 + 1),
                s.now() + SimDuration::from_secs(self.gap),
            );
        }
    }
}

fn run_with_kind(
    kind: SchedulerKind,
    shape: TimeShape,
    schedules: &[Vec<u32>],
    budget: u32,
    gap: u64,
) -> (EqLog, wtr_sim::engine::EngineStats) {
    let mut engine = Engine::with_scheduler(EqLog::new(), SimTime::from_secs(EQ_HORIZON), kind);
    for raws in schedules {
        engine.add_agent(Replayer {
            times: raws.iter().map(|&r| shape_time(shape, r)).collect(),
            budget,
            gap,
        });
    }
    engine.run_stats()
}

proptest! {
    /// Calendar and heap produce the identical dispatch sequence (and
    /// scheduler counters) over random schedules drawn from clustered,
    /// uniform, and same-instant-burst time distributions, with
    /// re-scheduling agents exercising mid-run pushes — including
    /// same-instant ones.
    #[test]
    fn calendar_matches_heap_dispatch_order(
        shape in prop_oneof![
            Just(TimeShape::Uniform),
            Just(TimeShape::Clustered),
            Just(TimeShape::Burst),
        ],
        schedules in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 0..40),
            1..16
        ),
        budget in 0u32..4,
        gap in prop_oneof![Just(0u64), Just(1), Just(977)],
    ) {
        let cal = run_with_kind(SchedulerKind::Calendar, shape, &schedules, budget, gap);
        let heap = run_with_kind(SchedulerKind::Heap, shape, &schedules, budget, gap);
        prop_assert_eq!(&cal.0, &heap.0);
        prop_assert_eq!(cal.1, heap.1);
    }
}

#[test]
fn calendar_matches_heap_on_dense_storm() {
    // A firmware-campaign storm at scale: 3_000 agents all waking at the
    // same instants, repeatedly — the heap's worst case (every sift
    // compares equal times) and the calendar's narrowest geometry (width
    // clamps at 1 s; the whole burst sorts as one chunk).
    let schedules: Vec<Vec<u32>> = (0..3_000u32).map(|i| vec![i, i + 1, i + 2]).collect();
    let cal = run_with_kind(SchedulerKind::Calendar, TimeShape::Burst, &schedules, 2, 0);
    let heap = run_with_kind(SchedulerKind::Heap, TimeShape::Burst, &schedules, 2, 0);
    assert_eq!(cal.0.len(), heap.0.len());
    assert_eq!(cal.0, heap.0);
    assert_eq!(cal.1, heap.1);
}

#[test]
fn scheduler_drops_past_wakeups_in_release() {
    // Sanity companion to the proptests: durations/additions behave.
    let d = SimDuration::from_days(1) + SimDuration::from_hours(2);
    assert_eq!(d.as_secs(), 86_400 + 7_200);
}
