//! Property tests for the discrete-event engine and traffic samplers.

use proptest::prelude::*;
use wtr_model::time::{SimDuration, SimTime};
use wtr_sim::engine::{Agent, AgentId, Engine, Scheduler, WakeTag};
use wtr_sim::rng::SubstreamRng;

/// Agent that fires once per preset time, logging into the shared world.
struct Preset {
    times: Vec<u64>,
}

impl Agent<Vec<(u64, u32)>> for Preset {
    fn init(&mut self, id: AgentId, _w: &mut Vec<(u64, u32)>, s: &mut Scheduler) {
        for t in &self.times {
            s.wake_at(id, WakeTag(0), SimTime::from_secs(*t));
        }
    }
    fn wake(&mut self, id: AgentId, _tag: WakeTag, w: &mut Vec<(u64, u32)>, s: &mut Scheduler) {
        w.push((s.now().as_secs(), id.0));
    }
}

proptest! {
    #[test]
    fn dispatch_is_globally_time_ordered(
        schedules in prop::collection::vec(
            prop::collection::vec(0u64..5_000, 0..20),
            1..8
        ),
        horizon in 1u64..5_000
    ) {
        let mut engine = Engine::new(Vec::new(), SimTime::from_secs(horizon));
        let mut expected = 0usize;
        for times in &schedules {
            expected += times.iter().filter(|t| **t < horizon).count();
            engine.add_agent(Preset { times: times.clone() });
        }
        let log = engine.run();
        // Every in-horizon wake fires exactly once.
        prop_assert_eq!(log.len(), expected);
        // Timestamps are monotone.
        prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        // Nothing fires at or past the horizon.
        prop_assert!(log.iter().all(|(t, _)| *t < horizon));
    }

    #[test]
    fn engine_is_reproducible(
        schedules in prop::collection::vec(
            prop::collection::vec(0u64..2_000, 0..12),
            1..5
        )
    ) {
        let run = || {
            let mut engine = Engine::new(Vec::new(), SimTime::from_secs(2_000));
            for times in &schedules {
                engine.add_agent(Preset { times: times.clone() });
            }
            engine.run()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn poisson_mean_tracks_lambda(lambda in 0.1f64..40.0, seed in any::<u64>()) {
        let mut rng = SubstreamRng::derive(seed, 1);
        let n = 3_000;
        let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
        let mean = total as f64 / n as f64;
        // 5-sigma band for the sample mean of a Poisson.
        let sigma = (lambda / n as f64).sqrt();
        prop_assert!((mean - lambda).abs() < 5.0 * sigma + 0.05,
            "lambda {} mean {}", lambda, mean);
    }

    #[test]
    fn weighted_index_stays_in_bounds(
        weights in prop::collection::vec(0.0f64..10.0, 1..12),
        seed in any::<u64>()
    ) {
        let mut rng = SubstreamRng::derive(seed, 2);
        for _ in 0..100 {
            let idx = rng.weighted_index(&weights);
            prop_assert!(idx < weights.len());
        }
    }

    #[test]
    fn lognormal_positive(median in 0.1f64..1e6, sigma in 0.0f64..3.0, seed in any::<u64>()) {
        let mut rng = SubstreamRng::derive(seed, 3);
        for _ in 0..50 {
            prop_assert!(rng.lognormal(median, sigma) > 0.0);
        }
    }

    #[test]
    fn mobility_positions_always_valid(
        seed in any::<u64>(),
        t in 0u64..86_400 * 22
    ) {
        use wtr_model::country::Country;
        use wtr_radio::geo::CountryGeometry;
        use wtr_sim::mobility::MobilityModel;
        let geom = CountryGeometry::of(Country::by_iso("ES").unwrap());
        for model in [
            MobilityModel::stationary_in(&geom, seed),
            MobilityModel::local_area_in(&geom, 0.2, seed),
            MobilityModel::Waypoint { geometry: geom, leg_hours: 2, seed },
        ] {
            let p = model.position(SimTime::from_secs(t));
            prop_assert!((-90.0..=90.0).contains(&p.lat));
            prop_assert!((-180.0..=180.0).contains(&p.lon));
        }
    }
}

#[test]
fn scheduler_drops_past_wakeups_in_release() {
    // Sanity companion to the proptests: durations/additions behave.
    let d = SimDuration::from_days(1) + SimDuration::from_hours(2);
    assert_eq!(d.as_secs(), 86_400 + 7_200);
}
