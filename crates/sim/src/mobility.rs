//! Position-over-time models.
//!
//! Mobility is a *pure function of time* (plus a per-device seed): querying
//! a device's position never mutates state, so probes, agents and tests all
//! see one consistent trajectory. Three shapes cover every vertical in the
//! paper:
//!
//! * [`MobilityModel::Stationary`] — smart meters, payment terminals:
//!   Fig. 8 shows M2M inbound roamers are "in majority stationary, with
//!   only 20% devices presenting a gyration larger than 1 km".
//! * [`MobilityModel::LocalArea`] — people (smartphones, feature phones,
//!   wearables): daily movement around a home point.
//! * [`MobilityModel::Waypoint`] — connected cars and asset trackers:
//!   continuous movement across the whole deployment geometry ("high
//!   mobility patterns", Fig. 12).

use crate::rng::SubstreamRng;
use serde::{Deserialize, Serialize};
use wtr_model::hash::mix64;
use wtr_model::time::SimTime;
use wtr_radio::geo::{CountryGeometry, GeoPoint};

/// How a device moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// Never moves. Cell re-selection noise is modeled downstream (a
    /// stationary device can still bounce between overlapping sectors;
    /// the paper attributes small non-zero gyrations to exactly this).
    Stationary {
        /// Fixed installation position.
        position: GeoPoint,
    },
    /// Moves around a centre within a radius, changing spots every hour —
    /// a person's daily routine compressed to its observable effect
    /// (which sectors get used).
    LocalArea {
        /// Home location.
        center: GeoPoint,
        /// Roaming radius in degrees (~1° ≈ 111 km nominal).
        radius_deg: f64,
        /// Per-device seed decorrelating co-located people.
        seed: u64,
    },
    /// Piecewise-linear travel between waypoints drawn over a whole
    /// geometry; a new leg every `leg_hours`.
    Waypoint {
        /// Area the device drives across.
        geometry: CountryGeometry,
        /// Hours per leg (shorter = faster apparent speed).
        leg_hours: u32,
        /// Per-device seed.
        seed: u64,
    },
}

impl MobilityModel {
    /// Builds a stationary model at a hash-chosen point of `geometry`.
    pub fn stationary_in(geometry: &CountryGeometry, seed: u64) -> Self {
        MobilityModel::Stationary {
            position: geometry.point_from_hash(seed),
        }
    }

    /// Builds a local-area model homed at a hash-chosen point.
    pub fn local_area_in(geometry: &CountryGeometry, radius_deg: f64, seed: u64) -> Self {
        MobilityModel::LocalArea {
            center: geometry.point_from_hash(seed),
            radius_deg,
            seed,
        }
    }

    /// The device's position at time `t`.
    pub fn position(&self, t: SimTime) -> GeoPoint {
        match self {
            MobilityModel::Stationary { position } => *position,
            MobilityModel::LocalArea {
                center,
                radius_deg,
                seed,
            } => {
                let hour = t.as_secs() / 3_600;
                // Night hours (23:00–06:00): at home.
                let hod = t.hour_of_day();
                if !(7..23).contains(&hod) {
                    return *center;
                }
                let h = mix64(seed ^ mix64(hour));
                let fy = ((h & 0xffff_ffff) as f64 / u32::MAX as f64) * 2.0 - 1.0;
                let fx = ((h >> 32) as f64 / u32::MAX as f64) * 2.0 - 1.0;
                center.offset(fy * radius_deg, fx * radius_deg)
            }
            MobilityModel::Waypoint {
                geometry,
                leg_hours,
                seed,
            } => {
                let leg_secs = (*leg_hours as u64).max(1) * 3_600;
                let leg = t.as_secs() / leg_secs;
                let frac = (t.as_secs() % leg_secs) as f64 / leg_secs as f64;
                let from = geometry.point_from_hash(seed.wrapping_add(leg));
                let to = geometry.point_from_hash(seed.wrapping_add(leg + 1));
                GeoPoint::new(
                    from.lat + (to.lat - from.lat) * frac,
                    from.lon + (to.lon - from.lon) * frac,
                )
            }
        }
    }

    /// A small deterministic sampling of positions across `[start, end)`,
    /// used by tests and by coarse mobility summaries.
    pub fn sample_positions(&self, start: SimTime, end: SimTime, step_secs: u64) -> Vec<GeoPoint> {
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push(self.position(t));
            t = SimTime::from_secs(t.as_secs() + step_secs);
        }
        out
    }

    /// Draws a plausible random model for `vertical`-like movement inside
    /// `geometry` (used by scenario builders).
    pub fn jittered_stationary(geometry: &CountryGeometry, rng: &mut SubstreamRng) -> Self {
        MobilityModel::Stationary {
            position: geometry.point_from_hash(rng.rng().next_u64()),
        }
    }
}

use rand::RngCore;

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::country::Country;
    use wtr_radio::geo::radius_of_gyration_km;

    fn geom(iso: &str) -> CountryGeometry {
        CountryGeometry::of(Country::by_iso(iso).unwrap())
    }

    #[test]
    fn stationary_never_moves() {
        let g = geom("GB");
        let m = MobilityModel::stationary_in(&g, 5);
        let p0 = m.position(SimTime::ZERO);
        for t in (0..86_400 * 7).step_by(3_600) {
            assert_eq!(m.position(SimTime::from_secs(t)), p0);
        }
    }

    #[test]
    fn local_area_stays_within_radius() {
        let g = geom("GB");
        let m = MobilityModel::local_area_in(&g, 0.05, 42);
        let center = match &m {
            MobilityModel::LocalArea { center, .. } => *center,
            _ => unreachable!(),
        };
        for t in (0..86_400 * 3).step_by(1_800) {
            let p = m.position(SimTime::from_secs(t));
            assert!(
                (p.lat - center.lat).abs() <= 0.051 && (p.lon - center.lon).abs() <= 0.051,
                "escaped radius at t={t}"
            );
        }
    }

    #[test]
    fn local_area_home_at_night() {
        let g = geom("GB");
        let m = MobilityModel::local_area_in(&g, 0.05, 42);
        let center = match &m {
            MobilityModel::LocalArea { center, .. } => *center,
            _ => unreachable!(),
        };
        // 03:00 any day: at home.
        let p = m.position(SimTime::from_day_and_secs(2, 3 * 3_600));
        assert_eq!(p, center);
    }

    #[test]
    fn waypoint_covers_ground() {
        let g = geom("ES");
        let m = MobilityModel::Waypoint {
            geometry: g,
            leg_hours: 2,
            seed: 77,
        };
        let pts = m.sample_positions(SimTime::ZERO, SimTime::from_secs(86_400), 900);
        let weighted: Vec<_> = pts.iter().map(|p| (*p, 1.0)).collect();
        let gyr = radius_of_gyration_km(&weighted).unwrap();
        assert!(gyr > 50.0, "car gyration only {gyr} km");
    }

    #[test]
    fn gyration_ordering_matches_fig8() {
        // stationary << local-area << waypoint, the Fig. 8 ordering
        // (meters < smartphones < cars).
        let g = geom("GB");
        let day = SimTime::from_secs(86_400);
        let gyr = |m: &MobilityModel| {
            let pts: Vec<_> = m
                .sample_positions(SimTime::ZERO, day, 900)
                .into_iter()
                .map(|p| (p, 1.0))
                .collect();
            radius_of_gyration_km(&pts).unwrap()
        };
        let meter = gyr(&MobilityModel::stationary_in(&g, 1));
        let person = gyr(&MobilityModel::local_area_in(&g, 0.05, 2));
        let car = gyr(&MobilityModel::Waypoint {
            geometry: g,
            leg_hours: 2,
            seed: 3,
        });
        assert!(meter < 0.001);
        assert!(
            person > meter && person < car,
            "meter={meter} person={person} car={car}"
        );
    }

    #[test]
    fn positions_are_deterministic() {
        let g = geom("DE");
        let m = MobilityModel::Waypoint {
            geometry: g,
            leg_hours: 3,
            seed: 9,
        };
        let t = SimTime::from_secs(12_345);
        assert_eq!(m.position(t), m.position(t));
    }

    #[test]
    fn waypoint_is_continuous() {
        // Adjacent samples must be close (no teleporting), including
        // across a leg boundary.
        let g = geom("ES");
        let m = MobilityModel::Waypoint {
            geometry: g,
            leg_hours: 2,
            seed: 123,
        };
        let mut prev = m.position(SimTime::ZERO);
        for t in (60..86_400).step_by(60) {
            let p = m.position(SimTime::from_secs(t));
            let d = prev.distance_km(p);
            assert!(d < 25.0, "jump of {d} km at t={t}");
            prev = p;
        }
    }
}
