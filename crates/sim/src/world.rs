//! The shared simulation environment: network directory, roaming access
//! policy, and the event sink.
//!
//! The world is the `W` type parameter of the engine: every agent turn
//! reads the radio networks, consults the access policy (implemented by
//! `wtr-platform` for real roaming-agreement graphs), and streams the
//! events it produces into the sink.
//!
//! Events are **streamed, not stored**: a scenario can produce tens of
//! millions of events, so sinks (the probes) aggregate incrementally and
//! the simulator never materializes the full log unless a test asks for it
//! via [`VecSink`].

use crate::events::SimEvent;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wtr_model::ids::Plmn;
use wtr_radio::network::RadioNetwork;

/// The outcome of asking a visited network to admit a SIM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessDecision {
    /// Admitted.
    Allowed,
    /// Rejected: no roaming agreement / roaming barred for this SIM.
    RoamingNotAllowed,
    /// Rejected: subscription unknown to the HSS.
    UnknownSubscription,
    /// Rejected: the subscription cannot use this feature (e.g. a 2G-only
    /// M2M plan attempting 4G attach).
    FeatureUnsupported,
}

impl AccessDecision {
    /// Whether the device gets service.
    pub const fn is_allowed(self) -> bool {
        matches!(self, AccessDecision::Allowed)
    }
}

/// Roaming admission control + steering, implemented by the platform crate
/// (agreement graphs, IPX hubs, steering-of-roaming) and by simple stubs
/// for tests.
pub trait AccessPolicy {
    /// Should `visited` admit a SIM homed on `home`?
    fn decide(&self, home: Plmn, visited: Plmn) -> AccessDecision;

    /// Preference order over the candidate networks of a country for a SIM
    /// homed on `home`. The default keeps the input order. Steering of
    /// roaming (the HMNO pushing devices toward preferred partners)
    /// overrides this.
    fn preference_order(&self, _home: Plmn, candidates: &mut Vec<Plmn>) {
        let _ = candidates;
    }
}

/// Admit everyone (single-operator tests and native-only scenarios).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAllPolicy;

impl AccessPolicy for AllowAllPolicy {
    fn decide(&self, _home: Plmn, _visited: Plmn) -> AccessDecision {
        AccessDecision::Allowed
    }
}

/// Incremental consumer of simulation events (the probe attachment point).
pub trait EventSink {
    /// Called once per event, in dispatch order.
    fn on_event(&mut self, event: &SimEvent);
}

/// Sink that materializes every event — for tests and small examples only.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The collected events.
    pub events: Vec<SimEvent>,
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(event.clone());
    }
}

/// Fan-out sink: forwards each event to both halves (e.g. an M2M-platform
/// probe and an MNO probe watching the same simulation, as in the paper's
/// two vantage points).
#[derive(Debug, Default, Clone)]
pub struct TeeSink<A, B> {
    /// First consumer.
    pub a: A,
    /// Second consumer.
    pub b: B,
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn on_event(&mut self, event: &SimEvent) {
        self.a.on_event(event);
        self.b.on_event(event);
    }
}

/// All radio networks of the simulated universe, indexed by PLMN and by
/// country.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkDirectory {
    networks: HashMap<u32, RadioNetwork>,
    by_country: HashMap<String, Vec<Plmn>>,
}

impl NetworkDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a network under its country's ISO code.
    pub fn add(&mut self, country_iso: &str, network: RadioNetwork) {
        let plmn = network.plmn();
        self.networks.insert(plmn.packed(), network);
        self.by_country
            .entry(country_iso.to_owned())
            .or_default()
            .push(plmn);
    }

    /// Network by PLMN.
    pub fn get(&self, plmn: Plmn) -> Option<&RadioNetwork> {
        self.networks.get(&plmn.packed())
    }

    /// PLMNs deployed in a country (registration order).
    pub fn in_country(&self, iso: &str) -> &[Plmn] {
        self.by_country.get(iso).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of networks.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }

    /// Countries with at least one network.
    pub fn countries(&self) -> impl Iterator<Item = &str> {
        self.by_country.keys().map(String::as_str)
    }
}

/// The world handed to device agents: directory + policy + sink.
pub struct RoamingWorld<S> {
    /// All radio networks.
    pub directory: NetworkDirectory,
    /// Roaming admission + steering policy.
    pub policy: Box<dyn AccessPolicy + Send>,
    /// Streaming event consumer (a probe).
    pub sink: S,
    /// Master seed (agents derive their substreams from it).
    pub master_seed: u64,
    /// Count of events emitted (cheap progress metric).
    pub emitted: u64,
}

impl<S: EventSink> RoamingWorld<S> {
    /// Creates a world.
    pub fn new(
        directory: NetworkDirectory,
        policy: Box<dyn AccessPolicy + Send>,
        sink: S,
        master_seed: u64,
    ) -> Self {
        RoamingWorld {
            directory,
            policy,
            sink,
            master_seed,
            emitted: 0,
        }
    }

    /// Streams an event into the sink.
    pub fn emit(&mut self, event: SimEvent) {
        self.emitted += 1;
        self.sink.on_event(&event);
    }
}

impl<S> std::fmt::Debug for RoamingWorld<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoamingWorld")
            .field("networks", &self.directory.len())
            .field("emitted", &self.emitted)
            .field("master_seed", &self.master_seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ProcedureResult, ProcedureType, SignalingEvent};
    use wtr_model::country::Country;
    use wtr_model::ids::{Imei, Imsi, Tac};
    use wtr_model::rat::{Rat, RatSet};
    use wtr_model::time::SimTime;
    use wtr_radio::geo::CountryGeometry;
    use wtr_radio::network::CoverageFaults;
    use wtr_radio::sector::GridSpacing;

    fn net(plmn: Plmn, iso: &str) -> RadioNetwork {
        RadioNetwork::new(
            plmn,
            RatSet::CONVENTIONAL,
            CountryGeometry::of(Country::by_iso(iso).unwrap()),
            GridSpacing::default(),
            CoverageFaults::NONE,
        )
    }

    fn sig(device: u64) -> SimEvent {
        SimEvent::Signaling(SignalingEvent {
            time: SimTime::ZERO,
            device,
            imsi: Imsi::new(Plmn::of(214, 7), device).unwrap(),
            imei: Imei::new(Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited: Plmn::of(234, 30),
            sector: None,
            rat: Rat::G4,
            procedure: ProcedureType::Authentication,
            result: ProcedureResult::Ok,
        })
    }

    #[test]
    fn directory_lookup_by_plmn_and_country() {
        let mut dir = NetworkDirectory::new();
        dir.add("GB", net(Plmn::of(234, 30), "GB"));
        dir.add("GB", net(Plmn::of(234, 10), "GB"));
        dir.add("ES", net(Plmn::of(214, 7), "ES"));
        assert_eq!(dir.len(), 3);
        assert!(dir.get(Plmn::of(234, 30)).is_some());
        assert!(dir.get(Plmn::of(262, 2)).is_none());
        assert_eq!(dir.in_country("GB").len(), 2);
        assert_eq!(dir.in_country("ES"), &[Plmn::of(214, 7)]);
        assert!(dir.in_country("FR").is_empty());
        let mut countries: Vec<&str> = dir.countries().collect();
        countries.sort_unstable();
        assert_eq!(countries, vec!["ES", "GB"]);
    }

    #[test]
    fn allow_all_policy() {
        let p = AllowAllPolicy;
        assert!(p.decide(Plmn::of(214, 7), Plmn::of(234, 30)).is_allowed());
        let mut cands = vec![Plmn::of(234, 30), Plmn::of(234, 10)];
        let orig = cands.clone();
        p.preference_order(Plmn::of(214, 7), &mut cands);
        assert_eq!(cands, orig, "default preference keeps order");
    }

    #[test]
    fn decision_predicates() {
        assert!(AccessDecision::Allowed.is_allowed());
        assert!(!AccessDecision::RoamingNotAllowed.is_allowed());
        assert!(!AccessDecision::UnknownSubscription.is_allowed());
        assert!(!AccessDecision::FeatureUnsupported.is_allowed());
    }

    #[test]
    fn emit_streams_to_sink_and_counts() {
        let mut world = RoamingWorld::new(
            NetworkDirectory::new(),
            Box::new(AllowAllPolicy),
            VecSink::default(),
            42,
        );
        world.emit(sig(1));
        world.emit(sig(2));
        assert_eq!(world.emitted, 2);
        assert_eq!(world.sink.events.len(), 2);
        assert_eq!(world.sink.events[1].device(), 2);
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut tee = TeeSink {
            a: VecSink::default(),
            b: VecSink::default(),
        };
        tee.on_event(&sig(7));
        assert_eq!(tee.a.events.len(), 1);
        assert_eq!(tee.b.events.len(), 1);
    }
}
