//! Per-vertical traffic profiles.
//!
//! A [`TrafficProfile`] answers, for a device-day: how many signaling
//! procedures, data sessions and voice events happen, when within the day,
//! and how big the sessions are. Defaults per vertical are calibrated to
//! the paper's §6 findings:
//!
//! * M2M devices generate far fewer radio-resource events than smartphones
//!   (Fig. 10-left), most place zero calls (Fig. 10-center), and inbound
//!   roaming M2M moves almost no data (Fig. 10-right);
//! * smartphones native to the MNO move much more data than inbound
//!   roaming ones ("bill shock" dampening, §6.2);
//! * smart meters emit small periodic reports; connected cars behave like
//!   roaming smartphones (Fig. 12).

use crate::rng::SubstreamRng;
use serde::{Deserialize, Serialize};
use wtr_model::vertical::Vertical;

/// Diurnal shape: how the day's events distribute over 24 hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiurnalShape {
    /// Uniform across the day (machines on timers).
    Flat,
    /// Human waking-hours curve, peaking in the evening.
    Human,
    /// Periodic reporting on fixed intervals with small jitter
    /// (smart-meter style).
    Periodic,
}

impl DiurnalShape {
    /// Relative weight of hour `h` (`0..24`); weights need not normalize.
    pub fn hour_weight(self, h: u32) -> f64 {
        match self {
            DiurnalShape::Flat | DiurnalShape::Periodic => 1.0,
            DiurnalShape::Human => match h {
                0..=5 => 0.15,
                6..=8 => 0.7,
                9..=16 => 1.0,
                17..=21 => 1.4,
                _ => 0.5,
            },
        }
    }

    /// Draws a second-of-day for one event.
    pub fn sample_second(self, rng: &mut SubstreamRng) -> u64 {
        match self {
            DiurnalShape::Flat => rng.range_u64(0, 86_400),
            DiurnalShape::Periodic => rng.range_u64(0, 86_400),
            DiurnalShape::Human => {
                let weights: Vec<f64> = (0..24).map(|h| self.hour_weight(h)).collect();
                let hour = rng.weighted_index(&weights) as u64;
                hour * 3_600 + rng.range_u64(0, 3_600)
            }
        }
    }
}

/// Volume distribution for data sessions: LogNormal(median, sigma).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeDist {
    /// Median bytes per session.
    pub median_bytes: f64,
    /// LogNormal sigma.
    pub sigma: f64,
    /// Fraction of bytes that are uplink (M2M is uplink-heavy, phones
    /// downlink-heavy — one of the M2M-vs-phone contrasts in \[18\]).
    pub uplink_ratio: f64,
}

impl VolumeDist {
    /// Samples (uplink, downlink) bytes for one session.
    pub fn sample(&self, rng: &mut SubstreamRng) -> (u64, u64) {
        let total = rng
            .lognormal(self.median_bytes.max(1.0), self.sigma)
            .round();
        let up = (total * self.uplink_ratio).round() as u64;
        let down = (total as u64).saturating_sub(up);
        (up, down)
    }
}

/// Traffic behaviour for one device.
///
/// ```
/// use wtr_model::vertical::Vertical;
/// use wtr_sim::traffic::TrafficProfile;
///
/// let meter = TrafficProfile::for_vertical(Vertical::SmartMeter);
/// let phone = TrafficProfile::for_vertical(Vertical::Smartphone);
/// // Fig. 10: machines signal and transfer far less than phones.
/// assert!(meter.signaling_per_day < phone.signaling_per_day);
/// assert!(meter.volume.median_bytes < phone.volume.median_bytes);
/// // Roaming SMIP meters re-register ~10× as often (Fig. 11-right).
/// let roaming_meter = meter.clone().with_signaling_factor(10.0);
/// assert_eq!(roaming_meter.signaling_per_day, meter.signaling_per_day * 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Mean mobility/registration signaling procedures per active day
    /// (attach sequences, routing-area updates), before any per-device
    /// multiplier.
    pub signaling_per_day: f64,
    /// Per-device heterogeneity: at spec-creation time, each device draws
    /// a LogNormal(1.0, this) multiplier applied to all its rates. This is
    /// what produces the long per-device tails of Fig. 3-left / Fig. 10.
    pub per_device_sigma: f64,
    /// Mean data sessions per active day (0 = device never uses data).
    pub data_sessions_per_day: f64,
    /// Data session volume distribution.
    pub volume: VolumeDist,
    /// Mean voice events per active day (0 = never).
    pub voice_per_day: f64,
    /// Whether voice events are real calls (with duration) or SMS-like.
    pub voice_is_call: bool,
    /// Mean call duration in seconds when `voice_is_call`.
    pub call_duration_mean_secs: f64,
    /// When the day's events happen.
    pub diurnal: DiurnalShape,
    /// Fraction of signaling wake-ups that run a full re-registration
    /// (Authentication + Update Location toward the home HSS) instead of a
    /// local Routing-Area Update. Only re-registrations are visible to the
    /// HMNO-side probes of the M2M dataset (§3.1); IoT devices power-cycle
    /// and re-attach far more often than phones.
    pub reauth_fraction: f64,
}

/// The per-vertical calibration table (§6/§7): one named constant per
/// [`Vertical`], the single source the behavior compiler
/// (`wtr_sim::behavior::profile_matrix`) and [`TrafficProfile::for_vertical`]
/// both read. Field order everywhere: signaling rate, per-device sigma,
/// data rate, volume, voice rate/kind/duration, diurnal shape, reauth
/// fraction.
pub mod profiles {
    use super::{DiurnalShape, TrafficProfile, VolumeDist};

    /// Native smartphone: chatty, data-heavy, evening-peaked.
    pub const SMARTPHONE: TrafficProfile = TrafficProfile {
        signaling_per_day: 40.0,
        per_device_sigma: 0.7,
        data_sessions_per_day: 30.0,
        volume: VolumeDist {
            median_bytes: 6_000_000.0,
            sigma: 1.6,
            uplink_ratio: 0.15,
        },
        voice_per_day: 3.0,
        voice_is_call: true,
        call_duration_mean_secs: 120.0,
        diurnal: DiurnalShape::Human,
        reauth_fraction: 0.1,
    };

    /// Feature phone: voice-first, a trickle of data.
    pub const FEATURE_PHONE: TrafficProfile = TrafficProfile {
        signaling_per_day: 3.5,
        per_device_sigma: 0.6,
        data_sessions_per_day: 0.4,
        volume: VolumeDist {
            median_bytes: 30_000.0,
            sigma: 1.2,
            uplink_ratio: 0.3,
        },
        voice_per_day: 4.0,
        voice_is_call: true,
        call_duration_mean_secs: 90.0,
        diurnal: DiurnalShape::Human,
        reauth_fraction: 0.1,
    };

    /// Smart meter: small periodic uplink reports, frequent re-attach.
    pub const SMART_METER: TrafficProfile = TrafficProfile {
        signaling_per_day: 5.0,
        per_device_sigma: 0.5,
        data_sessions_per_day: 1.5,
        volume: VolumeDist {
            median_bytes: 2_000.0,
            sigma: 0.6,
            uplink_ratio: 0.85,
        },
        voice_per_day: 0.5,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Periodic,
        reauth_fraction: 0.5,
    };

    /// Connected car: behaves like a roaming smartphone (Fig. 12).
    pub const CONNECTED_CAR: TrafficProfile = TrafficProfile {
        signaling_per_day: 60.0,
        per_device_sigma: 0.8,
        data_sessions_per_day: 20.0,
        volume: VolumeDist {
            median_bytes: 2_000_000.0,
            sigma: 1.4,
            uplink_ratio: 0.4,
        },
        voice_per_day: 0.1,
        voice_is_call: true,
        call_duration_mean_secs: 60.0,
        diurnal: DiurnalShape::Human,
        reauth_fraction: 0.4,
    };

    /// Asset tracker: uplink-only pings around the clock.
    pub const ASSET_TRACKER: TrafficProfile = TrafficProfile {
        signaling_per_day: 12.0,
        per_device_sigma: 0.9,
        data_sessions_per_day: 6.0,
        volume: VolumeDist {
            median_bytes: 5_000.0,
            sigma: 0.8,
            uplink_ratio: 0.9,
        },
        voice_per_day: 0.4,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Flat,
        reauth_fraction: 0.5,
    };

    /// Wearable: light smartphone-shaped traffic.
    pub const WEARABLE: TrafficProfile = TrafficProfile {
        signaling_per_day: 12.0,
        per_device_sigma: 0.7,
        data_sessions_per_day: 5.0,
        volume: VolumeDist {
            median_bytes: 200_000.0,
            sigma: 1.2,
            uplink_ratio: 0.3,
        },
        voice_per_day: 0.2,
        voice_is_call: true,
        call_duration_mean_secs: 45.0,
        diurnal: DiurnalShape::Human,
        reauth_fraction: 0.2,
    };

    /// Payment terminal: many tiny transactions during opening hours.
    pub const PAYMENT_TERMINAL: TrafficProfile = TrafficProfile {
        signaling_per_day: 10.0,
        per_device_sigma: 0.6,
        data_sessions_per_day: 25.0,
        volume: VolumeDist {
            median_bytes: 3_000.0,
            sigma: 0.7,
            uplink_ratio: 0.6,
        },
        voice_per_day: 0.4,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Human,
        reauth_fraction: 0.3,
    };

    /// Security alarm — voice-reliant M2M: the paper finds 24.5% of M2M
    /// devices use no data at all, relying on voice-like services.
    pub const SECURITY_ALARM: TrafficProfile = TrafficProfile {
        signaling_per_day: 5.0,
        per_device_sigma: 0.5,
        data_sessions_per_day: 0.0,
        volume: VolumeDist {
            median_bytes: 0.0,
            sigma: 0.0,
            uplink_ratio: 0.5,
        },
        voice_per_day: 1.0,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Flat,
        reauth_fraction: 0.4,
    };

    /// Industrial sensor: periodic uplink telemetry.
    pub const INDUSTRIAL_SENSOR: TrafficProfile = TrafficProfile {
        signaling_per_day: 7.0,
        per_device_sigma: 0.8,
        data_sessions_per_day: 3.0,
        volume: VolumeDist {
            median_bytes: 8_000.0,
            sigma: 0.9,
            uplink_ratio: 0.9,
        },
        voice_per_day: 0.4,
        voice_is_call: false,
        call_duration_mean_secs: 0.0,
        diurnal: DiurnalShape::Periodic,
        reauth_fraction: 0.5,
    };
}

impl TrafficProfile {
    /// Default profile for a vertical, calibrated to §6/§7 — a lookup into
    /// the [`profiles`] constant table.
    pub fn for_vertical(v: Vertical) -> TrafficProfile {
        match v {
            Vertical::Smartphone => profiles::SMARTPHONE,
            Vertical::FeaturePhone => profiles::FEATURE_PHONE,
            Vertical::SmartMeter => profiles::SMART_METER,
            Vertical::ConnectedCar => profiles::CONNECTED_CAR,
            Vertical::AssetTracker => profiles::ASSET_TRACKER,
            Vertical::Wearable => profiles::WEARABLE,
            Vertical::PaymentTerminal => profiles::PAYMENT_TERMINAL,
            Vertical::SecurityAlarm => profiles::SECURITY_ALARM,
            Vertical::IndustrialSensor => profiles::INDUSTRIAL_SENSOR,
        }
    }

    /// Scales every rate by `factor` (used by scenarios, e.g. roaming SMIP
    /// meters generating "ten times more signaling messages than native
    /// ones", Fig. 11-right).
    pub fn scaled(mut self, factor: f64) -> TrafficProfile {
        self.signaling_per_day *= factor;
        self.data_sessions_per_day *= factor;
        self.voice_per_day *= factor;
        self
    }

    /// Multiplies only the signaling rate.
    pub fn with_signaling_factor(mut self, factor: f64) -> TrafficProfile {
        self.signaling_per_day *= factor;
        self
    }

    /// Multiplies only the data rates/volumes.
    pub fn with_data_factor(mut self, factor: f64) -> TrafficProfile {
        self.data_sessions_per_day *= factor;
        self
    }

    /// Draws the per-device rate multiplier (call once per device).
    pub fn draw_device_multiplier(&self, rng: &mut SubstreamRng) -> f64 {
        if self.per_device_sigma <= 0.0 {
            1.0
        } else {
            rng.lognormal(1.0, self.per_device_sigma)
        }
    }

    /// Samples the number of (signaling, data, voice) events for one
    /// active day given the device's multiplier.
    pub fn sample_day_counts(&self, rng: &mut SubstreamRng, multiplier: f64) -> (u64, u64, u64) {
        (
            rng.poisson(self.signaling_per_day * multiplier),
            rng.poisson(self.data_sessions_per_day * multiplier),
            rng.poisson(self.voice_per_day * multiplier),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SubstreamRng {
        SubstreamRng::derive(11, 11)
    }

    #[test]
    fn m2m_signals_less_than_smartphones() {
        // Fig. 10-left ordering: feature < meter < smartphone signaling.
        let meter = TrafficProfile::for_vertical(Vertical::SmartMeter);
        let phone = TrafficProfile::for_vertical(Vertical::Smartphone);
        let feat = TrafficProfile::for_vertical(Vertical::FeaturePhone);
        assert!(meter.signaling_per_day < phone.signaling_per_day);
        assert!(feat.signaling_per_day < meter.signaling_per_day);
    }

    #[test]
    fn cars_look_like_roaming_smartphones() {
        // Fig. 12: connected cars ≈ inbound-roaming smartphones in
        // signaling and data, meters tiny.
        let car = TrafficProfile::for_vertical(Vertical::ConnectedCar);
        let phone = TrafficProfile::for_vertical(Vertical::Smartphone);
        let meter = TrafficProfile::for_vertical(Vertical::SmartMeter);
        assert!(car.signaling_per_day >= phone.signaling_per_day * 0.5);
        assert!(car.volume.median_bytes > meter.volume.median_bytes * 100.0);
    }

    #[test]
    fn security_alarm_is_voice_only() {
        let alarm = TrafficProfile::for_vertical(Vertical::SecurityAlarm);
        assert_eq!(alarm.data_sessions_per_day, 0.0);
        assert!(alarm.voice_per_day > 0.0);
        assert!(!alarm.voice_is_call);
    }

    #[test]
    fn meters_are_uplink_heavy() {
        let meter = TrafficProfile::for_vertical(Vertical::SmartMeter);
        let (up, down) = meter.volume.sample(&mut rng());
        assert!(
            up > down,
            "meter session should be uplink-heavy: {up}/{down}"
        );
    }

    #[test]
    fn sample_day_counts_scale_with_multiplier() {
        let meter = TrafficProfile::for_vertical(Vertical::SmartMeter);
        let mut r = rng();
        let n = 2_000;
        let total_1: u64 = (0..n).map(|_| meter.sample_day_counts(&mut r, 1.0).0).sum();
        let total_10: u64 = (0..n)
            .map(|_| meter.sample_day_counts(&mut r, 10.0).0)
            .sum();
        let ratio = total_10 as f64 / total_1.max(1) as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaled_multiplies_rates() {
        let p = TrafficProfile::for_vertical(Vertical::SmartMeter).scaled(10.0);
        let base = TrafficProfile::for_vertical(Vertical::SmartMeter);
        assert_eq!(p.signaling_per_day, base.signaling_per_day * 10.0);
        assert_eq!(p.voice_per_day, base.voice_per_day * 10.0);
    }

    #[test]
    fn human_diurnal_peaks_in_evening() {
        let mut hist = [0u64; 24];
        let mut r = rng();
        for _ in 0..20_000 {
            let s = DiurnalShape::Human.sample_second(&mut r);
            hist[(s / 3_600) as usize] += 1;
        }
        let night: u64 = hist[0..6].iter().sum();
        let evening: u64 = hist[17..22].iter().sum();
        assert!(evening > night * 3, "evening={evening} night={night}");
    }

    #[test]
    fn flat_diurnal_is_roughly_uniform() {
        let mut hist = [0u64; 24];
        let mut r = rng();
        for _ in 0..24_000 {
            hist[(DiurnalShape::Flat.sample_second(&mut r) / 3_600) as usize] += 1;
        }
        for (h, c) in hist.iter().enumerate() {
            assert!((600..1_500).contains(c), "hour {h}: {c}");
        }
    }

    #[test]
    fn device_multiplier_creates_heterogeneity() {
        let phone = TrafficProfile::for_vertical(Vertical::Smartphone);
        let mut r = rng();
        let ms: Vec<f64> = (0..1_000)
            .map(|_| phone.draw_device_multiplier(&mut r))
            .collect();
        let min = ms.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ms.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 10.0, "not enough spread: {min}..{max}");
    }

    #[test]
    fn sample_second_within_day() {
        let mut r = rng();
        for shape in [
            DiurnalShape::Flat,
            DiurnalShape::Human,
            DiurnalShape::Periodic,
        ] {
            for _ in 0..1_000 {
                assert!(shape.sample_second(&mut r) < 86_400);
            }
        }
    }
}
