//! Declarative device behavior: continuous-time-Markov-chain matrices.
//!
//! A [`BehaviorMatrix`] is a dense table of per-state rows — `(transitions,
//! event_rate, emission)` — interpreted by one homogeneous [`step`]
//! function. The hand-coded plan/attach/emit branches that used to live in
//! `DeviceAgent::wake` compile into matrix form via
//! [`legacy_matrix`], so a new device class is *config* (a JSON file loaded
//! with `wtr simulate-mno --behavior classes.json`), not code.
//!
//! ## Draw-order-preserving compilation
//!
//! The golden digests pin the exact byte output of the simulation, which in
//! turn pins the exact per-device [`SubstreamRng`] draw sequence. The
//! interpreter therefore draws in precisely the order the legacy branches
//! did:
//!
//! * a plan row draws the per-target Poisson counts **first** (one per
//!   target, in target order — the old `sample_day_counts` triple), then
//!   the event seconds per *scheduled* target, then the daily switch coin;
//!   targets of disabled planes still draw their count (the legacy code
//!   always sampled all three Poissons) but skip the seconds;
//! * a signaling row draws switch coin → attach walk → failure coin →
//!   re-auth coin;
//! * data/voice rows draw nothing at all when the plane is disabled or the
//!   attach walk fails — mirroring the legacy early returns;
//! * successor selection consumes **zero** draws for single-transition
//!   rows (`chance` semantics for two-way rows, `weighted_index` semantics
//!   beyond), so the self-loop rows produced by [`legacy_matrix`] are
//!   draw-free and the compiled matrix replays the legacy stream
//!   bit-for-bit.
//!
//! [`step`]: BehaviorMatrix::step

use crate::events::ProcedureResult;
use crate::rng::SubstreamRng;
use crate::traffic::{DiurnalShape, TrafficProfile, VolumeDist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Probability split of how many candidate networks a sticky-failing
/// device attempts per wake: most retry one network forever, a minority
/// hunt the candidate list (the paper's 19-VMNO tail). Indices map to
/// breadth 1 / 2 / unbounded.
pub const STICKY_BREADTH_WEIGHTS: [f64; 3] = [0.95, 0.03, 0.02];

/// Probability that a forced reselection lands further down the candidate
/// list instead of ping-ponging between the two preferred networks
/// (Fig. 3: switch counts far exceed VMNO counts).
pub const RESELECT_ROTATE_PROB: f64 = 0.1;

/// Mean data-session duration in seconds (exponential).
pub const DATA_SESSION_MEAN_SECS: f64 = 300.0;

/// Session/call durations are clamped into this range (seconds).
pub const DURATION_CLAMP_SECS: (f64, f64) = (1.0, 7_200.0);

/// Upper bound on plan-row targets (counts live in a stack array so plan
/// interpretation never allocates).
pub const MAX_PLAN_TARGETS: usize = 8;

/// Upper bound on silent-row hops per step (cycle guard).
pub const MAX_SILENT_HOPS: u32 = 8;

/// Index of a row in a [`BehaviorMatrix`]. Event wake tags carry the
/// `StateId` of the row to interpret, so the scheduler needs no knowledge
/// of the matrix shape.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct StateId(pub u32);

impl StateId {
    /// Row index as usize.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One event target of a plan row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanTarget {
    /// Row whose `event_rate` drives the Poisson count and which is woken
    /// for each scheduled event.
    pub state: StateId,
    /// When false the count is still drawn (draw-order compatibility with
    /// plans whose plane is disabled) but no events are scheduled.
    pub scheduled: bool,
}

/// Day-planning emission: drawn once per present day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Probability the device is active on a present day.
    pub daily_active_prob: f64,
    /// Daily probability of forcing a network reselection.
    pub switch_propensity: f64,
    /// Distribution of event seconds within the day.
    pub diurnal: DiurnalShape,
    /// Event rows to schedule, in draw order.
    pub targets: Vec<PlanTarget>,
}

/// Mobility-management emission: one signaling procedure per wake.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalingSpec {
    /// Per-event probability of forcing a network reselection.
    pub switch_propensity: f64,
    /// Per-procedure probability of a transient failure.
    pub event_failure_prob: f64,
    /// Fraction of wakes that run a full re-registration (Auth + Update
    /// Location) instead of a local Routing-Area Update.
    pub reauth_fraction: f64,
}

/// Data-session emission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataSpec {
    /// Disabled planes wake but emit nothing (and draw nothing).
    pub enabled: bool,
    /// Number of APNs the device chooses between.
    pub apn_count: u32,
    /// Session volume distribution.
    pub volume: VolumeDist,
    /// Mean session duration (seconds, exponential, clamped to
    /// [`DURATION_CLAMP_SECS`]).
    pub session_mean_secs: f64,
}

/// Voice/SMS emission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoiceSpec {
    /// Disabled planes wake but emit nothing.
    pub enabled: bool,
    /// Real call (with duration) vs SMS-like (duration 0).
    pub is_call: bool,
    /// Mean call duration in seconds when `is_call`.
    pub duration_mean_secs: f64,
}

/// What a row does when stepped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmissionSpec {
    /// No emission: immediately select a successor and interpret it. Lets
    /// config matrices branch probabilistically between alternative
    /// emission rows within one wake.
    Silent,
    /// Plan a day's events.
    Plan(PlanSpec),
    /// One signaling procedure.
    Signaling(SignalingSpec),
    /// One data session.
    Data(DataSpec),
    /// One voice/SMS event.
    Voice(VoiceSpec),
}

/// One matrix row: where the chain goes next, how often this row's events
/// fire per active day, and what a wake in this state emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorRow {
    /// Successor candidates with relative weights (need not normalize; a
    /// single self-loop entry consumes no draws).
    pub transitions: Vec<(StateId, f64)>,
    /// Mean events per active day (Poisson), scaled by the per-device
    /// multiplier. Consulted by plan rows targeting this row.
    pub event_rate: f64,
    /// Row emission.
    pub emission: EmissionSpec,
}

/// Device-level compiled parameters: construction-time draws and the
/// attach-walk knobs shared by every row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// LogNormal sigma of the per-device rate multiplier (0 disables the
    /// draw entirely).
    pub per_device_sigma: f64,
    /// Weighted split over sticky-attempt breadths 1 / 2 / unbounded.
    pub sticky_breadth_weights: Vec<f64>,
    /// See [`RESELECT_ROTATE_PROB`].
    pub reselect_rotate_prob: f64,
    /// Transient per-attempt failure probability inside the attach walk.
    pub event_failure_prob: f64,
    /// When set, every attach attempt fails with this result.
    pub sticky_failure: Option<ProcedureResult>,
}

/// Attach-walk knobs extracted for one wake (shared between the legacy
/// path — sourced from `DeviceSpec` fields — and the matrix path —
/// sourced from [`DeviceParams`]; identical values by compilation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttachParams {
    /// Per-attempt transient-failure probability.
    pub event_failure_prob: f64,
    /// Sticky failure result, if misprovisioned.
    pub sticky_failure: Option<ProcedureResult>,
    /// Probability a forced switch rotates down the candidate list.
    pub rotate_prob: f64,
}

/// A validated behavior matrix.
///
/// Construct with [`BehaviorMatrix::new`] (validating) or deserialize and
/// then call [`validate`](BehaviorMatrix::validate) — the serde
/// representation is canonical (struct-field order, `Vec` rows indexed by
/// `StateId`) and roundtrip-stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMatrix {
    /// Device-level parameters.
    pub params: DeviceParams,
    /// Dense rows, indexed by [`StateId`].
    pub rows: Vec<BehaviorRow>,
    /// Entry state: the row woken on each new present day.
    pub entry: StateId,
}

/// Why a matrix failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorError {
    /// The matrix has no rows.
    Empty,
    /// The entry state is out of range.
    EntryOutOfRange,
    /// A row's `event_rate` is non-finite or negative.
    BadEventRate(usize),
    /// A row has no transitions.
    EmptyTransitions(usize),
    /// A transition weight is non-finite or negative, or the row's total
    /// transition mass is not positive.
    BadTransitionWeights(usize),
    /// A transition or plan target names a state outside the matrix.
    StateOutOfRange {
        /// Row holding the reference.
        row: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A probability field is non-finite or outside `[0, 1]`.
    BadProbability(usize),
    /// A plan row has more than [`MAX_PLAN_TARGETS`] targets.
    TooManyPlanTargets(usize),
    /// A duration/volume parameter is non-finite or negative.
    BadEmissionParam(usize),
    /// `DeviceParams` is malformed (sigma/weights/probabilities).
    BadDeviceParams,
}

impl fmt::Display for BehaviorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BehaviorError::Empty => write!(f, "behavior matrix has no rows"),
            BehaviorError::EntryOutOfRange => write!(f, "entry state out of range"),
            BehaviorError::BadEventRate(r) => {
                write!(f, "row {r}: event_rate must be finite and >= 0")
            }
            BehaviorError::EmptyTransitions(r) => write!(f, "row {r}: empty transition list"),
            BehaviorError::BadTransitionWeights(r) => {
                write!(
                    f,
                    "row {r}: transition weights must be finite, >= 0, sum > 0"
                )
            }
            BehaviorError::StateOutOfRange { row, target } => {
                write!(f, "row {row}: state {target} out of range")
            }
            BehaviorError::BadProbability(r) => {
                write!(f, "row {r}: probabilities must be finite and within [0, 1]")
            }
            BehaviorError::TooManyPlanTargets(r) => {
                write!(f, "row {r}: more than {MAX_PLAN_TARGETS} plan targets")
            }
            BehaviorError::BadEmissionParam(r) => {
                write!(f, "row {r}: emission parameters must be finite and >= 0")
            }
            BehaviorError::BadDeviceParams => write!(f, "malformed device params"),
        }
    }
}

impl std::error::Error for BehaviorError {}

fn prob_ok(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

fn nonneg(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

/// Per-wake context the agent computes before stepping.
#[derive(Debug, Clone, Copy)]
pub struct StepCtx {
    /// Device present on this day (presence window).
    pub present: bool,
    /// Per-device rate multiplier drawn at construction.
    pub multiplier: f64,
}

/// What a step emitted — the agent turns this into `SimEvent`s using the
/// serving network its [`StepHost::attach`] recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Emission {
    /// Nothing happened (absent/inactive day, disabled plane, failed
    /// attach).
    Idle,
    /// A day was planned.
    Planned {
        /// Events scheduled across all targets.
        events: u64,
        /// Whether the daily switch coin forced a reselection.
        reselect: bool,
    },
    /// Full re-registration (`reauth`) or local routing-area update.
    Signaling {
        /// Auth + UpdateLocation pair vs a lone RAU.
        reauth: bool,
        /// Procedure result is Ok vs NetworkFailure.
        ok: bool,
    },
    /// One data session.
    Data {
        /// Index into the device's APN list.
        apn_index: u32,
        /// Uplink bytes.
        bytes_up: u64,
        /// Downlink bytes.
        bytes_down: u64,
        /// Clamped session duration.
        duration_secs: u32,
    },
    /// One voice/SMS event.
    Voice {
        /// Real call vs SMS-like.
        call: bool,
        /// Call duration (0 for SMS-like).
        duration_secs: u32,
    },
}

/// World access the interpreter needs mid-step: the RNG substream, the
/// attach walk (whose draws interleave with emission draws), scheduling,
/// and the reselect flag. Implemented by `DeviceAgent`'s wake context.
pub trait StepHost {
    /// The device's RNG substream.
    fn rng(&mut self) -> &mut SubstreamRng;
    /// Force a network reselection on the next attach.
    fn request_reselect(&mut self);
    /// Run the attach walk (emitting its signaling); true when the device
    /// ends up attached. The host records the serving network for the
    /// emission that follows.
    fn attach(&mut self) -> bool;
    /// Schedule a wake of `state` at `second_of_day` within the current
    /// day.
    fn schedule(&mut self, state: StateId, second_of_day: u64);
}

impl BehaviorMatrix {
    /// Validating constructor.
    pub fn new(
        params: DeviceParams,
        rows: Vec<BehaviorRow>,
        entry: StateId,
    ) -> Result<BehaviorMatrix, BehaviorError> {
        let m = BehaviorMatrix {
            params,
            rows,
            entry,
        };
        m.validate()?;
        Ok(m)
    }

    /// Validates an already-built (e.g. deserialized) matrix.
    pub fn validate(&self) -> Result<(), BehaviorError> {
        if self.rows.is_empty() {
            return Err(BehaviorError::Empty);
        }
        if self.entry.idx() >= self.rows.len() {
            return Err(BehaviorError::EntryOutOfRange);
        }
        let p = &self.params;
        if !nonneg(p.per_device_sigma)
            || !prob_ok(p.reselect_rotate_prob)
            || !prob_ok(p.event_failure_prob)
            || p.sticky_breadth_weights.is_empty()
            || p.sticky_breadth_weights.iter().any(|w| !nonneg(*w))
            || p.sticky_breadth_weights.iter().sum::<f64>() <= 0.0
        {
            return Err(BehaviorError::BadDeviceParams);
        }
        for (r, row) in self.rows.iter().enumerate() {
            if !nonneg(row.event_rate) {
                return Err(BehaviorError::BadEventRate(r));
            }
            if row.transitions.is_empty() {
                return Err(BehaviorError::EmptyTransitions(r));
            }
            let mut total = 0.0;
            for (target, w) in &row.transitions {
                if target.idx() >= self.rows.len() {
                    return Err(BehaviorError::StateOutOfRange {
                        row: r,
                        target: target.0,
                    });
                }
                if !nonneg(*w) {
                    return Err(BehaviorError::BadTransitionWeights(r));
                }
                total += w;
            }
            if !(total.is_finite() && total > 0.0) {
                return Err(BehaviorError::BadTransitionWeights(r));
            }
            match &row.emission {
                EmissionSpec::Silent => {}
                EmissionSpec::Plan(plan) => {
                    if !prob_ok(plan.daily_active_prob) || !prob_ok(plan.switch_propensity) {
                        return Err(BehaviorError::BadProbability(r));
                    }
                    if plan.targets.len() > MAX_PLAN_TARGETS {
                        return Err(BehaviorError::TooManyPlanTargets(r));
                    }
                    for t in &plan.targets {
                        if t.state.idx() >= self.rows.len() {
                            return Err(BehaviorError::StateOutOfRange {
                                row: r,
                                target: t.state.0,
                            });
                        }
                    }
                }
                EmissionSpec::Signaling(sig) => {
                    if !prob_ok(sig.switch_propensity)
                        || !prob_ok(sig.event_failure_prob)
                        || !prob_ok(sig.reauth_fraction)
                    {
                        return Err(BehaviorError::BadProbability(r));
                    }
                }
                EmissionSpec::Data(data) => {
                    if !prob_ok(data.volume.uplink_ratio) {
                        return Err(BehaviorError::BadProbability(r));
                    }
                    if !nonneg(data.volume.median_bytes)
                        || !nonneg(data.volume.sigma)
                        || !data.session_mean_secs.is_finite()
                        || data.session_mean_secs <= 0.0
                    {
                        return Err(BehaviorError::BadEmissionParam(r));
                    }
                }
                EmissionSpec::Voice(voice) => {
                    if !nonneg(voice.duration_mean_secs) {
                        return Err(BehaviorError::BadEmissionParam(r));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has no rows (never true once validated).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether `state` addresses a plan row (the agent re-schedules the
    /// next day's wake after stepping a plan row, present or not).
    pub fn is_plan(&self, state: StateId) -> bool {
        matches!(
            self.rows.get(state.idx()).map(|r| &r.emission),
            Some(EmissionSpec::Plan(_))
        )
    }

    /// The attach-walk knobs compiled into this matrix.
    pub fn attach_params(&self) -> AttachParams {
        AttachParams {
            event_failure_prob: self.params.event_failure_prob,
            sticky_failure: self.params.sticky_failure,
            rotate_prob: self.params.reselect_rotate_prob,
        }
    }

    /// Construction-time draw 1: the per-device rate multiplier. Same
    /// semantics as `TrafficProfile::draw_device_multiplier` — zero sigma
    /// consumes no draw.
    pub fn draw_multiplier(&self, rng: &mut SubstreamRng) -> f64 {
        if self.params.per_device_sigma <= 0.0 {
            1.0
        } else {
            rng.lognormal(1.0, self.params.per_device_sigma)
        }
    }

    /// Construction-time draw 2: sticky-attempt breadth (1 / 2 /
    /// unbounded).
    pub fn draw_sticky_breadth(&self, rng: &mut SubstreamRng) -> usize {
        match rng.weighted_index(&self.params.sticky_breadth_weights) {
            0 => 1,
            1 => 2,
            _ => usize::MAX,
        }
    }

    /// Selects a row's successor. Single-transition rows are draw-free;
    /// two-way rows use `chance` semantics (inheriting its no-draw
    /// short-circuit at p ∈ {0, 1}); wider rows mirror `weighted_index`
    /// without allocating.
    fn successor(&self, row: &BehaviorRow, rng: &mut SubstreamRng) -> StateId {
        let t = &row.transitions;
        match t.len() {
            1 => t[0].0,
            2 => {
                let total = t[0].1 + t[1].1;
                if rng.chance(t[0].1 / total) {
                    t[0].0
                } else {
                    t[1].0
                }
            }
            _ => {
                let total: f64 = t.iter().map(|(_, w)| *w).sum();
                let mut x = rng.unit() * total;
                for (state, w) in t {
                    x -= w;
                    if x <= 0.0 {
                        return *state;
                    }
                }
                t[t.len() - 1].0
            }
        }
    }

    /// The homogeneous interpreter: one wake of the chain at `state`.
    ///
    /// Returns the successor state and what was emitted. The successor is
    /// only *drawn* (for multi-transition rows) after a row actually
    /// emits; early exits (absent day, disabled plane, failed attach)
    /// return `state` unchanged without consuming draws. Silent rows hop
    /// to a successor and interpret it, bounded by [`MAX_SILENT_HOPS`].
    pub fn step<H: StepHost>(
        &self,
        state: StateId,
        ctx: StepCtx,
        host: &mut H,
    ) -> (StateId, Emission) {
        let mut at = state;
        let mut hops = 0u32;
        loop {
            let row = &self.rows[at.idx()];
            match &row.emission {
                EmissionSpec::Silent => {
                    at = self.successor(row, host.rng());
                    hops += 1;
                    if hops > MAX_SILENT_HOPS {
                        return (at, Emission::Idle);
                    }
                }
                EmissionSpec::Plan(plan) => return self.step_plan(at, row, plan, ctx, host),
                EmissionSpec::Signaling(sig) => return self.step_signaling(at, row, sig, host),
                EmissionSpec::Data(data) => return self.step_data(at, row, data, host),
                EmissionSpec::Voice(voice) => return self.step_voice(at, row, voice, host),
            }
        }
    }

    fn step_plan<H: StepHost>(
        &self,
        at: StateId,
        row: &BehaviorRow,
        plan: &PlanSpec,
        ctx: StepCtx,
        host: &mut H,
    ) -> (StateId, Emission) {
        // `present &&` short-circuits before the activity coin, exactly
        // like the legacy `present_on(day) && rng.chance(p)`.
        if !(ctx.present && host.rng().chance(plan.daily_active_prob)) {
            return (at, Emission::Idle);
        }
        // All per-target counts first (the legacy sample_day_counts
        // triple), then seconds per scheduled target, then the switch
        // coin.
        let mut counts = [0u64; MAX_PLAN_TARGETS];
        for (i, target) in plan.targets.iter().enumerate() {
            let rate = self.rows[target.state.idx()].event_rate;
            counts[i] = host.rng().poisson(rate * ctx.multiplier);
        }
        let mut events = 0u64;
        for (i, target) in plan.targets.iter().enumerate() {
            if !target.scheduled {
                continue;
            }
            for _ in 0..counts[i] {
                let second = plan.diurnal.sample_second(host.rng());
                host.schedule(target.state, second);
            }
            events += counts[i];
        }
        let reselect = host.rng().chance(plan.switch_propensity);
        if reselect {
            host.request_reselect();
        }
        (
            self.successor(row, host.rng()),
            Emission::Planned { events, reselect },
        )
    }

    fn step_signaling<H: StepHost>(
        &self,
        at: StateId,
        row: &BehaviorRow,
        sig: &SignalingSpec,
        host: &mut H,
    ) -> (StateId, Emission) {
        if host.rng().chance(sig.switch_propensity) {
            host.request_reselect();
        }
        if !host.attach() {
            return (at, Emission::Idle);
        }
        let ok = !host.rng().chance(sig.event_failure_prob);
        let reauth = host.rng().chance(sig.reauth_fraction);
        (
            self.successor(row, host.rng()),
            Emission::Signaling { reauth, ok },
        )
    }

    fn step_data<H: StepHost>(
        &self,
        at: StateId,
        row: &BehaviorRow,
        data: &DataSpec,
        host: &mut H,
    ) -> (StateId, Emission) {
        if !data.enabled || data.apn_count == 0 {
            return (at, Emission::Idle);
        }
        if !host.attach() {
            return (at, Emission::Idle);
        }
        let (bytes_up, bytes_down) = data.volume.sample(host.rng());
        let apn_index = host.rng().index(data.apn_count as usize) as u32;
        let (lo, hi) = DURATION_CLAMP_SECS;
        let duration_secs = host.rng().exponential(data.session_mean_secs).clamp(lo, hi) as u32;
        (
            self.successor(row, host.rng()),
            Emission::Data {
                apn_index,
                bytes_up,
                bytes_down,
                duration_secs,
            },
        )
    }

    fn step_voice<H: StepHost>(
        &self,
        at: StateId,
        row: &BehaviorRow,
        voice: &VoiceSpec,
        host: &mut H,
    ) -> (StateId, Emission) {
        if !voice.enabled {
            return (at, Emission::Idle);
        }
        if !host.attach() {
            return (at, Emission::Idle);
        }
        let duration_secs = if voice.is_call {
            let (lo, hi) = DURATION_CLAMP_SECS;
            host.rng()
                .exponential(voice.duration_mean_secs.max(1.0))
                .clamp(lo, hi) as u32
        } else {
            0
        };
        (
            self.successor(row, host.rng()),
            Emission::Voice {
                call: voice.is_call,
                duration_secs,
            },
        )
    }
}

/// The canonical legacy state layout: four rows whose `StateId`s coincide
/// with the wake tags the hand-coded agent used.
pub mod states {
    use super::StateId;

    /// Day-planning row.
    pub const PLAN: StateId = StateId(0);
    /// Signaling row.
    pub const SIGNALING: StateId = StateId(1);
    /// Data row.
    pub const DATA: StateId = StateId(2);
    /// Voice row.
    pub const VOICE: StateId = StateId(3);
}

/// Per-class knobs that, together with a [`TrafficProfile`], fully
/// determine a compiled matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorOptions {
    /// Probability the device is active on a present day.
    pub daily_active_prob: f64,
    /// Per-event/daily probability of forcing a reselection.
    pub switch_propensity: f64,
    /// Per-procedure transient-failure probability.
    pub event_failure_prob: f64,
    /// When set, every attach attempt fails with this result.
    pub sticky_failure: Option<ProcedureResult>,
    /// Whether the subscription uses data at all.
    pub data_enabled: bool,
    /// Whether the subscription uses voice/SMS.
    pub voice_enabled: bool,
    /// APNs the device chooses between.
    pub apn_count: u32,
}

impl Default for BehaviorOptions {
    fn default() -> Self {
        BehaviorOptions {
            daily_active_prob: 1.0,
            switch_propensity: 0.0,
            event_failure_prob: 0.0,
            sticky_failure: None,
            data_enabled: true,
            voice_enabled: true,
            apn_count: 1,
        }
    }
}

/// Compiles a [`TrafficProfile`] + per-class options into the canonical
/// four-row matrix (plan → {signaling, data, voice} self-loops).
pub fn profile_matrix(profile: &TrafficProfile, opts: &BehaviorOptions) -> BehaviorMatrix {
    let self_loop = |s: StateId| vec![(s, 1.0)];
    let rows = vec![
        BehaviorRow {
            transitions: self_loop(states::PLAN),
            event_rate: 0.0,
            emission: EmissionSpec::Plan(PlanSpec {
                daily_active_prob: opts.daily_active_prob,
                switch_propensity: opts.switch_propensity,
                diurnal: profile.diurnal,
                targets: vec![
                    PlanTarget {
                        state: states::SIGNALING,
                        scheduled: true,
                    },
                    PlanTarget {
                        state: states::DATA,
                        scheduled: opts.data_enabled,
                    },
                    PlanTarget {
                        state: states::VOICE,
                        scheduled: opts.voice_enabled,
                    },
                ],
            }),
        },
        BehaviorRow {
            transitions: self_loop(states::SIGNALING),
            event_rate: profile.signaling_per_day,
            emission: EmissionSpec::Signaling(SignalingSpec {
                switch_propensity: opts.switch_propensity,
                event_failure_prob: opts.event_failure_prob,
                reauth_fraction: profile.reauth_fraction,
            }),
        },
        BehaviorRow {
            transitions: self_loop(states::DATA),
            event_rate: profile.data_sessions_per_day,
            emission: EmissionSpec::Data(DataSpec {
                enabled: opts.data_enabled,
                apn_count: opts.apn_count,
                volume: profile.volume,
                session_mean_secs: DATA_SESSION_MEAN_SECS,
            }),
        },
        BehaviorRow {
            transitions: self_loop(states::VOICE),
            event_rate: profile.voice_per_day,
            emission: EmissionSpec::Voice(VoiceSpec {
                enabled: opts.voice_enabled,
                is_call: profile.voice_is_call,
                duration_mean_secs: profile.call_duration_mean_secs,
            }),
        },
    ];
    let params = DeviceParams {
        per_device_sigma: profile.per_device_sigma,
        sticky_breadth_weights: STICKY_BREADTH_WEIGHTS.to_vec(),
        reselect_rotate_prob: RESELECT_ROTATE_PROB,
        event_failure_prob: opts.event_failure_prob,
        sticky_failure: opts.sticky_failure,
    };
    BehaviorMatrix::new(params, rows, states::PLAN).expect("profile compilation is always valid")
}

/// Compiles a [`DeviceSpec`](crate::device::DeviceSpec) into matrix form —
/// the bridge proving the refactor equivalent: the compiled matrix holds
/// exactly the numeric values the legacy branches read, so the interpreter
/// replays the same draw sequence and the golden digests are preserved.
pub fn legacy_matrix(spec: &crate::device::DeviceSpec) -> BehaviorMatrix {
    profile_matrix(
        &spec.traffic,
        &BehaviorOptions {
            daily_active_prob: spec.presence.daily_active_prob,
            switch_propensity: spec.switch_propensity,
            event_failure_prob: spec.event_failure_prob,
            sticky_failure: spec.sticky_failure,
            data_enabled: spec.data_enabled,
            voice_enabled: spec.voice_enabled,
            apn_count: spec.apns.len() as u32,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::vertical::Vertical;

    fn meter_matrix() -> BehaviorMatrix {
        profile_matrix(
            &TrafficProfile::for_vertical(Vertical::SmartMeter),
            &BehaviorOptions::default(),
        )
    }

    /// Host that records interpreter calls against a scripted attach
    /// outcome.
    struct ProbeHost {
        rng: SubstreamRng,
        attach_ok: bool,
        attaches: u32,
        reselects: u32,
        scheduled: Vec<(StateId, u64)>,
    }

    impl ProbeHost {
        fn new(attach_ok: bool) -> Self {
            ProbeHost {
                rng: SubstreamRng::derive(5, 5),
                attach_ok,
                attaches: 0,
                reselects: 0,
                scheduled: Vec::new(),
            }
        }
    }

    impl StepHost for ProbeHost {
        fn rng(&mut self) -> &mut SubstreamRng {
            &mut self.rng
        }
        fn request_reselect(&mut self) {
            self.reselects += 1;
        }
        fn attach(&mut self) -> bool {
            self.attaches += 1;
            self.attach_ok
        }
        fn schedule(&mut self, state: StateId, second: u64) {
            self.scheduled.push((state, second));
        }
    }

    #[test]
    fn legacy_layout_states_match_wake_tags() {
        let m = meter_matrix();
        assert_eq!(m.len(), 4);
        assert_eq!(m.entry, states::PLAN);
        assert!(m.is_plan(states::PLAN));
        assert!(!m.is_plan(states::SIGNALING));
    }

    #[test]
    fn plan_schedules_targets_within_day() {
        let m = meter_matrix();
        let mut host = ProbeHost::new(true);
        let ctx = StepCtx {
            present: true,
            multiplier: 1.0,
        };
        let (next, emission) = m.step(states::PLAN, ctx, &mut host);
        assert_eq!(next, states::PLAN, "legacy plan rows self-loop");
        match emission {
            Emission::Planned { events, .. } => {
                assert_eq!(events, host.scheduled.len() as u64)
            }
            other => panic!("expected a plan emission, got {other:?}"),
        }
        for (state, second) in &host.scheduled {
            assert!(*second < 86_400);
            assert!(matches!(
                *state,
                states::SIGNALING | states::DATA | states::VOICE
            ));
        }
    }

    #[test]
    fn absent_day_draws_nothing() {
        let m = meter_matrix();
        let mut host = ProbeHost::new(true);
        let mut before = host.rng.clone();
        let ctx = StepCtx {
            present: false,
            multiplier: 1.0,
        };
        let (next, emission) = m.step(states::PLAN, ctx, &mut host);
        assert_eq!(next, states::PLAN);
        assert_eq!(emission, Emission::Idle);
        // The RNG state must be untouched: the next draw matches a clone
        // taken before the step.
        assert_eq!(host.rng.unit(), before.unit(), "absent day consumed draws");
        assert!(host.scheduled.is_empty());
    }

    #[test]
    fn failed_attach_is_idle() {
        let m = meter_matrix();
        let mut host = ProbeHost::new(false);
        let ctx = StepCtx {
            present: true,
            multiplier: 1.0,
        };
        let (next, emission) = m.step(states::SIGNALING, ctx, &mut host);
        assert_eq!(next, states::SIGNALING);
        assert_eq!(emission, Emission::Idle);
        assert_eq!(host.attaches, 1);
    }

    #[test]
    fn disabled_data_plane_never_attaches() {
        let opts = BehaviorOptions {
            data_enabled: false,
            ..BehaviorOptions::default()
        };
        let m = profile_matrix(&TrafficProfile::for_vertical(Vertical::SmartMeter), &opts);
        let mut host = ProbeHost::new(true);
        let mut before = host.rng.clone();
        let ctx = StepCtx {
            present: true,
            multiplier: 1.0,
        };
        let (_, emission) = m.step(states::DATA, ctx, &mut host);
        assert_eq!(emission, Emission::Idle);
        assert_eq!(host.attaches, 0);
        assert_eq!(host.rng.unit(), before.unit());
    }

    #[test]
    fn silent_rows_branch_between_emissions() {
        // Entry row branches 100% to the voice row: the step must hop
        // through and emit voice.
        let profile = TrafficProfile::for_vertical(Vertical::Smartphone);
        let mut m = profile_matrix(&profile, &BehaviorOptions::default());
        m.rows.push(BehaviorRow {
            transitions: vec![(states::VOICE, 1.0)],
            event_rate: 0.0,
            emission: EmissionSpec::Silent,
        });
        m.validate().unwrap();
        let mut host = ProbeHost::new(true);
        let ctx = StepCtx {
            present: true,
            multiplier: 1.0,
        };
        let (next, emission) = m.step(StateId(4), ctx, &mut host);
        assert_eq!(next, states::VOICE);
        assert!(matches!(emission, Emission::Voice { call: true, .. }));
    }

    #[test]
    fn silent_cycles_are_bounded() {
        let mut m = meter_matrix();
        m.rows.push(BehaviorRow {
            transitions: vec![(StateId(4), 1.0)],
            event_rate: 0.0,
            emission: EmissionSpec::Silent,
        });
        m.validate().unwrap();
        let mut host = ProbeHost::new(true);
        let ctx = StepCtx {
            present: true,
            multiplier: 1.0,
        };
        let (_, emission) = m.step(StateId(4), ctx, &mut host);
        assert_eq!(
            emission,
            Emission::Idle,
            "self-looping silent row must terminate"
        );
    }

    #[test]
    fn validation_rejects_malformed_matrices() {
        let good = meter_matrix();
        assert!(good.validate().is_ok());

        let mut m = good.clone();
        m.rows.clear();
        assert_eq!(m.validate(), Err(BehaviorError::Empty));

        let mut m = good.clone();
        m.entry = StateId(99);
        assert_eq!(m.validate(), Err(BehaviorError::EntryOutOfRange));

        let mut m = good.clone();
        m.rows[1].event_rate = f64::NAN;
        assert_eq!(m.validate(), Err(BehaviorError::BadEventRate(1)));

        let mut m = good.clone();
        m.rows[2].transitions.clear();
        assert_eq!(m.validate(), Err(BehaviorError::EmptyTransitions(2)));

        let mut m = good.clone();
        m.rows[0].transitions = vec![(StateId(7), 1.0)];
        assert_eq!(
            m.validate(),
            Err(BehaviorError::StateOutOfRange { row: 0, target: 7 })
        );

        let mut m = good.clone();
        m.rows[3].transitions = vec![(states::VOICE, 0.0)];
        assert_eq!(m.validate(), Err(BehaviorError::BadTransitionWeights(3)));

        let mut m = good.clone();
        if let EmissionSpec::Signaling(s) = &mut m.rows[1].emission {
            s.reauth_fraction = 1.5;
        }
        assert_eq!(m.validate(), Err(BehaviorError::BadProbability(1)));

        let mut m = good.clone();
        m.params.sticky_breadth_weights = vec![];
        assert_eq!(m.validate(), Err(BehaviorError::BadDeviceParams));
    }

    #[test]
    fn serde_roundtrip_is_identity() {
        for v in Vertical::ALL {
            let m = profile_matrix(
                &TrafficProfile::for_vertical(v),
                &BehaviorOptions::default(),
            );
            let json = serde_json::to_string(&m).unwrap();
            let back: BehaviorMatrix = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "roundtrip for {v}");
            assert!(back.validate().is_ok());
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                json,
                "stable bytes for {v}"
            );
        }
    }
}
