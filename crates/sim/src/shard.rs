//! Sharded simulation: K independent per-shard event loops over a
//! partitioned agent population.
//!
//! Devices are embarrassingly parallel by construction — agents can only
//! self-schedule (the [`Scheduler`](crate::engine::Scheduler) exposes no
//! cross-agent wake) and every device draws from its own RNG substream —
//! so an agent population can be split into contiguous shards, each run
//! to completion on its own [`Engine`], and the per-shard results merged
//! afterwards. The engine's shard-stable dispatch order
//! `(time, agent, per-agent seq)` guarantees each agent's wake-ups are
//! dispatched in the same relative order whether it runs in a shard of 1
//! or a shard of N, so a probe that merges per-shard partials with
//! order-insensitive (or first-shard-wins keyed) semantics reproduces the
//! serial run exactly — the simulation-side twin of [`crate::par`]'s
//! map-reduce determinism contract.
//!
//! Partitioning uses [`par::split_ranges`](crate::par::split_ranges):
//! contiguous index ranges that are a pure function of `(agents, shards)`,
//! so the shard an agent lands in never depends on thread scheduling.

use crate::engine::{Agent, Engine, EngineStats};
use crate::par;
use wtr_model::time::SimTime;

/// Resolves the effective shard count: an explicit request (clamped to
/// at least 1) or, when `None`, the [`par::threads`] worker count.
pub fn shard_count(requested: Option<usize>) -> usize {
    requested.map_or_else(par::threads, |k| k.max(1))
}

/// Runs `agents` partitioned into (at most) `shards` contiguous shards,
/// each on its own scoped-thread event loop with a world built by
/// `make_world(shard_index)`, and returns the per-shard
/// `(world, stats)` results **in shard order**.
///
/// The partition boundaries come from [`par::split_ranges`], so they are
/// a pure function of `(agents.len(), shards)`. With `shards <= 1` (or a
/// single-shard partition) the engine runs inline on the calling thread —
/// the sharded path with K=1 is the serial path plus one closure call.
///
/// Determinism contract: each agent behaves identically regardless of
/// which shard it lands in (self-scheduling only + per-agent RNG
/// substreams + the `(time, agent, seq)` dispatch order). Callers are
/// responsible for merging the per-shard worlds with order-insensitive
/// (additive / keyed) semantics; see `MnoProbe::absorb` in `wtr-probes`.
pub fn run_sharded<W, A, F>(
    horizon: SimTime,
    shards: usize,
    agents: Vec<A>,
    make_world: F,
) -> Vec<(W, EngineStats)>
where
    W: Send,
    A: Agent<W> + Send,
    F: Fn(usize) -> W + Sync,
{
    let ranges = par::split_ranges(agents.len(), shards.max(1));
    if ranges.len() <= 1 {
        let mut engine = Engine::new(make_world(0), horizon);
        engine.add_agents(agents);
        return vec![engine.run_stats()];
    }

    // Move each contiguous agent range into its own group, preserving
    // global order (range i holds agents [ranges[i].start, ranges[i].end)).
    let mut iter = agents.into_iter();
    let groups: Vec<Vec<A>> = ranges
        .iter()
        .map(|r| iter.by_ref().take(r.len()).collect())
        .collect();
    debug_assert!(iter.next().is_none());

    let make_world = &make_world;
    let mut results: Vec<(W, EngineStats)> = Vec::with_capacity(groups.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(groups.len());
        for (shard, group) in groups.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                let mut engine = Engine::new(make_world(shard), horizon);
                engine.add_agents(group);
                engine.run_stats()
            }));
        }
        // Join in spawn order: results land in shard order.
        for h in handles {
            results.push(h.join().expect("wtr-sim::shard worker panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AgentId, Scheduler, WakeTag};
    use wtr_model::time::SimDuration;

    /// Shard-local world: a log of (time, tag) per dispatch.
    type Log = Vec<(SimTime, u32)>;

    /// Agent that wakes every `period` seconds and logs its tag.
    struct Ticker {
        period: u64,
        tag: u32,
    }

    impl Agent<Log> for Ticker {
        fn init(&mut self, id: AgentId, _world: &mut Log, sched: &mut Scheduler) {
            sched.wake_at(id, WakeTag(self.tag), SimTime::from_secs(self.period));
        }
        fn wake(&mut self, id: AgentId, _tag: WakeTag, world: &mut Log, sched: &mut Scheduler) {
            world.push((sched.now(), self.tag));
            sched.wake_at(
                id,
                WakeTag(self.tag),
                sched.now() + SimDuration::from_secs(self.period),
            );
        }
    }

    fn population(n: u32) -> Vec<Ticker> {
        (0..n)
            .map(|i| Ticker {
                period: 5 + (i as u64 % 7),
                tag: i,
            })
            .collect()
    }

    /// The merged multiset of (time, tag) pairs must not depend on the
    /// shard count, and per-tag subsequences must stay in time order.
    #[test]
    fn merged_multiset_is_shard_count_invariant() {
        let horizon = SimTime::from_secs(200);
        let run = |k: usize| {
            let results = run_sharded(horizon, k, population(23), |_| Log::new());
            let mut all: Vec<(SimTime, u32)> = results.into_iter().flat_map(|(w, _)| w).collect();
            all.sort_unstable();
            all
        };
        let serial = run(1);
        assert!(!serial.is_empty());
        for k in [2usize, 4, 8, 64] {
            assert_eq!(run(k), serial, "shards={k}");
        }
    }

    #[test]
    fn stats_cover_all_agents_and_dispatches() {
        let horizon = SimTime::from_secs(100);
        let serial: u64 = run_sharded(horizon, 1, population(17), |_| Log::new())
            .iter()
            .map(|(_, s)| s.dispatched)
            .sum();
        let results = run_sharded(horizon, 4, population(17), |_| Log::new());
        assert_eq!(results.len(), 4);
        let mut total = EngineStats::default();
        for (_, s) in &results {
            total.absorb(s);
        }
        assert_eq!(total.agents, 17);
        assert_eq!(total.dispatched, serial);
        assert_eq!(total.scheduled, total.dispatched);
    }

    #[test]
    fn make_world_sees_shard_indices_in_order() {
        let results = run_sharded(SimTime::from_secs(10), 3, population(9), |shard| {
            vec![(SimTime::ZERO, shard as u32)]
        });
        let seeds: Vec<u32> = results
            .iter()
            .map(|(w, _)| w.first().expect("seed entry").1)
            .collect();
        assert_eq!(seeds, vec![0, 1, 2]);
    }

    #[test]
    fn empty_population_runs_one_engine() {
        let results = run_sharded(SimTime::from_secs(10), 8, Vec::<Ticker>::new(), |_| {
            Log::new()
        });
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.agents, 0);
    }

    #[test]
    fn shard_count_resolution() {
        assert_eq!(shard_count(Some(4)), 4);
        assert_eq!(shard_count(Some(0)), 1, "explicit zero clamps to one");
        // `None` delegates to the worker-thread resolution (>= 1). The
        // exact value depends on the global override / environment, which
        // other tests in this binary own behind their own lock.
        assert!(shard_count(None) >= 1);
    }
}
