//! Deterministic parallel map-reduce over slices.
//!
//! The helpers here are the workspace's only concurrency layer: plain
//! `std::thread::scope` fan-out with **order-stable** merging, so every
//! pipeline stage produces byte-identical output at 1, 2 or N worker
//! threads.
//!
//! # Determinism by construction
//!
//! Work is split into fixed chunks whose size is a pure function of the
//! input length only (never of the thread count, see [`chunk_size`]).
//! Each chunk is folded independently into a partial accumulator, and
//! the partials are merged **left to right in chunk-index order** — even
//! when running serially, the same chunk boundaries are used, so the
//! sequence of `fold`/`merge` calls (and thus any floating-point
//! rounding) is identical regardless of how many threads executed them.
//!
//! Consequently callers only need `merge` to be associative *in
//! structure*, not commutative: "first chunk wins" semantics (e.g. keep
//! the identity fields from the earliest event) survive parallel
//! execution unchanged.
//!
//! # Thread-count knob
//!
//! The worker count resolves, in priority order, from
//! [`set_threads`] (in-process override, used by the determinism test
//! matrix), the `WTR_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// In-process thread-count override; `0` means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for all subsequent parallel calls
/// in this process. `Some(n)` forces `n` (clamped to at least 1);
/// `None` clears the override, restoring `WTR_THREADS` / autodetection.
///
/// This exists mainly for tests that assert byte-identical output
/// across thread counts without respawning the process.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::SeqCst);
}

/// Resolves the effective worker-thread count.
///
/// Priority: [`set_threads`] override, then the `WTR_THREADS`
/// environment variable (parsed as a positive integer; invalid values
/// are ignored), then [`std::thread::available_parallelism`], falling
/// back to 1.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("WTR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum number of items per chunk; below this, parallel dispatch
/// costs more than it saves.
const MIN_CHUNK: usize = 256;
/// Maximum number of chunks per call; bounds per-call bookkeeping.
const MAX_CHUNKS: usize = 64;

/// Chunk size used to shard `n` items.
///
/// This is a pure function of `n` **only** — never of the thread count —
/// which is the linchpin of the determinism guarantee: the partial
/// accumulators computed per chunk are identical no matter how many
/// threads the chunks were distributed over.
pub fn chunk_size(n: usize) -> usize {
    n.div_ceil(MAX_CHUNKS).max(MIN_CHUNK)
}

/// Folds every chunk of `items` with `fold` (starting from `identity`)
/// and merges the per-chunk partials left-to-right in chunk order.
///
/// `fold(acc, item)` absorbs one item into a chunk-local accumulator;
/// `merge(left, right)` combines two adjacent partials where `left`
/// covers strictly earlier items than `right`. Because partials are
/// always merged in chunk-index order, `merge` may rely on that
/// ordering ("first wins" is safe); it does not need to be commutative.
///
/// Runs serially (same chunking, same call sequence) when the input is
/// small or only one worker thread is configured.
pub fn par_map_reduce<T, A, I, F, M>(items: &[T], identity: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let partials = chunked_map(items, |chunk| chunk.iter().fold(identity(), &fold));
    let mut out = identity();
    for p in partials {
        out = merge(out, p);
    }
    out
}

/// Maps every item through `f`, preserving input order in the output.
///
/// The mapping closure must be pure with respect to item position
/// (which it sees only via the item itself), so the concatenation of
/// per-chunk outputs is identical to a serial map.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let chunks = chunked_map(items, |chunk| chunk.iter().map(&f).collect::<Vec<U>>());
    let mut out = Vec::with_capacity(items.len());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Splits `0..n` into at most `k` contiguous, non-empty, in-order
/// ranges whose union is `0..n`.
///
/// The boundaries are a pure function of `(n, k)`: range `w` is
/// `[w*per, min((w+1)*per, n))` with `per = n.div_ceil(k)` — the same
/// contiguous assignment [`par_each`] and [`chunked_map`] use for their
/// workers. This is the partitioning used by [`crate::shard`] to split
/// an agent population into per-shard event loops: contiguity preserves
/// the relative agent order inside every shard, which the shard-stable
/// dispatch order `(time, agent, seq)` relies on.
pub fn split_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1);
    let per = n.div_ceil(k);
    let mut out = Vec::with_capacity(k.min(n));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + per).min(n);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Maps every item through `f` with **one work unit per item**,
/// preserving input order in the output.
///
/// Unlike [`par_map`], which shards at [`chunk_size`] granularity (and
/// therefore runs serially for fewer than `MIN_CHUNK` items), this
/// spreads the items themselves across workers in contiguous index
/// ranges. It exists for the streaming drivers in [`crate::stream`],
/// where each "item" is already a whole chunk of records and the
/// per-item cost is large enough to dwarf dispatch overhead.
///
/// Output order is the input order regardless of worker count: workers
/// return `(first_index, results)` pairs that are sorted back before
/// concatenation.
pub fn par_each<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let ranges = split_ranges(items.len(), workers);
    let f = &f;
    let mut indexed: Vec<(usize, Vec<U>)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in ranges {
            let lo = r.start;
            let slice = &items[r];
            handles.push(scope.spawn(move || (lo, slice.iter().map(f).collect::<Vec<U>>())));
        }
        for h in handles {
            indexed.push(h.join().expect("wtr-sim::par worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().flat_map(|(_, v)| v).collect()
}

/// Applies `f` to each fixed-size chunk of `items`, returning the
/// per-chunk results in chunk-index order.
///
/// This is the shared engine behind [`par_map`] and
/// [`par_map_reduce`]: chunk boundaries come from [`chunk_size`], and
/// chunks are assigned to scoped worker threads in contiguous runs.
/// Each worker returns `(chunk_index, result)` pairs which are sorted
/// back into chunk order before returning, so callers observe a
/// deterministic sequence regardless of scheduling.
pub fn chunked_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let size = chunk_size(items.len());
    let chunks: Vec<&[T]> = items.chunks(size).collect();
    let workers = threads().min(chunks.len());
    if workers <= 1 || chunks.len() <= 1 {
        return chunks.into_iter().map(&f).collect();
    }

    // Contiguous chunk-range per worker; ranges are a pure function of
    // (chunk count, worker count) so assignment is reproducible too.
    let ranges = split_ranges(chunks.len(), workers);
    let f = &f;
    let chunks = &chunks;
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in ranges {
            handles.push(
                scope.spawn(move || r.map(|i| (i, f(chunks[i]))).collect::<Vec<(usize, U)>>()),
            );
        }
        for h in handles {
            indexed.extend(h.join().expect("wtr-sim::par worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

/// Applies `f` to every item **in place**, splitting the slice into
/// contiguous per-worker ranges.
///
/// The mutation closure must be pure per item (no cross-item state), so
/// the final slice contents are identical to a serial `for` loop at any
/// worker count — this is the in-place sibling of [`par_each`], used by
/// bulk rewrite passes such as the catalog's APN-symbol remap.
pub fn par_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || items.len() <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let ranges = split_ranges(items.len(), workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = items;
        for r in ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
            rest = tail;
            scope.spawn(move || {
                for item in head {
                    f(item);
                }
            });
        }
    });
}

/// Reduces `items` by merging adjacent pairs level by level — a balanced
/// binary tree over the input order — and returns the final value
/// (`None` for an empty input).
///
/// The tree shape is a pure function of `items.len()` (never of the
/// thread count): level `l` merges `(items[2i], items[2i+1])` with the
/// left operand always covering strictly earlier input than the right,
/// and an unpaired tail element passes through unchanged. `merge` may
/// therefore rely on left-covers-earlier ("first wins") semantics, like
/// [`par_map_reduce`]'s ordered merge — but unlike the serial left fold
/// it is *regrouped*: `merge` must be associative for the result to
/// equal a left fold. Each level's pair merges run on scoped worker
/// threads, turning an O(k) serial merge tail into O(log k) levels.
pub fn tree_reduce<T, M>(items: Vec<T>, merge: M) -> Option<T>
where
    T: Send,
    M: Fn(T, T) -> T + Sync,
{
    let mut level = items;
    while level.len() > 1 {
        let mut pairs: Vec<(T, Option<T>)> = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.into_iter();
        while let Some(left) = iter.next() {
            pairs.push((left, iter.next()));
        }
        let workers = threads().min(pairs.len());
        let reduce_pair = |(left, right): (T, Option<T>)| match right {
            Some(right) => merge(left, right),
            None => left,
        };
        level = if workers <= 1 || pairs.len() <= 1 {
            pairs.into_iter().map(reduce_pair).collect()
        } else {
            let reduce_pair = &reduce_pair;
            let mut indexed: Vec<(usize, T)> = Vec::with_capacity(pairs.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(pairs.len());
                for (i, pair) in pairs.into_iter().enumerate() {
                    handles.push(scope.spawn(move || (i, reduce_pair(pair))));
                }
                for h in handles {
                    indexed.push(h.join().expect("wtr-sim::par worker panicked"));
                }
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, v)| v).collect()
        };
    }
    level.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn chunk_size_is_pure_in_n() {
        assert_eq!(chunk_size(1), MIN_CHUNK);
        assert_eq!(chunk_size(MIN_CHUNK * MAX_CHUNKS), MIN_CHUNK);
        // Large inputs: at most MAX_CHUNKS chunks.
        let n: usize = 1_000_000;
        assert!(n.div_ceil(chunk_size(n)) <= MAX_CHUNKS);
    }

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..10_000).collect();
        let mut outputs = Vec::new();
        for t in [1usize, 2, 8] {
            set_threads(Some(t));
            outputs.push(par_map(&items, |x| x * 3 + 1));
        }
        set_threads(None);
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0][7], 22);
    }

    #[test]
    fn reduce_is_bitwise_stable_for_floats() {
        let _g = LOCK.lock().unwrap();
        // Float addition is not associative, so a naive parallel sum
        // would drift with thread count. Fixed chunking + ordered merge
        // must keep the bits identical.
        let items: Vec<f64> = (0..50_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let sum = |t: usize| {
            set_threads(Some(t));
            let s = par_map_reduce(&items, || 0.0f64, |a, x| a + x, |a, b| a + b);
            set_threads(None);
            s.to_bits()
        };
        let s1 = sum(1);
        assert_eq!(s1, sum(2));
        assert_eq!(s1, sum(8));
    }

    #[test]
    fn reduce_supports_first_wins_merge() {
        let _g = LOCK.lock().unwrap();
        // Non-commutative merge: keep the first-seen value.
        let items: Vec<u32> = (0..5_000).collect();
        for t in [1usize, 2, 8] {
            set_threads(Some(t));
            let first = par_map_reduce(
                &items,
                || None::<u32>,
                |a, x| a.or(Some(*x)),
                |a, b| a.or(b),
            );
            assert_eq!(first, Some(0));
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(8));
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        let one = [9u8];
        assert_eq!(par_map(&one, |x| *x + 1), vec![10]);
        set_threads(None);
    }

    #[test]
    fn each_preserves_order_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..37).collect();
        let mut outputs = Vec::new();
        for t in [1usize, 2, 8, 64] {
            set_threads(Some(t));
            outputs.push(par_each(&items, |x| x * 2));
        }
        set_threads(None);
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
        assert_eq!(outputs[0][5], 10);
        let empty: Vec<u64> = Vec::new();
        set_threads(Some(4));
        assert!(par_each(&empty, |x| *x).is_empty());
        set_threads(None);
    }

    #[test]
    fn split_ranges_covers_input_in_order() {
        for n in [0usize, 1, 2, 5, 37, 400, 1_000] {
            for k in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(n, k);
                assert!(ranges.len() <= k, "n={n} k={k}: {} ranges", ranges.len());
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} k={k}: gap/overlap");
                    assert!(r.start < r.end, "n={n} k={k}: empty range");
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} k={k}: union must be 0..n");
            }
        }
        assert!(split_ranges(0, 4).is_empty());
        assert_eq!(split_ranges(10, 0), split_ranges(10, 1));
    }

    #[test]
    fn each_mut_matches_serial_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let mut expected: Vec<u64> = (0..1_000).collect();
        for x in expected.iter_mut() {
            *x = *x * 7 + 3;
        }
        for t in [1usize, 2, 8, 64] {
            set_threads(Some(t));
            let mut items: Vec<u64> = (0..1_000).collect();
            par_each_mut(&mut items, |x| *x = *x * 7 + 3);
            assert_eq!(items, expected, "threads={t}");
        }
        set_threads(None);
        let mut empty: Vec<u64> = Vec::new();
        par_each_mut(&mut empty, |_| unreachable!());
    }

    #[test]
    fn tree_reduce_concatenation_preserves_order() {
        let _g = LOCK.lock().unwrap();
        // Concatenation is associative but not commutative: any reorder
        // or regrouping that broke left-covers-earlier would show up.
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 65] {
            let items: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
            let expected: Option<Vec<u32>> = if n == 0 {
                None
            } else {
                Some((0..n as u32).collect())
            };
            for t in [1usize, 2, 8] {
                set_threads(Some(t));
                let got = tree_reduce(items.clone(), |mut a, b| {
                    a.extend(b);
                    a
                });
                assert_eq!(got, expected, "n={n} threads={t}");
            }
        }
        set_threads(None);
    }

    #[test]
    fn tree_reduce_first_occurrence_interning_matches_left_fold() {
        let _g = LOCK.lock().unwrap();
        // Models the APN-table merge: absorbing a table keeps the
        // left side's entries and appends the right side's new strings
        // in their order. Any ordered binary tree must reproduce the
        // serial left fold's first-occurrence order exactly.
        let tables: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i % 4, i, (i * 3) % 7, 2]).collect();
        let absorb = |mut left: Vec<u8>, right: Vec<u8>| {
            for s in right {
                if !left.contains(&s) {
                    left.push(s);
                }
            }
            left
        };
        let mut serial = tables[0].clone();
        for t in &tables[1..] {
            serial = absorb(serial, t.clone());
        }
        for t in [1usize, 2, 8] {
            set_threads(Some(t));
            assert_eq!(
                tree_reduce(tables.clone(), absorb).unwrap(),
                serial,
                "threads={t}"
            );
        }
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }
}
