//! Deterministic RNG substreams and long-tail sampling helpers.
//!
//! One master seed drives the whole simulation. Every device derives its
//! own independent substream with [`SubstreamRng::derive`], so adding or
//! removing devices never perturbs another device's trace. Sampling helpers
//! wrap the `rand_distr` distributions the scenario calibration needs —
//! the paper's per-device signaling counts are heavily long-tailed
//! ("average load of 267 signaling records … a very small fraction of IoT
//! devices flooding the signaling network with as many as 130,000
//! messages", §3.3), which LogNormal captures well.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};
use wtr_model::hash::mix64;

/// A deterministic RNG derived from a master seed plus a stream selector.
#[derive(Debug, Clone)]
pub struct SubstreamRng {
    inner: SmallRng,
}

impl SubstreamRng {
    /// Derives the substream `(seed, stream)`. Identical inputs always
    /// yield identical streams.
    pub fn derive(master_seed: u64, stream: u64) -> Self {
        let s = mix64(master_seed ^ mix64(stream).rotate_left(17));
        SubstreamRng {
            inner: SmallRng::seed_from_u64(s),
        }
    }

    /// Access to the underlying RNG for use with `rand` APIs.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Uniform integer in `[0, n)`; `n` must be > 0.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.random_range(lo..hi)
    }

    /// LogNormal sample with the given *median* and `sigma` (shape).
    ///
    /// Parameterizing by median (`exp(mu)`) keeps calibration intuitive:
    /// the paper reports medians for most per-device distributions.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0 && sigma >= 0.0);
        let d = LogNormal::new(median.ln(), sigma).expect("valid lognormal");
        d.sample(&mut self.inner)
    }

    /// Exponential inter-arrival sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let d = Exp::new(1.0 / mean).expect("valid exp");
        d.sample(&mut self.inner)
    }

    /// Poisson-distributed count with the given mean (inversion by
    /// exponential gaps; exact for the small means used per day).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        // For large means use a normal approximation to stay O(1).
        if mean > 64.0 {
            let sample: f64 = rand_distr::Normal::new(mean, mean.sqrt())
                .expect("valid normal")
                .sample(&mut self.inner);
            return sample.max(0.0).round() as u64;
        }
        let mut count = 0u64;
        let mut acc = 0.0f64;
        loop {
            acc += self.exponential(1.0);
            if acc > mean {
                return count;
            }
            count += 1;
        }
    }

    /// Samples an index according to `weights` (need not be normalized;
    /// all zero/empty weights fall back to index 0).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut x = self.inner.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Zipf-like weights for a ranked popularity distribution of `n` items
    /// with exponent `s` (used for home-country and visited-country skews,
    /// e.g. "top 3 accounting for about 60%", Fig. 5).
    pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
        (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substreams_are_deterministic() {
        let mut a = SubstreamRng::derive(42, 7);
        let mut b = SubstreamRng::derive(42, 7);
        for _ in 0..100 {
            assert_eq!(a.rng().random::<u64>(), b.rng().random::<u64>());
        }
    }

    #[test]
    fn substreams_are_independent() {
        // Device 7's stream must not change when derived next to any other.
        let seq: Vec<u64> = {
            let mut r = SubstreamRng::derive(42, 7);
            (0..10).map(|_| r.rng().random()).collect()
        };
        let _other = SubstreamRng::derive(42, 8);
        let seq2: Vec<u64> = {
            let mut r = SubstreamRng::derive(42, 7);
            (0..10).map(|_| r.rng().random()).collect()
        };
        assert_eq!(seq, seq2);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SubstreamRng::derive(42, 1);
        let mut b = SubstreamRng::derive(42, 2);
        let av: Vec<u64> = (0..8).map(|_| a.rng().random()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.rng().random()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SubstreamRng::derive(1, 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn lognormal_median_calibration() {
        let mut r = SubstreamRng::derive(9, 9);
        let mut samples: Vec<f64> = (0..20_001).map(|_| r.lognormal(100.0, 1.5)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!(
            (70.0..140.0).contains(&median),
            "median {median} far from target 100"
        );
    }

    #[test]
    fn lognormal_has_long_tail() {
        let mut r = SubstreamRng::derive(3, 3);
        let samples: Vec<f64> = (0..20_000).map(|_| r.lognormal(100.0, 1.8)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Mean well above median, max orders of magnitude above mean —
        // the §3.3 shape.
        assert!(mean > 200.0, "mean {mean}");
        assert!(max > mean * 20.0, "max {max} vs mean {mean}");
    }

    #[test]
    fn poisson_mean_matches() {
        let mut r = SubstreamRng::derive(5, 5);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.poisson(3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((3.3..3.7).contains(&mean), "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_mean_approximation() {
        let mut r = SubstreamRng::derive(6, 6);
        let n = 5_000;
        let total: u64 = (0..n).map(|_| r.poisson(200.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((190.0..210.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SubstreamRng::derive(8, 8);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut r = SubstreamRng::derive(8, 9);
        assert_eq!(r.weighted_index(&[]), 0);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    fn zipf_weights_are_skewed() {
        let w = SubstreamRng::zipf_weights(20, 1.2);
        let total: f64 = w.iter().sum();
        let top3: f64 = w[..3].iter().sum();
        let share = top3 / total;
        assert!(
            (0.45..0.75).contains(&share),
            "top-3 share {share} (Fig. 5 targets ≈0.6)"
        );
    }
}
