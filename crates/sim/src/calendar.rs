//! Calendar-queue event storage for the [`Scheduler`](crate::engine::Scheduler).
//!
//! A classical calendar queue (Brown 1988): a power-of-two ring of time
//! buckets, each `width` seconds wide. A wake-up at time `t` lands in
//! bucket `(t / width) % nbuckets` with an O(1) unsorted push; dispatch
//! rotates through bucket *windows* in time order, lazily sorting each
//! window's entries by the full `(time, agent, per-agent seq, tag)` key
//! the moment the window opens. Because every entry of window `W` is
//! dispatched — in full key order — before any entry of window `W' > W`,
//! and a wake-up scheduled *into* the open window splices into the sorted
//! run at its key position, the pop sequence is exactly the ascending key
//! order: bit-identical to a min-heap over the same keys, for every
//! bucket geometry. Geometry (bucket count, width) affects only cost,
//! never order — which is what lets the ring resize freely under load.
//!
//! ## Why this beats the heap on the dense horizon
//!
//! The paper's workload is tens of millions of devices emitting periodic
//! reports (PAPER.md §4), with firmware campaigns waking whole fleets in
//! the same second. A binary heap pays O(log n) four-field tuple
//! comparisons per push *and* per pop, maximal exactly in those
//! same-timestamp bursts (every sift-down compares equal times and falls
//! through to the tie-break fields). The calendar queue pays an O(1)
//! bucket push and an amortized O(1) pop: each window is sorted once,
//! contiguously (`sort_unstable` on a `Vec`, cache-friendly), and then
//! drained by `Vec::pop`. A same-second storm of B wake-ups costs one
//! B·log B sort instead of B heap-sifts through a queue of depth n ≥ B.
//!
//! ## Self-sizing
//!
//! * **Bucket count** follows the classical load-factor rule: the ring
//!   doubles when entries exceed twice the bucket count and halves when
//!   they fall below an eighth of it (hysteresis so the rebuild cost
//!   amortizes). The initial count comes from the agent population via
//!   [`CalendarQueue::with_capacity`].
//! * **Width** starts horizon-spanning (`horizon / nbuckets`, so nothing
//!   wraps) and is then steered toward [`TARGET_OCCUPANCY`] entries per
//!   opening window by a two-sided controller fed by the observed
//!   inter-wake-up spacing: a window denser than [`DENSE_OCCUPANCY`]
//!   narrows to the measured ideal (`pending span / (len / target)`, at
//!   least halving) — but only when the running average since the last
//!   rebuild agrees density is persistent, because a lone clumped
//!   window is cheaper to sort as one oversized chunk than to re-bucket
//!   everything for — and a [`SPARSE_RUN_WIDEN`]-long run of windows
//!   sparser than [`SPARSE_OCCUPANCY`] widens back the same way (at
//!   least doubling) — so a dense init burst can't strand the geometry
//!   at a width the steady state then pays per-window overhead for.
//!   Width never drops below one second (`SimTime`'s resolution), so a
//!   true same-instant burst is sorted once and dispatched linearly,
//!   which is optimal anyway.
//!
//! Sparse stretches (a drained tail, a gap before the next campaign) are
//! crossed by scanning at most [`SCAN_WINDOWS`] windows and then jumping
//! straight to the earliest pending wake-up with one O(pending) sweep —
//! each sweep fast-forwards arbitrarily far, so it happens at most once
//! per occupied window, not per pop.
//!
//! All storage — the ring's bucket `Vec`s and the sorted `current` run —
//! is reused across rotations (`mem::take` + put-back, `Vec::pop`), so
//! the steady state allocates nothing.
//!
//! Setting `WTR_SCHED_DEBUG=1` prints per-queue geometry counters
//! (windows opened, average occupancy, empty-window scans, min-sweeps,
//! rebuilds by trigger, in-window splices) to stderr when the queue
//! drops — the observability that sized the controller constants above.

use wtr_model::time::SimTime;

/// The scheduler's dispatch key: `(time, agent, per-agent seq, tag)`.
/// Strictly unique per wake-up (the per-agent seq increments on every
/// accepted `wake_at`), so the total order has no ties.
pub(crate) type Key = (SimTime, u32, u64, u32);

/// Floor for the ring size; keeps the modular arithmetic trivial and the
/// empty-queue footprint tiny.
const MIN_BUCKETS: usize = 16;
/// Ceiling for the ring size (2²⁰ buckets ≈ 8 MiB of headers); beyond
/// this, load factor grows but correctness is unaffected.
const MAX_BUCKETS: usize = 1 << 20;
/// Occupancy the width controller steers opening windows toward: big
/// enough that the per-window rotation machinery (take/partition/sort/
/// put-back) amortizes over a cache-friendly contiguous chunk, small
/// enough that the chunk sort stays cheap.
const TARGET_OCCUPANCY: usize = 32;
/// An opening window holding more entries than this (4× target) is a
/// narrowing *candidate* — it narrows only when density is persistent
/// (the running average since the last rebuild also exceeds 2× target),
/// because sorting one oversized contiguous chunk is far cheaper than
/// an O(pending) re-bucket of everything.
const DENSE_OCCUPANCY: usize = 128;
/// An opening window holding more entries than this narrows
/// unconditionally: a chunk this size costs more to sort repeatedly
/// than the rebuild that splits it.
const DENSE_HARD: usize = 4_096;
/// Windows that must have opened since the last rebuild before the
/// running-average density is trusted (keeps one post-rebuild clump
/// from immediately re-triggering).
const DENSITY_WARMUP: u64 = 8;
/// Opening windows at or below this occupancy (target/8) count toward
/// the widening trigger.
const SPARSE_OCCUPANCY: usize = 4;
/// Consecutive sparse windows before the width widens. Long enough that
/// a local lull doesn't thrash the geometry, short enough that a
/// mis-narrowed queue recovers after a few hundred pops.
const SPARSE_RUN_WIDEN: u32 = 32;
/// Empty windows scanned before giving up and jumping to the global
/// minimum directly.
const SCAN_WINDOWS: u64 = 64;

/// The bucketed event store. See the module docs for the design.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// The ring; `buckets.len()` is a power of two.
    buckets: Vec<Vec<Key>>,
    /// `buckets.len() - 1`, for the modular index.
    mask: usize,
    /// Bucket width in seconds (≥ 1).
    width: u64,
    /// Absolute index (`t / width`) of the open window.
    win: u64,
    /// Exclusive end of the open window, in seconds.
    win_end: u64,
    /// Whether `win`/`win_end`/`current` describe an open window.
    window_open: bool,
    /// The open window's entries, sorted descending; popped from the end.
    current: Vec<Key>,
    /// Total pending entries (ring + `current`).
    len: usize,
    /// Consecutive opened windows at or below [`SPARSE_OCCUPANCY`].
    sparse_run: u32,
    /// Windows opened since the last rebuild (density denominator).
    win_opened: u64,
    /// Entries those windows held (density numerator).
    win_entries: u64,
    dbg_windows: u64,
    dbg_empty_scans: u64,
    dbg_min_sweeps: u64,
    dbg_rebuilds: u64,
    dbg_dense: u64,
    dbg_sparse: u64,
    dbg_splices: u64,
    dbg_occupancy: u64,
}

impl Drop for CalendarQueue {
    fn drop(&mut self) {
        if std::env::var("WTR_SCHED_DEBUG").is_ok() && self.dbg_windows > 0 {
            eprintln!(
                "calendar: windows={} avg_occ={:.1} empty_scans={} min_sweeps={} rebuilds={} dense={} sparse={} splices={} width={} nbuckets={}",
                self.dbg_windows,
                self.dbg_occupancy as f64 / self.dbg_windows as f64,
                self.dbg_empty_scans,
                self.dbg_min_sweeps,
                self.dbg_rebuilds,
                self.dbg_dense,
                self.dbg_sparse,
                self.dbg_splices,
                self.width,
                self.buckets.len(),
            );
        }
    }
}

impl CalendarQueue {
    /// A queue pre-sized for `agents` concurrently-pending wake-ups
    /// (device populations hold steady at about one each) over a run
    /// ending at `horizon`.
    pub(crate) fn with_capacity(agents: usize, horizon: SimTime) -> Self {
        let nbuckets = (agents / 2)
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two();
        // Horizon-spanning initial width: no wake-up can wrap the ring,
        // so the first rotations see one "year" only. The occupancy
        // feedback narrows from there if the horizon is dense.
        let width = (horizon.as_secs() / nbuckets as u64).max(1);
        CalendarQueue {
            buckets: vec![Vec::new(); nbuckets],
            mask: nbuckets - 1,
            width,
            win: 0,
            win_end: 0,
            window_open: false,
            current: Vec::new(),
            len: 0,
            sparse_run: 0,
            win_opened: 0,
            win_entries: 0,
            dbg_windows: 0,
            dbg_empty_scans: 0,
            dbg_min_sweeps: 0,
            dbg_rebuilds: 0,
            dbg_dense: 0,
            dbg_sparse: 0,
            dbg_splices: 0,
            dbg_occupancy: 0,
        }
    }

    /// Pending entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn bucket_index(&self, secs: u64) -> usize {
        ((secs / self.width) as usize) & self.mask
    }

    /// O(1) push (amortized; a load-factor resize re-buckets everything).
    #[inline]
    pub(crate) fn push(&mut self, key: Key) {
        self.len += 1;
        let secs = key.0.as_secs();
        if self.window_open && secs < self.win_end {
            // Scheduled into the instant being dispatched (`wake_at` with
            // `at` inside the open window): splice into the sorted run at
            // the key's position so it pops exactly where the heap would
            // have popped it. Keys are unique, so the position is exact.
            let pos = self.current.partition_point(|k| *k > key);
            self.current.insert(pos, key);
            self.dbg_splices += 1;
            return;
        }
        let idx = self.bucket_index(secs);
        self.buckets[idx].push(key);
        if self.len > self.buckets.len() * 2 {
            self.resize_ring(self.buckets.len() * 2);
        }
    }

    /// Pops the globally minimal key, or `None` when empty. Amortized
    /// O(1): each entry is bucket-pushed once, moved into `current` once,
    /// sorted in one bounded-size chunk, and `Vec::pop`ped once.
    pub(crate) fn pop(&mut self) -> Option<Key> {
        loop {
            if let Some(key) = self.current.pop() {
                self.len -= 1;
                return Some(key);
            }
            if self.len == 0 {
                self.window_open = false;
                return None;
            }
            self.rotate();
        }
    }

    /// Advances to the next window with pending entries and loads it into
    /// `current` (sorted descending). May instead change geometry and
    /// leave `current` empty — the pop loop just comes back around.
    fn rotate(&mut self) {
        debug_assert!(self.len > 0, "rotate on an empty queue");
        let mut win = if self.window_open {
            self.win + 1
        } else {
            self.min_window()
        };
        let mut scanned = 0u64;
        loop {
            let idx = (win as usize) & self.mask;
            if !self.buckets[idx].is_empty() {
                let end = (win + 1).saturating_mul(self.width);
                // Partition this window's "year" out of the bucket; later
                // years stay. `take` + put-back keeps both allocations.
                let mut bucket = std::mem::take(&mut self.buckets[idx]);
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].0.as_secs() < end {
                        self.current.push(bucket.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                self.buckets[idx] = bucket;
                if !self.current.is_empty() {
                    self.dbg_windows += 1;
                    self.dbg_occupancy += self.current.len() as u64;
                    let occ = self.current.len();
                    self.win = win;
                    self.win_end = end;
                    self.window_open = true;
                    self.win_opened += 1;
                    self.win_entries += occ as u64;
                    if self.width > 1 && occ > DENSE_OCCUPANCY {
                        // Narrow only when density is persistent (or the
                        // chunk is outright huge): a lone clumped window
                        // is cheaper to sort as one oversized chunk than
                        // to pay an O(pending) re-bucket for.
                        let persistent = self.win_opened >= DENSITY_WARMUP
                            && self.win_entries / self.win_opened > 2 * TARGET_OCCUPANCY as u64;
                        if persistent || occ > DENSE_HARD {
                            let width = self.ideal_width().min(self.width / 2).max(1);
                            self.dbg_dense += 1;
                            self.sparse_run = 0;
                            self.rebuild(self.buckets.len(), width);
                            return;
                        }
                    }
                    if occ <= SPARSE_OCCUPANCY {
                        self.sparse_run += 1;
                        if self.sparse_run >= SPARSE_RUN_WIDEN
                            && self.len > 2 * TARGET_OCCUPANCY
                            && self.width < u64::MAX / 4
                        {
                            // A run of near-empty windows: the width is
                            // too narrow for the observed spacing (e.g.
                            // after an init burst narrowed it), so the
                            // per-window machinery is charging per entry.
                            // Re-widen to the measured ideal (at least
                            // doubling, so a clumpy distribution that
                            // fools the estimate still makes progress).
                            let width = self.ideal_width().max(self.width * 2);
                            self.dbg_sparse += 1;
                            self.sparse_run = 0;
                            self.rebuild(self.buckets.len(), width);
                            return;
                        }
                    } else {
                        self.sparse_run = 0;
                    }
                    if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
                        // Load factor collapsed (drained tail): halve the
                        // ring so empty-window scans stay proportional to
                        // what is actually pending. Done before the sort —
                        // the rebuild re-buckets `current` too, and the
                        // next rotation re-partitions under the new ring.
                        let nbuckets = (self.buckets.len() / 2).max(MIN_BUCKETS);
                        self.resize_ring(nbuckets);
                        return;
                    }
                    self.current.sort_unstable_by(|a, b| b.cmp(a));
                    return;
                }
            }
            win += 1;
            scanned += 1;
            self.dbg_empty_scans += 1;
            if scanned >= SCAN_WINDOWS {
                // Sparse stretch: jump straight to the earliest pending
                // wake-up. One O(pending) sweep per occupied window at
                // worst, and it fast-forwards arbitrarily far.
                win = self.min_window();
                self.dbg_min_sweeps += 1;
                scanned = 0;
            }
        }
    }

    /// Width that would put the *average* opening window at
    /// [`TARGET_OCCUPANCY`] entries, measured from the span and count of
    /// everything pending: `span / (len / target)`. One O(pending)
    /// sweep, only ever called on the way into an O(pending) rebuild.
    fn ideal_width(&self) -> u64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for key in self.buckets.iter().flatten().chain(self.current.iter()) {
            let secs = key.0.as_secs();
            min = min.min(secs);
            max = max.max(secs);
        }
        let span = max.saturating_sub(min);
        let windows = (self.len / TARGET_OCCUPANCY).max(1) as u64;
        (span / windows).max(1)
    }

    /// Window index of the earliest pending wake-up (ring only; callers
    /// ensure `current` is empty). O(pending).
    fn min_window(&self) -> u64 {
        debug_assert!(self.current.is_empty());
        let min = self
            .buckets
            .iter()
            .flat_map(|b| b.iter())
            .map(|k| k.0.as_secs())
            .min()
            .expect("min_window on an empty queue");
        min / self.width
    }

    /// Re-buckets everything under a new ring size, same width.
    fn resize_ring(&mut self, nbuckets: usize) {
        self.rebuild(nbuckets.clamp(MIN_BUCKETS, MAX_BUCKETS), self.width);
    }

    /// Rebuilds the ring under new geometry. Closes the open window —
    /// entries in `current` go back through the ring and will be picked
    /// up again by the next rotation, in the same total order (dispatch
    /// order is geometry-independent; see the module docs).
    fn rebuild(&mut self, nbuckets: usize, width: u64) {
        self.dbg_rebuilds += 1;
        self.win_opened = 0;
        self.win_entries = 0;
        debug_assert!(nbuckets.is_power_of_two());
        let mut entries: Vec<Key> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.append(&mut self.current);
        if self.buckets.len() != nbuckets {
            self.buckets.resize(nbuckets, Vec::new());
        }
        self.mask = nbuckets - 1;
        self.width = width;
        self.window_open = false;
        for key in entries {
            let idx = self.bucket_index(key.0.as_secs());
            self.buckets[idx].push(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, agent: u32, seq: u64) -> Key {
        (SimTime::from_secs(t), agent, seq, 0)
    }

    fn drain(q: &mut CalendarQueue) -> Vec<Key> {
        let mut out = Vec::new();
        while let Some(k) = q.pop() {
            out.push(k);
        }
        out
    }

    #[test]
    fn pops_in_full_key_order() {
        let mut q = CalendarQueue::with_capacity(4, SimTime::from_secs(1_000));
        let mut keys = vec![
            key(500, 1, 1),
            key(500, 0, 1),
            key(3, 7, 1),
            key(999, 2, 1),
            key(500, 1, 2),
            key(0, 9, 1),
        ];
        for &k in &keys {
            q.push(k);
        }
        keys.sort_unstable();
        assert_eq!(drain(&mut q), keys);
    }

    #[test]
    fn same_instant_burst_sorts_by_tiebreak() {
        let mut q = CalendarQueue::with_capacity(8, SimTime::from_secs(100));
        // A firmware-storm shape: everything at t=50, shuffled agents.
        let mut keys: Vec<Key> = (0..500u32).rev().map(|a| key(50, a, 1)).collect();
        for &k in &keys {
            q.push(k);
        }
        keys.sort_unstable();
        assert_eq!(drain(&mut q), keys);
    }

    #[test]
    fn in_window_push_splices_at_key_position() {
        let mut q = CalendarQueue::with_capacity(4, SimTime::from_secs(1_000));
        for a in [3u32, 1, 2] {
            q.push(key(10, a, 1));
        }
        assert_eq!(q.pop(), Some(key(10, 1, 1)));
        // The window [.., ..) around t=10 is open; schedule into it at
        // the same instant with an agent id between the two pending ones.
        q.push(key(10, 2, 9));
        assert_eq!(q.pop(), Some(key(10, 2, 1)));
        assert_eq!(q.pop(), Some(key(10, 2, 9)));
        assert_eq!(q.pop(), Some(key(10, 3, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn load_factor_growth_preserves_order() {
        let mut q = CalendarQueue::with_capacity(0, SimTime::from_secs(1 << 20));
        // Far more entries than MIN_BUCKETS*2: forces ring doubling.
        let mut keys: Vec<Key> = (0..10_000u64).map(|i| key(i * 97 % 50_000, 5, i)).collect();
        for &k in &keys {
            q.push(k);
        }
        keys.sort_unstable();
        assert_eq!(drain(&mut q), keys);
    }

    #[test]
    fn sparse_tail_and_shrink_preserve_order() {
        let mut q = CalendarQueue::with_capacity(4_096, SimTime::from_secs(10_000_000));
        // Dense head, then a handful of stragglers millions of seconds
        // out: exercises the scan cap, the min-jump, and the shrink path.
        let mut keys: Vec<Key> = (0..2_000u64).map(|i| key(i, 1, i)).collect();
        for j in 0..5u64 {
            keys.push(key(9_000_000 + j * 200_000, 2, j));
        }
        for &k in &keys {
            q.push(k);
        }
        keys.sort_unstable();
        assert_eq!(drain(&mut q), keys);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::with_capacity(16, SimTime::from_secs(100_000));
        let mut h: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        // Deterministic pseudo-random interleaving of pushes and pops.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut step = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            if step() % 3 != 0 {
                seq += 1;
                let t = now + step() % 10_000;
                let k = key(t, (step() % 50) as u32, seq);
                q.push(k);
                h.push(Reverse(k));
            } else {
                let a = q.pop();
                let b = h.pop().map(|Reverse(k)| k);
                assert_eq!(a, b);
                if let Some(k) = a {
                    now = k.0.as_secs();
                }
            }
        }
        while let Some(Reverse(k)) = h.pop() {
            assert_eq!(q.pop(), Some(k));
        }
        assert_eq!(q.pop(), None);
    }
}
