//! Device agents: the state machines that generate all observable traffic.
//!
//! A [`DeviceAgent`] wraps a [`DeviceSpec`] (identity + behaviour
//! parameters, produced by the scenario builders) and executes it against
//! the world: each simulated day it plans its events, and at each event it
//! ensures it is attached to a network (running the real signaling
//! procedures, with all their failure modes) before producing data/voice
//! activity.
//!
//! ## Attachment & VMNO switching
//!
//! On every event the device checks whether its camped network still serves
//! its current position for its radio capabilities. If not — or if a
//! steering/instability coin-flip forces reselection — it walks the
//! policy-ordered candidate list of the current country, emitting an
//! `Authentication` + `UpdateLocation` sequence per attempt (failed
//! attempts emit the failure result; a success additionally triggers a
//! `CancelLocation` at the previous network). This is exactly the
//! transaction mix of the paper's M2M dataset (§3.1) and produces the
//! inter-VMNO switching dynamics of Fig. 3.

use crate::behavior::{self, AttachParams, BehaviorMatrix, Emission, StateId, StepCtx, StepHost};
use crate::engine::{Agent, AgentId, Scheduler, WakeTag};
use crate::events::{
    DataSession, ProcedureResult, ProcedureType, SignalingEvent, SimEvent, VoiceCall, VoiceKind,
};
use crate::mobility::MobilityModel;
use crate::rng::SubstreamRng;
use crate::traffic::TrafficProfile;
use crate::world::{AccessDecision, EventSink, RoamingWorld};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use wtr_model::apn::Apn;
use wtr_model::ids::{Imei, Imsi, Plmn};
use wtr_model::rat::{Rat, RatSet};
use wtr_model::time::{Day, SimDuration, SimTime};
use wtr_radio::geo::GeoPoint;
use wtr_radio::sector::SectorId;

/// Why a [`DeviceSpec`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// The itinerary has no legs — `leg_at` would have nothing to return.
    EmptyItinerary,
    /// Itinerary legs are not sorted by `from_day` — `leg_at`'s forward
    /// walk assumes non-decreasing start days.
    UnsortedItinerary,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyItinerary => write!(f, "device itinerary is empty"),
            SpecError::UnsortedItinerary => {
                write!(f, "device itinerary legs are not sorted by from_day")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// When a device exists and how reliably it shows up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PresenceModel {
    /// First day (inclusive) the device is present.
    pub first_day: u32,
    /// Last day (exclusive) — e.g. a tourist's departure.
    pub last_day: u32,
    /// Probability the device is active on any present day. Smart meters
    /// under deployment, duty-cycled sensors and flaky devices use < 1.
    pub daily_active_prob: f64,
}

impl PresenceModel {
    /// Present and potentially active on `day`?
    pub fn present_on(&self, day: Day) -> bool {
        (self.first_day..self.last_day).contains(&day.0)
    }

    /// A device present for the whole window, always active.
    pub fn always(window_days: u32) -> Self {
        PresenceModel {
            first_day: 0,
            last_day: window_days,
            daily_active_prob: 1.0,
        }
    }
}

/// One segment of a device's international itinerary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItineraryLeg {
    /// Day (within the observation window) this leg starts.
    pub from_day: u32,
    /// Country the device is in during the leg.
    pub country_iso: String,
    /// How it moves while there.
    pub mobility: MobilityModel,
}

/// Everything that defines one simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Scenario-unique index (also the RNG substream selector).
    pub index: u64,
    /// The SIM.
    pub imsi: Imsi,
    /// The equipment.
    pub imei: Imei,
    /// Ground-truth vertical (never visible to classifiers).
    pub vertical: wtr_model::vertical::Vertical,
    /// Radio generations the hardware supports (from its TAC).
    pub radio_caps: RatSet,
    /// APNs the device uses for data sessions.
    pub apns: Vec<Apn>,
    /// Whether the subscription uses data at all (§6.1: 24.5% of M2M and
    /// 56.8% of feature phones never touch the data plane).
    pub data_enabled: bool,
    /// Whether the subscription uses voice/SMS services.
    pub voice_enabled: bool,
    /// Traffic rates and shapes.
    pub traffic: TrafficProfile,
    /// Presence window.
    pub presence: PresenceModel,
    /// Country/mobility schedule, sorted by `from_day`, non-empty.
    pub itinerary: Vec<ItineraryLeg>,
    /// Per-signaling-event probability of a forced network reselection
    /// (drives the inter-VMNO switch counts of Fig. 3-right).
    pub switch_propensity: f64,
    /// Per-procedure probability of a transient failure even when access
    /// is granted.
    pub event_failure_prob: f64,
    /// When set, every attach attempt fails with this result and the
    /// device never gets service — the §3.3 population of devices with
    /// only-failed 4G procedures (misprovisioned subscriptions, devices
    /// whose plan lacks the RAT).
    pub sticky_failure: Option<ProcedureResult>,
}

impl DeviceSpec {
    /// Validates the invariants [`leg_at`](DeviceSpec::leg_at) depends on:
    /// a non-empty itinerary, sorted by `from_day`. Checked once at agent
    /// construction so release builds can never walk an empty itinerary.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.itinerary.is_empty() {
            return Err(SpecError::EmptyItinerary);
        }
        if self
            .itinerary
            .windows(2)
            .any(|pair| pair[0].from_day > pair[1].from_day)
        {
            return Err(SpecError::UnsortedItinerary);
        }
        Ok(())
    }

    /// The itinerary leg covering `day`.
    pub fn leg_at(&self, day: Day) -> &ItineraryLeg {
        debug_assert!(!self.itinerary.is_empty());
        let mut current = &self.itinerary[0];
        for leg in &self.itinerary {
            if leg.from_day <= day.0 {
                current = leg;
            } else {
                break;
            }
        }
        current
    }

    /// Number of distinct countries on the itinerary.
    pub fn countries_visited(&self) -> usize {
        let mut isos: Vec<&str> = self
            .itinerary
            .iter()
            .map(|l| l.country_iso.as_str())
            .collect();
        isos.sort_unstable();
        isos.dedup();
        isos.len()
    }
}

/// Wake tags used by the device agent.
mod tags {
    /// Plan the day's events.
    pub const DAY: u32 = 0;
    /// A signaling (mobility management) event.
    pub const SIGNALING: u32 = 1;
    /// A data session.
    pub const DATA: u32 = 2;
    /// A voice/SMS event.
    pub const VOICE: u32 = 3;
}

/// True when the `WTR_LEGACY_BEHAVIOR=1` ablation knob selects the
/// hand-coded wake branches instead of the matrix interpreter (mirrors
/// the `WTR_HEAP_SCHED` scheduler knob).
fn legacy_behavior_env() -> bool {
    std::env::var("WTR_LEGACY_BEHAVIOR").is_ok_and(|v| v == "1")
}

/// The executable agent for one device.
#[derive(Debug, Clone)]
pub struct DeviceAgent {
    spec: DeviceSpec,
    /// The compiled behavior matrix driving the agent. `None` selects the
    /// hand-coded legacy branches (`WTR_LEGACY_BEHAVIOR=1`), kept as the
    /// proven-equal ablation path. Shared: every device of a class steps
    /// the same matrix.
    behavior: Option<Arc<BehaviorMatrix>>,
    rng: SubstreamRng,
    multiplier: f64,
    /// How many candidate networks a sticky-failing device attempts per
    /// wake. Most misprovisioned devices retry one network forever; a
    /// minority hunt the whole candidate list (the paper's 19-VMNO tail).
    sticky_breadth: usize,
    camped: Option<(Plmn, Rat)>,
    camped_country: Option<String>,
    force_reselect: bool,
}

impl DeviceAgent {
    /// Builds the agent; RNG substream and per-device rate multiplier are
    /// derived deterministically from `master_seed` and the spec index.
    /// The spec's behavior compiles into a [`BehaviorMatrix`] unless
    /// `WTR_LEGACY_BEHAVIOR=1` selects the hand-coded branches.
    ///
    /// # Panics
    ///
    /// On an invalid spec — use [`try_new`](DeviceAgent::try_new) to
    /// handle [`SpecError`] instead.
    pub fn new(spec: DeviceSpec, master_seed: u64) -> Self {
        Self::try_new(spec, master_seed).expect("invalid device spec")
    }

    /// Fallible [`new`](DeviceAgent::new): validates the spec first.
    pub fn try_new(spec: DeviceSpec, master_seed: u64) -> Result<Self, SpecError> {
        spec.validate()?;
        let behavior = if legacy_behavior_env() {
            None
        } else {
            Some(Arc::new(behavior::legacy_matrix(&spec)))
        };
        Ok(Self::assemble(spec, behavior, master_seed))
    }

    /// Builds the agent on an explicit behavior matrix (e.g. loaded from a
    /// `--behavior` file), regardless of `WTR_LEGACY_BEHAVIOR`. The spec
    /// still supplies identity, radio capabilities, APNs, presence window
    /// and itinerary; the matrix supplies all behavior.
    pub fn with_behavior(
        spec: DeviceSpec,
        matrix: Arc<BehaviorMatrix>,
        master_seed: u64,
    ) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self::assemble(spec, Some(matrix), master_seed))
    }

    /// Builds the agent on the hand-coded legacy branches, regardless of
    /// `WTR_LEGACY_BEHAVIOR` — the explicit ablation constructor used by
    /// equivalence tests and benches.
    pub fn legacy(spec: DeviceSpec, master_seed: u64) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self::assemble(spec, None, master_seed))
    }

    /// Shared tail of all constructors: the construction-time draws
    /// (multiplier, sticky breadth) consume identical substream values on
    /// both paths — the matrix stores the very numbers the spec holds.
    fn assemble(spec: DeviceSpec, behavior: Option<Arc<BehaviorMatrix>>, master_seed: u64) -> Self {
        let mut rng = SubstreamRng::derive(master_seed, spec.index);
        let (multiplier, sticky_breadth) = match &behavior {
            Some(matrix) => (
                matrix.draw_multiplier(&mut rng),
                matrix.draw_sticky_breadth(&mut rng),
            ),
            None => {
                let multiplier = spec.traffic.draw_device_multiplier(&mut rng);
                let sticky_breadth = match rng.weighted_index(&behavior::STICKY_BREADTH_WEIGHTS) {
                    0 => 1,
                    1 => 2,
                    _ => usize::MAX,
                };
                (multiplier, sticky_breadth)
            }
        };
        DeviceAgent {
            spec,
            behavior,
            rng,
            multiplier,
            sticky_breadth,
            camped: None,
            camped_country: None,
            force_reselect: false,
        }
    }

    /// Read access to the spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The compiled behavior matrix, when matrix-driven.
    pub fn behavior(&self) -> Option<&Arc<BehaviorMatrix>> {
        self.behavior.as_ref()
    }

    /// The device's per-device rate multiplier.
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// The attach-walk knobs of the legacy path (spec-sourced; the matrix
    /// path reads the same values out of its [`BehaviorMatrix`]).
    fn legacy_attach_params(&self) -> AttachParams {
        AttachParams {
            event_failure_prob: self.spec.event_failure_prob,
            sticky_failure: self.spec.sticky_failure,
            rotate_prob: behavior::RESELECT_ROTATE_PROB,
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the record's fields
    fn signal<S: EventSink>(
        &self,
        world: &mut RoamingWorld<S>,
        time: SimTime,
        visited: Plmn,
        sector: Option<SectorId>,
        rat: Rat,
        procedure: ProcedureType,
        result: ProcedureResult,
    ) {
        world.emit(SimEvent::Signaling(SignalingEvent {
            time,
            device: self.spec.index,
            imsi: self.spec.imsi,
            imei: self.spec.imei,
            visited,
            sector,
            rat,
            procedure,
            result,
        }));
    }

    /// Ensures the device is attached somewhere usable at `now`; returns
    /// the serving (network, RAT, sector) or `None` when every candidate
    /// failed. Emits all signaling this entails.
    fn ensure_attached<S: EventSink>(
        &mut self,
        world: &mut RoamingWorld<S>,
        now: SimTime,
        pos: GeoPoint,
        country_iso: &str,
        params: AttachParams,
    ) -> Option<(Plmn, Rat, SectorId)> {
        let caps = self.spec.radio_caps;
        let moved_country = self
            .camped_country
            .as_deref()
            .is_some_and(|c| c != country_iso);

        // Fast path: still served by the camped network.
        if !self.force_reselect && !moved_country {
            if let Some((plmn, _)) = self.camped {
                if let Some(net) = world.directory.get(plmn) {
                    if let Some((rat, sec)) = net.serve_best(pos, caps.intersection(net.rats())) {
                        self.camped = Some((plmn, rat));
                        return Some((plmn, rat, sec));
                    }
                }
            }
        }

        // Reselection walk.
        let mut candidates: Vec<Plmn> = world.directory.in_country(country_iso).to_vec();
        let home = self.spec.imsi.plmn();
        world.policy.preference_order(home, &mut candidates);
        if self.force_reselect {
            // A forced switch must not land on the same network again.
            if let Some((current, _)) = self.camped {
                candidates.retain(|p| *p != current);
            }
            // Devices mostly ping-pong between two preferred networks
            // (Fig. 3: switch counts far exceed VMNO counts); only
            // occasionally does a switch land further down the list.
            if candidates.len() > 1 && self.rng.chance(params.rotate_prob) {
                let k = self.rng.index(candidates.len());
                candidates.rotate_left(k);
            }
        }
        self.force_reselect = false;

        let previous = self.camped;
        let mut attempts = 0usize;
        for cand in candidates {
            let Some(net) = world.directory.get(cand) else {
                continue;
            };
            let Some((rat, sec)) = net.serve_best(pos, caps.intersection(net.rats())) else {
                continue;
            };
            if let Some(fail) = params.sticky_failure {
                // Misprovisioned device: authentication fails everywhere.
                self.signal(
                    world,
                    now,
                    cand,
                    Some(sec),
                    rat,
                    ProcedureType::Authentication,
                    fail,
                );
                self.signal(
                    world,
                    now,
                    cand,
                    Some(sec),
                    rat,
                    ProcedureType::UpdateLocation,
                    fail,
                );
                // Most failing devices retry the steering head forever;
                // only the hunting minority walks further down the list
                // (the paper's worst devices attempt 19 VMNOs).
                attempts += 1;
                if attempts >= self.sticky_breadth {
                    break;
                }
                continue;
            }
            let decision = world.policy.decide(home, cand);
            match decision {
                AccessDecision::Allowed => {
                    if self.rng.chance(params.event_failure_prob) {
                        // Transient failure on this attempt; try next.
                        self.signal(
                            world,
                            now,
                            cand,
                            Some(sec),
                            rat,
                            ProcedureType::Authentication,
                            ProcedureResult::NetworkFailure,
                        );
                        continue;
                    }
                    self.signal(
                        world,
                        now,
                        cand,
                        Some(sec),
                        rat,
                        ProcedureType::Authentication,
                        ProcedureResult::Ok,
                    );
                    self.signal(
                        world,
                        now,
                        cand,
                        Some(sec),
                        rat,
                        ProcedureType::UpdateLocation,
                        ProcedureResult::Ok,
                    );
                    // The HSS cancels the registration at the old network.
                    if let Some((old, old_rat)) = previous {
                        if old != cand {
                            self.signal(
                                world,
                                now,
                                old,
                                None,
                                old_rat,
                                ProcedureType::CancelLocation,
                                ProcedureResult::Ok,
                            );
                        }
                    }
                    self.camped = Some((cand, rat));
                    self.camped_country = Some(country_iso.to_owned());
                    return Some((cand, rat, sec));
                }
                denied => {
                    let result = match denied {
                        AccessDecision::RoamingNotAllowed => ProcedureResult::RoamingNotAllowed,
                        AccessDecision::UnknownSubscription => ProcedureResult::UnknownSubscription,
                        AccessDecision::FeatureUnsupported => ProcedureResult::FeatureUnsupported,
                        AccessDecision::Allowed => unreachable!(),
                    };
                    self.signal(
                        world,
                        now,
                        cand,
                        Some(sec),
                        rat,
                        ProcedureType::UpdateLocation,
                        result,
                    );
                }
            }
        }
        // Nothing admitted us; we are detached.
        self.camped = None;
        self.camped_country = None;
        None
    }

    fn plan_day(&mut self, id: AgentId, day: Day, sched: &mut Scheduler) {
        let (sig, data, voice) = self
            .spec
            .traffic
            .sample_day_counts(&mut self.rng, self.multiplier);
        let shape = self.spec.traffic.diurnal;
        for _ in 0..sig {
            let at = day.start()
                + wtr_model::time::SimDuration::from_secs(shape.sample_second(&mut self.rng));
            sched.wake_at(id, WakeTag(tags::SIGNALING), at);
        }
        if self.spec.data_enabled {
            for _ in 0..data {
                let at = day.start()
                    + wtr_model::time::SimDuration::from_secs(shape.sample_second(&mut self.rng));
                sched.wake_at(id, WakeTag(tags::DATA), at);
            }
        }
        if self.spec.voice_enabled {
            for _ in 0..voice {
                let at = day.start()
                    + wtr_model::time::SimDuration::from_secs(shape.sample_second(&mut self.rng));
                sched.wake_at(id, WakeTag(tags::VOICE), at);
            }
        }
    }
}

/// Per-wake adapter implementing [`StepHost`] for the matrix interpreter:
/// RNG access routes to the device substream, the attach walk to
/// [`DeviceAgent`]'s `ensure_attached` (recording the serving network for
/// the emission that follows), and scheduling to the engine with the wake
/// tag carrying the target [`StateId`].
struct AgentHost<'a, S: EventSink> {
    agent: &'a mut DeviceAgent,
    world: &'a mut RoamingWorld<S>,
    sched: &'a mut Scheduler,
    id: AgentId,
    now: SimTime,
    day: Day,
    pos: GeoPoint,
    country: &'a str,
    params: AttachParams,
    serving: Option<(Plmn, Rat, SectorId)>,
}

impl<S: EventSink> StepHost for AgentHost<'_, S> {
    fn rng(&mut self) -> &mut SubstreamRng {
        &mut self.agent.rng
    }

    fn request_reselect(&mut self) {
        self.agent.force_reselect = true;
    }

    fn attach(&mut self) -> bool {
        self.serving =
            self.agent
                .ensure_attached(self.world, self.now, self.pos, self.country, self.params);
        self.serving.is_some()
    }

    fn schedule(&mut self, state: StateId, second_of_day: u64) {
        let at = self.day.start() + SimDuration::from_secs(second_of_day);
        self.sched.wake_at(self.id, WakeTag(state.0), at);
    }
}

impl DeviceAgent {
    /// Matrix-driven wake: one homogeneous interpreter step, then turn
    /// the returned [`Emission`] into events on the serving network the
    /// step's attach recorded. Draw-for-draw identical to
    /// [`wake_legacy`](Self::wake_legacy) when stepping a
    /// [`behavior::legacy_matrix`] compilation.
    fn wake_matrix<S: EventSink>(
        &mut self,
        matrix: &BehaviorMatrix,
        id: AgentId,
        tag: WakeTag,
        world: &mut RoamingWorld<S>,
        sched: &mut Scheduler,
    ) {
        let state = StateId(tag.0);
        if state.idx() >= matrix.len() {
            debug_assert!(false, "unknown wake tag {}", tag.0);
            return;
        }
        let now = sched.now();
        let day = now.day();
        let leg = self.spec.leg_at(day).clone();
        let pos = leg.mobility.position(now);
        let ctx = StepCtx {
            present: self.spec.presence.present_on(day),
            multiplier: self.multiplier,
        };
        let (next, emission, serving) = {
            let mut host = AgentHost {
                agent: self,
                world,
                sched,
                id,
                now,
                day,
                pos,
                country: &leg.country_iso,
                params: matrix.attach_params(),
                serving: None,
            };
            let (next, emission) = matrix.step(state, ctx, &mut host);
            (next, emission, host.serving)
        };
        match emission {
            Emission::Idle | Emission::Planned { .. } => {}
            Emission::Signaling { reauth, ok } => {
                if let Some((plmn, rat, sec)) = serving {
                    let result = if ok {
                        ProcedureResult::Ok
                    } else {
                        ProcedureResult::NetworkFailure
                    };
                    if reauth {
                        // Full re-registration: visible at the home HSS
                        // (and therefore to the M2M platform probes).
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::Authentication,
                            result,
                        );
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::UpdateLocation,
                            result,
                        );
                    } else {
                        // Local periodic registration on the camped network.
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::RoutingAreaUpdate,
                            result,
                        );
                    }
                }
            }
            Emission::Data {
                apn_index,
                bytes_up,
                bytes_down,
                duration_secs,
            } => {
                if let Some((plmn, rat, sec)) = serving {
                    if !self.spec.apns.is_empty() {
                        let apn = self.spec.apns[apn_index as usize % self.spec.apns.len()].clone();
                        world.emit(SimEvent::Data(DataSession {
                            time: now,
                            device: self.spec.index,
                            imsi: self.spec.imsi,
                            imei: self.spec.imei,
                            visited: plmn,
                            sector: sec,
                            rat,
                            apn,
                            duration_secs,
                            bytes_up,
                            bytes_down,
                        }));
                    }
                }
            }
            Emission::Voice {
                call,
                duration_secs,
            } => {
                if let Some((plmn, rat, sec)) = serving {
                    let kind = if call {
                        VoiceKind::Call
                    } else {
                        VoiceKind::SmsLike
                    };
                    world.emit(SimEvent::Voice(VoiceCall {
                        time: now,
                        device: self.spec.index,
                        imsi: self.spec.imsi,
                        imei: self.spec.imei,
                        visited: plmn,
                        sector: sec,
                        rat,
                        kind,
                        duration_secs,
                    }));
                }
            }
        }
        // Plan rows re-arm the next day's planning wake (at the chain's
        // successor) while the device remains present — mirroring the
        // legacy DAY re-scheduling, inactive days included.
        if matrix.is_plan(state) {
            let next_day = Day(day.0 + 1);
            if next_day.0 < self.spec.presence.last_day {
                sched.wake_at(id, WakeTag(next.0), next_day.start());
            }
        }
    }

    /// The hand-coded wake branches, kept verbatim as the
    /// `WTR_LEGACY_BEHAVIOR=1` ablation path the matrix interpreter is
    /// proven equal to.
    fn wake_legacy<S: EventSink>(
        &mut self,
        id: AgentId,
        tag: WakeTag,
        world: &mut RoamingWorld<S>,
        sched: &mut Scheduler,
    ) {
        let now = sched.now();
        let day = now.day();
        match tag.0 {
            tags::DAY => {
                if self.spec.presence.present_on(day)
                    && self.rng.chance(self.spec.presence.daily_active_prob)
                {
                    self.plan_day(id, day, sched);
                    // Some devices re-evaluate their serving network daily.
                    if self.rng.chance(self.spec.switch_propensity) {
                        self.force_reselect = true;
                    }
                }
                // Schedule the next day's planning while still present.
                let next = Day(day.0 + 1);
                if next.0 < self.spec.presence.last_day {
                    sched.wake_at(id, WakeTag(tags::DAY), next.start());
                }
            }
            tags::SIGNALING => {
                let leg = self.spec.leg_at(day).clone();
                let pos = leg.mobility.position(now);
                if self.rng.chance(self.spec.switch_propensity) {
                    self.force_reselect = true;
                }
                if let Some((plmn, rat, sec)) = self.ensure_attached(
                    world,
                    now,
                    pos,
                    &leg.country_iso,
                    self.legacy_attach_params(),
                ) {
                    let result = if self.rng.chance(self.spec.event_failure_prob) {
                        ProcedureResult::NetworkFailure
                    } else {
                        ProcedureResult::Ok
                    };
                    if self.rng.chance(self.spec.traffic.reauth_fraction) {
                        // Full re-registration: visible at the home HSS
                        // (and therefore to the M2M platform probes).
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::Authentication,
                            result,
                        );
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::UpdateLocation,
                            result,
                        );
                    } else {
                        // Local periodic registration on the camped network.
                        self.signal(
                            world,
                            now,
                            plmn,
                            Some(sec),
                            rat,
                            ProcedureType::RoutingAreaUpdate,
                            result,
                        );
                    }
                }
            }
            tags::DATA => {
                if !self.spec.data_enabled || self.spec.apns.is_empty() {
                    return;
                }
                let leg = self.spec.leg_at(day).clone();
                let pos = leg.mobility.position(now);
                if let Some((plmn, rat, sec)) = self.ensure_attached(
                    world,
                    now,
                    pos,
                    &leg.country_iso,
                    self.legacy_attach_params(),
                ) {
                    let (up, down) = self.spec.traffic.volume.sample(&mut self.rng);
                    let apn_idx = self.rng.index(self.spec.apns.len());
                    let duration = self.rng.exponential(300.0).clamp(1.0, 7_200.0) as u32;
                    let apn = self.spec.apns[apn_idx].clone();
                    world.emit(SimEvent::Data(DataSession {
                        time: now,
                        device: self.spec.index,
                        imsi: self.spec.imsi,
                        imei: self.spec.imei,
                        visited: plmn,
                        sector: sec,
                        rat,
                        apn,
                        duration_secs: duration,
                        bytes_up: up,
                        bytes_down: down,
                    }));
                }
            }
            tags::VOICE => {
                if !self.spec.voice_enabled {
                    return;
                }
                let leg = self.spec.leg_at(day).clone();
                let pos = leg.mobility.position(now);
                if let Some((plmn, rat, sec)) = self.ensure_attached(
                    world,
                    now,
                    pos,
                    &leg.country_iso,
                    self.legacy_attach_params(),
                ) {
                    let (kind, duration) = if self.spec.traffic.voice_is_call {
                        let d = self
                            .rng
                            .exponential(self.spec.traffic.call_duration_mean_secs.max(1.0))
                            .clamp(1.0, 7_200.0) as u32;
                        (VoiceKind::Call, d)
                    } else {
                        (VoiceKind::SmsLike, 0)
                    };
                    world.emit(SimEvent::Voice(VoiceCall {
                        time: now,
                        device: self.spec.index,
                        imsi: self.spec.imsi,
                        imei: self.spec.imei,
                        visited: plmn,
                        sector: sec,
                        rat,
                        kind,
                        duration_secs: duration,
                    }));
                }
            }
            other => debug_assert!(false, "unknown wake tag {other}"),
        }
    }
}

impl<S: EventSink> Agent<RoamingWorld<S>> for DeviceAgent {
    fn init(&mut self, id: AgentId, _world: &mut RoamingWorld<S>, sched: &mut Scheduler) {
        let entry = match &self.behavior {
            Some(matrix) => WakeTag(matrix.entry.0),
            None => WakeTag(tags::DAY),
        };
        let first = self.spec.presence.first_day;
        sched.wake_at(id, entry, Day(first).start());
    }

    fn wake(
        &mut self,
        id: AgentId,
        tag: WakeTag,
        world: &mut RoamingWorld<S>,
        sched: &mut Scheduler,
    ) {
        match self.behavior.clone() {
            Some(matrix) => self.wake_matrix(&matrix, id, tag, world, sched),
            None => self.wake_legacy(id, tag, world, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::world::{AllowAllPolicy, NetworkDirectory, VecSink};
    use wtr_model::country::Country;
    use wtr_model::ids::Tac;
    use wtr_model::time::SimTime;
    use wtr_model::vertical::Vertical;
    use wtr_radio::geo::CountryGeometry;
    use wtr_radio::network::{CoverageFaults, RadioNetwork};
    use wtr_radio::sector::GridSpacing;

    const MNO: Plmn = Plmn::of(234, 30);
    const OTHER: Plmn = Plmn::of(234, 10);

    fn uk_geom() -> CountryGeometry {
        CountryGeometry::of(Country::by_iso("GB").unwrap())
    }

    fn directory() -> NetworkDirectory {
        let mut dir = NetworkDirectory::new();
        for plmn in [MNO, OTHER] {
            dir.add(
                "GB",
                RadioNetwork::new(
                    plmn,
                    RatSet::CONVENTIONAL,
                    uk_geom(),
                    GridSpacing::default(),
                    CoverageFaults::NONE,
                ),
            );
        }
        dir
    }

    fn meter_spec(index: u64) -> DeviceSpec {
        DeviceSpec {
            index,
            imsi: Imsi::new(Plmn::of(204, 4), index).unwrap(),
            imei: Imei::new(Tac::new(35_000_000).unwrap(), index as u32 % 1_000_000).unwrap(),
            vertical: Vertical::SmartMeter,
            radio_caps: RatSet::G2_ONLY,
            apns: vec!["smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap()],
            data_enabled: true,
            voice_enabled: false,
            traffic: TrafficProfile::for_vertical(Vertical::SmartMeter),
            presence: PresenceModel::always(7),
            itinerary: vec![ItineraryLeg {
                from_day: 0,
                country_iso: "GB".into(),
                mobility: MobilityModel::stationary_in(&uk_geom(), index),
            }],
            switch_propensity: 0.0,
            event_failure_prob: 0.0,
            sticky_failure: None,
        }
    }

    fn run(specs: Vec<DeviceSpec>, days: u32) -> Vec<SimEvent> {
        let world = RoamingWorld::new(
            directory(),
            Box::new(AllowAllPolicy),
            VecSink::default(),
            99,
        );
        let mut engine = Engine::new(world, SimTime::from_secs(days as u64 * 86_400));
        for spec in specs {
            engine.add_agent(DeviceAgent::new(spec, 99));
        }
        engine.run().sink.events
    }

    /// Runs the same specs on the explicit legacy path and the explicit
    /// matrix path (env-independent) and returns both event streams.
    fn run_both_paths(specs: Vec<DeviceSpec>, days: u32) -> (Vec<SimEvent>, Vec<SimEvent>) {
        let run_path = |specs: &[DeviceSpec], legacy: bool| {
            let world = RoamingWorld::new(
                directory(),
                Box::new(AllowAllPolicy),
                VecSink::default(),
                99,
            );
            let mut engine = Engine::new(world, SimTime::from_secs(days as u64 * 86_400));
            for spec in specs {
                let agent = if legacy {
                    DeviceAgent::legacy(spec.clone(), 99).unwrap()
                } else {
                    let matrix = Arc::new(crate::behavior::legacy_matrix(spec));
                    DeviceAgent::with_behavior(spec.clone(), matrix, 99).unwrap()
                };
                engine.add_agent(agent);
            }
            engine.run().sink.events
        };
        (run_path(&specs, true), run_path(&specs, false))
    }

    #[test]
    fn matrix_and_legacy_paths_emit_identical_events() {
        // Plain meter, a sticky-failing device, a constant switcher and a
        // flaky presence window together cover every wake branch.
        let mut sticky = meter_spec(2);
        sticky.sticky_failure = Some(ProcedureResult::UnknownSubscription);
        let mut switcher = meter_spec(3);
        switcher.switch_propensity = 1.0;
        switcher.event_failure_prob = 0.1;
        let mut flaky = meter_spec(4);
        flaky.presence = PresenceModel {
            first_day: 1,
            last_day: 6,
            daily_active_prob: 0.5,
        };
        let (legacy, matrix) = run_both_paths(vec![meter_spec(1), sticky, switcher, flaky], 7);
        assert_eq!(legacy, matrix);
    }

    #[test]
    fn invalid_itineraries_are_rejected_at_construction() {
        let mut empty = meter_spec(10);
        empty.itinerary.clear();
        assert_eq!(empty.validate(), Err(SpecError::EmptyItinerary));
        assert!(DeviceAgent::try_new(empty, 99).is_err());

        let mut unsorted = meter_spec(11);
        unsorted.itinerary = vec![
            ItineraryLeg {
                from_day: 5,
                country_iso: "GB".into(),
                mobility: MobilityModel::stationary_in(&uk_geom(), 1),
            },
            ItineraryLeg {
                from_day: 0,
                country_iso: "ES".into(),
                mobility: MobilityModel::stationary_in(&uk_geom(), 2),
            },
        ];
        assert_eq!(unsorted.validate(), Err(SpecError::UnsortedItinerary));
        assert!(DeviceAgent::try_new(unsorted, 99).is_err());

        assert!(meter_spec(12).validate().is_ok());
    }

    #[test]
    fn meter_produces_signaling_and_data_on_2g() {
        let events = run(vec![meter_spec(1)], 7);
        assert!(!events.is_empty());
        let mut has_sig = false;
        let mut has_data = false;
        for e in &events {
            match e {
                SimEvent::Signaling(s) => {
                    assert_eq!(s.rat, Rat::G2, "2G-only device used {}", s.rat);
                    has_sig = true;
                }
                SimEvent::Data(d) => {
                    assert_eq!(d.rat, Rat::G2);
                    assert!(d.apn.matches_keyword("centrica"));
                    has_data = true;
                }
                SimEvent::Voice(_) => panic!("voice disabled"),
            }
        }
        assert!(has_sig && has_data);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(vec![meter_spec(1), meter_spec(2)], 5);
        let b = run(vec![meter_spec(1), meter_spec(2)], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sticky_failure_device_never_succeeds() {
        let mut spec = meter_spec(3);
        spec.sticky_failure = Some(ProcedureResult::UnknownSubscription);
        let events = run(vec![spec], 5);
        assert!(!events.is_empty());
        for e in &events {
            match e {
                SimEvent::Signaling(s) => {
                    assert_eq!(s.result, ProcedureResult::UnknownSubscription)
                }
                _ => panic!("a failing device must not move data/voice"),
            }
        }
    }

    #[test]
    fn camped_device_does_not_reattach() {
        // With zero switch propensity, no re-registrations and full
        // coverage, exactly one successful attach (Auth+UL pair) happens;
        // everything else is RAU.
        let mut spec = meter_spec(4);
        spec.traffic.reauth_fraction = 0.0;
        let events = run(vec![spec], 7);
        let auths = events
            .iter()
            .filter(|e| {
                matches!(e, SimEvent::Signaling(s) if s.procedure == ProcedureType::Authentication)
            })
            .count();
        assert_eq!(auths, 1, "device should attach once and stay camped");
        let cancels = events
            .iter()
            .filter(|e| {
                matches!(e, SimEvent::Signaling(s) if s.procedure == ProcedureType::CancelLocation)
            })
            .count();
        assert_eq!(cancels, 0);
    }

    #[test]
    fn forced_switching_produces_cancel_location() {
        let mut spec = meter_spec(5);
        spec.switch_propensity = 1.0; // every event reselects
        let events = run(vec![spec], 7);
        let cancels = events
            .iter()
            .filter(|e| {
                matches!(e, SimEvent::Signaling(s) if s.procedure == ProcedureType::CancelLocation)
            })
            .count();
        assert!(cancels > 0, "constant reselection must produce switches");
        // Both UK networks must have been used.
        let visited: std::collections::HashSet<Plmn> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Signaling(s) if s.result.is_ok() => Some(s.visited),
                _ => None,
            })
            .collect();
        assert!(visited.contains(&MNO) && visited.contains(&OTHER));
    }

    #[test]
    fn presence_window_bounds_activity() {
        let mut spec = meter_spec(6);
        spec.presence = PresenceModel {
            first_day: 2,
            last_day: 4,
            daily_active_prob: 1.0,
        };
        let events = run(vec![spec], 7);
        assert!(!events.is_empty());
        for e in &events {
            let d = e.time().day().0;
            assert!((2..4).contains(&d), "event on day {d}");
        }
    }

    #[test]
    fn itinerary_changes_country_and_network() {
        let es_geom = CountryGeometry::of(Country::by_iso("ES").unwrap());
        let mut dir = directory();
        dir.add(
            "ES",
            RadioNetwork::new(
                Plmn::of(214, 7),
                RatSet::CONVENTIONAL,
                es_geom,
                GridSpacing::default(),
                CoverageFaults::NONE,
            ),
        );
        let mut spec = meter_spec(7);
        spec.vertical = Vertical::ConnectedCar;
        spec.traffic = TrafficProfile::for_vertical(Vertical::ConnectedCar);
        spec.radio_caps = RatSet::CONVENTIONAL;
        spec.itinerary = vec![
            ItineraryLeg {
                from_day: 0,
                country_iso: "GB".into(),
                mobility: MobilityModel::stationary_in(&uk_geom(), 7),
            },
            ItineraryLeg {
                from_day: 3,
                country_iso: "ES".into(),
                mobility: MobilityModel::stationary_in(&es_geom, 7),
            },
        ];
        let world = RoamingWorld::new(dir, Box::new(AllowAllPolicy), VecSink::default(), 99);
        let mut engine = Engine::new(world, SimTime::from_secs(6 * 86_400));
        engine.add_agent(DeviceAgent::new(spec, 99));
        let events = engine.run().sink.events;
        let countries: std::collections::HashSet<u16> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Signaling(s) if s.result.is_ok() => Some(s.visited.mcc.value()),
                _ => None,
            })
            .collect();
        assert!(countries.contains(&234), "no UK activity");
        assert!(countries.contains(&214), "no ES activity after the move");
    }

    #[test]
    fn leg_at_selects_correct_segment() {
        let spec = {
            let mut s = meter_spec(8);
            s.itinerary = vec![
                ItineraryLeg {
                    from_day: 0,
                    country_iso: "GB".into(),
                    mobility: MobilityModel::stationary_in(&uk_geom(), 1),
                },
                ItineraryLeg {
                    from_day: 5,
                    country_iso: "ES".into(),
                    mobility: MobilityModel::stationary_in(&uk_geom(), 2),
                },
            ];
            s
        };
        assert_eq!(spec.leg_at(Day(0)).country_iso, "GB");
        assert_eq!(spec.leg_at(Day(4)).country_iso, "GB");
        assert_eq!(spec.leg_at(Day(5)).country_iso, "ES");
        assert_eq!(spec.leg_at(Day(9)).country_iso, "ES");
        assert_eq!(spec.countries_visited(), 2);
    }

    #[test]
    fn daily_active_prob_thins_activity() {
        let mut always = meter_spec(9);
        always.presence = PresenceModel::always(14);
        let mut flaky = meter_spec(9);
        flaky.presence = PresenceModel {
            first_day: 0,
            last_day: 14,
            daily_active_prob: 0.3,
        };
        let active_days = |events: &[SimEvent]| {
            events
                .iter()
                .map(|e| e.time().day().0)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let a = active_days(&run(vec![always], 14));
        let f = active_days(&run(vec![flaky], 14));
        assert_eq!(a, 14);
        assert!(f < 12, "flaky device active {f}/14 days");
    }
}
