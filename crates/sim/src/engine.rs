//! The discrete-event core: an event queue of agent wake-ups.
//!
//! Deliberately minimal (smoltcp's "simplicity and robustness" anti-macro
//! ethos): the engine knows nothing about devices or networks. Agents
//! schedule `(time, tag)` wake-ups for themselves; the engine dispatches
//! them in strict `(time, sequence)` order, giving a total order that makes
//! every run bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wtr_model::time::SimTime;

/// Index of an agent within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

/// Agent-defined discriminator carried by a wake-up, so one agent can
/// distinguish e.g. "periodic report" from "departure" wake-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WakeTag(pub u32);

/// The scheduling interface handed to agents.
///
/// Only self-scheduling is exposed: an agent cannot wake another agent,
/// which keeps agent interactions flowing through the world state `W` and
/// the dispatch order deterministic.
#[derive(Debug)]
pub struct Scheduler {
    now: SimTime,
    horizon: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, u32, u32)>>,
}

impl Scheduler {
    fn new(horizon: SimTime) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            horizon,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// End of the simulation window; wake-ups at or beyond it are dropped.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedules a wake-up for `agent` at `at`. Wake-ups in the past are a
    /// bug in the agent; they are debug-asserted and skipped in release.
    pub fn wake_at(&mut self, agent: AgentId, tag: WakeTag, at: SimTime) {
        debug_assert!(at >= self.now, "agent scheduled a wake-up in the past");
        if at < self.now || at >= self.horizon {
            return;
        }
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, agent.0, tag.0)));
    }

    /// Number of pending wake-ups.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A simulation actor. `W` is the shared world (radio networks, policy,
/// event sink) every agent reads and writes during its turn.
pub trait Agent<W> {
    /// Called once before the run starts; schedule the first wake-up here.
    fn init(&mut self, id: AgentId, world: &mut W, sched: &mut Scheduler);

    /// Called at each scheduled wake-up.
    fn wake(&mut self, id: AgentId, tag: WakeTag, world: &mut W, sched: &mut Scheduler);
}

/// The event loop: owns the agents, the world, and the queue.
pub struct Engine<W, A> {
    agents: Vec<A>,
    world: W,
    sched: Scheduler,
    dispatched: u64,
}

impl<W, A: Agent<W>> Engine<W, A> {
    /// Creates an engine over `world` running until `horizon`.
    pub fn new(world: W, horizon: SimTime) -> Self {
        Engine {
            agents: Vec::new(),
            world,
            sched: Scheduler::new(horizon),
            dispatched: 0,
        }
    }

    /// Adds an agent (before [`Engine::run`]); returns its id.
    pub fn add_agent(&mut self, agent: A) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(agent);
        id
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Total wake-ups dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Runs to completion: initializes every agent, then dispatches
    /// wake-ups in time order until the queue drains or the horizon is
    /// reached. Returns the world (with whatever the agents produced).
    pub fn run(mut self) -> W {
        for (i, agent) in self.agents.iter_mut().enumerate() {
            agent.init(AgentId(i as u32), &mut self.world, &mut self.sched);
        }
        while let Some(Reverse((at, _seq, agent, tag))) = self.sched.queue.pop() {
            self.sched.now = at;
            self.dispatched += 1;
            self.agents[agent as usize].wake(
                AgentId(agent),
                WakeTag(tag),
                &mut self.world,
                &mut self.sched,
            );
        }
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::time::SimDuration;

    /// World for tests: a log of (time, agent, tag).
    type Log = Vec<(SimTime, u32, u32)>;

    /// Agent that wakes every `period` seconds and logs.
    struct Ticker {
        period: u64,
    }

    impl Agent<Log> for Ticker {
        fn init(&mut self, id: AgentId, _world: &mut Log, sched: &mut Scheduler) {
            sched.wake_at(id, WakeTag(0), SimTime::from_secs(self.period));
        }
        fn wake(&mut self, id: AgentId, tag: WakeTag, world: &mut Log, sched: &mut Scheduler) {
            world.push((sched.now(), id.0, tag.0));
            sched.wake_at(id, tag, sched.now() + SimDuration::from_secs(self.period));
        }
    }

    #[test]
    fn dispatch_in_time_order() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Ticker { period: 30 });
        engine.add_agent(Ticker { period: 20 });
        let log = engine.run();
        let times: Vec<u64> = log.iter().map(|(t, _, _)| t.as_secs()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // Ticker 1 (20s): 20,40,60,80; Ticker 0 (30s): 30,60,90.
        assert_eq!(log.len(), 7);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(60));
        engine.add_agent(Ticker { period: 20 });
        let log = engine.run();
        // Wake at 60 dropped: only 20 and 40 fire.
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|(t, _, _)| t.as_secs() < 60));
    }

    #[test]
    fn ties_dispatch_in_schedule_order() {
        struct Once {
            at: u64,
        }
        impl Agent<Log> for Once {
            fn init(&mut self, id: AgentId, _w: &mut Log, s: &mut Scheduler) {
                s.wake_at(id, WakeTag(id.0), SimTime::from_secs(self.at));
            }
            fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut Log, s: &mut Scheduler) {
                w.push((s.now(), id.0, tag.0));
            }
        }
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        for _ in 0..5 {
            engine.add_agent(Once { at: 50 });
        }
        let log = engine.run();
        let order: Vec<u32> = log.iter().map(|(_, a, _)| *a).collect();
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4],
            "tie-break must follow insertion order"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let mut engine = Engine::new(Log::new(), SimTime::from_secs(500));
            engine.add_agent(Ticker { period: 7 });
            engine.add_agent(Ticker { period: 13 });
            engine.add_agent(Ticker { period: 29 });
            engine.run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_engine_terminates() {
        let engine: Engine<Log, Ticker> = Engine::new(Log::new(), SimTime::from_secs(10));
        let log = engine.run();
        assert!(log.is_empty());
    }

    #[test]
    fn dispatched_counter() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Ticker { period: 25 });
        let expected = 3; // 25, 50, 75 (100 dropped)
        let mut count = 0u64;
        let log = engine.run();
        count += log.len() as u64;
        assert_eq!(count, expected);
    }
}
