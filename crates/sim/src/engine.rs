//! The discrete-event core: an event queue of agent wake-ups.
//!
//! Deliberately minimal (smoltcp's "simplicity and robustness" anti-macro
//! ethos): the engine knows nothing about devices or networks. Agents
//! schedule `(time, tag)` wake-ups for themselves; the engine dispatches
//! them in strict `(time, agent, per-agent seq)` order.
//!
//! ## Why this tie-break, and not a global insertion counter
//!
//! The dispatch total order is `(time, agent id, per-agent sequence)`. The
//! per-agent sequence counts how many wake-ups *that agent* has scheduled,
//! so the key of every wake-up is a pure function of the scheduling
//! agent's own history — never of how agents from different shards happen
//! to interleave their `wake_at` calls. Earlier revisions broke ties with
//! one global insertion counter, which encodes the *interleaving* of all
//! agents into every key: splitting the agent population across K
//! independent event loops (see [`crate::shard`]) would assign different
//! counters and therefore a different dispatch order for every K. With the
//! shard-stable order, a serial run and a sharded run dispatch each
//! agent's wake-ups in exactly the same relative order, which is what
//! makes sharded simulation output mergeable and byte-identical at any
//! shard count. Since agents can only self-schedule (no cross-agent
//! wakes), the two orders dispatch the *same multiset* of wake-ups — only
//! the interleaving between different agents changes.

use crate::calendar::{CalendarQueue, Key};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wtr_model::time::SimTime;

/// Index of an agent within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

/// Agent-defined discriminator carried by a wake-up, so one agent can
/// distinguish e.g. "periodic report" from "departure" wake-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WakeTag(pub u32);

/// Which event-queue implementation a [`Scheduler`] runs on. Both
/// dispatch the identical `(time, agent, per-agent seq, tag)` total
/// order — the choice is purely a performance/ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The calendar queue (`crate::calendar`): O(1) amortized push/pop
    /// via time buckets with a lazy per-window sort. The default.
    Calendar,
    /// The original `BinaryHeap`: O(log n) per operation. Kept as the
    /// reference implementation behind the `WTR_HEAP_SCHED=1` knob
    /// (mirroring `WTR_SERIAL_MERGE`) for equivalence tests and the
    /// scheduler-ablation benches.
    Heap,
}

impl SchedulerKind {
    /// Resolves the kind from the environment: `WTR_HEAP_SCHED=1` forces
    /// the heap, anything else selects the calendar queue.
    pub fn from_env() -> Self {
        if std::env::var("WTR_HEAP_SCHED").is_ok_and(|v| v == "1") {
            SchedulerKind::Heap
        } else {
            SchedulerKind::Calendar
        }
    }
}

/// The two queue backends. Pop order is identical; see [`SchedulerKind`].
#[derive(Debug)]
enum QueueImpl {
    Heap(BinaryHeap<Reverse<Key>>),
    Calendar(CalendarQueue),
}

impl QueueImpl {
    #[inline]
    fn push(&mut self, key: Key) {
        match self {
            QueueImpl::Heap(h) => h.push(Reverse(key)),
            QueueImpl::Calendar(c) => c.push(key),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Key> {
        match self {
            QueueImpl::Heap(h) => h.pop().map(|Reverse(k)| k),
            QueueImpl::Calendar(c) => c.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(h) => h.len(),
            QueueImpl::Calendar(c) => c.len(),
        }
    }
}

/// The scheduling interface handed to agents.
///
/// Only self-scheduling is exposed: an agent cannot wake another agent,
/// which keeps agent interactions flowing through the world state `W`,
/// the dispatch order deterministic, and — because no wake-up ever
/// crosses agents — the agent population freely partitionable across
/// independent per-shard event loops.
#[derive(Debug)]
pub struct Scheduler {
    now: SimTime,
    horizon: SimTime,
    kind: SchedulerKind,
    /// Per-agent wake-up counters: `seqs[agent]` is the number of
    /// wake-ups agent `agent` has scheduled so far. Pre-sized from the
    /// agent population by [`Scheduler::prepare`]; the grow-on-demand
    /// fallback in [`Scheduler::wake_at`] is a cold path kept for
    /// robustness only.
    seqs: Vec<u64>,
    /// Pending wake-ups, keyed `(time, agent, per-agent seq, tag)`.
    queue: QueueImpl,
    /// Total wake-ups accepted (past/post-horizon ones excluded).
    scheduled: u64,
    /// High-water mark of the queue depth.
    peak_queue: usize,
}

impl Scheduler {
    fn new(horizon: SimTime, kind: SchedulerKind) -> Self {
        let queue = match kind {
            SchedulerKind::Heap => QueueImpl::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => {
                QueueImpl::Calendar(CalendarQueue::with_capacity(0, horizon))
            }
        };
        Scheduler {
            now: SimTime::ZERO,
            horizon,
            kind,
            seqs: Vec::new(),
            queue,
            scheduled: 0,
            peak_queue: 0,
        }
    }

    /// Pre-sizes the per-agent sequence table and the queue (heap
    /// capacity / calendar ring) for `agents` agents. Steady state for
    /// device-style populations is about one pending wake-up per agent,
    /// so sizing from the population avoids both the doubling
    /// reallocations and the early calendar-ring resizes during the init
    /// burst. Called by the engine before any agent is initialized.
    fn prepare(&mut self, agents: usize) {
        debug_assert_eq!(self.scheduled, 0, "prepare after wake-ups were scheduled");
        self.seqs.clear();
        self.seqs.resize(agents, 0);
        match &mut self.queue {
            QueueImpl::Heap(h) => h.reserve(agents),
            QueueImpl::Calendar(c) if c.len() == 0 => {
                *c = CalendarQueue::with_capacity(agents, self.horizon);
            }
            QueueImpl::Calendar(_) => {}
        }
    }

    /// Cold fallback for a `wake_at` from an agent id the scheduler was
    /// not [`prepare`](Scheduler::prepare)d for.
    #[cold]
    fn grow_seqs(&mut self, idx: usize) {
        self.seqs.resize(idx + 1, 0);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// End of the simulation window; wake-ups at or beyond it are dropped.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedules a wake-up for `agent` at `at`. Wake-ups in the past are a
    /// bug in the agent; they are debug-asserted and skipped in release.
    pub fn wake_at(&mut self, agent: AgentId, tag: WakeTag, at: SimTime) {
        debug_assert!(at >= self.now, "agent scheduled a wake-up in the past");
        if at < self.now || at >= self.horizon {
            return;
        }
        let idx = agent.0 as usize;
        if idx >= self.seqs.len() {
            self.grow_seqs(idx);
        }
        self.seqs[idx] += 1;
        self.scheduled += 1;
        self.queue.push((at, agent.0, self.seqs[idx], tag.0));
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Pops the next wake-up in `(time, agent, per-agent seq, tag)`
    /// order and advances the clock to it.
    #[inline]
    fn pop(&mut self) -> Option<Key> {
        let key = self.queue.pop();
        if let Some((at, _, _, _)) = key {
            self.now = at;
        }
        key
    }

    /// Which queue implementation this scheduler runs on.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Number of pending wake-ups.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total wake-ups accepted so far (dropped past/post-horizon wake-ups
    /// excluded).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// High-water mark of the pending-queue depth.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }
}

/// A simulation actor. `W` is the shared world (radio networks, policy,
/// event sink) every agent reads and writes during its turn.
pub trait Agent<W> {
    /// Called once before the run starts; schedule the first wake-up here.
    fn init(&mut self, id: AgentId, world: &mut W, sched: &mut Scheduler);

    /// Called at each scheduled wake-up.
    fn wake(&mut self, id: AgentId, tag: WakeTag, world: &mut W, sched: &mut Scheduler);
}

/// Per-run scheduler statistics, reported by [`Engine::run_stats`] and
/// aggregated per shard by [`crate::shard::run_sharded`] so shard
/// imbalance is visible in scenario outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Number of agents the engine ran.
    pub agents: u64,
    /// Total wake-ups accepted by the scheduler.
    pub scheduled: u64,
    /// Total wake-ups dispatched (equals `scheduled` when the run
    /// drains the queue).
    pub dispatched: u64,
    /// Sum of the per-shard queue high-water marks. Shard queues are
    /// independent and their peaks need not coincide in time, so this is
    /// an *upper bound* on the concurrent total, not a high-water mark
    /// itself; see [`EngineStats::peak_queue_max`] for the per-loop
    /// figure. For a single engine the two are equal.
    pub peak_queue: u64,
    /// Largest single-shard queue high-water mark — the depth some event
    /// loop actually reached, and the number the CLI summary line
    /// reports as "peak queue depth".
    pub peak_queue_max: u64,
}

impl EngineStats {
    /// Adds another engine's counters into this one (used when merging
    /// shard stats into a scenario-level total). Counters are additive;
    /// the queue high-water mark keeps both the cross-shard sum
    /// ([`EngineStats::peak_queue`], an upper bound) and the per-shard
    /// maximum ([`EngineStats::peak_queue_max`], a depth actually seen).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.agents += other.agents;
        self.scheduled += other.scheduled;
        self.dispatched += other.dispatched;
        self.peak_queue += other.peak_queue;
        self.peak_queue_max = self.peak_queue_max.max(other.peak_queue_max);
    }
}

/// The event loop: owns the agents, the world, and the queue.
pub struct Engine<W, A> {
    agents: Vec<A>,
    world: W,
    sched: Scheduler,
    dispatched: u64,
}

impl<W, A: Agent<W>> Engine<W, A> {
    /// Creates an engine over `world` running until `horizon`, on the
    /// environment-selected scheduler ([`SchedulerKind::from_env`]:
    /// calendar queue unless `WTR_HEAP_SCHED=1`).
    pub fn new(world: W, horizon: SimTime) -> Self {
        Self::with_scheduler(world, horizon, SchedulerKind::from_env())
    }

    /// [`Engine::new`] with an explicit queue implementation — the
    /// env-free knob the heap-vs-calendar equivalence tests and the
    /// scheduler-ablation benches drive.
    pub fn with_scheduler(world: W, horizon: SimTime, kind: SchedulerKind) -> Self {
        Engine {
            agents: Vec::new(),
            world,
            sched: Scheduler::new(horizon, kind),
            dispatched: 0,
        }
    }

    /// Adds an agent (before [`Engine::run`]); returns its id.
    pub fn add_agent(&mut self, agent: A) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(agent);
        id
    }

    /// Adds all agents from an iterator (before [`Engine::run`]).
    pub fn add_agents(&mut self, agents: impl IntoIterator<Item = A>) {
        self.agents.extend(agents);
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Total wake-ups dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Runs to completion: initializes every agent, then dispatches
    /// wake-ups in `(time, agent, per-agent seq)` order until the queue
    /// drains or the horizon is reached. Returns the world (with whatever
    /// the agents produced).
    pub fn run(self) -> W {
        self.run_stats().0
    }

    /// [`Engine::run`], additionally returning the scheduler statistics.
    pub fn run_stats(mut self) -> (W, EngineStats) {
        self.sched.prepare(self.agents.len());
        for (i, agent) in self.agents.iter_mut().enumerate() {
            agent.init(AgentId(i as u32), &mut self.world, &mut self.sched);
        }
        while let Some((_, agent, _seq, tag)) = self.sched.pop() {
            self.dispatched += 1;
            self.agents[agent as usize].wake(
                AgentId(agent),
                WakeTag(tag),
                &mut self.world,
                &mut self.sched,
            );
        }
        let stats = EngineStats {
            agents: self.agents.len() as u64,
            scheduled: self.sched.scheduled,
            dispatched: self.dispatched,
            peak_queue: self.sched.peak_queue as u64,
            peak_queue_max: self.sched.peak_queue as u64,
        };
        (self.world, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtr_model::time::SimDuration;

    /// World for tests: a log of (time, agent, tag).
    type Log = Vec<(SimTime, u32, u32)>;

    /// Agent that wakes every `period` seconds and logs.
    struct Ticker {
        period: u64,
    }

    impl Agent<Log> for Ticker {
        fn init(&mut self, id: AgentId, _world: &mut Log, sched: &mut Scheduler) {
            sched.wake_at(id, WakeTag(0), SimTime::from_secs(self.period));
        }
        fn wake(&mut self, id: AgentId, tag: WakeTag, world: &mut Log, sched: &mut Scheduler) {
            world.push((sched.now(), id.0, tag.0));
            sched.wake_at(id, tag, sched.now() + SimDuration::from_secs(self.period));
        }
    }

    #[test]
    fn dispatch_in_time_order() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Ticker { period: 30 });
        engine.add_agent(Ticker { period: 20 });
        let log = engine.run();
        let times: Vec<u64> = log.iter().map(|(t, _, _)| t.as_secs()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // Ticker 1 (20s): 20,40,60,80; Ticker 0 (30s): 30,60,90.
        assert_eq!(log.len(), 7);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(60));
        engine.add_agent(Ticker { period: 20 });
        let log = engine.run();
        // Wake at 60 dropped: only 20 and 40 fire.
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|(t, _, _)| t.as_secs() < 60));
    }

    #[test]
    fn ties_dispatch_in_agent_order() {
        struct Once {
            at: u64,
        }
        impl Agent<Log> for Once {
            fn init(&mut self, id: AgentId, _w: &mut Log, s: &mut Scheduler) {
                s.wake_at(id, WakeTag(id.0), SimTime::from_secs(self.at));
            }
            fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut Log, s: &mut Scheduler) {
                w.push((s.now(), id.0, tag.0));
            }
        }
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        for _ in 0..5 {
            engine.add_agent(Once { at: 50 });
        }
        let log = engine.run();
        let order: Vec<u32> = log.iter().map(|(_, a, _)| *a).collect();
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4],
            "tie-break must follow agent-id order"
        );
    }

    #[test]
    fn same_time_same_agent_dispatches_in_schedule_order() {
        // One agent scheduling several wake-ups for the same instant:
        // the per-agent sequence preserves its own scheduling order.
        struct Burst;
        impl Agent<Log> for Burst {
            fn init(&mut self, id: AgentId, _w: &mut Log, s: &mut Scheduler) {
                for tag in [3u32, 1, 2, 0] {
                    s.wake_at(id, WakeTag(tag), SimTime::from_secs(10));
                }
            }
            fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut Log, s: &mut Scheduler) {
                w.push((s.now(), id.0, tag.0));
            }
        }
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Burst);
        let log = engine.run();
        let tags: Vec<u32> = log.iter().map(|(_, _, t)| *t).collect();
        assert_eq!(tags, vec![3, 1, 2, 0], "per-agent FIFO within one instant");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let mut engine = Engine::new(Log::new(), SimTime::from_secs(500));
            engine.add_agent(Ticker { period: 7 });
            engine.add_agent(Ticker { period: 13 });
            engine.add_agent(Ticker { period: 29 });
            engine.run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_engine_terminates() {
        let engine: Engine<Log, Ticker> = Engine::new(Log::new(), SimTime::from_secs(10));
        let log = engine.run();
        assert!(log.is_empty());
    }

    #[test]
    fn dispatched_counter() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Ticker { period: 25 });
        let expected = 3; // 25, 50, 75 (100 dropped)
        let mut count = 0u64;
        let log = engine.run();
        count += log.len() as u64;
        assert_eq!(count, expected);
    }

    #[test]
    fn run_stats_reports_scheduler_counters() {
        let mut engine = Engine::new(Log::new(), SimTime::from_secs(100));
        engine.add_agent(Ticker { period: 25 });
        engine.add_agent(Ticker { period: 40 });
        let (log, stats) = engine.run_stats();
        assert_eq!(stats.agents, 2);
        assert_eq!(stats.dispatched, log.len() as u64);
        // The queue drained, so everything accepted was dispatched.
        assert_eq!(stats.scheduled, stats.dispatched);
        assert!(stats.peak_queue >= 2, "both init wake-ups coexist");
    }

    #[test]
    fn stats_absorb_sums_counters_and_maxes_peak() {
        let a = EngineStats {
            agents: 2,
            scheduled: 10,
            dispatched: 10,
            peak_queue: 3,
            peak_queue_max: 3,
        };
        let b = EngineStats {
            agents: 1,
            scheduled: 4,
            dispatched: 4,
            peak_queue: 7,
            peak_queue_max: 7,
        };
        let mut total = EngineStats::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.agents, 3);
        assert_eq!(total.scheduled, 14);
        // The sum is an upper bound on the concurrent total; the max is
        // the depth a single loop actually reached.
        assert_eq!(total.peak_queue, 10);
        assert_eq!(total.peak_queue_max, 7);
    }

    #[test]
    fn heap_and_calendar_dispatch_identically() {
        let run = |kind: SchedulerKind| {
            let mut engine = Engine::with_scheduler(Log::new(), SimTime::from_secs(2_000), kind);
            engine.add_agent(Ticker { period: 7 });
            engine.add_agent(Ticker { period: 13 });
            engine.add_agent(Ticker { period: 7 });
            engine.add_agent(Ticker { period: 1 });
            engine.run_stats()
        };
        let (cal_log, cal_stats) = run(SchedulerKind::Calendar);
        let (heap_log, heap_stats) = run(SchedulerKind::Heap);
        assert_eq!(cal_log, heap_log, "dispatch order diverged");
        assert_eq!(cal_stats, heap_stats);
    }

    #[test]
    fn same_instant_reschedule_matches_heap() {
        // An agent scheduling more wake-ups *at the instant being
        // dispatched* exercises the calendar queue's in-window splice;
        // the heap is the reference.
        struct Chain {
            budget: u32,
        }
        impl Agent<Log> for Chain {
            fn init(&mut self, id: AgentId, _w: &mut Log, s: &mut Scheduler) {
                s.wake_at(id, WakeTag(0), SimTime::from_secs(10 + u64::from(id.0)));
            }
            fn wake(&mut self, id: AgentId, tag: WakeTag, w: &mut Log, s: &mut Scheduler) {
                w.push((s.now(), id.0, tag.0));
                if tag.0 < self.budget {
                    // Two same-instant re-schedules plus a later one.
                    s.wake_at(id, WakeTag(tag.0 + 1), s.now());
                    s.wake_at(id, WakeTag(tag.0 + 1), s.now() + SimDuration::from_secs(3));
                }
            }
        }
        let run = |kind: SchedulerKind| {
            let mut engine = Engine::with_scheduler(Log::new(), SimTime::from_secs(60), kind);
            for _ in 0..6 {
                engine.add_agent(Chain { budget: 4 });
            }
            engine.run()
        };
        let cal = run(SchedulerKind::Calendar);
        assert_eq!(cal, run(SchedulerKind::Heap));
        assert!(!cal.is_empty());
    }

    #[test]
    fn scheduler_kind_from_env_defaults_to_calendar() {
        // Not run under WTR_HEAP_SCHED in this suite; the CI determinism
        // job owns the env-var path end to end.
        if std::env::var("WTR_HEAP_SCHED").is_err() {
            assert_eq!(SchedulerKind::from_env(), SchedulerKind::Calendar);
        }
    }
}
