//! Streaming single-pass pipeline core: chunked record streams and
//! mergeable chunk-fold sinks.
//!
//! At paper scale (~39.6M devices over 22 days, §4) no stage of the
//! pipeline may materialize "all the events" or walk the same data six
//! times. This module provides the two abstractions every stage is built
//! on instead:
//!
//! * [`RecordStream`] — a deterministic, *chunked* producer of records:
//!   the sim engine's event loop (via [`EventBatcher`]), the JSONL
//!   catalog reader, and the chunk-at-a-time `WTRCAT` reader all present
//!   their output as a sequence of owned chunks, never as one giant
//!   `Vec`.
//! * [`ChunkFold`] — a sink that folds chunks into bounded state and can
//!   merge ("absorb") a sink built from a *later* part of the same
//!   stream, mirroring the intern table's `absorb` discipline. The
//!   catalog builder, device-summary accumulation, the classifier's
//!   observed-APN pass and every analysis table implement it.
//!
//! The drivers ([`drive`], [`drive_slice`], [`drive_iter`]) connect the
//! two, and a *broadcast* composition (tuples of sinks, or `Vec<F>`)
//! lets one pass over the stream feed many sinks simultaneously — the
//! 6+ re-scans of the materialized pipeline collapse into one pass with
//! O(state + chunk) peak memory.
//!
//! # Determinism
//!
//! Byte-identical output at any thread count falls out of three rules,
//! the same ones [`crate::par`] established:
//!
//! 1. **Chunk boundaries are a pure function of stream content** (record
//!    positions and counts), never of the thread count.
//! 2. Each chunk folds into a fresh [`ChunkFold::zero`] accumulator;
//!    partials are **absorbed left-to-right in chunk order**, so
//!    "first-touch wins" semantics survive parallel execution.
//! 3. Sinks whose merge involves floating-point accumulation are driven
//!    with the *same* chunk boundaries on every path (see
//!    [`crate::par::chunk_size`]), so the exact sequence of arithmetic
//!    — and therefore every rounding decision — is reproduced.
//!
//! The window of chunks in flight ([`drive`] folds up to
//! [`crate::par::threads`] chunks concurrently) affects only *when*
//! partials are computed, never the fold boundaries or the absorb
//! order.

use crate::events::SimEvent;
use crate::par;
use crate::world::EventSink;

/// Records per chunk for iterator-backed streaming ([`drive_iter`])
/// when the caller does not pin a chunk size.
pub const STREAM_CHUNK: usize = 4096;

/// Default number of buffered simulation events per [`EventBatcher`]
/// flush.
pub const EVENT_BATCH: usize = 8192;

/// A sink that folds chunks of `T` records into bounded accumulator
/// state and can merge with a sink covering a later part of the stream.
///
/// The three methods mirror the intern table's chunk-merge discipline
/// (`ApnTable::absorb`):
///
/// * [`zero`](ChunkFold::zero) — a fresh accumulator with the same
///   *configuration* as `self` but no accumulated state (the
///   prototype pattern: config-bearing sinks copy their references).
/// * [`fold_chunk`](ChunkFold::fold_chunk) — folds one chunk of
///   records, in order, into `self`.
/// * [`absorb`](ChunkFold::absorb) — merges a sink built from a
///   **strictly later** slice of the same stream into `self`. Because
///   the drivers always absorb left-to-right in chunk order, an
///   implementation may rely on `self` holding the earlier records
///   ("first wins" is safe); it need not be commutative.
///
/// # Contract
///
/// For the drivers to be thread-count invariant, folding the
/// concatenation of two chunks must equal folding them into separate
/// zeros and absorbing: `fold(a ++ b) == fold(a).absorb(fold(b))`.
/// Integer counters, set unions, map-entry merges and "left wins"
/// identities satisfy this exactly; floating-point accumulators satisfy
/// it up to rounding, which the pipeline neutralizes by pinning chunk
/// boundaries (rule 3 of the module docs).
pub trait ChunkFold<T>: Send + Sized {
    /// A fresh accumulator with `self`'s configuration and no state.
    fn zero(&self) -> Self;
    /// Folds one chunk of records (in stream order) into `self`.
    fn fold_chunk(&mut self, chunk: &[T]);
    /// Merges a sink built from a later slice of the stream into
    /// `self`.
    fn absorb(&mut self, later: Self);
}

macro_rules! tuple_chunk_fold {
    ($($name:ident : $idx:tt),+) => {
        impl<T, $($name: ChunkFold<T>),+> ChunkFold<T> for ($($name,)+) {
            fn zero(&self) -> Self {
                ($(self.$idx.zero(),)+)
            }
            fn fold_chunk(&mut self, chunk: &[T]) {
                $(self.$idx.fold_chunk(chunk);)+
            }
            fn absorb(&mut self, later: Self) {
                $(self.$idx.absorb(later.$idx);)+
            }
        }
    };
}

tuple_chunk_fold!(A: 0, B: 1);
tuple_chunk_fold!(A: 0, B: 1, C: 2);
tuple_chunk_fold!(A: 0, B: 1, C: 2, D: 3);
tuple_chunk_fold!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Broadcast over a homogeneous sink list: one pass feeds every element.
/// Combine with the tuple impls (tuples nest) to feed arbitrarily many
/// heterogeneous sinks in a single pass.
impl<T, F: ChunkFold<T>> ChunkFold<T> for Vec<F> {
    fn zero(&self) -> Self {
        self.iter().map(F::zero).collect()
    }

    fn fold_chunk(&mut self, chunk: &[T]) {
        for f in self.iter_mut() {
            f.fold_chunk(chunk);
        }
    }

    fn absorb(&mut self, later: Self) {
        assert_eq!(self.len(), later.len(), "broadcast absorb arity mismatch");
        for (f, l) in self.iter_mut().zip(later) {
            f.absorb(l);
        }
    }
}

/// A record counter — the simplest possible sink, mostly useful to ride
/// along in a broadcast tuple ("how many records did this pass see?").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountFold(pub u64);

impl<T> ChunkFold<T> for CountFold {
    fn zero(&self) -> Self {
        CountFold(0)
    }

    fn fold_chunk(&mut self, chunk: &[T]) {
        self.0 += chunk.len() as u64;
    }

    fn absorb(&mut self, later: Self) {
        self.0 += later.0;
    }
}

/// A deterministic chunked producer of records.
///
/// `next_chunk` returns `Ok(Some(chunk))` until the stream is
/// exhausted, then `Ok(None)`; streams must be fused (keep returning
/// `None`) and should never return empty chunks (the drivers skip them
/// defensively). Chunk boundaries must be a pure function of the stream
/// *content* — never of the thread count — so that downstream folds are
/// byte-identical at any parallelism.
pub trait RecordStream {
    /// The record type produced.
    type Item: Send + Sync;
    /// The error type surfaced by the producer (I/O, parse, …).
    type Error;

    /// Produces the next chunk of records, `None` at end of stream.
    fn next_chunk(&mut self) -> Result<Option<Vec<Self::Item>>, Self::Error>;
}

/// Folds a window of chunks into `sink`: each chunk folds into a fresh
/// zero on a [`par::par_each`] worker, partials absorb left-to-right.
fn fold_window<T, F>(sink: &mut F, window: &[Vec<T>])
where
    T: Send + Sync,
    F: ChunkFold<T> + Sync,
{
    let partials = par::par_each(window, |chunk| {
        let mut z = sink.zero();
        z.fold_chunk(chunk);
        z
    });
    for p in partials {
        sink.absorb(p);
    }
}

/// Drives every record of `items` into `sink` with chunk-parallel
/// folding, absorbing partials in chunk order.
///
/// Chunk boundaries come from [`par::chunk_size`] — a pure function of
/// `items.len()` — so output is byte-identical at any thread count, and
/// identical to any other path folding the same `n` records through
/// [`par::chunk_size`]`(n)` boundaries.
pub fn drive_slice<T, F>(sink: &mut F, items: &[T])
where
    T: Sync,
    F: ChunkFold<T> + Sync,
{
    if items.is_empty() {
        return;
    }
    let partials = par::chunked_map(items, |chunk| {
        let mut z = sink.zero();
        z.fold_chunk(chunk);
        z
    });
    for p in partials {
        sink.absorb(p);
    }
}

/// Drives an iterator of owned records into `sink`, buffering
/// `chunk_len` records at a time and folding up to [`par::threads`]
/// chunks concurrently. Returns the number of records consumed.
///
/// Peak memory is O(`chunk_len` × worker window + sink state) — the
/// iterator itself is never collected. `chunk_len` positions the fold
/// boundaries; pass [`par::chunk_size`] of the (known) total to
/// reproduce [`drive_slice`]'s boundaries exactly, or [`STREAM_CHUNK`]
/// when the total is unknown.
pub fn drive_iter_with<T, F, I>(sink: &mut F, chunk_len: usize, items: I) -> u64
where
    T: Send + Sync,
    F: ChunkFold<T> + Sync,
    I: IntoIterator<Item = T>,
{
    let chunk_len = chunk_len.max(1);
    let mut it = items.into_iter();
    let mut seen = 0u64;
    loop {
        let window_target = par::threads().max(1);
        let mut window: Vec<Vec<T>> = Vec::with_capacity(window_target);
        for _ in 0..window_target {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            seen += chunk.len() as u64;
            window.push(chunk);
        }
        if window.is_empty() {
            return seen;
        }
        fold_window(sink, &window);
    }
}

/// [`drive_iter_with`] at the default [`STREAM_CHUNK`] boundary.
pub fn drive_iter<T, F, I>(sink: &mut F, items: I) -> u64
where
    T: Send + Sync,
    F: ChunkFold<T> + Sync,
    I: IntoIterator<Item = T>,
{
    drive_iter_with(sink, STREAM_CHUNK, items)
}

/// Pulls `stream` to exhaustion, folding its chunks into `sink` with up
/// to [`par::threads`] chunks in flight. Returns the number of records
/// consumed, or the stream's error.
///
/// The window size affects only which chunks fold concurrently; fold
/// boundaries (the stream's chunking) and the absorb order (stream
/// order) are independent of it, so output is byte-identical at any
/// thread count.
pub fn drive<S, F>(stream: &mut S, sink: &mut F) -> Result<u64, S::Error>
where
    S: RecordStream,
    F: ChunkFold<S::Item> + Sync,
{
    let mut seen = 0u64;
    let mut done = false;
    while !done {
        let window_target = par::threads().max(1);
        let mut window: Vec<Vec<S::Item>> = Vec::with_capacity(window_target);
        while window.len() < window_target {
            match stream.next_chunk()? {
                None => {
                    done = true;
                    break;
                }
                Some(chunk) => {
                    if chunk.is_empty() {
                        continue;
                    }
                    seen += chunk.len() as u64;
                    window.push(chunk);
                }
            }
        }
        if !window.is_empty() {
            fold_window(sink, &window);
        }
    }
    Ok(seen)
}

/// An [`EventSink`] adapter that buffers simulation events and flushes
/// them into a [`ChunkFold`] sink one batch at a time — the bridge
/// between the engine's push-model event loop and the streaming
/// pipeline.
///
/// Each flush folds the whole batch with a single
/// [`ChunkFold::fold_chunk`] call, preserving the *exact* serial fold
/// sequence: event-level folds are order-sensitive where they
/// accumulate floating-point state (e.g. per-device-day position
/// sums), so regrouping them would perturb low bits. Pinning the
/// serial sequence makes a batched scenario run bit-identical to the
/// plain push-model run; chunk-parallelism enters downstream, at the
/// catalog-row and summary stages, where fold boundaries are pinned by
/// [`par::chunk_size`]. Peak memory is O(`batch` + sink state); the
/// event log itself is never materialized.
#[derive(Debug)]
pub struct EventBatcher<F: ChunkFold<SimEvent>> {
    sink: F,
    buf: Vec<SimEvent>,
    batch: usize,
    seen: u64,
}

impl<F: ChunkFold<SimEvent>> EventBatcher<F> {
    /// Wraps `sink` with the default [`EVENT_BATCH`] buffer.
    pub fn new(sink: F) -> Self {
        EventBatcher::with_batch(sink, EVENT_BATCH)
    }

    /// Wraps `sink`, flushing every `batch` events (clamped to ≥ 1).
    pub fn with_batch(sink: F, batch: usize) -> Self {
        let batch = batch.max(1);
        EventBatcher {
            sink,
            buf: Vec::with_capacity(batch),
            batch,
            seen: 0,
        }
    }

    /// Events accepted so far (flushed or still buffered).
    pub fn events_seen(&self) -> u64 {
        self.seen
    }

    /// Read access to the wrapped sink. Note that up to one batch of
    /// events may still be buffered; call [`EventBatcher::finish`] for
    /// the complete fold.
    pub fn sink(&self) -> &F {
        &self.sink
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        // One serial fold_chunk per batch: see the struct docs — the
        // event fold must reproduce the exact push-model sequence.
        self.sink.fold_chunk(&self.buf);
        self.buf.clear();
    }

    /// Flushes any buffered events and returns the folded sink.
    pub fn finish(mut self) -> F {
        self.flush();
        self.sink
    }
}

impl<F: ChunkFold<SimEvent>> EventSink for EventBatcher<F> {
    fn on_event(&mut self, event: &SimEvent) {
        self.buf.push(event.clone());
        self.seen += 1;
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the global thread override (shared
    /// with `par`'s process-global knob).
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A sink recording (sum, first item, item count) — exercises both
    /// commutative (sum/count) and "first wins" (first item) merges.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Probe {
        sum: u64,
        first: Option<u64>,
        count: u64,
    }

    impl Probe {
        fn new() -> Self {
            Probe {
                sum: 0,
                first: None,
                count: 0,
            }
        }
    }

    impl ChunkFold<u64> for Probe {
        fn zero(&self) -> Self {
            Probe::new()
        }

        fn fold_chunk(&mut self, chunk: &[u64]) {
            for &x in chunk {
                self.sum += x;
                self.first.get_or_insert(x);
                self.count += 1;
            }
        }

        fn absorb(&mut self, later: Self) {
            self.sum += later.sum;
            self.first = self.first.or(later.first);
            self.count += later.count;
        }
    }

    struct StaticStream {
        chunks: Vec<Vec<u64>>,
        next: usize,
    }

    impl RecordStream for StaticStream {
        type Item = u64;
        type Error = std::convert::Infallible;

        fn next_chunk(&mut self) -> Result<Option<Vec<u64>>, Self::Error> {
            let i = self.next;
            self.next += 1;
            Ok(self.chunks.get(i).cloned())
        }
    }

    #[test]
    fn drive_slice_matches_serial_fold_at_any_thread_count() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let items: Vec<u64> = (5..4000).collect();
        let mut serial = Probe::new();
        serial.fold_chunk(&items);
        for t in [1usize, 2, 8] {
            par::set_threads(Some(t));
            let mut sink = Probe::new();
            drive_slice(&mut sink, &items);
            assert_eq!(sink, serial, "drive_slice at {t} threads");
        }
        par::set_threads(None);
    }

    #[test]
    fn drive_iter_never_materializes_and_matches_slice() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let items: Vec<u64> = (0..10_000).collect();
        let mut reference = Probe::new();
        reference.fold_chunk(&items);
        for t in [1usize, 2, 8] {
            par::set_threads(Some(t));
            let mut sink = Probe::new();
            let n = drive_iter(&mut sink, items.iter().copied());
            assert_eq!(n, items.len() as u64);
            assert_eq!(sink, reference, "drive_iter at {t} threads");
        }
        par::set_threads(None);
    }

    #[test]
    fn drive_stream_handles_uneven_and_empty_chunks() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let chunks = vec![
            (0..100).collect::<Vec<u64>>(),
            Vec::new(),
            (100..101).collect(),
            (101..900).collect(),
        ];
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let mut reference = Probe::new();
        reference.fold_chunk(&all);
        for t in [1usize, 2, 8] {
            par::set_threads(Some(t));
            let mut stream = StaticStream {
                chunks: chunks.clone(),
                next: 0,
            };
            let mut sink = Probe::new();
            let n = drive(&mut stream, &mut sink).unwrap();
            assert_eq!(n, all.len() as u64);
            assert_eq!(sink, reference, "drive at {t} threads");
            assert_eq!(sink.first, Some(0), "first-touch survives parallel fold");
        }
        par::set_threads(None);
    }

    #[test]
    fn broadcast_tuple_and_vec_feed_all_sinks() {
        let items: Vec<u64> = (1..=100).collect();
        let mut sink = (Probe::new(), CountFold(0), vec![Probe::new(), Probe::new()]);
        drive_slice(&mut sink, &items);
        assert_eq!(sink.0.sum, 5050);
        assert_eq!(sink.1, CountFold(100));
        assert_eq!(sink.2[0], sink.2[1]);
        assert_eq!(sink.2[0].sum, 5050);
    }

    #[test]
    fn count_fold_counts() {
        let mut c = CountFold::default();
        c.fold_chunk(&[1u8, 2, 3]);
        let mut later = <CountFold as ChunkFold<u8>>::zero(&c);
        later.fold_chunk(&[4u8]);
        <CountFold as ChunkFold<u8>>::absorb(&mut c, later);
        assert_eq!(c.0, 4);
    }
}
