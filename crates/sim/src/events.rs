//! Observable simulation output: signaling, data and voice events.
//!
//! These are the *raw truth* of the simulation — richer than what any probe
//! is allowed to see. The probes crate converts them into the paper's
//! record schemas (anonymized IDs, no ground truth), enforcing the same
//! information boundary the real measurement infrastructure has.

use serde::{Deserialize, Serialize};
use std::fmt;
use wtr_model::apn::Apn;
use wtr_model::ids::{Imei, Imsi, Plmn};
use wtr_model::rat::Rat;
use wtr_model::time::SimTime;
use wtr_radio::sector::SectorId;

/// Control-plane procedure types.
///
/// The M2M dataset's message types are "either authentication, update
/// location or cancel location" (§3.1); the MNO-side SMIP analysis also
/// observes "Attach, Routing Area Update, and Detach" procedures (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProcedureType {
    /// Initial attach to a network.
    Attach,
    /// Subscriber authentication against the HSS/AuC.
    Authentication,
    /// HLR/HSS location update (the roaming workhorse).
    UpdateLocation,
    /// HSS ordering the old network to drop the subscriber.
    CancelLocation,
    /// Periodic / mobility routing-area (or tracking-area) update.
    RoutingAreaUpdate,
    /// Detach from the network.
    Detach,
}

impl ProcedureType {
    /// All procedure types.
    pub const ALL: [ProcedureType; 6] = [
        ProcedureType::Attach,
        ProcedureType::Authentication,
        ProcedureType::UpdateLocation,
        ProcedureType::CancelLocation,
        ProcedureType::RoutingAreaUpdate,
        ProcedureType::Detach,
    ];

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            ProcedureType::Attach => "attach",
            ProcedureType::Authentication => "authentication",
            ProcedureType::UpdateLocation => "update-location",
            ProcedureType::CancelLocation => "cancel-location",
            ProcedureType::RoutingAreaUpdate => "routing-area-update",
            ProcedureType::Detach => "detach",
        }
    }
}

impl fmt::Display for ProcedureType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Procedure outcome — the paper's "message result" field (§3.1/§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProcedureResult {
    /// Success.
    Ok,
    /// The visited network rejects roaming for this subscriber
    /// (no agreement, or roaming barred).
    RoamingNotAllowed,
    /// The HSS does not recognize the subscription.
    UnknownSubscription,
    /// The requested feature (e.g. 4G data for a 2G-only plan) is
    /// unsupported.
    FeatureUnsupported,
    /// Transient network failure (congestion, timeouts).
    NetworkFailure,
}

impl ProcedureResult {
    /// All results.
    pub const ALL: [ProcedureResult; 5] = [
        ProcedureResult::Ok,
        ProcedureResult::RoamingNotAllowed,
        ProcedureResult::UnknownSubscription,
        ProcedureResult::FeatureUnsupported,
        ProcedureResult::NetworkFailure,
    ];

    /// Whether the procedure succeeded.
    pub const fn is_ok(self) -> bool {
        matches!(self, ProcedureResult::Ok)
    }

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            ProcedureResult::Ok => "OK",
            ProcedureResult::RoamingNotAllowed => "RoamingNotAllowed",
            ProcedureResult::UnknownSubscription => "UnknownSubscription",
            ProcedureResult::FeatureUnsupported => "FeatureUnsupported",
            ProcedureResult::NetworkFailure => "NetworkFailure",
        }
    }
}

impl fmt::Display for ProcedureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One control-plane transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalingEvent {
    /// When the procedure ran.
    pub time: SimTime,
    /// Scenario-local device index (raw; probes anonymize it).
    pub device: u64,
    /// The SIM involved.
    pub imsi: Imsi,
    /// The equipment involved.
    pub imei: Imei,
    /// Network the device is attached to / attaching to.
    pub visited: Plmn,
    /// Serving sector (None when the attempt never reached radio
    /// service, e.g. a coverage hole probe).
    pub sector: Option<SectorId>,
    /// RAT the procedure ran on.
    pub rat: Rat,
    /// Procedure type.
    pub procedure: ProcedureType,
    /// Outcome.
    pub result: ProcedureResult,
}

/// Kind of circuit-switched activity.
///
/// "We use voice services in a broad sense, as M2M devices do not make
/// phone calls, but can use communications similar to SMS" (§6.1 fn. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoiceKind {
    /// A real phone call with a duration.
    Call,
    /// An SMS-like short transaction.
    SmsLike,
}

/// One voice-plane record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoiceCall {
    /// Start time.
    pub time: SimTime,
    /// Scenario-local device index.
    pub device: u64,
    /// The SIM involved.
    pub imsi: Imsi,
    /// The equipment involved.
    pub imei: Imei,
    /// Serving network.
    pub visited: Plmn,
    /// Serving sector.
    pub sector: SectorId,
    /// RAT used.
    pub rat: Rat,
    /// Call vs SMS-like.
    pub kind: VoiceKind,
    /// Call duration in seconds (0 for SMS-like).
    pub duration_secs: u32,
}

/// One data-plane session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSession {
    /// Start time.
    pub time: SimTime,
    /// Scenario-local device index.
    pub device: u64,
    /// The SIM involved.
    pub imsi: Imsi,
    /// The equipment involved.
    pub imei: Imei,
    /// Serving network.
    pub visited: Plmn,
    /// Serving sector.
    pub sector: SectorId,
    /// RAT used.
    pub rat: Rat,
    /// APN the session was established on.
    pub apn: Apn,
    /// Session duration in seconds.
    pub duration_secs: u32,
    /// Uplink bytes.
    pub bytes_up: u64,
    /// Downlink bytes.
    pub bytes_down: u64,
}

impl DataSession {
    /// Total bytes both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

/// Any observable simulation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// Control-plane transaction.
    Signaling(SignalingEvent),
    /// Data session.
    Data(DataSession),
    /// Voice/SMS activity.
    Voice(VoiceCall),
}

impl SimEvent {
    /// Event timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            SimEvent::Signaling(e) => e.time,
            SimEvent::Data(e) => e.time,
            SimEvent::Voice(e) => e.time,
        }
    }

    /// Scenario-local device index.
    pub fn device(&self) -> u64 {
        match self {
            SimEvent::Signaling(e) => e.device,
            SimEvent::Data(e) => e.device,
            SimEvent::Voice(e) => e.device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_ok_predicate() {
        assert!(ProcedureResult::Ok.is_ok());
        for r in ProcedureResult::ALL {
            if r != ProcedureResult::Ok {
                assert!(!r.is_ok(), "{r}");
            }
        }
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        // §3.1 names these results verbatim.
        assert_eq!(ProcedureResult::Ok.label(), "OK");
        assert_eq!(
            ProcedureResult::RoamingNotAllowed.label(),
            "RoamingNotAllowed"
        );
        assert_eq!(
            ProcedureResult::UnknownSubscription.label(),
            "UnknownSubscription"
        );
        assert_eq!(ProcedureType::UpdateLocation.label(), "update-location");
    }

    #[test]
    fn data_session_total() {
        let apn: Apn = "internet".parse().unwrap();
        let s = DataSession {
            time: SimTime::ZERO,
            device: 0,
            imsi: Imsi::new(Plmn::of(234, 30), 1).unwrap(),
            imei: Imei::new(wtr_model::ids::Tac::new(35_000_000).unwrap(), 1).unwrap(),
            visited: Plmn::of(234, 30),
            sector: sample_sector(),
            rat: Rat::G4,
            apn,
            duration_secs: 60,
            bytes_up: 100,
            bytes_down: 900,
        };
        assert_eq!(s.bytes_total(), 1_000);
    }

    fn sample_sector() -> SectorId {
        use wtr_model::country::Country;
        use wtr_radio::geo::{CountryGeometry, GeoPoint};
        use wtr_radio::sector::{GridSpacing, SectorGrid};
        let g = SectorGrid::new(
            Plmn::of(234, 30),
            CountryGeometry::of(Country::by_iso("GB").unwrap()),
            GridSpacing::default(),
        );
        g.sector_at(GeoPoint::new(52.0, -1.0), Rat::G4)
    }

    #[test]
    fn sim_event_accessors() {
        let e = SignalingEvent {
            time: SimTime::from_secs(5),
            device: 42,
            imsi: Imsi::new(Plmn::of(214, 7), 9).unwrap(),
            imei: Imei::new(wtr_model::ids::Tac::new(35_000_001).unwrap(), 2).unwrap(),
            visited: Plmn::of(234, 30),
            sector: None,
            rat: Rat::G2,
            procedure: ProcedureType::Attach,
            result: ProcedureResult::RoamingNotAllowed,
        };
        let ev = SimEvent::Signaling(e);
        assert_eq!(ev.time().as_secs(), 5);
        assert_eq!(ev.device(), 42);
    }
}
