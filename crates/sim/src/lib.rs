//! # wtr-sim — deterministic discrete-event cellular simulation
//!
//! The substitution engine for the paper's proprietary datasets: device
//! agents execute real signaling procedures (Attach, Authentication, Update
//! Location, Cancel Location, Detach, Routing-Area Update) against simulated
//! radio networks, move according to mobility models, and generate data and
//! voice sessions according to per-vertical traffic profiles. Probes (in
//! `wtr-probes`) tap the resulting event stream exactly where the paper's
//! monitoring infrastructure taps the real network (Fig. 4).
//!
//! ## Determinism
//!
//! Everything is reproducible from a single master seed. Each device owns
//! its own RNG substream derived via `splitmix64`, so a device's behaviour
//! is identical regardless of how many other devices run alongside it —
//! which is what makes the scale-invariance property tests meaningful.
//!
//! ## Architecture
//!
//! * [`engine`] — a minimal event-queue core: agents schedule wake-ups,
//!   the engine dispatches them in time order (calendar-queue storage by
//!   default, the reference `BinaryHeap` behind `WTR_HEAP_SCHED=1`).
//! * [`behavior`] — declarative device behavior: validated CTMC
//!   transition matrices interpreted by one homogeneous `step` function
//!   (the hand-coded branches stay behind `WTR_LEGACY_BEHAVIOR=1`).
//! * [`events`] — the simulation's observable output: signaling
//!   transactions, data sessions, voice calls.
//! * [`mobility`] — position-over-time models (stationary meter, commuter,
//!   fleet vehicle, international tourist).
//! * [`traffic`] — per-vertical traffic profiles (session rates, volume
//!   distributions, diurnal shape).
//! * [`world`] — the shared environment: radio networks per operator,
//!   roaming access policy, event sink.
//! * [`device`] — the device agent tying it all together.
//! * [`par`] — deterministic order-stable parallel map-reduce.
//! * [`shard`] — sharded simulation: K independent per-shard event
//!   loops over a contiguously partitioned agent population.
//! * [`stream`] — chunked record streams and mergeable chunk-fold
//!   sinks: the bounded-memory single-pass pipeline core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
mod calendar;
pub mod device;
pub mod engine;
pub mod events;
pub mod mobility;
pub mod par;
pub mod rng;
pub mod shard;
pub mod stream;
pub mod traffic;
pub mod world;

pub use behavior::{
    legacy_matrix, profile_matrix, BehaviorError, BehaviorMatrix, BehaviorOptions, BehaviorRow,
    EmissionSpec, StateId,
};
pub use device::{DeviceAgent, DeviceSpec, PresenceModel, SpecError};
pub use engine::{Agent, AgentId, Engine, EngineStats, Scheduler, SchedulerKind, WakeTag};
pub use events::{
    DataSession, ProcedureResult, ProcedureType, SignalingEvent, SimEvent, VoiceCall,
};
pub use mobility::MobilityModel;
pub use par::{par_map, par_map_reduce};
pub use rng::SubstreamRng;
pub use stream::{ChunkFold, EventBatcher, RecordStream};
pub use traffic::TrafficProfile;
pub use world::{AccessDecision, AccessPolicy, AllowAllPolicy, NetworkDirectory, RoamingWorld};
