//! Ground-truth device verticals.
//!
//! The scenario generator assigns every simulated device a *vertical* — what
//! the device actually is. This is the hidden label the paper's authors did
//! **not** have: their classifier output could only be validated manually.
//! Our classifier (in `wtr-core`) never sees this value; it is used solely
//! by the validation module to compute precision/recall, and by behaviour
//! models to drive realistic traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a device actually is (generator ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vertical {
    /// Personal smartphone (major OS, consumer APN, diurnal human traffic).
    Smartphone,
    /// Personal feature phone (voice/SMS-centric, mostly 2G).
    FeaturePhone,
    /// Smart energy meter (stationary, periodic tiny reports; §7).
    SmartMeter,
    /// Connected car (high mobility, frequent signaling, real data; §7.2).
    ConnectedCar,
    /// Logistics asset tracker (mobile, bursty location reports).
    AssetTracker,
    /// SIM-enabled wearable (low traffic, person-adjacent mobility).
    Wearable,
    /// Payment terminal (stationary, reliability-driven, multi-network).
    PaymentTerminal,
    /// Security/alarm endpoint (voice-like signalling, near-zero data —
    /// the paper conjectures these explain non-null M2M voice calls, §6.2).
    SecurityAlarm,
    /// Generic industrial telemetry module.
    IndustrialSensor,
}

impl Vertical {
    /// All verticals.
    pub const ALL: [Vertical; 9] = [
        Vertical::Smartphone,
        Vertical::FeaturePhone,
        Vertical::SmartMeter,
        Vertical::ConnectedCar,
        Vertical::AssetTracker,
        Vertical::Wearable,
        Vertical::PaymentTerminal,
        Vertical::SecurityAlarm,
        Vertical::IndustrialSensor,
    ];

    /// Whether this vertical is an IoT/M2M application (vs. a person's
    /// phone). This is the ground-truth notion of "m2m" the classifier's
    /// `m2m` output class is validated against.
    pub const fn is_m2m(self) -> bool {
        !matches!(self, Vertical::Smartphone | Vertical::FeaturePhone)
    }

    /// Short label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            Vertical::Smartphone => "smartphone",
            Vertical::FeaturePhone => "feature-phone",
            Vertical::SmartMeter => "smart-meter",
            Vertical::ConnectedCar => "connected-car",
            Vertical::AssetTracker => "asset-tracker",
            Vertical::Wearable => "wearable",
            Vertical::PaymentTerminal => "payment-terminal",
            Vertical::SecurityAlarm => "security-alarm",
            Vertical::IndustrialSensor => "industrial-sensor",
        }
    }
}

impl fmt::Display for Vertical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2m_partition() {
        let m2m: Vec<_> = Vertical::ALL.iter().filter(|v| v.is_m2m()).collect();
        assert_eq!(m2m.len(), 7);
        assert!(!Vertical::Smartphone.is_m2m());
        assert!(!Vertical::FeaturePhone.is_m2m());
        assert!(Vertical::SmartMeter.is_m2m());
        assert!(Vertical::ConnectedCar.is_m2m());
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for v in Vertical::ALL {
            assert!(seen.insert(v.label()));
        }
    }
}
