//! Simulation time: a virtual clock measured in whole seconds.
//!
//! The paper's datasets are bounded observation windows (11 days for the M2M
//! platform dataset, 22 days for the MNO dataset) and every analysis
//! aggregates per *day*. We therefore model time as seconds since the start
//! of the observation window ([`SimTime`]), with [`Day`] as the daily
//! aggregation key used by the devices-catalog.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of seconds in a simulated day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A point in simulated time: seconds since the start of the observation
/// window.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the observation window.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw seconds since window start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time at the start of day `day` plus `secs_into_day`.
    pub const fn from_day_and_secs(day: u32, secs_into_day: u64) -> Self {
        SimTime(day as u64 * SECS_PER_DAY + secs_into_day)
    }

    /// Seconds since window start.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The day index this instant falls in (day 0 starts at second 0).
    pub const fn day(self) -> Day {
        Day((self.0 / SECS_PER_DAY) as u32)
    }

    /// Seconds elapsed since the start of the current day (`0..86_400`).
    pub const fn secs_into_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// Hour of day in `0..24`, used by diurnal traffic models.
    pub const fn hour_of_day(self) -> u32 {
        (self.secs_into_day() / 3_600) as u32
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / SECS_PER_DAY;
        let s = self.0 % SECS_PER_DAY;
        let (h, m, sec) = (s / 3600, (s % 3600) / 60, s % 60);
        write!(f, "d{d}+{h:02}:{m:02}:{sec:02}")
    }
}

/// A span of simulated time in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * SECS_PER_DAY)
    }

    /// Duration length in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration expressed in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest second.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// A day index within the observation window (day 0 is the first day).
///
/// This is the aggregation key for the daily devices-catalog (§4.1): every
/// record a device produces during `[day * 86_400, (day + 1) * 86_400)` is
/// folded into that day's catalog entry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Day(pub u32);

impl Day {
    /// Instant at the start of this day.
    pub const fn start(self) -> SimTime {
        SimTime(self.0 as u64 * SECS_PER_DAY)
    }

    /// Instant at the end of this day (start of the next).
    pub const fn end(self) -> SimTime {
        SimTime((self.0 as u64 + 1) * SECS_PER_DAY)
    }

    /// Iterator over all days in `0..count`.
    pub fn window(count: u32) -> impl Iterator<Item = Day> {
        (0..count).map(Day)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_boundaries() {
        assert_eq!(SimTime::from_secs(0).day(), Day(0));
        assert_eq!(SimTime::from_secs(SECS_PER_DAY - 1).day(), Day(0));
        assert_eq!(SimTime::from_secs(SECS_PER_DAY).day(), Day(1));
        assert_eq!(Day(3).start().as_secs(), 3 * SECS_PER_DAY);
        assert_eq!(Day(3).end(), Day(4).start());
    }

    #[test]
    fn hour_of_day() {
        assert_eq!(
            SimTime::from_day_and_secs(2, 3_600 * 13 + 59).hour_of_day(),
            13
        );
        assert_eq!(SimTime::from_day_and_secs(0, 0).hour_of_day(), 0);
        assert_eq!(
            SimTime::from_day_and_secs(0, SECS_PER_DAY - 1).hour_of_day(),
            23
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100) + SimDuration::from_mins(2);
        assert_eq!(t.as_secs(), 220);
        assert_eq!((t - SimTime::from_secs(20)).as_secs(), 200);
        assert_eq!(SimDuration::from_days(2).as_days_f64(), 2.0);
        assert_eq!(SimDuration::from_hours(1).mul_f64(0.5).as_secs(), 1_800);
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_secs(), 40);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_day_and_secs(5, 3_661);
        assert_eq!(t.to_string(), "d5+01:01:01");
        assert_eq!(Day(7).to_string(), "day7");
    }

    #[test]
    fn window_iterates_every_day() {
        let days: Vec<Day> = Day::window(4).collect();
        assert_eq!(days, vec![Day(0), Day(1), Day(2), Day(3)]);
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let t = SimTime::from_secs(12345);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "12345");
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
