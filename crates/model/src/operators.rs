//! Operator registry: PLMN allocations for MNOs and MVNOs.
//!
//! The registry plays the role the GSMA IR.21 documents play for a real
//! operator: given a PLMN observed on a SIM or a radio attach, resolve which
//! operator it is, in which country, and whether it is a full MNO or an
//! MVNO riding on a host network. All operator names are synthetic — the
//! paper anonymizes its operators, and so do we.

use crate::country::Country;
use crate::error::ParseError;
use crate::hash::mix64;
use crate::ids::{Mcc, Mnc, Plmn};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of an operator inside an [`OperatorRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OperatorId(pub u32);

/// Whether an operator owns radio infrastructure or rides on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Full Mobile Network Operator with its own radio network.
    Mno,
    /// Mobile Virtual Network Operator hosted on another MNO's radio
    /// network. SIMs of an MVNO attached to the host network get the
    /// paper's `V:H` roaming label rather than `N:H`.
    Mvno {
        /// PLMN of the hosting MNO.
        host: Plmn,
    },
}

/// One operator entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operator {
    /// The operator's PLMN.
    pub plmn: Plmn,
    /// Synthetic display name.
    pub name: String,
    /// ISO code of the home country.
    pub country_iso: String,
    /// MNO or MVNO.
    pub kind: OperatorKind,
}

impl Operator {
    /// Country of the operator.
    pub fn country(&self) -> &'static Country {
        Country::by_iso(&self.country_iso).expect("registry countries exist")
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.plmn)
    }
}

/// Registry of all operators known to a scenario.
///
/// Built once at scenario setup; lookups by PLMN are `O(1)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OperatorRegistry {
    operators: Vec<Operator>,
    #[serde(skip)]
    by_plmn: HashMap<u32, OperatorId>,
}

impl OperatorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the standard registry used by the paper scenarios: every
    /// country in the country registry gets `mnos_per_country` MNOs with
    /// deterministic MNC allocations, and the paper's named networks get
    /// fixed, curated PLMNs (see [`well_known`]).
    pub fn standard(mnos_per_country: u8) -> Self {
        let mut reg = OperatorRegistry::new();
        // Curated PLMNs first so their MNCs are reserved.
        for (plmn, name, iso) in well_known::CURATED {
            reg.insert(Operator {
                plmn: *plmn,
                name: (*name).to_owned(),
                country_iso: (*iso).to_owned(),
                kind: OperatorKind::Mno,
            })
            .expect("curated PLMNs are unique");
        }
        // The studied MNO's MVNOs (paper §4.2: `V` SIM origin).
        for (plmn, name) in well_known::UK_MVNOS {
            reg.insert(Operator {
                plmn: *plmn,
                name: (*name).to_owned(),
                country_iso: "GB".to_owned(),
                kind: OperatorKind::Mvno {
                    host: well_known::UK_STUDIED_MNO,
                },
            })
            .expect("curated MVNO PLMNs are unique");
        }
        // Fill every country with synthetic MNOs.
        for country in Country::all() {
            let mcc = country.primary_mcc();
            let mut allocated = 0u8;
            let mut candidate = 1u16;
            while allocated < mnos_per_country && candidate <= 99 {
                let plmn = Plmn::new(mcc, Mnc::new2(candidate).unwrap());
                if reg.get(plmn).is_none() {
                    // Deterministic but varied naming.
                    let flavor = NAME_FLAVORS[(mix64(mcc.value() as u64 * 100 + candidate as u64)
                        % NAME_FLAVORS.len() as u64)
                        as usize];
                    reg.insert(Operator {
                        plmn,
                        name: format!("{} {}", country.iso, flavor),
                        country_iso: country.iso.to_owned(),
                        kind: OperatorKind::Mno,
                    })
                    .expect("candidate PLMN checked free");
                    allocated += 1;
                }
                candidate += 1;
            }
        }
        reg
    }

    /// Inserts an operator, failing if its PLMN is already allocated.
    pub fn insert(&mut self, op: Operator) -> Result<OperatorId, ParseError> {
        let key = op.plmn.packed();
        if self.by_plmn.contains_key(&key) {
            return Err(ParseError::UnknownPlmn {
                mcc: op.plmn.mcc.value(),
                mnc: op.plmn.mnc.value(),
            });
        }
        let id = OperatorId(self.operators.len() as u32);
        self.by_plmn.insert(key, id);
        self.operators.push(op);
        Ok(id)
    }

    /// Looks up an operator by PLMN.
    pub fn get(&self, plmn: Plmn) -> Option<&Operator> {
        self.by_plmn
            .get(&plmn.packed())
            .map(|id| &self.operators[id.0 as usize])
    }

    /// Looks up an operator id by PLMN.
    pub fn id_of(&self, plmn: Plmn) -> Option<OperatorId> {
        self.by_plmn.get(&plmn.packed()).copied()
    }

    /// Operator by id.
    pub fn by_id(&self, id: OperatorId) -> &Operator {
        &self.operators[id.0 as usize]
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// All operators.
    pub fn iter(&self) -> impl Iterator<Item = &Operator> {
        self.operators.iter()
    }

    /// All MNOs (not MVNOs) in a given country.
    pub fn mnos_in(&self, iso: &str) -> impl Iterator<Item = &Operator> + '_ {
        let iso = iso.to_owned();
        self.operators
            .iter()
            .filter(move |o| o.country_iso == iso && matches!(o.kind, OperatorKind::Mno))
    }

    /// Rebuilds the PLMN index after deserialization.
    pub fn reindex(&mut self) {
        self.by_plmn = self
            .operators
            .iter()
            .enumerate()
            .map(|(i, o)| (o.plmn.packed(), OperatorId(i as u32)))
            .collect();
    }
}

const NAME_FLAVORS: &[&str] = &[
    "Mobile", "Telecom", "Cell", "Net", "Wireless", "Connect", "Com", "Link",
];

/// Fixed PLMNs for the networks the paper names (anonymized as in the
/// paper: operators are referred to by role and country).
pub mod well_known {
    use crate::ids::Plmn;

    /// The large European (UK) MNO whose population §4–§7 studies.
    pub const UK_STUDIED_MNO: Plmn = Plmn::of(234, 30);
    /// Other UK national MNOs (for `N:H` national inbound roamers).
    pub const UK_OTHER_MNOS: &[Plmn] = &[Plmn::of(234, 10), Plmn::of(234, 15), Plmn::of(234, 20)];
    /// The Spanish HMNO behind 52.3% of the M2M platform's IoT SIMs (§3.2).
    pub const ES_HMNO: Plmn = Plmn::of(214, 7);
    /// The German HMNO (≈1k devices, 18 VMNOs — connected-car profile).
    pub const DE_HMNO: Plmn = Plmn::of(262, 2);
    /// The Mexican HMNO (42.2% of devices, 90% at home).
    pub const MX_HMNO: Plmn = Plmn::of(334, 20);
    /// The Argentinian HMNO (4.7% of devices, almost all at home).
    pub const AR_HMNO: Plmn = Plmn::of(722, 10);
    /// The Dutch operator provisioning every SMIP-roaming smart-meter SIM
    /// the paper identifies (§4.4: "all the SIMs ... are provisioned by the
    /// same cellular operator in the Netherlands", cf. `mnc004.mcc204`).
    pub const NL_SMART_METER_HMNO: Plmn = Plmn::of(204, 4);
    /// The Swedish HMNO prominent among inbound-roaming M2M SIMs (Fig. 5).
    pub const SE_HMNO: Plmn = Plmn::of(240, 1);

    /// Curated (PLMN, name, country-ISO) triples inserted before synthesis.
    pub(super) const CURATED: &[(Plmn, &str, &str)] = &[
        (UK_STUDIED_MNO, "Albion Mobile", "GB"),
        (UK_OTHER_MNOS[0], "Thames Telecom", "GB"),
        (UK_OTHER_MNOS[1], "Mercia Cell", "GB"),
        (UK_OTHER_MNOS[2], "Caledonia Net", "GB"),
        (ES_HMNO, "Iberia Movil", "ES"),
        (DE_HMNO, "Rhein Mobilfunk", "DE"),
        (MX_HMNO, "Azteca Cel", "MX"),
        (AR_HMNO, "Pampa Movil", "AR"),
        (NL_SMART_METER_HMNO, "Tulip Connect", "NL"),
        (SE_HMNO, "Norr Mobil", "SE"),
    ];

    /// MVNOs hosted on the studied UK MNO.
    pub(super) const UK_MVNOS: &[(Plmn, &str)] = &[
        (Plmn::of(234, 31), "Albion Virtual One"),
        (Plmn::of(234, 32), "Albion Virtual Two"),
    ];
}

/// Convenience: the studied MNO's country MCC (used by roaming labeling).
pub fn uk_mcc() -> Mcc {
    well_known::UK_STUDIED_MNO.mcc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_every_country() {
        let reg = OperatorRegistry::standard(3);
        for c in Country::all() {
            assert!(
                reg.mnos_in(c.iso).count() >= 3,
                "{} has too few MNOs",
                c.iso
            );
        }
    }

    #[test]
    fn curated_plmns_resolve() {
        let reg = OperatorRegistry::standard(2);
        let es = reg.get(well_known::ES_HMNO).unwrap();
        assert_eq!(es.country_iso, "ES");
        assert_eq!(es.name, "Iberia Movil");
        let nl = reg.get(well_known::NL_SMART_METER_HMNO).unwrap();
        assert_eq!(nl.plmn.to_string(), "204-04");
    }

    #[test]
    fn mvnos_point_at_host() {
        let reg = OperatorRegistry::standard(2);
        let mvno = reg.get(Plmn::of(234, 31)).unwrap();
        match mvno.kind {
            OperatorKind::Mvno { host } => assert_eq!(host, well_known::UK_STUDIED_MNO),
            OperatorKind::Mno => panic!("expected MVNO"),
        }
        // MVNOs are excluded from mnos_in.
        assert!(reg
            .mnos_in("GB")
            .all(|o| matches!(o.kind, OperatorKind::Mno)));
    }

    #[test]
    fn duplicate_plmn_rejected() {
        let mut reg = OperatorRegistry::new();
        let op = Operator {
            plmn: Plmn::of(214, 7),
            name: "A".into(),
            country_iso: "ES".to_owned(),
            kind: OperatorKind::Mno,
        };
        reg.insert(op.clone()).unwrap();
        assert!(reg.insert(op).is_err());
    }

    #[test]
    fn id_lookup_roundtrip() {
        let reg = OperatorRegistry::standard(2);
        let id = reg.id_of(well_known::ES_HMNO).unwrap();
        assert_eq!(reg.by_id(id).plmn, well_known::ES_HMNO);
    }

    #[test]
    fn registry_is_deterministic() {
        let a = OperatorRegistry::standard(3);
        let b = OperatorRegistry::standard(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn reindex_restores_lookups() {
        let reg = OperatorRegistry::standard(2);
        let json = serde_json::to_string(&reg).unwrap();
        let mut back: OperatorRegistry = serde_json::from_str(&json).unwrap();
        assert!(
            back.get(well_known::ES_HMNO).is_none(),
            "index not serialized"
        );
        back.reindex();
        assert!(back.get(well_known::ES_HMNO).is_some());
        assert_eq!(back.len(), reg.len());
    }

    #[test]
    fn synthetic_names_are_stable_and_country_tagged() {
        let reg = OperatorRegistry::standard(2);
        for op in reg.iter() {
            assert!(!op.name.is_empty());
            assert!(op.plmn.mcc.value() > 0);
            // Every operator's PLMN MCC belongs to its declared country.
            assert!(op.country().mccs.contains(&op.plmn.mcc.value()));
        }
    }
}
