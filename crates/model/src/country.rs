//! Country registry: MCC ↔ country mapping, regions, and EU
//! roam-like-at-home regulation flags.
//!
//! The M2M platform in the paper supports IoT verticals in "over 70
//! countries" and the Spanish HMNO's devices were "active in 77 different
//! countries" (§3.2). The built-in registry therefore spans 85 countries
//! across all regions, enough to reproduce the platform's geographic
//! footprint at full breadth. MCC allocations follow ITU E.212.

use crate::error::ParseError;
use crate::ids::Mcc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Macro-region a country belongs to, used when reporting the platform's
/// geographic footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Europe (EU and non-EU).
    Europe,
    /// United States and Canada.
    NorthAmerica,
    /// Mexico, Central and South America, Caribbean.
    LatinAmerica,
    /// East, South and South-East Asia plus Oceania.
    AsiaPacific,
    /// Middle East.
    MiddleEast,
    /// Africa.
    Africa,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Europe => "Europe",
            Region::NorthAmerica => "North America",
            Region::LatinAmerica => "Latin America",
            Region::AsiaPacific => "Asia-Pacific",
            Region::MiddleEast => "Middle East",
            Region::Africa => "Africa",
        };
        f.write_str(s)
    }
}

/// A country in the registry.
///
/// Countries are `'static` registry entries; code passes around `&'static
/// Country` or the ISO code.
#[derive(Debug, PartialEq, Eq)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub iso: &'static str,
    /// English short name.
    pub name: &'static str,
    /// E.212 MCCs allocated to the country (first entry is primary).
    pub mccs: &'static [u16],
    /// Macro-region.
    pub region: Region,
    /// Whether the EU *roam-like-at-home* regulation applies (EU/EEA).
    /// The paper notes the Spanish HMNO "is active in a region where free
    /// roaming has been promoted intensively through regulation" (§3.2).
    pub eu_rlah: bool,
}

impl Country {
    /// Primary MCC of the country.
    pub fn primary_mcc(&self) -> Mcc {
        Mcc::new(self.mccs[0]).expect("registry MCCs are valid")
    }

    /// All countries in the registry.
    pub fn all() -> &'static [Country] {
        REGISTRY
    }

    /// Looks a country up by any of its MCCs.
    pub fn by_mcc(mcc: Mcc) -> Option<&'static Country> {
        REGISTRY.iter().find(|c| c.mccs.contains(&mcc.value()))
    }

    /// Looks a country up by any of its MCCs, erroring on unknown codes.
    pub fn try_by_mcc(mcc: Mcc) -> Result<&'static Country, ParseError> {
        Country::by_mcc(mcc).ok_or(ParseError::UnknownMcc(mcc.value()))
    }

    /// Looks a country up by ISO alpha-2 code (case-sensitive, upper).
    pub fn by_iso(iso: &str) -> Option<&'static Country> {
        REGISTRY.iter().find(|c| c.iso == iso)
    }

    /// Countries within a region.
    pub fn in_region(region: Region) -> impl Iterator<Item = &'static Country> {
        REGISTRY.iter().filter(move |c| c.region == region)
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.iso)
    }
}

macro_rules! country {
    ($iso:literal, $name:literal, [$($mcc:literal),+], $region:ident, eu) => {
        Country { iso: $iso, name: $name, mccs: &[$($mcc),+], region: Region::$region, eu_rlah: true }
    };
    ($iso:literal, $name:literal, [$($mcc:literal),+], $region:ident) => {
        Country { iso: $iso, name: $name, mccs: &[$($mcc),+], region: Region::$region, eu_rlah: false }
    };
}

/// The built-in registry: 85 countries covering the paper's footprint.
static REGISTRY: &[Country] = &[
    // --- Europe, EU/EEA (roam-like-at-home) ---
    country!("ES", "Spain", [214], Europe, eu),
    country!("DE", "Germany", [262], Europe, eu),
    country!("NL", "Netherlands", [204], Europe, eu),
    country!("SE", "Sweden", [240], Europe, eu),
    country!("FR", "France", [208], Europe, eu),
    country!("IT", "Italy", [222], Europe, eu),
    country!("PT", "Portugal", [268], Europe, eu),
    country!("IE", "Ireland", [272], Europe, eu),
    country!("BE", "Belgium", [206], Europe, eu),
    country!("AT", "Austria", [232], Europe, eu),
    country!("PL", "Poland", [260], Europe, eu),
    country!("RO", "Romania", [226], Europe, eu),
    country!("GR", "Greece", [202], Europe, eu),
    country!("CZ", "Czechia", [230], Europe, eu),
    country!("HU", "Hungary", [216], Europe, eu),
    country!("SK", "Slovakia", [231], Europe, eu),
    country!("BG", "Bulgaria", [284], Europe, eu),
    country!("HR", "Croatia", [219], Europe, eu),
    country!("SI", "Slovenia", [293], Europe, eu),
    country!("LT", "Lithuania", [246], Europe, eu),
    country!("LV", "Latvia", [247], Europe, eu),
    country!("EE", "Estonia", [248], Europe, eu),
    country!("LU", "Luxembourg", [270], Europe, eu),
    country!("CY", "Cyprus", [280], Europe, eu),
    country!("MT", "Malta", [278], Europe, eu),
    country!("FI", "Finland", [244], Europe, eu),
    country!("DK", "Denmark", [238], Europe, eu),
    country!("NO", "Norway", [242], Europe, eu),
    country!("IS", "Iceland", [274], Europe, eu),
    // --- Europe, non-EU ---
    country!("GB", "United Kingdom", [234, 235], Europe),
    country!("CH", "Switzerland", [228], Europe),
    country!("RS", "Serbia", [220], Europe),
    country!("UA", "Ukraine", [255], Europe),
    country!("TR", "Turkey", [286], Europe),
    country!("RU", "Russia", [250], Europe),
    country!("AL", "Albania", [276], Europe),
    country!("BA", "Bosnia and Herzegovina", [218], Europe),
    country!("MK", "North Macedonia", [294], Europe),
    country!("ME", "Montenegro", [297], Europe),
    // --- North America ---
    country!(
        "US",
        "United States",
        [310, 311, 312, 313, 316],
        NorthAmerica
    ),
    country!("CA", "Canada", [302], NorthAmerica),
    // --- Latin America ---
    country!("MX", "Mexico", [334], LatinAmerica),
    country!("AR", "Argentina", [722], LatinAmerica),
    country!("BR", "Brazil", [724], LatinAmerica),
    country!("CL", "Chile", [730], LatinAmerica),
    country!("CO", "Colombia", [732], LatinAmerica),
    country!("PE", "Peru", [716], LatinAmerica),
    country!("EC", "Ecuador", [740], LatinAmerica),
    country!("UY", "Uruguay", [748], LatinAmerica),
    country!("PY", "Paraguay", [744], LatinAmerica),
    country!("BO", "Bolivia", [736], LatinAmerica),
    country!("VE", "Venezuela", [734], LatinAmerica),
    country!("CR", "Costa Rica", [712], LatinAmerica),
    country!("PA", "Panama", [714], LatinAmerica),
    country!("GT", "Guatemala", [704], LatinAmerica),
    country!("DO", "Dominican Republic", [370], LatinAmerica),
    country!("SV", "El Salvador", [706], LatinAmerica),
    country!("HN", "Honduras", [708], LatinAmerica),
    country!("NI", "Nicaragua", [710], LatinAmerica),
    // --- Asia-Pacific ---
    country!("AU", "Australia", [505], AsiaPacific),
    country!("NZ", "New Zealand", [530], AsiaPacific),
    country!("JP", "Japan", [440, 441], AsiaPacific),
    country!("KR", "South Korea", [450], AsiaPacific),
    country!("CN", "China", [460], AsiaPacific),
    country!("IN", "India", [404, 405], AsiaPacific),
    country!("SG", "Singapore", [525], AsiaPacific),
    country!("MY", "Malaysia", [502], AsiaPacific),
    country!("TH", "Thailand", [520], AsiaPacific),
    country!("ID", "Indonesia", [510], AsiaPacific),
    country!("PH", "Philippines", [515], AsiaPacific),
    country!("VN", "Vietnam", [452], AsiaPacific),
    country!("HK", "Hong Kong", [454], AsiaPacific),
    country!("TW", "Taiwan", [466], AsiaPacific),
    country!("PK", "Pakistan", [410], AsiaPacific),
    country!("BD", "Bangladesh", [470], AsiaPacific),
    country!("LK", "Sri Lanka", [413], AsiaPacific),
    country!("KZ", "Kazakhstan", [401], AsiaPacific),
    // --- Middle East ---
    country!("AE", "United Arab Emirates", [424], MiddleEast),
    country!("SA", "Saudi Arabia", [420], MiddleEast),
    country!("IL", "Israel", [425], MiddleEast),
    country!("QA", "Qatar", [427], MiddleEast),
    country!("KW", "Kuwait", [419], MiddleEast),
    country!("JO", "Jordan", [416], MiddleEast),
    country!("OM", "Oman", [422], MiddleEast),
    // --- Africa ---
    country!("ZA", "South Africa", [655], Africa),
    country!("MA", "Morocco", [604], Africa),
    country!("EG", "Egypt", [602], Africa),
    country!("NG", "Nigeria", [621], Africa),
    country!("KE", "Kenya", [639], Africa),
    country!("GH", "Ghana", [620], Africa),
    country!("TN", "Tunisia", [605], Africa),
    country!("DZ", "Algeria", [603], Africa),
    country!("SN", "Senegal", [608], Africa),
    country!("CI", "Ivory Coast", [612], Africa),
    country!("TZ", "Tanzania", [640], Africa),
    country!("UG", "Uganda", [641], Africa),
    country!("ET", "Ethiopia", [636], Africa),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_large_enough_for_platform_footprint() {
        // §3.2: ES devices active in 77 countries — the registry must allow
        // at least that many distinct visited countries.
        assert!(
            Country::all().len() >= 77,
            "registry has {} countries",
            Country::all().len()
        );
    }

    #[test]
    fn mccs_unique_across_countries() {
        let mut seen = HashSet::new();
        for c in Country::all() {
            for &mcc in c.mccs {
                assert!(seen.insert(mcc), "MCC {mcc} allocated twice");
            }
        }
    }

    #[test]
    fn iso_codes_unique_and_two_chars() {
        let mut seen = HashSet::new();
        for c in Country::all() {
            assert_eq!(c.iso.len(), 2);
            assert!(c.iso.bytes().all(|b| b.is_ascii_uppercase()));
            assert!(seen.insert(c.iso), "ISO {} duplicated", c.iso);
        }
    }

    #[test]
    fn all_mccs_in_geographic_range() {
        for c in Country::all() {
            for &mcc in c.mccs {
                assert!(Mcc::new(mcc).is_ok(), "{} MCC {mcc} invalid", c.iso);
            }
        }
    }

    #[test]
    fn lookup_by_mcc_covers_secondary_allocations() {
        let gb = Country::by_mcc(Mcc::new(235).unwrap()).unwrap();
        assert_eq!(gb.iso, "GB");
        let us = Country::by_mcc(Mcc::new(313).unwrap()).unwrap();
        assert_eq!(us.iso, "US");
        assert!(Country::by_mcc(Mcc::new(299).unwrap()).is_none());
    }

    #[test]
    fn paper_key_countries_present() {
        // The paper's HMNOs (ES, DE, MX, AR), the studied VMNO (GB), and the
        // top inbound-roamer home countries (NL, SE, ES).
        for iso in ["ES", "DE", "MX", "AR", "GB", "NL", "SE"] {
            assert!(Country::by_iso(iso).is_some(), "{iso} missing");
        }
    }

    #[test]
    fn eu_rlah_flags() {
        assert!(Country::by_iso("ES").unwrap().eu_rlah);
        assert!(Country::by_iso("NL").unwrap().eu_rlah);
        // Post-Brexit observation window (April 2019 data predates it, but
        // the registry models the UK as non-RLAH to exercise both branches).
        assert!(!Country::by_iso("MX").unwrap().eu_rlah);
        assert!(!Country::by_iso("AU").unwrap().eu_rlah);
    }

    #[test]
    fn regions_partition_registry() {
        let total: usize = [
            Region::Europe,
            Region::NorthAmerica,
            Region::LatinAmerica,
            Region::AsiaPacific,
            Region::MiddleEast,
            Region::Africa,
        ]
        .into_iter()
        .map(|r| Country::in_region(r).count())
        .sum();
        assert_eq!(total, Country::all().len());
    }

    #[test]
    fn try_by_mcc_reports_unknown() {
        let err = Country::try_by_mcc(Mcc::new(299).unwrap()).unwrap_err();
        assert_eq!(err, ParseError::UnknownMcc(299));
    }
}
