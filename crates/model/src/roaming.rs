//! The paper's `<X:Y>` roaming-label taxonomy (§4.2).
//!
//! Every devices-catalog record is tagged with a roaming label where **X**
//! describes the SIM's origin relative to the studied MNO and **Y** where
//! the device is attached:
//!
//! | X | meaning |
//! |---|---------|
//! | `H` | the SIM belongs to the studied MNO |
//! | `V` | the SIM belongs to an MVNO hosted by the studied MNO |
//! | `N` | the SIM belongs to another MNO of the same country |
//! | `I` | the SIM belongs to an MNO of a different country |
//!
//! | Y | meaning |
//! |---|---------|
//! | `H` | attached to the studied MNO's radio network |
//! | `A` | attached to a foreign network abroad |
//!
//! Only **six** of the eight combinations are observable: an `N` or `I` SIM
//! that is abroad never touches the studied MNO's infrastructure (neither
//! its radio network nor its CDR/xDR clearing), so `N:A` and `I:A` cannot
//! appear in the dataset. The type system enforces this: [`RoamingLabel`]
//! can only be constructed through [`RoamingLabel::derive`] or the six
//! named constants.

use crate::country::Country;
use crate::ids::Plmn;
use crate::operators::{OperatorKind, OperatorRegistry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `X` part: the SIM's origin relative to the studied MNO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SimOrigin {
    /// SIM provisioned by the studied MNO itself.
    Home,
    /// SIM provisioned by an MVNO riding on the studied MNO.
    Virtual,
    /// SIM of another MNO in the studied MNO's country.
    National,
    /// SIM of an MNO in a different country.
    International,
}

impl SimOrigin {
    /// One-letter code used in the paper's figures.
    pub const fn code(self) -> char {
        match self {
            SimOrigin::Home => 'H',
            SimOrigin::Virtual => 'V',
            SimOrigin::National => 'N',
            SimOrigin::International => 'I',
        }
    }
}

/// The `Y` part: where the device is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Presence {
    /// Attached to the studied MNO's radio network.
    Home,
    /// Attached to a network abroad (observed only via roaming records).
    Abroad,
}

impl Presence {
    /// One-letter code used in the paper's figures.
    pub const fn code(self) -> char {
        match self {
            Presence::Home => 'H',
            Presence::Abroad => 'A',
        }
    }
}

/// One of the six observable roaming labels.
///
/// ```
/// use wtr_model::operators::{well_known, OperatorRegistry};
/// use wtr_model::roaming::RoamingLabel;
///
/// let registry = OperatorRegistry::standard(3);
/// // A Dutch smart-meter SIM attached to the studied UK MNO is an
/// // international inbound roamer.
/// let label = RoamingLabel::derive(
///     well_known::UK_STUDIED_MNO,
///     &registry,
///     well_known::NL_SMART_METER_HMNO,
///     well_known::UK_STUDIED_MNO,
/// )
/// .unwrap();
/// assert_eq!(label, RoamingLabel::IH);
/// assert!(label.is_international_inbound());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoamingLabel {
    /// SIM origin (`X`).
    pub sim: SimOrigin,
    /// Attachment location (`Y`).
    pub presence: Presence,
}

impl RoamingLabel {
    /// `H:H` — native device attached to the studied MNO.
    pub const HH: RoamingLabel = RoamingLabel {
        sim: SimOrigin::Home,
        presence: Presence::Home,
    };
    /// `H:A` — the studied MNO's SIM roaming abroad (outbound roamer).
    pub const HA: RoamingLabel = RoamingLabel {
        sim: SimOrigin::Home,
        presence: Presence::Abroad,
    };
    /// `V:H` — hosted-MVNO SIM attached to the studied MNO.
    pub const VH: RoamingLabel = RoamingLabel {
        sim: SimOrigin::Virtual,
        presence: Presence::Home,
    };
    /// `V:A` — hosted-MVNO SIM roaming abroad.
    pub const VA: RoamingLabel = RoamingLabel {
        sim: SimOrigin::Virtual,
        presence: Presence::Abroad,
    };
    /// `N:H` — national inbound roamer.
    pub const NH: RoamingLabel = RoamingLabel {
        sim: SimOrigin::National,
        presence: Presence::Home,
    };
    /// `I:H` — international inbound roamer (where 71.1% are M2M, Fig. 6).
    pub const IH: RoamingLabel = RoamingLabel {
        sim: SimOrigin::International,
        presence: Presence::Home,
    };

    /// All six observable labels, in the paper's presentation order.
    pub const ALL: [RoamingLabel; 6] = [
        RoamingLabel::HH,
        RoamingLabel::HA,
        RoamingLabel::VH,
        RoamingLabel::VA,
        RoamingLabel::NH,
        RoamingLabel::IH,
    ];

    /// Derives the label for a device from the perspective of
    /// `studied_mno`, given the SIM's PLMN and the network the device was
    /// attached to.
    ///
    /// Returns `None` for the unobservable combinations (`N:A` / `I:A`):
    /// the studied MNO simply has no record of such a device, which is how
    /// the dataset builder treats them (it drops the record, as reality
    /// would).
    pub fn derive(
        studied_mno: Plmn,
        registry: &OperatorRegistry,
        sim_plmn: Plmn,
        attached_plmn: Plmn,
    ) -> Option<RoamingLabel> {
        let sim = if sim_plmn == studied_mno {
            SimOrigin::Home
        } else if let Some(op) = registry.get(sim_plmn) {
            match op.kind {
                OperatorKind::Mvno { host } if host == studied_mno => SimOrigin::Virtual,
                _ => {
                    if same_country(sim_plmn, studied_mno) {
                        SimOrigin::National
                    } else {
                        SimOrigin::International
                    }
                }
            }
        } else if same_country(sim_plmn, studied_mno) {
            SimOrigin::National
        } else {
            SimOrigin::International
        };

        let presence = if attached_plmn == studied_mno {
            Presence::Home
        } else {
            Presence::Abroad
        };

        match (sim, presence) {
            (SimOrigin::National | SimOrigin::International, Presence::Abroad) => None,
            _ => Some(RoamingLabel { sim, presence }),
        }
    }

    /// Whether this label marks an *inbound roamer* — a foreign SIM on the
    /// studied network (`N:H` or `I:H`).
    pub const fn is_inbound_roamer(self) -> bool {
        matches!(
            (self.sim, self.presence),
            (SimOrigin::National, Presence::Home) | (SimOrigin::International, Presence::Home)
        )
    }

    /// Whether this label marks an *international* inbound roamer (`I:H`).
    pub const fn is_international_inbound(self) -> bool {
        matches!(
            (self.sim, self.presence),
            (SimOrigin::International, Presence::Home)
        )
    }

    /// Whether this label marks a *native* device in the broad sense the
    /// paper uses in §4.2 ("majority of devices are native, i.e. either MNO
    /// or MVNO devices connected to their home MNO"): `H:H` or `V:H`.
    pub const fn is_native_attached(self) -> bool {
        matches!(
            (self.sim, self.presence),
            (SimOrigin::Home, Presence::Home) | (SimOrigin::Virtual, Presence::Home)
        )
    }

    /// Whether this label marks an outbound roamer (`H:A` / `V:A`).
    pub const fn is_outbound_roamer(self) -> bool {
        matches!(self.presence, Presence::Abroad)
    }
}

/// Whether two PLMNs belong to the same country (by MCC registry lookup;
/// falls back to MCC equality for unregistered codes).
fn same_country(a: Plmn, b: Plmn) -> bool {
    match (Country::by_mcc(a.mcc), Country::by_mcc(b.mcc)) {
        (Some(ca), Some(cb)) => std::ptr::eq(ca, cb),
        _ => a.mcc == b.mcc,
    }
}

impl fmt::Display for RoamingLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.sim.code(), self.presence.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::well_known;

    fn registry() -> OperatorRegistry {
        OperatorRegistry::standard(3)
    }

    const MNO: Plmn = well_known::UK_STUDIED_MNO;

    #[test]
    fn native_device() {
        let reg = registry();
        let label = RoamingLabel::derive(MNO, &reg, MNO, MNO).unwrap();
        assert_eq!(label, RoamingLabel::HH);
        assert!(label.is_native_attached());
        assert!(!label.is_inbound_roamer());
    }

    #[test]
    fn outbound_roamer() {
        let reg = registry();
        let abroad = well_known::ES_HMNO;
        let label = RoamingLabel::derive(MNO, &reg, MNO, abroad).unwrap();
        assert_eq!(label, RoamingLabel::HA);
        assert!(label.is_outbound_roamer());
    }

    #[test]
    fn mvno_sim_is_virtual() {
        let reg = registry();
        let mvno = Plmn::of(234, 31);
        let label = RoamingLabel::derive(MNO, &reg, mvno, MNO).unwrap();
        assert_eq!(label, RoamingLabel::VH);
        assert!(label.is_native_attached());
    }

    #[test]
    fn national_inbound() {
        let reg = registry();
        let other_uk = well_known::UK_OTHER_MNOS[0];
        let label = RoamingLabel::derive(MNO, &reg, other_uk, MNO).unwrap();
        assert_eq!(label, RoamingLabel::NH);
        assert!(label.is_inbound_roamer());
        assert!(!label.is_international_inbound());
    }

    #[test]
    fn international_inbound() {
        let reg = registry();
        let nl = well_known::NL_SMART_METER_HMNO;
        let label = RoamingLabel::derive(MNO, &reg, nl, MNO).unwrap();
        assert_eq!(label, RoamingLabel::IH);
        assert!(label.is_international_inbound());
    }

    #[test]
    fn unobservable_combinations_are_none() {
        let reg = registry();
        // Foreign SIM attached to a foreign network: invisible to us.
        let nl = well_known::NL_SMART_METER_HMNO;
        let es = well_known::ES_HMNO;
        assert_eq!(RoamingLabel::derive(MNO, &reg, nl, es), None);
        // National SIM attached elsewhere: also invisible.
        let other_uk = well_known::UK_OTHER_MNOS[0];
        assert_eq!(RoamingLabel::derive(MNO, &reg, other_uk, es), None);
    }

    #[test]
    fn uk_secondary_mcc_is_national() {
        let reg = registry();
        // MCC 235 is also GB: a SIM there is National, not International.
        let sim = Plmn::of(235, 1);
        let label = RoamingLabel::derive(MNO, &reg, sim, MNO).unwrap();
        assert_eq!(label.sim, SimOrigin::National);
    }

    #[test]
    fn display_codes() {
        assert_eq!(RoamingLabel::HH.to_string(), "H:H");
        assert_eq!(RoamingLabel::IH.to_string(), "I:H");
        assert_eq!(RoamingLabel::VA.to_string(), "V:A");
        let codes: Vec<String> = RoamingLabel::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(codes, ["H:H", "H:A", "V:H", "V:A", "N:H", "I:H"]);
    }

    #[test]
    fn six_labels_total() {
        assert_eq!(RoamingLabel::ALL.len(), 6);
        let unique: std::collections::HashSet<_> = RoamingLabel::ALL.iter().collect();
        assert_eq!(unique.len(), 6);
    }
}
