//! GSMA-like TAC device catalog.
//!
//! The paper joins radio records against "a commercial database provided by
//! GSMA" that "maps the device TAC to a set of device properties such as
//! device manufacturer, brand and model name, operating system, and radio
//! bands supported" (§4.1). This module is that catalog: a map from
//! [`Tac`] to [`TacInfo`].
//!
//! Two observations from the paper shape the synthetic catalog:
//!
//! * classification cannot lean on the GSMA class alone, because non-phones
//!   "are mostly marked as *modem* or *module*, which might not necessarily
//!   imply an M2M/IoT application" (§4.3);
//! * M2M module vendors are concentrated: "Gemalto, Telit, and Sierra
//!   Wireless are among the top device vendors with a combined 75% of all
//!   inroaming devices" (§4.3), and every SMIP-roaming meter maps to
//!   "only two manufacturers, namely Gemalto and Telit" (§4.4).

use crate::ids::Tac;
use crate::rat::RatSet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The marketing class the GSMA catalog assigns a device.
///
/// Deliberately coarse — the whole point of §4.3 is that this field alone
/// cannot identify M2M applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GsmaClass {
    /// Touchscreen smartphone.
    Smartphone,
    /// Voice-centric feature phone.
    FeaturePhone,
    /// Embeddable radio module (most IoT devices, but also e-readers etc.).
    Module,
    /// Standalone modem / router.
    Modem,
    /// Wrist or body-worn device.
    Wearable,
    /// Tablet.
    Tablet,
    /// USB dongle.
    Dongle,
}

impl fmt::Display for GsmaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GsmaClass::Smartphone => "Smartphone",
            GsmaClass::FeaturePhone => "Feature phone",
            GsmaClass::Module => "Module",
            GsmaClass::Modem => "Modem",
            GsmaClass::Wearable => "Wearable",
            GsmaClass::Tablet => "Tablet",
            GsmaClass::Dongle => "Dongle",
        };
        f.write_str(s)
    }
}

/// Operating system recorded in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceOs {
    /// Android.
    Android,
    /// Apple iOS.
    Ios,
    /// BlackBerry OS.
    Blackberry,
    /// Windows Mobile.
    WindowsMobile,
    /// Vendor-proprietary feature-phone firmware.
    Proprietary,
    /// Embedded RTOS (typical for modules).
    Rtos,
    /// Not recorded.
    Unknown,
}

impl DeviceOs {
    /// Whether this is one of the "major smartphone OS" values the paper's
    /// classifier checks for ("android, iOS, blackberry, windows mobile",
    /// §4.3).
    pub const fn is_major_smartphone_os(self) -> bool {
        matches!(
            self,
            DeviceOs::Android | DeviceOs::Ios | DeviceOs::Blackberry | DeviceOs::WindowsMobile
        )
    }
}

/// Catalog entry for one TAC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TacInfo {
    /// The allocation code.
    pub tac: Tac,
    /// Manufacturer name.
    pub vendor: String,
    /// Marketing brand.
    pub brand: String,
    /// Model name.
    pub model: String,
    /// Operating system.
    pub os: DeviceOs,
    /// Radio generations the hardware supports.
    pub rats: RatSet,
    /// GSMA marketing class.
    pub gsma_class: GsmaClass,
}

/// Vendors the paper names as dominating the M2M module market.
pub const M2M_MODULE_VENDORS: &[&str] = &["Gemalto", "Telit", "Sierra Wireless"];

/// Additional long-tail M2M vendors (synthetic).
pub const M2M_TAIL_VENDORS: &[&str] = &["Quectel", "u-blox", "SimWave", "Cinterion Labs"];

/// Synthetic smartphone vendors (the real GSMA catalog has thousands; names
/// here are fictional since phone identity is irrelevant to the paper).
pub const PHONE_VENDORS: &[&str] = &["Pearfone", "Starlight", "Nordic Devices", "Kyushu Mobile"];

/// Synthetic feature-phone vendors.
pub const FEATURE_VENDORS: &[&str] = &["Classique", "Vega Telecom"];

/// The TAC → properties catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TacDatabase {
    entries: HashMap<u32, TacInfo>,
}

impl TacDatabase {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entry, replacing any previous allocation of the TAC.
    pub fn insert(&mut self, info: TacInfo) {
        self.entries.insert(info.tac.value(), info);
    }

    /// Looks up a TAC.
    pub fn get(&self, tac: Tac) -> Option<&TacInfo> {
        self.entries.get(&tac.value())
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &TacInfo> {
        self.entries.values()
    }

    /// All TACs allocated to `vendor`.
    pub fn tacs_of_vendor<'a>(&'a self, vendor: &'a str) -> impl Iterator<Item = Tac> + 'a {
        self.entries
            .values()
            .filter(move |e| e.vendor == vendor)
            .map(|e| e.tac)
    }

    /// Builds the standard synthetic catalog used by the scenarios.
    ///
    /// TAC space layout (all under the 35xxxxxx Reporting-Body range):
    ///
    /// * `350VVMMM` — M2M modules, vendor `VV`, model `MMM`;
    /// * `351VVMMM` — smartphones;
    /// * `352VVMMM` — feature phones;
    /// * `353VVMMM` — wearables.
    ///
    /// Each M2M vendor gets 2G-only, 2G+3G and 4G-capable module lines so
    /// behaviour models can pick hardware matching the paper's RAT mix
    /// (77.4% of M2M devices 2G-only, §6.1).
    pub fn standard() -> Self {
        let mut db = TacDatabase::new();
        for (m2m_vendor_idx, &vendor) in M2M_MODULE_VENDORS
            .iter()
            .chain(M2M_TAIL_VENDORS)
            .enumerate()
        {
            let m2m_vendor_idx = m2m_vendor_idx as u32;
            for (model_idx, (suffix, rats, os)) in [
                ("G2", RatSet::G2_ONLY, DeviceOs::Rtos),
                ("G23", RatSet::G2_G3, DeviceOs::Rtos),
                ("LTE", RatSet::CONVENTIONAL, DeviceOs::Rtos),
                // LPWA line (§8): a radio that can *only* attach to the
                // dedicated NB-IoT carrier.
                ("NB1", RatSet::NBIOT_ONLY, DeviceOs::Rtos),
            ]
            .iter()
            .enumerate()
            {
                // First line and the NB-IoT line are embeddable modules;
                // the mid-range lines are marketed as modems.
                let class = match model_idx {
                    0 | 3 => GsmaClass::Module,
                    _ => GsmaClass::Modem,
                };
                db.insert(TacInfo {
                    tac: Tac::new(35_000_000 + m2m_vendor_idx * 10_000 + model_idx as u32)
                        .expect("fits 8 digits"),
                    vendor: vendor.to_owned(),
                    brand: vendor.to_owned(),
                    model: format!("{vendor}-{suffix}"),
                    os: *os,
                    rats: *rats,
                    gsma_class: class,
                });
            }
        }
        for (v, &vendor) in PHONE_VENDORS.iter().enumerate() {
            for model_idx in 0..6u32 {
                // Older models are 2G+3G, newer ones 2G+3G+4G.
                let rats = if model_idx < 2 {
                    RatSet::G2_G3
                } else {
                    RatSet::CONVENTIONAL
                };
                let os = match model_idx % 4 {
                    0..=2 => DeviceOs::Android,
                    _ => DeviceOs::Ios,
                };
                db.insert(TacInfo {
                    tac: Tac::new(35_100_000 + v as u32 * 10_000 + model_idx)
                        .expect("fits 8 digits"),
                    vendor: vendor.to_owned(),
                    brand: vendor.to_owned(),
                    model: format!("{vendor}-S{model_idx}"),
                    os,
                    rats,
                    gsma_class: GsmaClass::Smartphone,
                });
            }
        }
        for (v, &vendor) in FEATURE_VENDORS.iter().enumerate() {
            for model_idx in 0..4u32 {
                let rats = if model_idx < 2 {
                    RatSet::G2_ONLY
                } else {
                    RatSet::G2_G3
                };
                db.insert(TacInfo {
                    tac: Tac::new(35_200_000 + v as u32 * 10_000 + model_idx)
                        .expect("fits 8 digits"),
                    vendor: vendor.to_owned(),
                    brand: vendor.to_owned(),
                    model: format!("{vendor}-F{model_idx}"),
                    os: DeviceOs::Proprietary,
                    rats,
                    gsma_class: GsmaClass::FeaturePhone,
                });
            }
        }
        // Wearables: modules marketed as wearables, a vertical studied in
        // prior work the paper cites [10].
        for model_idx in 0..3u32 {
            db.insert(TacInfo {
                tac: Tac::new(35_300_000 + model_idx).expect("fits 8 digits"),
                vendor: "Pearfone".to_owned(),
                brand: "Pearfone".to_owned(),
                model: format!("Pearfone-W{model_idx}"),
                os: DeviceOs::Rtos,
                rats: RatSet::CONVENTIONAL,
                gsma_class: GsmaClass::Wearable,
            });
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;

    #[test]
    fn standard_catalog_has_paper_vendors() {
        let db = TacDatabase::standard();
        for vendor in M2M_MODULE_VENDORS {
            assert!(
                db.tacs_of_vendor(vendor).count() >= 3,
                "{vendor} underallocated"
            );
        }
    }

    #[test]
    fn m2m_modules_include_2g_only_hardware() {
        let db = TacDatabase::standard();
        // SMIP-roaming meters are all 2G-only Gemalto/Telit hardware (§7.1).
        for vendor in ["Gemalto", "Telit"] {
            let has_2g_only = db
                .iter()
                .any(|e| e.vendor == vendor && e.rats == RatSet::G2_ONLY);
            assert!(has_2g_only, "{vendor} has no 2G-only module");
        }
    }

    #[test]
    fn lookup_roundtrip() {
        let db = TacDatabase::standard();
        let some_tac = db.iter().next().unwrap().tac;
        assert_eq!(db.get(some_tac).unwrap().tac, some_tac);
        assert!(db.get(Tac::new(99_999_999).unwrap()).is_none());
    }

    #[test]
    fn module_class_does_not_reveal_vertical() {
        // The catalog must never carry an "is M2M application" bit — only
        // Module/Modem marketing classes (the paper's point in §4.3).
        let db = TacDatabase::standard();
        let module_vendors: std::collections::HashSet<_> = db
            .iter()
            .filter(|e| matches!(e.gsma_class, GsmaClass::Module | GsmaClass::Modem))
            .map(|e| e.vendor.clone())
            .collect();
        assert!(module_vendors.len() >= M2M_MODULE_VENDORS.len());
    }

    #[test]
    fn major_os_predicate() {
        assert!(DeviceOs::Android.is_major_smartphone_os());
        assert!(DeviceOs::Ios.is_major_smartphone_os());
        assert!(DeviceOs::Blackberry.is_major_smartphone_os());
        assert!(DeviceOs::WindowsMobile.is_major_smartphone_os());
        assert!(!DeviceOs::Rtos.is_major_smartphone_os());
        assert!(!DeviceOs::Proprietary.is_major_smartphone_os());
    }

    #[test]
    fn smartphone_hardware_is_3g_or_better() {
        let db = TacDatabase::standard();
        for e in db.iter().filter(|e| e.gsma_class == GsmaClass::Smartphone) {
            assert!(e.rats.contains(Rat::G3), "{} lacks 3G", e.model);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let db = TacDatabase::standard();
        let json = serde_json::to_string(&db).unwrap();
        let back: TacDatabase = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), db.len());
    }

    #[test]
    fn tacs_unique_across_catalog() {
        let db = TacDatabase::standard();
        // HashMap keys are unique by construction; verify the generator did
        // not silently overwrite an allocation.
        let expected = (M2M_MODULE_VENDORS.len() + M2M_TAIL_VENDORS.len()) * 4
            + PHONE_VENDORS.len() * 6
            + FEATURE_VENDORS.len() * 4
            + 3;
        assert_eq!(db.len(), expected);
    }
}
