//! Access Point Name (APN) grammar and tokenization.
//!
//! APN strings "usually encode information about the specific
//! service/business they relate to" (§4.1) and are the backbone of the
//! paper's classification pipeline: the example
//! `smhp.centricaplc.com.mnc004.mcc204.gprs` both hints the vertical
//! (Centrica → energy → smart meters) and reveals the home operator
//! (`204-04`, Vodafone NL in the paper's example).
//!
//! An APN has two parts (3GPP TS 23.003):
//!
//! * the **Network Identifier** (NI) — the service name, dot-separated
//!   labels (`smhp.centricaplc.com`);
//! * an optional **Operator Identifier** (OI) — `mnc<MNC>.mcc<MCC>.gprs`,
//!   always 3-digit MNC in the OI.

use crate::error::ParseError;
use crate::ids::{Mcc, Mnc, Plmn};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A parsed, validated APN.
///
/// ```
/// use wtr_model::apn::Apn;
///
/// // The paper's worked example (§4.3): a Centrica smart meter homed on
/// // Vodafone NL.
/// let apn: Apn = "smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap();
/// assert_eq!(apn.network_identifier(), "smhp.centricaplc.com");
/// assert_eq!(apn.operator().unwrap().to_string(), "204-04");
/// assert!(apn.matches_keyword("centrica"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Apn {
    /// The Network Identifier labels, lowercase (e.g. `["smhp",
    /// "centricaplc", "com"]`).
    ni: Vec<String>,
    /// The operator the APN resolves through, when an OI is present.
    operator: Option<Plmn>,
}

impl Apn {
    /// Maximum total APN length (3GPP limit is 100 octets; we enforce it).
    pub const MAX_LEN: usize = 100;

    /// Builds an APN from a network-identifier string (dot-separated
    /// labels) and optional operator.
    ///
    /// The operator PLMN is canonicalized to the registry convention
    /// (2-digit MNC whenever the value fits): the OI wire format always
    /// writes 3 MNC digits, so the digit count carries no information
    /// there, and canonicalizing here makes `Display`/`FromStr` a true
    /// round trip. (Regression: constructing an APN with a 3-digit MNC of
    /// value ≤ 99, e.g. `mcc200 mnc000`, used to come back from parsing
    /// with a 2-digit MNC and compare unequal to the original.)
    pub fn new(ni: &str, operator: Option<Plmn>) -> Result<Self, ParseError> {
        let labels = Self::validate_ni(ni)?;
        let operator = operator.map(|op| {
            let v = op.mnc.value();
            if v <= 99 {
                Plmn::new(op.mcc, Mnc::new2(v).expect("<=99 fits 2 digits"))
            } else {
                op
            }
        });
        Ok(Apn {
            ni: labels,
            operator,
        })
    }

    fn validate_ni(ni: &str) -> Result<Vec<String>, ParseError> {
        if ni.is_empty() {
            return Err(ParseError::BadApn {
                reason: "empty network identifier",
            });
        }
        if ni.len() > Self::MAX_LEN {
            return Err(ParseError::BadApn {
                reason: "network identifier exceeds 100 octets",
            });
        }
        let mut labels = Vec::new();
        for label in ni.split('.') {
            if label.is_empty() {
                return Err(ParseError::BadApn {
                    reason: "empty label (consecutive or leading/trailing dots)",
                });
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ParseError::BadApn {
                    reason: "label contains characters outside [a-z0-9-_]",
                });
            }
            // NI labels must not start with the reserved OI prefixes.
            labels.push(label.to_ascii_lowercase());
        }
        // Reserved: an NI must not itself look like an OI tail.
        if labels.last().map(String::as_str) == Some("gprs") {
            return Err(ParseError::BadApn {
                reason: "network identifier must not end in .gprs (reserved for OI)",
            });
        }
        Ok(labels)
    }

    /// The network identifier as a dotted string.
    pub fn network_identifier(&self) -> String {
        self.ni.join(".")
    }

    /// The NI labels.
    pub fn labels(&self) -> &[String] {
        &self.ni
    }

    /// The operator from the OI, if present.
    pub fn operator(&self) -> Option<Plmn> {
        self.operator
    }

    /// All searchable tokens of the NI: the labels themselves. Keyword
    /// matching in the classifier is substring-based over these tokens
    /// (e.g. keyword `m2m` matches label `intelligent-m2m`).
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.ni.iter().map(String::as_str)
    }

    /// Whether any NI token contains `keyword` as a substring
    /// (case-insensitive; `keyword` must already be lowercase).
    pub fn matches_keyword(&self, keyword: &str) -> bool {
        debug_assert_eq!(keyword, keyword.to_ascii_lowercase());
        self.ni.iter().any(|t| t.contains(keyword))
    }

    /// Canonical full string, used as the deduplication key in the
    /// classifier's APN inventory.
    pub fn full(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Apn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ni.join("."))?;
        if let Some(op) = self.operator {
            // OI always uses a 3-digit MNC representation.
            write!(f, ".mnc{:03}.mcc{:03}.gprs", op.mnc.value(), op.mcc.value())?;
        }
        Ok(())
    }
}

impl FromStr for Apn {
    type Err = ParseError;

    /// Parses either a bare NI (`internet`) or NI + OI
    /// (`smhp.centricaplc.com.mnc004.mcc204.gprs`).
    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s.len() > Self::MAX_LEN {
            return Err(ParseError::BadApn {
                reason: "APN exceeds 100 octets",
            });
        }
        let lower = s.to_ascii_lowercase();
        let labels: Vec<&str> = lower.split('.').collect();
        // Detect an OI suffix: [..., mncXXX, mccYYY, gprs]
        if labels.len() >= 4 && labels[labels.len() - 1] == "gprs" {
            let mcc_label = labels[labels.len() - 2];
            let mnc_label = labels[labels.len() - 3];
            if let (Some(mcc_digits), Some(mnc_digits)) =
                (mcc_label.strip_prefix("mcc"), mnc_label.strip_prefix("mnc"))
            {
                if mcc_digits.len() == 3 && mnc_digits.len() == 3 {
                    let mcc: Mcc = mcc_digits.parse()?;
                    // OI encodes MNC as 3 digits; registry PLMNs use the
                    // 2-digit European convention when the value fits.
                    let mnc_val: u16 = mnc_digits.parse::<Mnc>()?.value();
                    let mnc = if mnc_val <= 99 {
                        Mnc::new2(mnc_val).expect("<=99 fits 2 digits")
                    } else {
                        Mnc::new3(mnc_val).expect("<=999 fits 3 digits")
                    };
                    let ni = labels[..labels.len() - 3].join(".");
                    return Apn::new(&ni, Some(Plmn::new(mcc, mnc)));
                }
            }
        }
        Apn::new(&lower, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // §4.3's worked example, Centrica smart meters homed on 204-04.
        let apn: Apn = "smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap();
        assert_eq!(apn.network_identifier(), "smhp.centricaplc.com");
        assert_eq!(apn.operator(), Some(Plmn::of(204, 4)));
        assert!(apn.matches_keyword("centrica"));
    }

    #[test]
    fn display_roundtrip_with_oi() {
        let apn: Apn = "telemetry.rwe.de.mnc002.mcc262.gprs".parse().unwrap();
        assert_eq!(apn.to_string(), "telemetry.rwe.de.mnc002.mcc262.gprs");
        let back: Apn = apn.to_string().parse().unwrap();
        assert_eq!(back, apn);
    }

    #[test]
    fn bare_ni_roundtrip() {
        let apn: Apn = "internet".parse().unwrap();
        assert_eq!(apn.operator(), None);
        assert_eq!(apn.to_string(), "internet");
    }

    #[test]
    fn case_is_normalized() {
        let apn: Apn = "PayAndGo.Example".parse().unwrap();
        assert_eq!(apn.network_identifier(), "payandgo.example");
        assert!(apn.matches_keyword("payandgo"));
    }

    #[test]
    fn keyword_is_substring_of_token() {
        let apn: Apn = "intelligent-m2m.provider".parse().unwrap();
        assert!(apn.matches_keyword("m2m"));
        assert!(!apn.matches_keyword("scania"));
    }

    #[test]
    fn rejects_malformed() {
        assert!("".parse::<Apn>().is_err());
        assert!("a..b".parse::<Apn>().is_err());
        assert!(".leading".parse::<Apn>().is_err());
        assert!("trailing.".parse::<Apn>().is_err());
        assert!("spa ce".parse::<Apn>().is_err());
        assert!("ends.gprs".parse::<Apn>().is_err());
        let long = "a".repeat(101);
        assert!(long.parse::<Apn>().is_err());
    }

    #[test]
    fn non_oi_gprs_like_suffix_is_rejected_not_misparsed() {
        // `mncX.mccY.gprs` with wrong digit counts is not an OI; since it
        // then ends in `.gprs` it is rejected as a reserved NI.
        assert!("service.mnc04.mcc204.gprs".parse::<Apn>().is_err());
    }

    #[test]
    fn three_digit_mnc_in_oi_preserved() {
        let apn: Apn = "fleet.example.mnc130.mcc310.gprs".parse().unwrap();
        let op = apn.operator().unwrap();
        assert_eq!(op.mnc.value(), 130);
        assert_eq!(op.mnc.digits(), 3);
    }

    #[test]
    fn constructed_three_digit_mnc_below_100_roundtrips() {
        // Regression anchor for the proptest seed `labels = ["a"],
        // has_oi = true, plmn = 200-000 (3-digit)`: `Apn::new` now
        // canonicalizes the operator MNC, so construction and parsing
        // agree.
        let op = Plmn::new(
            "200".parse::<Mcc>().unwrap(),
            Mnc::new3(0).expect("000 is a valid 3-digit MNC"),
        );
        let apn = Apn::new("a", Some(op)).unwrap();
        assert_eq!(apn.to_string(), "a.mnc000.mcc200.gprs");
        let back: Apn = apn.to_string().parse().unwrap();
        assert_eq!(back, apn);
        assert_eq!(apn.operator().unwrap().mnc.digits(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let apn: Apn = "smhp.centricaplc.com.mnc004.mcc204.gprs".parse().unwrap();
        let json = serde_json::to_string(&apn).unwrap();
        let back: Apn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, apn);
    }
}
