//! Radio Access Technologies and the paper's per-device `radio-flags`.
//!
//! The paper's devices-catalog summarizes each device's radio activity into
//! "a series of three 1-bit flags which are set to 1 if the device has
//! successfully communicated with 2G, 3G, 4G sectors respectively" (§4.1).
//! [`RatSet`] is that bitset, reused both for *capability* (what a device's
//! radio supports, from the TAC catalog) and *activity* (what it actually
//! used, from radio logs).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cellular Radio Access Technology generation.
///
/// The paper's datasets distinguish 2G (GSM/GPRS), 3G (UMTS) and 4G (LTE).
/// [`Rat::NbIot`] models the LPWA deployments §8 discusses ("the planned
/// deployment of NB-IoT coupled with roaming support"): it rides on 4G
/// infrastructure but is a dedicated carrier that only NB-IoT radios use —
/// which is exactly why "NB-IoT will enable visited MNOs to easily detect
/// the inbound roaming IoT devices".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rat {
    /// GSM / GPRS / EDGE.
    G2,
    /// UMTS / HSPA.
    G3,
    /// LTE (including LTE-M).
    G4,
    /// Narrow-Band IoT (LPWA carrier on the 4G infrastructure).
    NbIot,
}

impl Rat {
    /// All RATs, oldest first (NB-IoT last: it is the newest deployment).
    pub const ALL: [Rat; 4] = [Rat::G2, Rat::G3, Rat::G4, Rat::NbIot];

    /// Bit position inside a [`RatSet`].
    const fn bit(self) -> u8 {
        match self {
            Rat::G2 => 1 << 0,
            Rat::G3 => 1 << 1,
            Rat::G4 => 1 << 2,
            Rat::NbIot => 1 << 3,
        }
    }

    /// Short label used in reports (`2G`, `3G`, `4G`, `NB-IoT`).
    pub const fn label(self) -> &'static str {
        match self {
            Rat::G2 => "2G",
            Rat::G3 => "3G",
            Rat::G4 => "4G",
            Rat::NbIot => "NB-IoT",
        }
    }

    /// Whether this RAT runs on the LTE/EPC infrastructure (4G and
    /// NB-IoT) — the slice the M2M platform's probes observe (§3.1).
    pub const fn is_lte_family(self) -> bool {
        matches!(self, Rat::G4 | Rat::NbIot)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of RATs, stored as a 4-bit bitset.
///
/// Used for device radio capability, sector technology support, and the
/// devices-catalog radio-flags.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RatSet(u8);

impl RatSet {
    /// The empty set.
    pub const EMPTY: RatSet = RatSet(0);
    /// 2G only — where the paper finds 77.4% of M2M devices (§6.1).
    pub const G2_ONLY: RatSet = RatSet(1);
    /// 2G + 3G.
    pub const G2_G3: RatSet = RatSet(0b011);
    /// The three conventional generations (2G+3G+4G) — what phones and
    /// general-purpose networks deploy.
    pub const CONVENTIONAL: RatSet = RatSet(0b0111);
    /// NB-IoT only (LPWA modules, §8).
    pub const NBIOT_ONLY: RatSet = RatSet(0b1000);
    /// Every RAT including NB-IoT.
    pub const ALL: RatSet = RatSet(0b1111);

    /// Builds a set from an iterator of RATs (also available through the
    /// standard [`FromIterator`] impl / `collect()`).
    pub fn of<I: IntoIterator<Item = Rat>>(iter: I) -> Self {
        let mut s = RatSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }

    /// Builds a set containing a single RAT.
    pub const fn only(rat: Rat) -> Self {
        RatSet(rat.bit())
    }

    /// The raw 4-bit representation (what the wire codecs store).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from its raw bits; bits above the low 4 are masked
    /// off so any byte decodes to a valid set.
    pub const fn from_bits(bits: u8) -> Self {
        RatSet(bits & 0b1111)
    }

    /// Inserts a RAT.
    pub fn insert(&mut self, rat: Rat) {
        self.0 |= rat.bit();
    }

    /// Removes a RAT.
    pub fn remove(&mut self, rat: Rat) {
        self.0 &= !rat.bit();
    }

    /// Whether the set contains `rat`.
    pub const fn contains(self, rat: Rat) -> bool {
        self.0 & rat.bit() != 0
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of RATs in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub const fn union(self, other: RatSet) -> RatSet {
        RatSet(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersection(self, other: RatSet) -> RatSet {
        RatSet(self.0 & other.0)
    }

    /// Whether `self` contains every RAT in `other`.
    pub const fn is_superset_of(self, other: RatSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over RATs present in the set, oldest first.
    pub fn iter(self) -> impl Iterator<Item = Rat> {
        Rat::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// The most advanced RAT in the set, if any.
    pub fn best(self) -> Option<Rat> {
        Rat::ALL.into_iter().rev().find(|r| self.contains(*r))
    }

    /// The RAT-usage *category* the paper buckets devices into for Fig. 9:
    /// exactly which combination of generations was used.
    pub fn category_label(self) -> &'static str {
        match self.0 & 0b1111 {
            0b0000 => "none",
            0b0001 => "2G only",
            0b0010 => "3G only",
            0b0100 => "4G only",
            0b0011 => "2G+3G",
            0b0101 => "2G+4G",
            0b0110 => "3G+4G",
            0b0111 => "2G+3G+4G",
            0b1000 => "NB-IoT only",
            0b1001 => "2G+NB-IoT",
            0b1010 => "3G+NB-IoT",
            0b1100 => "4G+NB-IoT",
            0b1011 => "2G+3G+NB-IoT",
            0b1101 => "2G+4G+NB-IoT",
            0b1110 => "3G+4G+NB-IoT",
            0b1111 => "2G+3G+4G+NB-IoT",
            _ => unreachable!("masked to 4 bits"),
        }
    }
}

impl fmt::Display for RatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.category_label())
    }
}

impl FromIterator<Rat> for RatSet {
    fn from_iter<T: IntoIterator<Item = Rat>>(iter: T) -> Self {
        RatSet::of(iter)
    }
}

/// Per-device radio activity flags, split by service plane.
///
/// The devices-catalog tracks which RATs a device *successfully* used,
/// separately for any activity, data-plane activity, and voice-plane
/// activity — the three views plotted in Fig. 9 (left / center / right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RadioFlags {
    /// RATs with at least one successful event of any kind.
    pub any: RatSet,
    /// RATs with at least one data-plane record (xDR).
    pub data: RatSet,
    /// RATs with at least one voice-plane record (CDR). The paper uses
    /// "voice" broadly: M2M devices do not place calls but may use
    /// SMS-like circuit-switched services (§6.1, footnote 4).
    pub voice: RatSet,
}

impl RadioFlags {
    /// Merges another set of flags into this one (daily accumulation).
    pub fn merge(&mut self, other: RadioFlags) {
        self.any = self.any.union(other.any);
        self.data = self.data.union(other.data);
        self.voice = self.voice.union(other.voice);
    }

    /// Records a successful event on `rat`, optionally on the data and/or
    /// voice planes.
    pub fn record(&mut self, rat: Rat, data: bool, voice: bool) {
        self.any.insert(rat);
        if data {
            self.data.insert(rat);
        }
        if voice {
            self.voice.insert(rat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = RatSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Rat::G2);
        s.insert(Rat::G4);
        assert!(s.contains(Rat::G2));
        assert!(!s.contains(Rat::G3));
        assert!(s.contains(Rat::G4));
        assert_eq!(s.len(), 2);
        s.remove(Rat::G2);
        assert!(!s.contains(Rat::G2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn best_prefers_newest_generation() {
        assert_eq!(RatSet::G2_ONLY.best(), Some(Rat::G2));
        assert_eq!(RatSet::G2_G3.best(), Some(Rat::G3));
        assert_eq!(RatSet::CONVENTIONAL.best(), Some(Rat::G4));
        assert_eq!(RatSet::EMPTY.best(), None);
    }

    #[test]
    fn category_labels_cover_all_combinations() {
        let mut labels = std::collections::HashSet::new();
        for bits in 0..16u8 {
            let mut s = RatSet::EMPTY;
            for r in Rat::ALL {
                if bits & r.bit() != 0 {
                    s.insert(r);
                }
            }
            labels.insert(s.category_label());
        }
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn set_algebra() {
        let a = RatSet::of([Rat::G2, Rat::G3]);
        let b = RatSet::of([Rat::G3, Rat::G4]);
        assert_eq!(a.union(b), RatSet::CONVENTIONAL);
        assert_eq!(a.intersection(b), RatSet::only(Rat::G3));
        assert!(RatSet::CONVENTIONAL.is_superset_of(a));
        assert!(!a.is_superset_of(b));
    }

    #[test]
    fn iter_returns_oldest_first() {
        let s = RatSet::CONVENTIONAL;
        let v: Vec<Rat> = s.iter().collect();
        assert_eq!(v, vec![Rat::G2, Rat::G3, Rat::G4]);
        let v: Vec<Rat> = RatSet::ALL.iter().collect();
        assert_eq!(v, vec![Rat::G2, Rat::G3, Rat::G4, Rat::NbIot]);
    }

    #[test]
    fn nbiot_is_lte_family_and_detectable() {
        assert!(Rat::NbIot.is_lte_family());
        assert!(Rat::G4.is_lte_family());
        assert!(!Rat::G2.is_lte_family());
        assert!(!Rat::G3.is_lte_family());
        assert_eq!(RatSet::NBIOT_ONLY.category_label(), "NB-IoT only");
        assert_eq!(RatSet::ALL.best(), Some(Rat::NbIot));
        assert_eq!(RatSet::CONVENTIONAL.best(), Some(Rat::G4));
        assert!(!RatSet::CONVENTIONAL.contains(Rat::NbIot));
    }

    #[test]
    fn radio_flags_record_and_merge() {
        let mut f = RadioFlags::default();
        f.record(Rat::G2, true, false);
        assert!(f.any.contains(Rat::G2));
        assert!(f.data.contains(Rat::G2));
        assert!(!f.voice.contains(Rat::G2));

        let mut g = RadioFlags::default();
        g.record(Rat::G3, false, true);
        f.merge(g);
        assert!(f.any.contains(Rat::G3));
        assert!(f.voice.contains(Rat::G3));
        assert!(!f.data.contains(Rat::G3));
    }

    #[test]
    fn serde_is_compact() {
        let s = RatSet::G2_G3;
        assert_eq!(serde_json::to_string(&s).unwrap(), "3");
        let back: RatSet = serde_json::from_str("3").unwrap();
        assert_eq!(back, s);
    }
}
