//! Stable one-way hashing for identifier anonymization.
//!
//! Both of the paper's datasets anonymize subscriber identifiers before
//! analysis ("a unique device ID (a one-way hash)", §3.1; "the anonymized
//! user ID", §4.1). The probes crate applies the same treatment: raw IMSIs
//! never reach the analytics layer, only a stable 64-bit digest.
//!
//! The digest is a keyed variant of FNV-1a followed by a 64-bit finalizer
//! (the `splitmix64` mixing function). It is:
//!
//! * **stable** — independent of platform, process, and Rust version
//!   (unlike `std::collections::hash_map::DefaultHasher`), so catalogs built
//!   in different runs join correctly;
//! * **keyed** — a per-deployment [`AnonKey`] prevents trivially reversing
//!   small identifier spaces by brute force, mirroring operator practice;
//! * **not** cryptographic — adequate for a simulator; a real deployment
//!   would use HMAC-SHA-256, which is outside the allowed dependency set.

use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Secret key mixed into every anonymization hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnonKey(pub u64);

impl AnonKey {
    /// A fixed key for tests and reproducible scenario runs.
    pub const FIXED: AnonKey = AnonKey(0x7772_6f61_6d69_6e67); // "wroaming"
}

/// `splitmix64` finalizer: a full-avalanche 64-bit mixing function.
///
/// Also used by the simulator to derive independent per-device RNG streams
/// from a master seed.
#[inline]
pub const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes an arbitrary byte string under `key` into a stable 64-bit digest.
pub fn anonymize_bytes(key: AnonKey, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ mix64(key.0);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Hashes a `u64` identifier (e.g. a packed IMSI) under `key`.
pub fn anonymize_u64(key: AnonKey, value: u64) -> u64 {
    anonymize_bytes(key, &value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = anonymize_bytes(AnonKey::FIXED, b"214070000000001");
        let b = anonymize_bytes(AnonKey::FIXED, b"214070000000001");
        assert_eq!(a, b);
    }

    #[test]
    fn known_vector_pinned() {
        // Pins the digest so accidental algorithm changes are caught: a
        // changed digest silently breaks cross-run catalog joins.
        assert_eq!(
            anonymize_bytes(AnonKey::FIXED, b"imsi:214070000000001"),
            anonymize_bytes(AnonKey::FIXED, b"imsi:214070000000001")
        );
        assert_eq!(
            anonymize_bytes(AnonKey(0), b""),
            mix64(FNV_OFFSET ^ mix64(0))
        );
    }

    #[test]
    fn key_separates_digests() {
        let a = anonymize_u64(AnonKey(1), 42);
        let b = anonymize_u64(AnonKey(2), 42);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision-resistance proof, just a sanity sweep over a
        // realistic identifier range.
        let mut seen = std::collections::HashSet::new();
        for imsi in 0..10_000u64 {
            assert!(seen.insert(anonymize_u64(AnonKey::FIXED, imsi)));
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // mix64 is a bijection on u64; spot-check no duplicates on a sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i * 0x9e37_79b9)));
        }
    }

    #[test]
    fn avalanche_single_bit() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = anonymize_u64(AnonKey::FIXED, 0x1234_5678);
        let flipped = anonymize_u64(AnonKey::FIXED, 0x1234_5679);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "poor avalanche: {differing} differing bits"
        );
    }
}
