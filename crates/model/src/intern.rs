//! Deterministic APN string interning.
//!
//! At paper scale (~39.6M devices, §5) the devices-catalog carries an APN
//! *set* per row and the classifier matches keywords against the APN
//! *inventory*; storing the full strings per row makes both the catalog
//! and the classification hot path allocation-bound. This module gives
//! every distinct APN a compact [`ApnSym`] (a `u32` symbol) resolved
//! through an [`ApnTable`], so per-row sets become sets of `Copy` keys and
//! the classifier computes one keyword verdict per *distinct* APN instead
//! of one per (device, APN) pair.
//!
//! # Determinism rules
//!
//! * **In memory**, symbols are assigned by **first occurrence**: the
//!   first time a string is interned it receives the next id. First-
//!   occurrence assignment is reproduced exactly by the parallel ingest
//!   path, because chunk-local tables are absorbed **left to right in
//!   chunk order** ([`ApnTable::absorb`]) — the combined table equals the
//!   serial one for any thread count.
//! * **On disk** (the `WTRCAT` codec), the table is first
//!   [canonicalized](ApnTable::canonicalized): strings are sorted and
//!   symbols re-assigned by sorted rank, so serialized tables — and
//!   everything keyed by them — are **independent of ingest order** and
//!   never depend on hash order (there is no hashing anywhere in this
//!   type).

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A compact symbol for one distinct APN string, resolved through the
/// [`ApnTable`] that issued it.
///
/// Symbols are plain `u32` indexes: `Copy`, 4 bytes, order-stable within
/// one table. They are only meaningful relative to their table — two
/// tables may assign the same string different symbols (the canonical
/// on-disk form fixes this by sorting, see [`ApnTable::canonicalized`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApnSym(u32);

impl ApnSym {
    /// The symbol as a dense index (`0..table.len()`), usable to address
    /// per-symbol side tables such as the classifier's verdict vector.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` representation (what the wire codec stores).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from its raw representation. The caller asserts
    /// it is a valid index into the table it will be resolved against;
    /// [`ApnTable::resolve`] panics on out-of-range symbols.
    pub const fn from_raw(raw: u32) -> Self {
        ApnSym(raw)
    }
}

impl fmt::Display for ApnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "apn#{}", self.0)
    }
}

/// A deterministic intern table: distinct APN strings, each owned once,
/// with a sorted index for O(log n) lookup.
///
/// Serialized (serde or `WTRCAT`) as the plain string list in symbol
/// order; the lookup index is rebuilt on deserialization.
#[derive(Debug, Clone, Default)]
pub struct ApnTable {
    /// Symbol → string (symbol id = position).
    strings: Vec<String>,
    /// String → symbol id.
    index: BTreeMap<String, u32>,
}

impl ApnTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ApnTable::default()
    }

    /// Builds the **canonical** table of an arbitrary collection of
    /// strings: distinct strings sorted ascending, symbols assigned by
    /// sorted rank. The result is independent of the input order (and of
    /// duplicates) — the property the on-disk format relies on.
    pub fn canonical_from<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut table = ApnTable::new();
        let sorted: std::collections::BTreeSet<String> =
            strings.into_iter().map(Into::into).collect();
        for s in sorted {
            table.intern(&s);
        }
        table
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns `s`, returning its symbol. First occurrence allocates and
    /// assigns the next id; later calls are a lookup, no allocation.
    pub fn intern(&mut self, s: &str) -> ApnSym {
        if let Some(&id) = self.index.get(s) {
            return ApnSym(id);
        }
        let id = u32::try_from(self.strings.len()).expect("more than u32::MAX distinct APNs");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        ApnSym(id)
    }

    /// Looks up the symbol of `s` without interning.
    pub fn lookup(&self, s: &str) -> Option<ApnSym> {
        self.index.get(s).map(|&id| ApnSym(id))
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// If `sym` was not issued by this table (out of range).
    pub fn resolve(&self, sym: ApnSym) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol, returning `None` when it is out of range (e.g.
    /// a symbol decoded from a corrupt file).
    pub fn try_resolve(&self, sym: ApnSym) -> Option<&str> {
        self.strings.get(sym.index()).map(String::as_str)
    }

    /// Validates a raw wire symbol against this table's range.
    pub fn checked_sym(&self, raw: u32) -> Result<ApnSym, ParseError> {
        if (raw as usize) < self.strings.len() {
            Ok(ApnSym(raw))
        } else {
            Err(ParseError::OutOfRange {
                what: "APN symbol",
                allowed: "< table length",
            })
        }
    }

    /// Iterates `(symbol, string)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (ApnSym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (ApnSym(i as u32), s.as_str()))
    }

    /// The strings in symbol order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Whether symbols are already assigned in sorted-string order (true
    /// for tables built by [`ApnTable::canonical_from`] or decoded from
    /// the canonical on-disk form).
    pub fn is_canonical(&self) -> bool {
        self.strings.windows(2).all(|w| w[0] < w[1])
    }

    /// Returns the canonical (sorted) twin of this table plus the remap
    /// vector: `remap[old.index()]` is the symbol of the same string in
    /// the canonical table. Used by the `WTRCAT` encoder so files never
    /// depend on ingest order.
    pub fn canonicalized(&self) -> (ApnTable, Vec<ApnSym>) {
        let canonical = ApnTable::canonical_from(self.strings.iter().cloned());
        let remap = self
            .strings
            .iter()
            .map(|s| canonical.lookup(s).expect("canonical table covers source"))
            .collect();
        (canonical, remap)
    }

    /// Absorbs another table built from a *later* chunk of the same
    /// stream: every string of `other` is interned into `self` in
    /// `other`'s symbol order. Returns the remap vector
    /// (`remap[other_sym.index()]` = symbol in `self`).
    ///
    /// Because `other`'s symbols are themselves first-occurrence ordered,
    /// absorbing chunk tables left to right reproduces the serial
    /// first-occurrence assignment exactly — the determinism contract of
    /// the parallel ingest path.
    pub fn absorb(&mut self, other: &ApnTable) -> Vec<ApnSym> {
        other.strings.iter().map(|s| self.intern(s)).collect()
    }
}

impl PartialEq for ApnTable {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; the string list is the identity.
        self.strings == other.strings
    }
}

impl Eq for ApnTable {}

impl Serialize for ApnTable {
    fn serialize_value(&self) -> serde::Value {
        self.strings.serialize_value()
    }
}

impl Deserialize for ApnTable {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let strings = Vec::<String>::deserialize_value(v)?;
        let mut table = ApnTable::new();
        for s in &strings {
            table.intern(s);
        }
        if table.len() != strings.len() {
            return Err(serde::Error::custom("duplicate string in APN table"));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_assignment() {
        let mut t = ApnTable::new();
        let a = t.intern("zeta.example");
        let b = t.intern("alpha.example");
        let a2 = t.intern("zeta.example");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(
            a.index(),
            0,
            "first seen gets id 0 regardless of sort order"
        );
        assert_eq!(b.index(), 1);
        assert_eq!(t.resolve(a), "zeta.example");
        assert_eq!(t.resolve(b), "alpha.example");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = ApnTable::canonical_from(["b", "a", "c", "a"]);
        let b = ApnTable::canonical_from(["c", "b", "a"]);
        assert_eq!(a, b);
        assert!(a.is_canonical());
        assert_eq!(
            a.strings(),
            &["a".to_owned(), "b".to_owned(), "c".to_owned()]
        );
    }

    #[test]
    fn canonicalized_remap_points_at_same_strings() {
        let mut t = ApnTable::new();
        let z = t.intern("z");
        let a = t.intern("a");
        let (canon, remap) = t.canonicalized();
        assert!(canon.is_canonical());
        assert_eq!(canon.resolve(remap[z.index()]), "z");
        assert_eq!(canon.resolve(remap[a.index()]), "a");
        assert_eq!(remap[a.index()].index(), 0, "a sorts first");
    }

    #[test]
    fn absorb_reproduces_serial_first_occurrence() {
        // Serial: one table sees the whole stream.
        let stream = ["m", "a", "m", "z", "a", "q"];
        let mut serial = ApnTable::new();
        for s in stream {
            serial.intern(s);
        }
        // Parallel: two chunk tables, absorbed in chunk order.
        let mut left = ApnTable::new();
        for s in &stream[..3] {
            left.intern(s);
        }
        let mut right = ApnTable::new();
        for s in &stream[3..] {
            right.intern(s);
        }
        let remap = left.absorb(&right);
        assert_eq!(left, serial);
        // The remap translates right's symbols into the merged table.
        assert_eq!(left.resolve(remap[right.lookup("z").unwrap().index()]), "z");
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let mut t = ApnTable::new();
        t.intern("beta");
        t.intern("alpha");
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"["beta","alpha"]"#);
        let back: ApnTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.lookup("alpha"), Some(ApnSym::from_raw(1)));
    }

    #[test]
    fn checked_sym_rejects_out_of_range() {
        let mut t = ApnTable::new();
        t.intern("a");
        assert!(t.checked_sym(0).is_ok());
        assert!(t.checked_sym(1).is_err());
        assert_eq!(t.try_resolve(ApnSym::from_raw(9)), None);
    }
}
