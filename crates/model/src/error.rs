//! Error types shared across the model crate.

use std::fmt;

/// An error raised while parsing or validating a cellular identifier.
///
/// Parsing in this crate is strict: identifiers follow their 3GPP digit-string
/// grammar exactly (e.g. an IMSI is at most 15 digits, an MCC exactly 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input was empty where digits were required.
    Empty,
    /// The input contained a non-digit character at the given byte offset.
    NonDigit {
        /// Byte offset of the offending character.
        offset: usize,
    },
    /// The input had an invalid length for this identifier.
    BadLength {
        /// Name of the identifier being parsed (e.g. `"IMSI"`).
        what: &'static str,
        /// Expected length description (e.g. `"3 digits"`).
        expected: &'static str,
        /// Actual length found.
        found: usize,
    },
    /// A numeric field was outside its allowed range.
    OutOfRange {
        /// Name of the field (e.g. `"MCC"`).
        what: &'static str,
        /// Human-readable description of the allowed range.
        allowed: &'static str,
    },
    /// An IMEI check digit did not match the Luhn checksum.
    BadCheckDigit {
        /// The digit that was present.
        found: u8,
        /// The digit the Luhn algorithm expects.
        expected: u8,
    },
    /// An APN string violated the APN grammar.
    BadApn {
        /// Explanation of the violation.
        reason: &'static str,
    },
    /// The MCC is syntactically valid but not allocated to any country in
    /// the registry.
    UnknownMcc(u16),
    /// The PLMN (MCC-MNC pair) is not present in the operator registry.
    UnknownPlmn {
        /// Mobile Country Code.
        mcc: u16,
        /// Mobile Network Code.
        mnc: u16,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty input"),
            ParseError::NonDigit { offset } => {
                write!(f, "non-digit character at offset {offset}")
            }
            ParseError::BadLength {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected {expected}, found {found}"),
            ParseError::OutOfRange { what, allowed } => {
                write!(f, "{what} out of range (allowed: {allowed})")
            }
            ParseError::BadCheckDigit { found, expected } => {
                write!(
                    f,
                    "IMEI check digit {found} does not match Luhn checksum {expected}"
                )
            }
            ParseError::BadApn { reason } => write!(f, "invalid APN: {reason}"),
            ParseError::UnknownMcc(mcc) => write!(f, "MCC {mcc} not allocated in registry"),
            ParseError::UnknownPlmn { mcc, mnc } => {
                write!(f, "PLMN {mcc}-{mnc:02} not present in operator registry")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ParseError::BadLength {
            what: "MCC",
            expected: "3 digits",
            found: 2,
        };
        assert_eq!(e.to_string(), "MCC: expected 3 digits, found 2");
        let e = ParseError::NonDigit { offset: 4 };
        assert!(e.to_string().contains("offset 4"));
        let e = ParseError::BadCheckDigit {
            found: 3,
            expected: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ParseError::Empty);
        assert_eq!(e.to_string(), "empty input");
    }
}
