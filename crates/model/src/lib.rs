//! # wtr-model — cellular identifier and domain model
//!
//! Foundation crate for the *Where Things Roam* reproduction (Lutu et al.,
//! IMC 2020). It models the identifiers and registries that every other
//! crate builds on:
//!
//! * **Identifiers** ([`ids`]): [`ids::Mcc`], [`ids::Mnc`], [`ids::Plmn`],
//!   [`ids::Imsi`], [`ids::Imei`], [`ids::Tac`] — with parsing, validation
//!   and display in standard digit-string form.
//! * **Countries** ([`country`]): an MCC ↔ country registry covering the
//!   ~80 countries the paper's M2M platform footprint spans, with region
//!   and EU *roam-like-at-home* regulation flags.
//! * **Operators** ([`operators`]): PLMN allocations for home and visited
//!   networks, MVNO relationships.
//! * **Radio** ([`rat`]): radio access technologies (2G/3G/4G), capability
//!   sets and the paper's per-device `radio-flags`.
//! * **APNs** ([`apn`]): the Access Point Name grammar
//!   (`<network-id>.mnc<MNC>.mcc<MCC>.gprs`), keyword extraction used by the
//!   classification pipeline.
//! * **APN interning** ([`intern`]): deterministic [`intern::ApnSym`]
//!   symbols + [`intern::ApnTable`], so catalog rows and the classifier
//!   work with `Copy` keys instead of owned strings.
//! * **TAC catalog** ([`tacdb`]): a GSMA-like device database mapping IMEI
//!   Type Allocation Codes to vendor / model / OS / radio-band properties.
//! * **Roaming labels** ([`roaming`]): the paper's `<X:Y>` six-label
//!   taxonomy (§4.2).
//! * **Ground truth** ([`vertical`]): the hidden device vertical used only
//!   for validating classification output.
//!
//! All types are plain data with [`serde`] support; nothing here performs IO.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apn;
pub mod country;
pub mod error;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod operators;
pub mod rat;
pub mod roaming;
pub mod tacdb;
pub mod time;
pub mod vertical;

pub use apn::Apn;
pub use country::{Country, Region};
pub use error::ParseError;
pub use ids::{Imei, Imsi, Mcc, Mnc, Plmn, Tac};
pub use intern::{ApnSym, ApnTable};
pub use rat::{RadioFlags, Rat, RatSet};
pub use roaming::{Presence, RoamingLabel, SimOrigin};
pub use tacdb::{GsmaClass, TacDatabase, TacInfo};
pub use time::{Day, SimDuration, SimTime};
pub use vertical::Vertical;
